"""Address mapping: interleavings, round trips, intra-line data mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.geometry import SystemGeometry
from repro.dram.mapping import (
    AddressMapper,
    Interleaving,
    dirty_words_to_mask,
    mats_activated,
    word_index_to_mat_group,
)

ROW_MAPPER = AddressMapper(SystemGeometry(), Interleaving.ROW)
LINE_MAPPER = AddressMapper(SystemGeometry(), Interleaving.LINE)

line_indices = st.integers(min_value=0, max_value=ROW_MAPPER.line_capacity - 1)


class TestDecodeBounds:
    @given(line_indices)
    @settings(max_examples=200)
    def test_fields_in_range(self, line):
        for mapper in (ROW_MAPPER, LINE_MAPPER):
            addr = mapper.decode_line(line)
            geo = mapper.geometry
            assert 0 <= addr.channel < geo.channels
            assert 0 <= addr.rank < geo.ranks_per_channel
            assert 0 <= addr.bank < geo.chip.banks
            assert 0 <= addr.row < geo.chip.rows
            assert 0 <= addr.column < geo.lines_per_row

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ROW_MAPPER.decode_line(-1)

    def test_byte_decode_uses_line(self):
        a = ROW_MAPPER.decode(64 * 12345)
        b = ROW_MAPPER.decode_line(12345)
        assert a == b


class TestRoundTrip:
    @given(line_indices)
    @settings(max_examples=200)
    def test_row_interleaved_roundtrip(self, line):
        addr = ROW_MAPPER.decode_line(line)
        assert ROW_MAPPER.encode_line(addr) == line

    @given(line_indices)
    @settings(max_examples=200)
    def test_line_interleaved_roundtrip(self, line):
        addr = LINE_MAPPER.decode_line(line)
        assert LINE_MAPPER.encode_line(addr) == line


class TestInterleavingSemantics:
    def test_row_interleaved_keeps_lines_in_row(self):
        # Consecutive lines share (channel, rank, bank, row) until the
        # 128-line row is exhausted.
        base = ROW_MAPPER.decode_line(0)
        for i in range(1, 128):
            addr = ROW_MAPPER.decode_line(i)
            assert addr.same_row(base)
            assert addr.column == i

    def test_row_interleaved_switches_channel_after_row(self):
        a = ROW_MAPPER.decode_line(127)
        b = ROW_MAPPER.decode_line(128)
        assert not b.same_row(a)
        assert b.channel != a.channel

    def test_line_interleaved_spreads_consecutive_lines(self):
        a = LINE_MAPPER.decode_line(0)
        b = LINE_MAPPER.decode_line(1)
        assert b.channel != a.channel  # channel bit is lowest

    def test_line_interleaved_spreads_banks(self):
        # Lines 0, 2, 4, ... walk the banks of channel 0.
        banks = {LINE_MAPPER.decode_line(2 * i).bank for i in range(8)}
        assert len(banks) == 8

    def test_row_key(self):
        addr = ROW_MAPPER.decode_line(777)
        assert ROW_MAPPER.row_key(addr) == (
            addr.channel,
            addr.rank,
            addr.bank,
            addr.row,
        )

    def test_wraps_capacity(self):
        cap = ROW_MAPPER.line_capacity
        assert ROW_MAPPER.decode_line(cap + 5) == ROW_MAPPER.decode_line(5)


class TestDataMapping:
    def test_word_to_mat_group_identity(self):
        # Word i of a cache line lives in MAT group i (Figure 1/6).
        for w in range(8):
            assert word_index_to_mat_group(w) == w

    def test_word_out_of_range(self):
        with pytest.raises(ValueError):
            word_index_to_mat_group(8)

    def test_dirty_words_to_mask(self):
        assert dirty_words_to_mask([0, 1, 7]) == 0b10000011

    def test_mats_activated(self):
        # One mask bit gates a group of two MATs (Section 4.1.2).
        assert mats_activated(0b1) == 2
        assert mats_activated(0xFF) == 16
        assert mats_activated(0b10000001) == 4
