"""Smoke tests: every example script runs end to end at tiny scale.

Examples are the first thing a new user executes; a broken one costs
more trust than a broken internal. Each runs in a subprocess exactly
as a user would invoke it, with arguments small enough for CI.
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

#: (script, argv, strings that must appear in stdout)
CASES = [
    ("power_model_explorer.py", [], ["Table 2", "Figure 9", "22.2"]),
    ("fgd_cache_walkthrough.py", [], ["PRA mask", "activation power"]),
    ("quickstart.py", ["400"], ["PRA saves", "granularity mix"]),
    ("scheme_comparison.py", ["GUPS", "400"], ["Baseline", "PRA", "false row-buffer"]),
    ("writeback_study.py", ["400"], ["DBI", "PRA", "bzip2"]),
    ("custom_trace.py", ["400"], ["trace files", "PRA saves"]),
    ("power_over_time.py", ["GUPS", "600"], ["total DRAM power", "mW"]),
    ("phase_study.py", ["400"], ["Phased workload", "PRA saves"]),
]


@pytest.mark.parametrize("script,argv,expected", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, argv, expected):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path), *argv],
        capture_output=True,
        text=True,
        timeout=480,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-800:]}\n{result.stderr[-800:]}"
    )
    for text in expected:
        assert text in result.stdout, f"{script}: {text!r} not in output"


def test_examples_directory_is_fully_covered():
    """Every example on disk has a smoke test (no orphaned scripts)."""
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    covered = {c[0] for c in CASES}
    assert on_disk == covered, f"uncovered examples: {on_disk - covered}"
