"""Unit tests for the reprolint v2 dataflow passes.

Covers the three passes directly (twins, cowcheck, constraints) on
synthetic inputs and tmp-clone repos, the ``repro lint`` CLI wrapper,
and the tier-1 wall-clock budget for the full analysis suite.  The
fixture round-trips (each rule fires on its committed broken module)
live in ``tests/test_reprolint.py``; these tests pin the *semantics*
each pass must get right.
"""

import ast
import json
import os
import shutil
import time

import pytest

from repro.analysis import constraints, cowcheck, twins
from repro.analysis.lint import lint_paths
from repro.analysis.rules import check_file
from repro.cli import main as cli_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")


# ----------------------------------------------------------------------
# Twins: qualname resolution and in-file pairs.
# ----------------------------------------------------------------------
def test_find_qualname_resolves_methods_and_constants():
    tree = ast.parse(
        "CONST = (1, 2)\n"
        "class C:\n"
        "    __slots__ = ('a', 'b')\n"
        "    def method(self):\n"
        "        pass\n"
    )
    assert isinstance(twins._find_qualname(tree, "CONST"), ast.Assign)
    assert isinstance(twins._find_qualname(tree, "C.method"), ast.FunctionDef)
    assert isinstance(twins._find_qualname(tree, "C.__slots__"), ast.Assign)
    assert twins._find_qualname(tree, "C.missing") is None
    assert twins._find_qualname(tree, "nope") is None


def test_in_file_pair_identical_up_to_name_and_docstring():
    tree = ast.parse(
        'REPRO_TWIN_PAIRS = (("p", "a", "b"),)\n'
        "def a(x):\n"
        '    """doc a"""\n'
        "    return x + 1\n"
        "def b(x):\n"
        '    """doc b, different"""\n'
        "    return x + 1\n"
    )
    assert twins.check_in_file(tree, "m.py") == []


def test_in_file_pair_drift_and_missing_side():
    drifted = ast.parse(
        'REPRO_TWIN_PAIRS = (("p", "a", "b"),)\n'
        "def a(x):\n"
        "    return x + 1\n"
        "def b(x):\n"
        "    return x + 2\n"
    )
    findings = twins.check_in_file(drifted, "m.py")
    assert len(findings) == 1
    assert "no longer structurally identical" in findings[0][2]

    missing = ast.parse(
        'REPRO_TWIN_PAIRS = (("p", "a", "gone"),)\n'
        "def a(x):\n"
        "    return x\n"
    )
    findings = twins.check_in_file(missing, "m.py")
    assert len(findings) == 1
    assert "'gone'" in findings[0][2]


# ----------------------------------------------------------------------
# Twins: fingerprint drift in a tmp clone of the twin sources.
# ----------------------------------------------------------------------
_SIM_FILES = ("src/repro/sim/system.py", "src/repro/sim/batch.py")
_SYSTEM = "src/repro/sim/system.py"


def _clone(tmp_path, with_fingerprints=True):
    """Copy the scalar-loop pair sources (and the committed
    fingerprints) into a bare tmp repo root."""
    rels = list(_SIM_FILES)
    if with_fingerprints:
        rels.append(twins.FINGERPRINT_FILE)
    for rel in rels:
        dst = tmp_path / rel
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(os.path.join(REPO_ROOT, *rel.split("/")), dst)
    return str(tmp_path)


def _mutate_system_run(root):
    """Append a statement to ``System.run`` in the clone (structural
    drift, comment-free rewrite via unparse round-trip)."""
    path = os.path.join(root, *_SYSTEM.split("/"))
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read())
    fn = twins._find_qualname(tree, "System.run")
    assert isinstance(fn, ast.FunctionDef)
    fn.body.append(ast.parse("_drift_probe = 0").body[0])
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(ast.unparse(ast.fix_missing_locations(tree)) + "\n")


def test_clean_clone_matches_committed_fingerprints(tmp_path):
    root = _clone(tmp_path)
    assert twins.check_fingerprints(root, {_SYSTEM}) == []


def test_one_sided_drift_names_the_untouched_twin(tmp_path):
    root = _clone(tmp_path)
    _mutate_system_run(root)
    findings = twins.check_fingerprints(root, {_SYSTEM})
    assert len(findings) == 1
    path, line, message = findings[0]
    assert path == _SYSTEM
    assert line > 1
    assert "scalar-loop" in message
    assert "did NOT change" in message
    assert twins.REGEN_ENV in message  # regeneration instructions


def test_regeneration_clears_drift(tmp_path):
    root = _clone(tmp_path)
    _mutate_system_run(root)
    twins.write_fingerprints(root, "test re-pin")
    assert twins.check_fingerprints(root, {_SYSTEM}) == []


def test_linted_paths_scope_pairs(tmp_path):
    # Drift exists, but no linted file is a side of any pair: silent.
    root = _clone(tmp_path)
    _mutate_system_run(root)
    assert twins.check_fingerprints(root, {"src/unrelated.py"}) == []


def test_missing_fingerprint_file_is_a_finding(tmp_path):
    root = _clone(tmp_path, with_fingerprints=False)
    findings = twins.check_fingerprints(root, {_SYSTEM})
    assert findings
    assert all("no committed fingerprint" in msg for _, _, msg in findings)


def test_write_refuses_without_regen_env(tmp_path, monkeypatch, capsys):
    monkeypatch.delenv(twins.REGEN_ENV, raising=False)
    root = _clone(tmp_path, with_fingerprints=False)
    assert twins.main(["--write", "--repo-root", root]) == 2
    assert not os.path.exists(twins.fingerprint_path(root))
    assert twins.REGEN_ENV in capsys.readouterr().err


def test_write_succeeds_with_regen_env(tmp_path, monkeypatch):
    monkeypatch.setenv(twins.REGEN_ENV, "1")
    root = _clone(tmp_path, with_fingerprints=False)
    assert twins.main(["--write", "--repo-root", root, "--note", "t"]) == 0
    stored = twins.load_fingerprints(root)
    assert stored is not None and stored["format"] == twins.FORMAT


# ----------------------------------------------------------------------
# Twins: semantic slot coverage for the timing-slots pair.
# ----------------------------------------------------------------------
def _slot_repo(tmp_path, scalar_slots, batch_slots, lane_rebinds):
    """Synthetic soa/soa_batch modules for check_slot_coverage."""
    soa = tmp_path / "src" / "repro" / "dram" / "soa.py"
    soa.parent.mkdir(parents=True, exist_ok=True)
    soa.write_text(
        "class TimingCore:\n"
        f"    __slots__ = {tuple(scalar_slots)!r}\n"
    )
    lane_body = "".join(
        f"        core.{name} = self.{name}[i]\n" for name in lane_rebinds
    ) or "        pass\n"
    (soa.parent / "soa_batch.py").write_text(
        "class BatchTimingCore:\n"
        f"    __slots__ = {tuple(batch_slots)!r}\n"
        "    def lane(self, i, core):\n"
        f"{lane_body}"
        "        return core\n"
    )
    return str(tmp_path)


def test_slot_coverage_clean_when_slab_covers_scalar(tmp_path):
    root = _slot_repo(
        tmp_path,
        scalar_slots=("num_ranks", "num_banks", "act_ready", "faw"),
        batch_slots=("num_lanes", "num_ranks", "num_banks", "act_ready",
                     "faw"),
        lane_rebinds=("act_ready", "faw"),
    )
    assert twins.check_slot_coverage(root) == []


def test_slot_coverage_flags_missing_and_unwired_slots(tmp_path):
    # 'faw' exists on the scalar core but has no slab column and is
    # never rebound by lane(): both semantic checks must fire.
    root = _slot_repo(
        tmp_path,
        scalar_slots=("num_ranks", "num_banks", "act_ready", "faw"),
        batch_slots=("num_lanes", "num_ranks", "num_banks", "act_ready"),
        lane_rebinds=("act_ready",),
    )
    messages = [msg for _, _, msg in twins.check_slot_coverage(root)]
    assert len(messages) == 2
    assert any("missing scalar TimingCore slots ['faw']" in m
               for m in messages)
    assert any("never rebinds scalar slots ['faw']" in m for m in messages)


# ----------------------------------------------------------------------
# COW/aliasing pass.
# ----------------------------------------------------------------------
_PROTOCOL = cowcheck.Protocol(("_tags",), ("lane",), ("_own",), 1)


def _cow_findings(source):
    fn = ast.parse(source).body[-1]
    assert isinstance(fn, ast.FunctionDef)
    return cowcheck.check_function(fn.name, fn, _PROTOCOL)


def test_unguarded_view_mutation_is_flagged():
    findings = _cow_findings(
        "def f(self, i):\n"
        "    tags = self._tags[i]\n"
        "    tags['k'] = 1\n"
    )
    assert len(findings) == 1
    assert "possibly-shared" in findings[0][1]


def test_root_mutation_is_safe():
    # The outer container is a fresh copy; rebinding its element is the
    # privatization idiom itself, never a finding.
    assert _cow_findings(
        "def f(self, i, t):\n"
        "    self._tags[i] = t\n"
    ) == []


def test_shared_call_views_and_mutating_methods():
    findings = _cow_findings(
        "def f(slab, i):\n"
        "    view = lane(i)\n"
        "    view.update({})\n"
    )
    assert len(findings) == 1
    assert ".update() on" in findings[0][1]


def test_guarded_privatizer_anchors_downstream_mutation():
    # The set_assoc shape: the *guard* dominates the mutation even
    # though the privatizing branch does not.
    assert _cow_findings(
        "def f(self, i):\n"
        "    tags = self._tags[i]\n"
        "    if not self.owned:\n"
        "        tags = self._own(i)\n"
        "    tags['k'] = 1\n"
    ) == []


def test_fresh_copy_rebind_anchors():
    # The dbi thaw shape: a guarded set() self-rebind privatizes.
    assert _cow_findings(
        "def f(self, key):\n"
        "    lines = self._tags[key]\n"
        "    if isinstance(lines, tuple):\n"
        "        lines = set(lines)\n"
        "    lines.add(3)\n"
    ) == []


def test_privatizer_after_mutation_does_not_anchor():
    findings = _cow_findings(
        "def f(self, i):\n"
        "    tags = self._tags[i]\n"
        "    tags['k'] = 1\n"
        "    tags = self._own(i)\n"
    )
    assert len(findings) == 1


def test_for_loop_over_root_yields_views():
    findings = _cow_findings(
        "def f(self):\n"
        "    for row in self._tags:\n"
        "        row.clear()\n"
    )
    assert len(findings) == 1
    assert ".clear() on" in findings[0][1]


def test_missing_protocol_in_registered_module():
    findings = cowcheck.check_module(ast.parse("x = 1\n"), "m.py", True)
    assert len(findings) == 1
    assert findings[0][0] == 1
    assert "REPRO_COW_PROTOCOL" in findings[0][1]
    # Unregistered modules without a protocol are simply skipped.
    assert cowcheck.check_module(ast.parse("x = 1\n"), "m.py", False) == []


def test_shares_pragma_suppresses_cow_finding(tmp_path):
    def body(pragma):
        return (
            "REPRO_COW_PROTOCOL = {\n"
            '    "shared_roots": ("_tags",),\n'
            '    "shared_calls": (),\n'
            '    "privatizers": (),\n'
            "}\n"
            "\n"
            "\n"
            "class C:\n"
            "    def f(self, i):\n"
            "        tags = self._tags[i]\n"
            f"        tags['k'] = 1{pragma}\n"
        )

    bare = tmp_path / "bare.py"
    bare.write_text(body(""))
    flagged = check_file(str(bare), str(tmp_path), ["cow-unsafe-mutation"])
    assert len(flagged) == 1

    marked = tmp_path / "marked.py"
    marked.write_text(
        body("  # reprolint: shares[test: aliasing is the point]")
    )
    assert check_file(str(marked), str(tmp_path),
                      ["cow-unsafe-mutation"]) == []


# ----------------------------------------------------------------------
# Timing-constraint coverage pass.
# ----------------------------------------------------------------------
def test_issue_site_recognition():
    fn = ast.parse(
        "def f(core, rank, g, r, row, now):\n"
        "    core.open_row[g] = row\n"
        "    core.open_row[g] = -1\n"
        "    core.next_col_ok[r] = now\n"
        "    rank.do_refresh(now)\n"
        "    rank.enter_power_down(now)\n"
    ).body[0]
    commands = [site.command for site in constraints.issue_sites(fn)]
    assert commands == ["ACT", "PRE", "COLUMN", "REF", "PD"]


def test_slice_stores_are_administrative():
    fn = ast.parse(
        "def f(core, fresh):\n"
        "    core.open_row[0:4] = fresh\n"
    ).body[0]
    assert constraints.issue_sites(fn) == []


def test_uncovered_act_names_every_missed_parameter():
    findings = constraints.check_module(
        ast.parse(
            "def sneak(core, g, row):\n"
            "    core.open_row[g] = row\n"
        ),
        "m.py",
    )
    assert len(findings) == 1
    message = findings[0][1]
    for param in ("act_ready", "next_act_ok", "tFAW", "gate"):
        assert param in message


def test_caller_union_covers_unconditional_helpers():
    # The _try_column shape: the helper commits unconditionally, the
    # caller performed every screen — the union covers the site.
    tree = ast.parse(
        "def _commit(core, g, row):\n"
        "    core.open_row[g] = row\n"
        "\n"
        "def step(core, g, row, now):\n"
        "    if core.act_ready[g] <= now and core.next_act_ok <= now:\n"
        "        if core.faw_ok(now) and core.gate <= now:\n"
        "            _commit(core, g, row)\n"
    )
    assert constraints.check_module(tree, "m.py") == []


def test_helper_without_screening_caller_is_flagged():
    tree = ast.parse(
        "def _commit(core, g, row):\n"
        "    core.open_row[g] = row\n"
        "\n"
        "def step(core, g, row, now):\n"
        "    _commit(core, g, row)\n"
    )
    findings = constraints.check_module(tree, "m.py")
    assert len(findings) == 1
    assert "_commit" in findings[0][1]


def test_admin_functions_are_exempt():
    tree = ast.parse(
        "def reset_rows(core):\n"
        "    core.open_row[0] = -1\n"
        "\n"
        "def restore_rows(core, snap):\n"
        "    core.open_row[0] = snap[0]\n"
    )
    assert constraints.check_module(tree, "m.py") == []


def test_unpacked_alias_reads_count_as_consultation():
    # The hot path unpacks timing state into suffixed locals; substring
    # matching must accept them as consultation.
    tree = ast.parse(
        "def go(core, g, row, now):\n"
        "    act_ready_g = core.timers[0]\n"
        "    next_act_ok_a = core.timers[1]\n"
        "    faw_ok_a = core.timers[2]\n"
        "    gate_a = core.timers[3]\n"
        "    if act_ready_g <= now <= next_act_ok_a <= faw_ok_a <= gate_a:\n"
        "        core.open_row[g] = row\n"
    )
    assert constraints.check_module(tree, "m.py") == []


def test_timing_scope_and_opt_in():
    assert constraints.applies_to("src/repro/controller/policy.py", "")
    assert constraints.applies_to("src/repro/dram/soa.py", "")
    assert not constraints.applies_to("src/repro/sim/system.py", "x = 1\n")
    assert constraints.applies_to(
        "tests/lint_fixtures/whatever.py", "# reprolint: timing\n"
    )


# ----------------------------------------------------------------------
# `repro lint` CLI wrapper.
# ----------------------------------------------------------------------
_COW_FIXTURE = os.path.join(FIXTURES, "cow_unsafe_mutation.py")


def test_cli_lint_json_report(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    out = tmp_path / "report.json"
    code = cli_main([
        "lint", _COW_FIXTURE, "--format", "json",
        "--json-out", str(out), "--no-typegate",
    ])
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == 1
    assert report["typegate"] is None
    assert set(report["counts"]) == {"cow-unsafe-mutation"}
    assert all(
        f["path"] == "tests/lint_fixtures/cow_unsafe_mutation.py"
        for f in report["findings"]
    )
    # --json-out writes the same document CI archives.
    assert json.loads(out.read_text()) == report


def test_cli_lint_github_annotations(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    code = cli_main([
        "lint", _COW_FIXTURE, "--format", "github", "--no-typegate",
    ])
    assert code == 1
    lines = [
        line for line in capsys.readouterr().out.splitlines() if line
    ]
    assert lines
    for line in lines:
        assert line.startswith(
            "::error file=tests/lint_fixtures/cow_unsafe_mutation.py,line="
        )
        assert "title=reprolint cow-unsafe-mutation::" in line


def test_cli_lint_clean_file_exits_zero(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    target = os.path.join(REPO_ROOT, "src", "repro", "analysis", "registry.py")
    assert cli_main(["lint", target, "--no-typegate"]) == 0
    assert "0 findings" in capsys.readouterr().err


def test_cli_lint_rejects_unknown_rule(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    code = cli_main([
        "lint", _COW_FIXTURE, "--select", "no-such-rule", "--no-typegate",
    ])
    assert code == 2
    assert "no-such-rule" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Tier-1 budget: the full analysis suite must stay cheap enough to run
# on every commit (v1 rules + all three dataflow passes + the repo-wide
# fingerprint check over src/ and tests/).
# ----------------------------------------------------------------------
def test_full_analysis_suite_clean_and_under_budget():
    start = time.monotonic()  # reprolint: allow[determinism-wallclock]
    findings = lint_paths(
        [os.path.join(REPO_ROOT, "src"), os.path.join(REPO_ROOT, "tests")],
        repo_root=REPO_ROOT,
    )
    elapsed = time.monotonic() - start  # reprolint: allow[determinism-wallclock]
    assert findings == [], [f.render() for f in findings]
    # ~0.6 s locally; 30 s leaves a wide margin for CI runners while
    # still catching an accidental quadratic blowup in the passes.
    assert elapsed < 30.0, f"analysis suite took {elapsed:.1f}s"
