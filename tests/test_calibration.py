"""Calibration bands: the synthetic benchmarks must land near Table 1
and Figure 3 of the paper.

Single-core baseline runs, as in the paper's motivational data.  Bands
are deliberately generous (synthetic traces approximate, not clone, the
SPEC binaries) but tight enough to catch calibration regressions.
"""

import pytest

from repro.core.schemes import BASELINE
from repro.sim.config import SystemConfig
from repro.sim.system import simulate
from repro.workloads.mixes import Workload
from repro.workloads.profiles import BENCHMARKS, profile

EVENTS = 6000

#: Table 1: (read hit %, write hit %, read traffic %) per benchmark.
TABLE1 = {
    "bzip2": (32, 1, 69),
    "lbm": (29, 18, 57),
    "libquantum": (73, 48, 66),
    "mcf": (18, 1, 79),
    "omnetpp": (47, 2, 71),
    "em3d": (5, 1, 51),
    "GUPS": (3, 1, 53),
    "LinkedList": (4, 1, 65),
}

_cache = {}


def single_core(name):
    if name not in _cache:
        wl = Workload(name=f"{name}-1c", apps=(profile(name),))
        _cache[name] = simulate(SystemConfig(), wl, EVENTS)
    return _cache[name]


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(TABLE1))
class TestTable1Bands:
    def test_read_hit_rate(self, name):
        target = TABLE1[name][0]
        got = 100 * single_core(name).controller.reads.hit_rate
        assert abs(got - target) <= 12, f"{name}: read hit {got:.0f}% vs {target}%"

    def test_write_hit_rate(self, name):
        target = TABLE1[name][1]
        got = 100 * single_core(name).controller.writes.hit_rate
        assert abs(got - target) <= 10, f"{name}: write hit {got:.0f}% vs {target}%"

    def test_read_traffic_share(self, name):
        target = TABLE1[name][2]
        got = 100 * single_core(name).controller.traffic_split()["read"]
        assert abs(got - target) <= 6, f"{name}: read share {got:.0f}% vs {target}%"


class TestLocalityAsymmetry:
    """Section 2.2.2: reads reuse rows, writes mostly don't."""

    def test_read_hits_exceed_write_hits_on_average(self):
        read_rates = [single_core(n).controller.reads.hit_rate for n in TABLE1]
        write_rates = [single_core(n).controller.writes.hit_rate for n in TABLE1]
        avg_read = sum(read_rates) / len(read_rates)
        avg_write = sum(write_rates) / len(write_rates)
        assert avg_read > 2 * avg_write

    def test_write_activation_share_exceeds_write_traffic_share(self):
        # Poor write locality => writes cause a disproportionate share
        # of activations (e.g. omnetpp: 29% of traffic, 43% of ACTs).
        disproportionate = 0
        for name in TABLE1:
            c = single_core(name).controller
            if c.activation_split()["write"] >= c.traffic_split()["write"]:
                disproportionate += 1
        assert disproportionate >= 6

    def test_ordering_of_read_locality(self):
        # libquantum streams; GUPS is random: the extremes must hold.
        assert (
            single_core("libquantum").controller.reads.hit_rate
            > single_core("bzip2").controller.reads.hit_rate
            > single_core("GUPS").controller.reads.hit_rate
        )


class TestFigure3DirtyWords:
    def test_gups_all_single_word(self):
        fracs = single_core("GUPS").dirty_word_fractions
        assert fracs[1] > 0.95

    def test_most_lines_few_dirty_words(self):
        # Figure 3: across benchmarks, evicted lines are dominated by
        # 1-2 dirty words; full-line-dirty is the minority.
        for name in ("mcf", "omnetpp", "em3d", "LinkedList"):
            fracs = single_core(name).dirty_word_fractions
            assert fracs[1] + fracs[2] > 0.6, name

    def test_bzip2_has_full_line_tail(self):
        fracs = single_core("bzip2").dirty_word_fractions
        assert fracs[8] > 0.05

    def test_distribution_matches_profile(self):
        for name in TABLE1:
            prof = profile(name)
            fracs = single_core(name).dirty_word_fractions
            expected = dict(prof.dirty_word_dist)
            for words, p in expected.items():
                assert fracs[words] == pytest.approx(p, abs=0.08), (
                    f"{name}: {words}-word fraction {fracs[words]:.2f} vs {p:.2f}"
                )
