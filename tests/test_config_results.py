"""System configuration and result containers."""

import pytest

from repro.controller.policies import RowPolicy
from repro.core.schemes import BASELINE, PRA
from repro.dram.mapping import Interleaving
from repro.power.accounting import PowerBreakdown
from repro.sim.config import CacheConfig, ControllerConfig, CoreConfig, SystemConfig
from repro.sim.results import CoreResult, SimResult, normalized
from repro.controller.stats import ControllerStats
from repro.cache.set_assoc import CacheStats


class TestSystemConfig:
    def test_table3_defaults(self):
        cfg = SystemConfig()
        assert cfg.cache.llc_bytes == 4 * 1024 * 1024
        assert cfg.cache.llc_ways == 8
        assert cfg.cache.l1_bytes == 32 * 1024
        assert cfg.controller.read_queue_size == 64
        assert cfg.controller.write_queue_size == 64
        assert cfg.controller.drain_high_watermark == 48
        assert cfg.controller.drain_low_watermark == 16
        assert cfg.core.cpu_per_mem_clock == 4.0  # 3.2 GHz over 800 MHz
        assert cfg.core.rob_instructions == 192

    def test_policy_picks_interleaving(self):
        # Paper: row-interleaved for relaxed, line-interleaved for
        # restricted close-page (Section 5.1.2).
        relaxed = SystemConfig(policy=RowPolicy.RELAXED_CLOSE)
        restricted = SystemConfig(policy=RowPolicy.RESTRICTED_CLOSE)
        assert relaxed.effective_interleaving is Interleaving.ROW
        assert restricted.effective_interleaving is Interleaving.LINE

    def test_explicit_interleaving_wins(self):
        cfg = SystemConfig(
            policy=RowPolicy.RESTRICTED_CLOSE, interleaving=Interleaving.ROW
        )
        assert cfg.effective_interleaving is Interleaving.ROW

    def test_with_scheme_and_policy(self):
        cfg = SystemConfig()
        cfg2 = cfg.with_scheme(PRA).with_policy(RowPolicy.OPEN_PAGE)
        assert cfg2.scheme is PRA
        assert cfg2.policy is RowPolicy.OPEN_PAGE
        assert cfg.scheme is BASELINE  # original untouched


def _result(act_hist=None, runtime=1000):
    breakdown = PowerBreakdown(
        energy_pj={c: 100.0 for c in ("act_pre", "rd", "wr", "rd_io", "wr_io", "bg", "ref")},
        runtime_ns=runtime * 1.25,
    )
    return SimResult(
        scheme_name="PRA",
        policy_name="relaxed-close-page",
        workload_name="GUPS",
        runtime_cycles=runtime,
        cores=[
            CoreResult(core_id=0, app_name="GUPS", retired_instructions=100,
                       finish_cycle=runtime, ipc=0.5)
        ],
        controller=ControllerStats(),
        power=breakdown,
        activation_histogram=act_hist or {g: 0 for g in range(1, 9)},
        llc=CacheStats(),
    )


class TestSimResult:
    def test_granularity_fractions(self):
        hist = {g: 0 for g in range(1, 9)}
        hist[1] = 3
        hist[8] = 1
        r = _result(act_hist=hist)
        fracs = r.granularity_fractions()
        assert fracs[1] == pytest.approx(0.75)
        assert fracs[8] == pytest.approx(0.25)

    def test_mean_granularity(self):
        hist = {g: 0 for g in range(1, 9)}
        hist[1] = 1
        hist[8] = 1
        r = _result(act_hist=hist)
        assert r.mean_activation_granularity() == pytest.approx((1 + 8) / 16)

    def test_empty_histogram_defaults(self):
        r = _result()
        assert r.mean_activation_granularity() == 1.0
        assert all(v == 0.0 for v in r.granularity_fractions().values())

    def test_edp(self):
        r = _result()
        assert r.edp == pytest.approx(r.total_energy_mj * r.runtime_ns)

    def test_summary_keys(self):
        summary = _result().summary()
        for key in ("total_power_mw", "energy_mj", "edp", "read_hit_rate",
                    "mean_granularity"):
            assert key in summary

    def test_ipcs(self):
        assert _result().ipcs == [0.5]


class TestNormalizedHelper:
    def test_divides(self):
        assert normalized(3.0, 4.0) == pytest.approx(0.75)

    def test_zero_baseline(self):
        with pytest.raises(ZeroDivisionError):
            normalized(1.0, 0.0)


class TestSerialization:
    def test_to_dict_round_trips_through_json(self, tmp_path=None):
        import json

        r = _result()
        blob = json.dumps(r.to_dict())
        back = json.loads(blob)
        assert back["scheme"] == "PRA"
        assert back["workload"] == "GUPS"
        assert back["cores"][0]["ipc"] == pytest.approx(0.5)
        assert set(back["power_mw"]) == {
            "act_pre", "rd", "wr", "rd_io", "wr_io", "bg", "ref",
        }

    def test_save_json(self, tmp_path):
        r = _result()
        path = tmp_path / "result.json"
        r.save_json(str(path))
        import json

        data = json.loads(path.read_text())
        assert data["runtime_cycles"] == 1000
