"""Cache hierarchy: FGD propagation (Fig. 8), traffic generation, DBI hook."""

import pytest

from repro.cache.dbi import DirtyBlockIndex
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.set_assoc import SetAssociativeCache


def small_l2(sets=4, ways=2):
    return SetAssociativeCache(capacity_bytes=sets * ways * 64, ways=ways, name="L2")


class TestLLCOnlyMode:
    def test_load_miss_fills(self):
        h = CacheHierarchy(small_l2())
        traffic = h.access(0, 100)
        assert traffic.fills == [100]
        assert not traffic.demand_hit

    def test_load_hit_no_traffic(self):
        h = CacheHierarchy(small_l2())
        h.access(0, 100)
        traffic = h.access(0, 100)
        assert traffic.fills == []
        assert traffic.writebacks == []
        assert traffic.demand_hit

    def test_store_miss_fill_on_write_allocate(self):
        h = CacheHierarchy(small_l2())
        traffic = h.access(0, 100, write_mask=0b1)
        assert traffic.fills == [100]

    def test_streaming_store_skips_fill(self):
        h = CacheHierarchy(small_l2())
        traffic = h.access(0, 100, write_mask=0xFF, fill_on_miss=False)
        assert traffic.fills == []

    def test_dirty_eviction_carries_fgd_mask(self):
        h = CacheHierarchy(small_l2(sets=1, ways=1))
        h.access(0, 0, write_mask=0b101)
        traffic = h.access(0, 1)
        assert traffic.writebacks == [(0, 0b101)]

    def test_clean_eviction_no_writeback(self):
        h = CacheHierarchy(small_l2(sets=1, ways=1))
        h.access(0, 0)
        traffic = h.access(0, 1)
        assert traffic.writebacks == []


class TestTwoLevelMode:
    def _hierarchy(self):
        l1 = SetAssociativeCache(capacity_bytes=2 * 64, ways=2, name="L1-0")
        return CacheHierarchy(small_l2(), l1s=[l1])

    def test_l1_eviction_merges_dirty_bits_into_l2(self):
        # Fig. 8: L1 victim's dirty bits are OR-ed into the L2 line.
        h = self._hierarchy()
        h.access(0, 0, write_mask=0b1)     # L1+L2 fill; dirty in L1 only
        assert h.l2.lookup(0) is not None
        assert h.l2.lookup(0).dirty_mask == 0
        h.access(0, 1)
        h.access(0, 2)                      # evicts line 0 from L1
        assert h.l2.lookup(0).dirty_mask == 0b1

    def test_l1_hit_produces_no_l2_access(self):
        h = self._hierarchy()
        h.access(0, 0)
        l2_accesses = h.l2.stats.accesses
        h.access(0, 0)
        assert h.l2.stats.accesses == l2_accesses

    def test_merged_bits_travel_to_dram(self):
        h = self._hierarchy()
        # Dirty word 0 in one pass, word 7 in another: the DRAM write
        # must carry the OR of both (the future PRA mask).
        h.access(0, 0, write_mask=0b1)
        h.access(0, 1)
        h.access(0, 2)                      # L1 evicts 0 -> L2 mask 0b1
        h.access(0, 0, write_mask=0b10000000)
        h.access(0, 3)
        h.access(0, 4)                      # L1 evicts 0 again
        assert h.l2.lookup(0).dirty_mask == 0b10000001


class TestFlushAndStats:
    def test_flush_dirty(self):
        h = CacheHierarchy(small_l2())
        h.access(0, 0, write_mask=0b1)
        h.access(0, 1, write_mask=0b11)
        drained = dict(h.flush_dirty())
        assert drained == {0: 0b1, 1: 0b11}
        assert h.flush_dirty() == []

    def test_dirty_word_fractions(self):
        h = CacheHierarchy(small_l2(sets=1, ways=1))
        h.access(0, 0, write_mask=0b1)
        h.access(0, 1)  # evicts 0 (1 dirty word)
        fracs = h.dirty_word_fractions()
        assert fracs[1] == pytest.approx(1.0)


class TestDBIIntegration:
    def test_proactive_writeback_of_row_companions(self):
        # Lines 0..3 share a "row"; evicting dirty line 0 drains 1 too.
        l2 = SetAssociativeCache(capacity_bytes=8 * 64, ways=8, name="L2")  # 1 set
        dbi = DirtyBlockIndex(row_of=lambda line: line // 4)
        h = CacheHierarchy(l2, dbi=dbi)
        h.access(0, 0, write_mask=0b1)
        h.access(0, 1, write_mask=0b10)
        h.access(0, 8)  # same row group? 8//4=2, different row
        for addr in (16, 24, 32, 40, 48):
            h.access(0, addr)
        # Cache is full (8 ways); next access evicts LRU = line 0.
        traffic = h.access(0, 56)
        wb = dict(traffic.writebacks)
        assert wb[0] == 0b1
        assert wb[1] == 0b10  # proactively drained companion
        assert not l2.lookup(1).dirty  # cleaned but resident
        assert dbi.proactive_writebacks == 1

    def test_dbi_index_cleared_on_clean_eviction(self):
        l2 = SetAssociativeCache(capacity_bytes=1 * 64, ways=1, name="L2")
        dbi = DirtyBlockIndex(row_of=lambda line: line // 4)
        h = CacheHierarchy(l2, dbi=dbi)
        h.access(0, 0, write_mask=0b1)
        h.access(0, 1)  # evicts dirty 0 (trigger, no companions)
        h.access(0, 2)  # evicts clean 1
        assert len(dbi) == 0
