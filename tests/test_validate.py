"""SimResult validator: passes on real runs, catches corrupt results."""

import pytest

from repro.controller.policies import RowPolicy
from repro.core.schemes import BASELINE, FGA, HALF_DRAM, PRA
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.system import simulate
from repro.sim.validate import ValidationError, validate_result
from repro.workloads.mixes import workload


def run(scheme=BASELINE, policy=RowPolicy.RELAXED_CLOSE):
    config = SystemConfig(scheme=scheme, policy=policy,
                          cache=CacheConfig(llc_bytes=256 * 1024))
    return simulate(config, workload("MIX2"), 800, warmup_events_per_core=3000)


@pytest.mark.parametrize("scheme", [BASELINE, FGA, HALF_DRAM, PRA],
                         ids=lambda s: s.name)
def test_real_runs_validate(scheme):
    result = run(scheme)
    passed = validate_result(result)
    assert "activation-histogram-consistent" in passed
    assert "power-plausible" in passed


def test_restricted_policy_validates():
    result = run(BASELINE, RowPolicy.RESTRICTED_CLOSE)
    validate_result(result)


class TestCorruptionDetected:
    def test_histogram_mismatch(self):
        result = run(BASELINE)
        result.activation_histogram[8] += 5
        with pytest.raises(ValidationError, match="histogram"):
            validate_result(result)

    def test_negative_energy(self):
        result = run(BASELINE)
        result.power.energy_pj["rd"] = -1.0
        with pytest.raises(ValidationError, match="nonnegative"):
            validate_result(result)

    def test_hit_overflow(self):
        result = run(BASELINE)
        result.controller.reads.row_hits = result.controller.reads.served + 1
        with pytest.raises(ValidationError, match="hits-bounded"):
            validate_result(result)

    def test_baseline_partial_rows_flagged(self):
        result = run(BASELINE)
        result.activation_histogram[1] += 1
        result.controller.reads.activations += 1
        with pytest.raises(ValidationError, match="full-rows-only"):
            validate_result(result)

    def test_false_hits_without_masking_flagged(self):
        result = run(HALF_DRAM)
        result.controller.writes.false_hits = 1
        with pytest.raises(ValidationError, match="false-hits"):
            validate_result(result)
