"""DDR3-1600 timing parameters (Table 3) and conversions."""

import pytest

from repro.dram.timing import DDR3_1600, TimingParams


class TestTable3Values:
    """The chip timing row of Table 3."""

    def test_paper_timing_values(self):
        t = DDR3_1600
        assert t.trcd == 11
        assert t.trp == 11
        assert t.tcas == 11
        assert t.tras == 28
        assert t.twr == 12
        assert t.tccd == 4
        assert t.trrd == 5
        assert t.tfaw == 24
        assert t.trc == 39

    def test_trc_is_tras_plus_trp(self):
        # "row cycle (tRC) is the sum of tRAS and tRP" (Section 5.1.1).
        assert DDR3_1600.trc == DDR3_1600.tras + DDR3_1600.trp

    def test_pra_extra_cycle(self):
        # PRA delays the column command by one tCK (Figure 7a).
        assert DDR3_1600.pra_extra == 1

    def test_clock_is_800mhz(self):
        assert DDR3_1600.tck_ns == pytest.approx(1.25)

    def test_burst_occupancy(self):
        # BL8 on a DDR bus = 4 command-clock cycles.
        assert DDR3_1600.tburst == 4


class TestConversions:
    def test_cycles_to_ns_roundtrip(self):
        t = DDR3_1600
        assert t.ns_to_cycles(t.cycles_to_ns(39)) == pytest.approx(39)

    def test_row_cycle_ns(self):
        assert DDR3_1600.row_cycle_ns == pytest.approx(48.75)

    def test_read_latency(self):
        assert DDR3_1600.read_latency == 22

    def test_with_overrides(self):
        fast = DDR3_1600.with_overrides(trcd=10, trp=10)
        assert fast.trcd == 10
        assert fast.trp == 10
        assert fast.tras == DDR3_1600.tras
        # Original untouched (frozen dataclass).
        assert DDR3_1600.trcd == 11

    def test_refresh_interval_is_7800ns(self):
        assert DDR3_1600.cycles_to_ns(DDR3_1600.trefi) == pytest.approx(7800.0)

    def test_refresh_cycle_is_160ns(self):
        assert DDR3_1600.cycles_to_ns(DDR3_1600.trfc) == pytest.approx(160.0)


class TestDDR4Preset:
    def test_ddr4_importable_and_faster_clock(self):
        from repro.dram.timing import DDR4_2400

        assert DDR4_2400.tck_ns < DDR3_1600.tck_ns
        # Similar absolute latencies despite more cycles.
        assert DDR4_2400.cycles_to_ns(DDR4_2400.trcd) == pytest.approx(
            DDR3_1600.cycles_to_ns(DDR3_1600.trcd), rel=0.1
        )
        assert DDR4_2400.trc == DDR4_2400.tras + DDR4_2400.trp

    def test_system_runs_on_ddr4(self):
        from repro.core.schemes import PRA
        from repro.dram.timing import DDR4_2400
        from repro.sim.config import CacheConfig, SystemConfig
        from repro.sim.system import simulate
        from repro.workloads.mixes import workload

        config = SystemConfig(
            scheme=PRA, timing=DDR4_2400, cache=CacheConfig(llc_bytes=128 * 1024)
        )
        result = simulate(config, workload("GUPS"), 500, warmup_events_per_core=1500)
        assert result.controller.total_served > 0
