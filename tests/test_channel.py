"""Channel model: data-bus exclusivity, rank switch penalty, FGA bursts."""

import pytest

from repro.dram.channel import Channel
from repro.dram.timing import DDR3_1600

T = DDR3_1600


@pytest.fixture
def channel():
    return Channel(T, num_ranks=2)


class TestCommandBus:
    def test_one_command_per_cycle(self, channel):
        assert channel.cmd_bus_ready(0)
        channel.occupy_cmd_bus(0)
        assert not channel.cmd_bus_ready(0)
        assert channel.cmd_bus_ready(1)

    def test_pra_act_occupies_two_cycles(self, channel):
        # The PRA mask rides the address bus in the next cycle (Fig 7a).
        channel.occupy_cmd_bus(0, cycles=2)
        assert not channel.cmd_bus_ready(1)
        assert channel.cmd_bus_ready(2)


class TestDataBus:
    def test_burst_occupies_tburst(self, channel):
        end = channel.occupy_data_bus(10, rank=0)
        assert end == 10 + T.tburst
        assert channel.earliest_burst_start(10, 0) == end

    def test_same_rank_back_to_back(self, channel):
        channel.occupy_data_bus(10, rank=0)
        assert channel.earliest_burst_start(14, 0) == 14

    def test_rank_switch_penalty(self, channel):
        channel.occupy_data_bus(10, rank=0)
        # A burst from the other rank pays tRTRS after bus-free.
        assert channel.earliest_burst_start(14, 1) == 14 + T.trtrs

    def test_busy_cycles_accumulate(self, channel):
        channel.occupy_data_bus(0, 0)
        channel.occupy_data_bus(4, 0)
        assert channel.data_bus_busy_cycles == 2 * T.tburst


class TestFGABurstMultiplier:
    def test_fga_doubles_occupancy(self):
        fga = Channel(T, num_ranks=2, burst_cycles_multiplier=2)
        assert fga.burst_cycles == 2 * T.tburst
        end = fga.occupy_data_bus(0, 0)
        assert end == 2 * T.tburst

    def test_baseline_multiplier_is_one(self, channel):
        assert channel.burst_cycles == T.tburst


class TestRelaxFlagPropagation:
    def test_ranks_inherit_relaxation(self):
        ch = Channel(T, num_ranks=2, relax_act_constraints=True)
        assert all(r.relax_act_constraints for r in ch.ranks)
        ch2 = Channel(T, num_ranks=2)
        assert not any(r.relax_act_constraints for r in ch2.ranks)
