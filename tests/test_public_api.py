"""Public API surface: the names README and examples rely on exist.

Guards the package boundary: downstream code imports these symbols, so
renames or dropped exports must fail loudly here rather than in user
code.
"""

import importlib

import pytest

TOP_LEVEL = [
    "ALL_WORKLOADS",
    "BASELINE",
    "BENCHMARKS",
    "DBI",
    "DBI_PRA",
    "ExperimentRunner",
    "FGA",
    "HALF_DRAM",
    "HALF_DRAM_PRA",
    "PRA",
    "PRAMask",
    "RowPolicy",
    "Scheme",
    "simulate",
    "SimResult",
    "System",
    "SystemConfig",
    "workload",
    "Workload",
]

SUBPACKAGE_EXPORTS = {
    "repro.core": ["PRA_DM", "SDSComparator", "covers", "merge", "popcount"],
    "repro.dram": ["AddressMapper", "Bank", "Channel", "DDR3_1600", "Rank"],
    "repro.dram.protocol": ["CommandRecord", "ProtocolChecker", "ProtocolViolation"],
    "repro.controller": ["ChannelController", "RequestQueue", "ROW_HIT_CAP"],
    "repro.cache": ["CacheHierarchy", "DirtyBlockIndex", "SetAssociativeCache"],
    "repro.cpu": ["Core", "TraceEvent", "weighted_speedup"],
    "repro.workloads": [
        "FileTraceWorkload",
        "PhasedGenerator",
        "TraceBlocks",
        "TraceGenerator",
        "compiled_trace",
        "load_trace",
        "save_trace",
    ],
    "repro.power": ["DDR3_1600_POWER", "PowerAccountant", "TABLE3_ACT_MW"],
    "repro.sim": [
        "EpochSampler",
        "SNAPSHOTS",
        "SnapshotCache",
        "Sweep",
        "validate_result",
    ],
    "repro.stats": ["LatencyHistogram", "format_table"],
}


def test_top_level_exports():
    repro = importlib.import_module("repro")
    for name in TOP_LEVEL:
        assert hasattr(repro, name), f"repro.{name} missing"
        assert name in repro.__all__, f"repro.{name} not in __all__"


@pytest.mark.parametrize("module_name", sorted(SUBPACKAGE_EXPORTS))
def test_subpackage_exports(module_name):
    module = importlib.import_module(module_name)
    for name in SUBPACKAGE_EXPORTS[module_name]:
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_cli_entry_point():
    from repro.cli import main

    assert callable(main)
