"""ECC (x72 DIMM) support: Section 4.2 behaviour.

The ECC chip's PRA pin is tied high, so it always performs full-row
activations and full bursts; PRA's savings therefore apply to the
eight data chips only, shrinking but not destroying the benefit.
"""

import pytest

from repro.controller.policies import RowPolicy
from repro.core.schemes import BASELINE, PRA
from repro.dram.timing import DDR3_1600
from repro.power.accounting import PowerAccountant
from repro.power.params import DDR3_1600_POWER
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.system import simulate
from repro.workloads.mixes import workload

T = DDR3_1600
P = DDR3_1600_POWER


class TestAccountantECC:
    def test_activation_adds_full_row_ecc_energy(self):
        plain = PowerAccountant(P, T, chips_per_rank=8)
        ecc = PowerAccountant(P, T, chips_per_rank=8, ecc_chips=1)
        plain.on_activate(1)
        ecc.on_activate(1)
        extra = ecc.energy_pj["act_pre"] - plain.energy_pj["act_pre"]
        assert extra == pytest.approx(P.act_power(8) * T.row_cycle_ns)

    def test_fractional_activation_ecc(self):
        ecc = PowerAccountant(P, T, chips_per_rank=8, ecc_chips=1)
        ecc.on_activate_fraction(0.125)
        expected = (
            P.act_power_fraction(0.125) * T.row_cycle_ns * 8
            + P.act_power(8) * T.row_cycle_ns
        )
        assert ecc.energy_pj["act_pre"] == pytest.approx(expected)

    def test_partial_write_keeps_full_ecc_io(self):
        plain = PowerAccountant(P, T, chips_per_rank=8)
        ecc = PowerAccountant(P, T, chips_per_rank=8, ecc_chips=1)
        plain.on_write_burst(0.125, other_ranks=1)
        ecc.on_write_burst(0.125, other_ranks=1)
        burst = T.cycles_to_ns(T.tburst)
        extra_io = (P.wr_odt_mw + P.wr_term_mw) * burst * P.io_scale
        assert ecc.energy_pj["wr_io"] - plain.energy_pj["wr_io"] == pytest.approx(
            extra_io
        )

    def test_background_and_refresh_count_ecc_chip(self):
        plain = PowerAccountant(P, T, chips_per_rank=8)
        ecc = PowerAccountant(P, T, chips_per_rank=8, ecc_chips=1)
        for acct in (plain, ecc):
            acct.on_refresh()
            acct.add_background({"pre_stby": 100})
        assert ecc.energy_pj["ref"] / plain.energy_pj["ref"] == pytest.approx(9 / 8)
        assert ecc.energy_pj["bg"] / plain.energy_pj["bg"] == pytest.approx(9 / 8)


class TestSystemECC:
    def _run(self, scheme, ecc_chips):
        config = SystemConfig(
            scheme=scheme,
            cache=CacheConfig(llc_bytes=256 * 1024),
            ecc_chips=ecc_chips,
        )
        return simulate(config, workload("GUPS"), 1000, warmup_events_per_core=4000)

    def test_ecc_shrinks_but_keeps_pra_savings(self):
        base_noecc = self._run(BASELINE, 0)
        pra_noecc = self._run(PRA, 0)
        base_ecc = self._run(BASELINE, 1)
        pra_ecc = self._run(PRA, 1)
        saving_noecc = 1 - pra_noecc.avg_power_mw / base_noecc.avg_power_mw
        saving_ecc = 1 - pra_ecc.avg_power_mw / base_ecc.avg_power_mw
        assert 0 < saving_ecc < saving_noecc

    def test_ecc_increases_absolute_power(self):
        noecc = self._run(BASELINE, 0)
        ecc = self._run(BASELINE, 1)
        assert ecc.avg_power_mw > noecc.avg_power_mw
