"""Epoch sampling and trace file I/O."""

import pytest

from repro.controller.policies import RowPolicy
from repro.core.schemes import BASELINE, PRA
from repro.cpu.trace import TraceEvent
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.sampling import EpochSampler
from repro.sim.system import System
from repro.workloads.mixes import workload
from repro.workloads.profiles import profile
from repro.workloads.synthetic import generate
from repro.workloads.trace_io import (
    FileTraceWorkload,
    iter_trace,
    load_trace,
    save_trace,
)


def small_system(scheme=BASELINE, **kwargs):
    config = SystemConfig(scheme=scheme, cache=CacheConfig(llc_bytes=256 * 1024))
    return System(config, workload("GUPS"), 1500, warmup_events_per_core=4000, **kwargs)


class TestEpochSampler:
    def test_samples_collected(self):
        sampler = EpochSampler(epoch_cycles=500)
        system = small_system(sampler=sampler)
        result = system.run()
        assert len(sampler.samples) >= 2
        assert sampler.samples[-1].cycle >= result.runtime_cycles - 1

    def test_energy_monotone_nondecreasing(self):
        sampler = EpochSampler(epoch_cycles=500)
        small_system(sampler=sampler).run()
        totals = [s.total_energy_pj for s in sampler.samples]
        assert all(b >= a for a, b in zip(totals, totals[1:]))

    def test_series_power_positive_and_consistent(self):
        sampler = EpochSampler(epoch_cycles=500)
        system = small_system(sampler=sampler)
        result = system.run()
        series = sampler.series(tck_ns=system.config.timing.tck_ns)
        assert series, "need at least one epoch"
        for epoch in series:
            assert epoch.total_power_mw >= 0
            assert epoch.end_cycle > epoch.start_cycle
        # Average of epoch powers ~ overall average power (same data).
        total_span = sum(e.end_cycle - e.start_cycle for e in series)
        weighted = sum(
            e.total_power_mw * (e.end_cycle - e.start_cycle) for e in series
        ) / total_span
        # Background accrual is flushed at the end, so epoch-summed
        # power underestimates until the final flush; allow slack.
        assert weighted <= result.avg_power_mw * 1.05

    def test_epoch_validation(self):
        with pytest.raises(ValueError):
            EpochSampler(epoch_cycles=0)


class TestTraceIO:
    def test_round_trip(self, tmp_path):
        events = generate(profile("lbm"), 300, seed=4)
        path = tmp_path / "lbm.trace"
        written = save_trace(events, path)
        assert written == 300
        back = load_trace(path)
        assert back == events

    def test_iter_matches_load(self, tmp_path):
        events = generate(profile("GUPS"), 50, seed=1)
        path = tmp_path / "g.trace"
        save_trace(events, path)
        assert list(iter_trace(path)) == load_trace(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not a trace\n1 2 03 0\n")
        with pytest.raises(ValueError, match="header"):
            load_trace(path)

    def test_bad_line_rejected(self, tmp_path):
        path = tmp_path / "bad2.trace"
        path.write_text("# repro-trace v1\n1 2\n")
        with pytest.raises(ValueError, match="line 2"):
            load_trace(path)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "c.trace"
        path.write_text("# repro-trace v1\n# comment\n\n3 77 00 0\n")
        events = load_trace(path)
        assert events == [TraceEvent(gap=3, line_addr=77)]


class TestFileTraceWorkload:
    def _write_traces(self, tmp_path, cores=2, events=400):
        paths = []
        for core in range(cores):
            events_list = generate(profile("GUPS"), events, seed=core, core_id=core)
            path = tmp_path / f"core{core}.trace"
            save_trace(events_list, path)
            paths.append(path)
        return paths

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FileTraceWorkload([tmp_path / "nope.trace"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FileTraceWorkload([])

    def test_as_workload_names(self, tmp_path):
        paths = self._write_traces(tmp_path)
        ftw = FileTraceWorkload(paths)
        wl = ftw.as_workload("custom")
        assert wl.name == "custom"
        assert wl.app_names == ("core0", "core1")

    def test_system_runs_on_file_traces(self, tmp_path):
        paths = self._write_traces(tmp_path, cores=2, events=3000)
        ftw = FileTraceWorkload(paths)
        config = SystemConfig(scheme=PRA, cache=CacheConfig(llc_bytes=128 * 1024))
        system = System(
            config,
            ftw.as_workload(),
            events_per_core=800,
            warmup_events_per_core=1500,
            trace_overrides=ftw.overrides(),
        )
        result = system.run()
        assert result.controller.total_served > 0
        assert all(c.retired_instructions > 0 for c in result.cores)

    def test_override_count_mismatch(self, tmp_path):
        paths = self._write_traces(tmp_path, cores=2)
        ftw = FileTraceWorkload(paths)
        config = SystemConfig(cache=CacheConfig(llc_bytes=128 * 1024))
        with pytest.raises(ValueError, match="per core"):
            System(
                config,
                ftw.as_workload(),
                events_per_core=100,
                trace_overrides=[ftw.events(0)],
            )
