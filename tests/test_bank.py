"""Bank FSM: DDR3 legality, partial-row state, false-hit classification."""

import pytest

from repro.dram.bank import ActivationWindow, Bank, BankStateError
from repro.dram.geometry import FULL_MASK
from repro.dram.timing import DDR3_1600

T = DDR3_1600


@pytest.fixture
def bank():
    return Bank(timing=T)


class TestActivate:
    def test_initially_closed(self, bank):
        assert not bank.is_open
        assert bank.can_activate(0)

    def test_activate_opens_row(self, bank):
        bank.activate(0, row=42)
        assert bank.is_open
        assert bank.open_row == 42
        assert bank.open_mask == FULL_MASK

    def test_full_activation_column_after_trcd(self, bank):
        bank.activate(0, row=1)
        assert not bank.can_column(T.trcd - 1)
        assert bank.can_column(T.trcd)

    def test_partial_activation_adds_one_cycle(self, bank):
        # Figure 7a: PRA delays the column command by tCK.
        bank.activate(0, row=1, mask=0b00000001)
        assert not bank.can_column(T.trcd)
        assert bank.can_column(T.trcd + 1)
        assert bank.open_mask == 0b00000001

    def test_activate_while_open_rejected(self, bank):
        bank.activate(0, row=1)
        with pytest.raises(BankStateError):
            bank.activate(T.trc + 1, row=2)

    def test_same_bank_act_to_act_respects_trc(self, bank):
        bank.activate(0, row=1)
        bank.precharge(T.tras)
        # act_ready = max(tRC from ACT, tRP from PRE) = tRC here.
        assert not bank.can_activate(T.trc - 1)
        assert bank.can_activate(T.trc)

    def test_zero_mask_rejected(self, bank):
        with pytest.raises(BankStateError):
            bank.activate(0, row=1, mask=0)


class TestPrecharge:
    def test_precharge_before_tras_rejected(self, bank):
        bank.activate(0, row=1)
        with pytest.raises(BankStateError):
            bank.precharge(T.tras - 1)

    def test_precharge_after_tras(self, bank):
        bank.activate(0, row=1)
        bank.precharge(T.tras)
        assert not bank.is_open

    def test_write_recovery_blocks_precharge(self, bank):
        bank.activate(0, row=1)
        wr_cycle = T.trcd
        burst_end = bank.write(wr_cycle)
        assert burst_end == wr_cycle + T.tcwl + T.tburst
        assert not bank.can_precharge(burst_end + T.twr - 1)
        assert bank.can_precharge(burst_end + T.twr)

    def test_read_to_precharge_trtp(self, bank):
        bank.activate(0, row=1)
        bank.read(T.trcd)
        earliest = max(T.tras, T.trcd + T.trtp)
        assert not bank.can_precharge(earliest - 1)
        assert bank.can_precharge(earliest)

    def test_precharge_closed_bank_rejected(self, bank):
        with pytest.raises(BankStateError):
            bank.precharge(100)


class TestColumnAccess:
    def test_read_returns_burst_end(self, bank):
        bank.activate(0, row=1)
        end = bank.read(T.trcd)
        assert end == T.trcd + T.tcas + T.tburst

    def test_ccd_between_columns(self, bank):
        bank.activate(0, row=1)
        bank.read(T.trcd)
        assert not bank.can_column(T.trcd + T.tccd - 1)
        assert bank.can_column(T.trcd + T.tccd)

    def test_column_on_closed_bank_rejected(self, bank):
        with pytest.raises(BankStateError):
            bank.read(100)

    def test_access_counter(self, bank):
        bank.activate(0, row=1)
        assert bank.open_row_accesses == 0
        bank.read(T.trcd)
        bank.read(T.trcd + T.tccd)
        assert bank.open_row_accesses == 2


class TestHitKind:
    def test_closed(self, bank):
        assert bank.hit_kind(1, FULL_MASK) == "closed"

    def test_hit_full(self, bank):
        bank.activate(0, row=1)
        assert bank.hit_kind(1, FULL_MASK) == "hit"

    def test_miss_other_row(self, bank):
        bank.activate(0, row=1)
        assert bank.hit_kind(2, FULL_MASK) == "miss"

    def test_false_hit_read_against_partial(self, bank):
        # Section 5.2.1: read to a partially opened row is a false hit.
        bank.activate(0, row=1, mask=0b11000000)
        assert bank.hit_kind(1, FULL_MASK) == "false"

    def test_false_hit_write_uncovered(self, bank):
        bank.activate(0, row=1, mask=0b10000001)
        assert bank.hit_kind(1, 0b00000010) == "false"

    def test_write_hit_covered_partial(self, bank):
        bank.activate(0, row=1, mask=0b10000001)
        assert bank.hit_kind(1, 0b00000001) == "hit"


class TestRefreshBlock:
    def test_refresh_requires_precharged(self, bank):
        bank.activate(0, row=1)
        with pytest.raises(BankStateError):
            bank.block_for_refresh(50)

    def test_refresh_blocks_activation(self, bank):
        bank.block_for_refresh(0)
        assert not bank.can_activate(T.trfc - 1)
        assert bank.can_activate(T.trfc)


class TestActivationWindow:
    def test_four_full_acts_fill_window(self):
        w = ActivationWindow(tfaw=24)
        for i in range(4):
            assert w.can_activate(i, 1.0)
            w.record(i, 1.0)
        assert not w.can_activate(4, 1.0)

    def test_window_expires(self):
        w = ActivationWindow(tfaw=24)
        for i in range(4):
            w.record(i, 1.0)
        assert w.can_activate(25, 1.0)

    def test_fractional_weights_relax_faw(self):
        # Section 4.1.3: partial activations relax tFAW.
        w = ActivationWindow(tfaw=24)
        for i in range(16):
            assert w.can_activate(i, 0.125), f"1/8 act #{i} should fit"
            w.record(i, 0.125)
        # 16 * 1/8 = 2.0 of 4.0 budget used; full act still fits.
        assert w.can_activate(16, 1.0)

    def test_next_allowed_after_full_window(self):
        w = ActivationWindow(tfaw=24)
        for i in range(4):
            w.record(i, 1.0)
        # Earliest slot: after the first entry leaves the window.
        assert w.next_allowed(4, 1.0) == 0 + 24 + 1

    def test_next_allowed_now_when_space(self):
        w = ActivationWindow(tfaw=24)
        assert w.next_allowed(7, 1.0) == 7


class TestWiden:
    """Incremental-activation ablation helper (not a paper operation)."""

    def test_widen_merges_mask_and_delays_column(self):
        bank = Bank(timing=T)
        bank.activate(0, row=1, mask=0b1)
        bank.widen(20, 0b10)
        assert bank.open_mask == 0b11
        assert not bank.can_column(20 + T.trcd - 1)
        assert bank.can_column(20 + T.trcd)

    def test_widen_closed_bank_rejected(self):
        bank = Bank(timing=T)
        with pytest.raises(BankStateError):
            bank.widen(5, 0b1)
