"""Power model: Eq. 1-2, Table 2, Table 3 and Figure 9 reproduction."""

import pytest

from repro.power.energy_model import (
    MATS_PER_SUBARRAY,
    ActivationEnergyModel,
    DieAreaModel,
    FGDOverheadModel,
)
from repro.power.idd import (
    activation_energy_pj,
    pure_activation_current_ma,
    pure_activation_power_mw,
)
from repro.power.params import DDR3_1600_POWER, TABLE3_ACT_MW, IDDValues, PowerParams


class TestEquations1And2:
    def test_reproduces_table3_full_row_power(self):
        # Eq. 1-2 with the baseline IDD values must give the 22.2 mW
        # full-row ACT power of Table 3.
        power = pure_activation_power_mw(IDDValues())
        assert power == pytest.approx(22.2, abs=0.1)

    def test_background_subtraction(self):
        idd = IDDValues()
        current = pure_activation_current_ma(idd)
        weighted_bg = (
            idd.idd3n * idd.tras_ns + idd.idd2n * (idd.trc_ns - idd.tras_ns)
        ) / idd.trc_ns
        assert current == pytest.approx(idd.idd0 - weighted_bg)

    def test_energy_per_activation(self):
        idd = IDDValues()
        assert activation_energy_pj(idd) == pytest.approx(
            pure_activation_power_mw(idd) * idd.trc_ns
        )

    def test_invalid_timing_rejected(self):
        with pytest.raises(ValueError):
            pure_activation_current_ma(IDDValues(tras_ns=50.0, trc_ns=40.0))


class TestTable3ActPowers:
    def test_exact_table3_values(self):
        expected = [22.2, 19.6, 16.9, 14.3, 11.6, 9.1, 6.4, 3.7]
        for granularity, value in zip(range(8, 0, -1), expected):
            assert DDR3_1600_POWER.act_power(granularity) == pytest.approx(value)

    def test_monotonic_in_granularity(self):
        p = DDR3_1600_POWER
        values = [p.act_power(g) for g in range(1, 9)]
        assert values == sorted(values)

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            DDR3_1600_POWER.act_power(0)
        with pytest.raises(ValueError):
            DDR3_1600_POWER.act_power(9)

    def test_fraction_interpolation_matches_grid(self):
        p = DDR3_1600_POWER
        for g in range(1, 9):
            assert p.act_power_fraction(g / 8) == pytest.approx(p.act_power(g))

    def test_fraction_below_one_eighth_extrapolates(self):
        p = DDR3_1600_POWER
        # Half-DRAM+PRA: half a MAT group => 1/16 of a row.
        val = p.act_power_fraction(1 / 16)
        assert 0 < val < p.act_power(1)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            DDR3_1600_POWER.act_power_fraction(0.0)
        with pytest.raises(ValueError):
            DDR3_1600_POWER.act_power_fraction(1.01)

    def test_other_power_params_match_table3(self):
        p = DDR3_1600_POWER
        assert p.pre_stby_mw == 27
        assert p.pre_pdn_mw == 18
        assert p.ref_mw == 210
        assert p.act_stby_mw == 42
        assert p.rd_mw == 78
        assert p.wr_mw == 93
        assert p.rd_io_mw == pytest.approx(4.6)
        assert p.wr_odt_mw == pytest.approx(21.2)
        assert p.rd_term_mw == pytest.approx(15.5)
        assert p.wr_term_mw == pytest.approx(15.4)


class TestTable2EnergyModel:
    def test_per_mat_energy(self):
        model = ActivationEnergyModel()
        assert model.per_mat_pj == pytest.approx(16.921, abs=1e-3)

    def test_full_row_energy(self):
        assert ActivationEnergyModel().full_row_pj == pytest.approx(288.752, abs=1e-3)

    def test_breakdown_sums_to_total(self):
        model = ActivationEnergyModel()
        assert sum(model.breakdown().values()) == pytest.approx(model.full_row_pj)

    def test_bitline_dominates(self):
        # "activation power is mainly consumed on the local bitlines".
        breakdown = ActivationEnergyModel().breakdown()
        assert breakdown["local_bitline"] > 0.8 * sum(
            v for k, v in breakdown.items() if k != "local_bitline"
        )


class TestFigure9Scaling:
    def test_energy_linear_in_mats(self):
        model = ActivationEnergyModel()
        diffs = [
            model.energy_pj(m + 1) - model.energy_pj(m)
            for m in range(1, MATS_PER_SUBARRAY)
        ]
        assert all(d == pytest.approx(model.per_mat_pj) for d in diffs)

    def test_half_mats_above_half_energy(self):
        # Fig. 9: halving MATs cannot halve energy (shared structures).
        model = ActivationEnergyModel()
        assert model.scaling_factor(8) > 0.5
        assert model.scaling_factor(8) == pytest.approx(0.531, abs=0.01)

    def test_scaling_factors_match_table3_ratios(self):
        # The paper projects these factors onto P_ACT to build Table 3.
        model = ActivationEnergyModel()
        full = TABLE3_ACT_MW[8]
        for g in range(1, 9):
            projected = full * model.scaling_factor(2 * g)
            assert projected == pytest.approx(TABLE3_ACT_MW[g], abs=0.5)

    def test_bounds_checked(self):
        model = ActivationEnergyModel()
        with pytest.raises(ValueError):
            model.energy_pj(0)
        with pytest.raises(ValueError):
            model.energy_pj(17)


class TestDieArea:
    def test_total_area_matches_table2(self):
        assert DieAreaModel().total_mm2 == pytest.approx(11.884, abs=1e-3)

    def test_pra_latch_overhead_small(self):
        # Section 4.2: PRA latches are a ~0.1% class overhead.
        overhead = DieAreaModel().pra_latch_overhead()
        assert 0 < overhead < 0.005

    def test_wordline_gate_overhead(self):
        assert DieAreaModel().wordline_gate_overhead() == pytest.approx(0.03)


class TestFGDOverheads:
    def test_paper_cacti_numbers(self):
        fgd = FGDOverheadModel()
        assert fgd.l1_area == pytest.approx(0.0031)
        assert fgd.l2_area == pytest.approx(0.0109)
        assert fgd.l1_leakage == pytest.approx(0.0126)
        assert fgd.l2_leakage == pytest.approx(0.0139)

    def test_extra_bits(self):
        assert FGDOverheadModel.extra_bits_per_line() == 7

    def test_storage_overhead_order_of_magnitude(self):
        frac = FGDOverheadModel.storage_overhead_fraction()
        assert 0.005 < frac < 0.02


class TestScaledParams:
    def test_scaled_act_row(self):
        model = ActivationEnergyModel()
        scaled = DDR3_1600_POWER.scaled(model.granularity_scaling())
        assert scaled.act_power(8) == pytest.approx(22.2)
        assert scaled.act_power(4) == pytest.approx(22.2 * model.scaling_factor(8))

    def test_scaled_requires_eight_factors(self):
        with pytest.raises(ValueError):
            DDR3_1600_POWER.scaled((0.5, 1.0))


class TestVoltageScaling:
    def test_ddr3l_reduces_power(self):
        low = DDR3_1600_POWER.at_voltage(1.35)
        ratio_dyn = (1.35 / 1.5) ** 2
        assert low.act_power(8) == pytest.approx(22.2 * ratio_dyn)
        assert low.rd_mw == pytest.approx(78 * ratio_dyn)
        assert low.pre_pdn_mw == pytest.approx(18 * 1.35 / 1.5)
        assert low.idd.vdd == pytest.approx(1.35)

    def test_identity_at_nominal(self):
        same = DDR3_1600_POWER.at_voltage(1.5)
        assert same.act_power(8) == pytest.approx(22.2)
        assert same.ref_mw == pytest.approx(210)

    def test_invalid_voltage(self):
        with pytest.raises(ValueError):
            DDR3_1600_POWER.at_voltage(0.0)

    def test_partial_ordering_preserved(self):
        low = DDR3_1600_POWER.at_voltage(1.35)
        values = [low.act_power(g) for g in range(1, 9)]
        assert values == sorted(values)
