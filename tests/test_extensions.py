"""Extensions beyond the paper's baseline: FCFS ablation, bank XOR hash."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.memctrl import ChannelController
from repro.controller.policies import RowPolicy
from repro.core.schemes import BASELINE
from repro.dram.channel import Channel
from repro.dram.commands import Address, ReqKind, Request
from repro.dram.geometry import SystemGeometry
from repro.dram.mapping import AddressMapper, Interleaving
from repro.dram.timing import DDR3_1600
from repro.power.accounting import PowerAccountant
from repro.power.params import DDR3_1600_POWER
from repro.sim.config import CacheConfig, ControllerConfig, SystemConfig
from repro.sim.system import simulate
from repro.workloads.mixes import workload

T = DDR3_1600


def make_controller(scheduler):
    channel = Channel(T, num_ranks=2)
    acct = PowerAccountant(DDR3_1600_POWER, T, chips_per_rank=8)
    return ChannelController(
        channel, BASELINE, T, RowPolicy.RELAXED_CLOSE, acct, scheduler=scheduler
    )


def req(row, col, bank=0):
    return Request(
        kind=ReqKind.READ,
        addr=Address(channel=0, rank=0, bank=bank, row=row, column=col),
        arrive_cycle=0,
    )


def drain(ctrl, max_cycles=100_000):
    cycle = 0
    while ctrl.pending and cycle < max_cycles:
        issued, hint = ctrl.step(cycle)
        cycle = cycle + 1 if issued else max(hint, cycle + 1)
    assert not ctrl.pending
    return cycle


class TestFCFSScheduler:
    def test_invalid_scheduler_rejected(self):
        with pytest.raises(ValueError):
            make_controller("priority")

    def test_frfcfs_reorders_for_hits(self):
        # Queue: [row5, row9, row5].  FR-FCFS serves the second row-5
        # request while row 5 is open; FCFS strictly follows order.
        ctrl = make_controller("frfcfs")
        for row, col in ((5, 0), (9, 0), (5, 1)):
            ctrl.enqueue(req(row, col))
        drain(ctrl)
        assert ctrl.stats.reads.row_hits == 1
        assert ctrl.stats.reads.activations == 2

    def test_fcfs_takes_no_hits_out_of_order(self):
        ctrl = make_controller("fcfs")
        for row, col in ((5, 0), (9, 0), (5, 1)):
            ctrl.enqueue(req(row, col))
        drain(ctrl)
        # Strict order: row5 -> row9 (conflict) -> row5 (conflict).
        assert ctrl.stats.reads.activations == 3
        assert ctrl.stats.reads.row_hits == 0

    def test_system_level_frfcfs_wins_on_locality(self):
        def run(sched):
            config = SystemConfig(
                cache=CacheConfig(llc_bytes=256 * 1024),
                controller=ControllerConfig(scheduler=sched),
            )
            return simulate(config, workload("libquantum"), 1200,
                            warmup_events_per_core=4000)

        frfcfs = run("frfcfs")
        fcfs = run("fcfs")
        assert frfcfs.controller.total_hit_rate >= fcfs.controller.total_hit_rate
        assert frfcfs.runtime_cycles <= fcfs.runtime_cycles * 1.05


class TestBankXORHash:
    plain = AddressMapper(SystemGeometry(), Interleaving.ROW)
    hashed = AddressMapper(SystemGeometry(), Interleaving.ROW, xor_bank_hash=True)

    @given(st.integers(min_value=0, max_value=plain.line_capacity - 1))
    @settings(max_examples=150)
    def test_roundtrip_preserved(self, line):
        addr = self.hashed.decode_line(line)
        assert self.hashed.encode_line(addr) == line

    def test_hash_changes_bank_not_row(self):
        for line in range(0, 1 << 20, 12345):
            a = self.plain.decode_line(line)
            b = self.hashed.decode_line(line)
            assert a.row == b.row
            assert a.channel == b.channel
            assert a.rank == b.rank
            assert b.bank == a.bank ^ (a.row % 8)

    def test_hash_spreads_row_strided_stream(self):
        # A stride that lands every access in bank 0 of a new row under
        # the plain map should touch many banks under the hash.
        geo = SystemGeometry()
        stride = geo.lines_per_row * geo.channels * geo.chip.banks * geo.ranks_per_channel
        plain_banks = {self.plain.decode_line(i * stride).bank for i in range(16)}
        hashed_banks = {self.hashed.decode_line(i * stride).bank for i in range(16)}
        assert len(plain_banks) == 1
        assert len(hashed_banks) == 8


class TestDMPinMaskDelivery:
    """Section 4.2 alternative: PRA mask over the DM pin."""

    def _run(self, scheme):
        from repro.workloads.mixes import workload as wl

        config = SystemConfig(scheme=scheme,
                              cache=CacheConfig(llc_bytes=256 * 1024))
        return simulate(config, wl("GUPS"), 1000, warmup_events_per_core=4000)

    def test_dm_variant_has_no_extra_trcd(self):
        from repro.core.schemes import PRA_DM
        from repro.dram.bank import Bank

        bank = Bank(timing=T)
        bank.activate(0, row=1, mask=0b1, mask_transfer_cycle=False)
        assert bank.can_column(T.trcd)  # no +1 cycle

    def test_dm_variant_saves_power_like_pra(self):
        from repro.core.schemes import PRA, PRA_DM

        pra = self._run(PRA)
        dm = self._run(PRA_DM)
        # Same activation/IO savings mechanism.
        ratio = dm.avg_power_mw / pra.avg_power_mw
        assert 0.9 < ratio < 1.1

    def test_dm_variant_costs_data_bus_occupancy(self):
        from repro.core.schemes import PRA, PRA_DM

        pra = self._run(PRA)
        dm = self._run(PRA_DM)
        # The mask bursts consume data-bus cycles; under write-heavy
        # GUPS that shows as equal-or-worse runtime.
        assert dm.runtime_cycles >= pra.runtime_cycles * 0.98

    def test_protocol_clean(self):
        from repro.core.schemes import PRA_DM
        from repro.dram.protocol import ProtocolChecker
        from repro.sim.system import System
        from repro.workloads.mixes import workload as wl

        config = SystemConfig(scheme=PRA_DM,
                              cache=CacheConfig(llc_bytes=256 * 1024))
        system = System(config, wl("GUPS"), 600, warmup_events_per_core=3000)
        for ctrl in system.controllers:
            ctrl.protocol_checker = ProtocolChecker(
                config.timing, relax_act_constraints=True)
        system.run()
