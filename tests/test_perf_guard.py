"""Perf-trajectory guard: baseline matching, thresholds, exit codes.

``benchmarks/check_perf_trajectory.py`` grades the fresh benchmark
snapshot against the last same-environment history record.  These
tests drive it on synthetic snapshots/histories in tmp_path: the
environment-fingerprint matching (a compiled-engine run must never be
graded against an interpreted baseline), the skip of the record the
current session itself appended, the 25% threshold, and the vacuous
pass when no baseline exists.
"""

import importlib.util
import json
import os

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GUARD_PATH = os.path.join(REPO_ROOT, "benchmarks", "check_perf_trajectory.py")

spec = importlib.util.spec_from_file_location("check_perf_trajectory", GUARD_PATH)
guard = importlib.util.module_from_spec(spec)
spec.loader.exec_module(guard)


def _snapshot(rates, fingerprint="fp-aaaa", engine="interpreted",
              rate_key="requests_per_second_best"):
    sections = {
        name: {rate_key: rate, "reps_used": 3}
        for name, rate in rates.items()
    }
    sections["_construction"] = {"cold_ms_best_of_3": 100.0}
    sections["_env"] = {"engine": engine, "fingerprint": fingerprint}
    return sections


def _record(rates, fingerprint="fp-aaaa", commit="c0ffee"):
    return {
        "commit": commit,
        "timestamp": "2026-08-08T00:00:00Z",
        "exitstatus": 0,
        "sections": _snapshot(rates, fingerprint=fingerprint),
    }


def _write(tmp_path, snapshot, records):
    snap = tmp_path / "BENCH_throughput.json"
    snap.write_text(json.dumps(snapshot))
    hist = tmp_path / "BENCH_history.jsonl"
    hist.write_text("".join(json.dumps(r) + "\n" for r in records))
    return snap, hist


def _run(tmp_path, snapshot, records, extra_args=()):
    snap, hist = _write(tmp_path, snapshot, records)
    return guard.main(
        ["--snapshot", str(snap), "--history", str(hist), *extra_args]
    )


# ----------------------------------------------------------------------
# Pure helpers.
# ----------------------------------------------------------------------
def test_scheme_rates_skips_harness_sections():
    rates = guard.scheme_rates(_snapshot({"PRA": 9000, "BASELINE": 11000}))
    assert rates == {"PRA": 9000.0, "BASELINE": 11000.0}


def test_scheme_rates_reads_legacy_key():
    """Pre-rename history records (best_of_3 key) still grade."""
    legacy = _snapshot(
        {"PRA": 9000}, rate_key="requests_per_second_best_of_3"
    )
    assert guard.scheme_rates(legacy) == {"PRA": 9000.0}


def test_legacy_baseline_grades_current_snapshot(tmp_path, capsys):
    """A current-key snapshot is compared against a legacy-key record."""
    legacy_record = {
        "commit": "old",
        "timestamp": "2026-08-01T00:00:00Z",
        "exitstatus": 0,
        "sections": _snapshot(
            {"PRA": 10000}, rate_key="requests_per_second_best_of_3"
        ),
    }
    code = _run(tmp_path, _snapshot({"PRA": 7000}), [legacy_record])
    assert code == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_find_baseline_matches_fingerprint_and_skips_current():
    current = _snapshot({"PRA": 9000})
    records = [
        _record({"PRA": 12000}, fingerprint="fp-aaaa", commit="old"),
        _record({"PRA": 50}, fingerprint="fp-OTHER", commit="alien"),
        {"commit": "self", "timestamp": "t", "exitstatus": 0,
         "sections": current},  # the record this very session appended
    ]
    baseline = guard.find_baseline(records, "fp-aaaa", current)
    assert baseline is not None and baseline["commit"] == "old"


def test_find_baseline_none_when_only_other_environments():
    current = _snapshot({"PRA": 9000})
    records = [_record({"PRA": 12000}, fingerprint="fp-OTHER")]
    assert guard.find_baseline(records, "fp-aaaa", current) is None


def test_compare_flags_only_beyond_threshold():
    failures, lines = guard.compare(
        {"PRA": 7000.0, "BASELINE": 10500.0, "NEW": 5000.0},
        {"PRA": 10000.0, "BASELINE": 11000.0},
        threshold_pct=25.0,
    )
    # PRA dropped 30% (fail); BASELINE 4.5% (ok); NEW has no baseline.
    assert failures == ["PRA"]
    assert any("no baseline entry" in line for line in lines)


# ----------------------------------------------------------------------
# End-to-end exit codes.
# ----------------------------------------------------------------------
def test_regression_fails(tmp_path, capsys):
    code = _run(
        tmp_path,
        _snapshot({"PRA": 7000}),
        [_record({"PRA": 10000})],
    )
    assert code == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_within_threshold_passes(tmp_path, capsys):
    code = _run(
        tmp_path,
        _snapshot({"PRA": 8000}),
        [_record({"PRA": 10000})],
        extra_args=["--threshold", "30"],
    )
    assert code == 0
    assert "perf-guard: ok" in capsys.readouterr().out


def test_improvement_passes(tmp_path):
    assert _run(
        tmp_path, _snapshot({"PRA": 15000}), [_record({"PRA": 10000})]
    ) == 0


def test_no_history_is_vacuous_pass(tmp_path, capsys):
    assert _run(tmp_path, _snapshot({"PRA": 9000}), []) == 0
    assert "vacuous pass" in capsys.readouterr().out


def test_other_environment_only_is_vacuous_pass(tmp_path, capsys):
    code = _run(
        tmp_path,
        _snapshot({"PRA": 100}),
        [_record({"PRA": 10000}, fingerprint="fp-OTHER")],
    )
    assert code == 0
    assert "vacuous pass" in capsys.readouterr().out


def test_missing_snapshot_passes(tmp_path):
    hist = tmp_path / "BENCH_history.jsonl"
    hist.write_text("")
    assert guard.main(
        ["--snapshot", str(tmp_path / "nope.json"), "--history", str(hist)]
    ) == 0


def test_threshold_env_override(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_PERF_REGRESSION_PCT", "50")
    # 30% drop: fails at the default 25, passes at the env-set 50.
    code = _run(tmp_path, _snapshot({"PRA": 7000}), [_record({"PRA": 10000})])
    assert code == 0


def test_corrupt_history_lines_are_skipped(tmp_path):
    snap = tmp_path / "BENCH_throughput.json"
    snap.write_text(json.dumps(_snapshot({"PRA": 9000})))
    hist = tmp_path / "BENCH_history.jsonl"
    hist.write_text(
        "not json\n" + json.dumps(_record({"PRA": 9100})) + "\n{\"a\": 1}\n"
    )
    assert guard.main(
        ["--snapshot", str(snap), "--history", str(hist)]
    ) == 0
