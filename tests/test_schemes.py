"""Scheme configurations: the Baseline/FGA/Half-DRAM/PRA matrix."""

import pytest

from repro.core.schemes import (
    ALL_SCHEMES,
    BASELINE,
    DBI,
    DBI_PRA,
    FGA,
    HALF_DRAM,
    HALF_DRAM_PRA,
    MAIN_SCHEMES,
    PRA,
    SDS,
    Scheme,
    by_name,
)


class TestBaseline:
    def test_full_everything(self):
        assert BASELINE.read_fraction == 1.0
        assert BASELINE.write_fraction == 1.0
        assert not BASELINE.write_uses_mask
        assert BASELINE.burst_multiplier == 1
        assert not BASELINE.relax_act_constraints
        assert not BASELINE.scale_write_io
        assert not BASELINE.dbi


class TestFGA:
    def test_half_activation_both_directions(self):
        assert FGA.read_fraction == 0.5
        assert FGA.write_fraction == 0.5

    def test_bandwidth_halved(self):
        # FGA breaks n-bit prefetch: double bus occupancy per line.
        assert FGA.burst_multiplier == 2

    def test_no_write_io_saving(self):
        assert not FGA.scale_write_io


class TestHalfDRAM:
    def test_half_activation_full_bandwidth(self):
        assert HALF_DRAM.read_fraction == 0.5
        assert HALF_DRAM.write_fraction == 0.5
        assert HALF_DRAM.burst_multiplier == 1

    def test_relaxed_timing(self):
        assert HALF_DRAM.relax_act_constraints


class TestPRA:
    def test_asymmetric_activation(self):
        # Reads: full row (bandwidth); writes: FGD-masked partial rows.
        assert PRA.read_fraction == 1.0
        assert PRA.write_uses_mask
        assert PRA.is_partial_write

    def test_write_io_scaling(self):
        assert PRA.scale_write_io

    def test_mask_extra_cycle(self):
        assert PRA.masked_act_extra_cycle

    def test_relaxed_timing(self):
        assert PRA.relax_act_constraints


class TestCombinations:
    def test_half_dram_pra(self):
        assert HALF_DRAM_PRA.read_fraction == 0.5
        assert HALF_DRAM_PRA.write_uses_mask
        assert HALF_DRAM_PRA.mask_scale == 0.5

    def test_dbi_variants(self):
        assert DBI.dbi and not DBI.write_uses_mask
        assert DBI_PRA.dbi and DBI_PRA.write_uses_mask

    def test_sds_isolates_write_io(self):
        # SDS drives only dirty words on write bursts but never masks
        # activations: no partial rows, no false hits, stock timing.
        assert SDS.scale_write_io
        assert not SDS.write_uses_mask
        assert SDS.read_fraction == 1.0
        assert SDS.write_fraction == 1.0
        assert not SDS.relax_act_constraints
        assert SDS.burst_multiplier == 1

    def test_with_dbi_builder(self):
        pra_dbi = PRA.with_dbi()
        assert pra_dbi.dbi
        assert pra_dbi.write_uses_mask
        assert pra_dbi.name == "PRA+DBI"
        assert not PRA.dbi  # original untouched


class TestRegistry:
    def test_main_schemes_order(self):
        assert [s.name for s in MAIN_SCHEMES] == [
            "Baseline",
            "FGA",
            "Half-DRAM",
            "PRA",
        ]

    def test_by_name_case_insensitive(self):
        assert by_name("pra") is PRA
        assert by_name("half-dram") is HALF_DRAM

    def test_by_name_unknown(self):
        with pytest.raises(KeyError):
            by_name("nonexistent")

    def test_all_schemes_complete(self):
        assert set(ALL_SCHEMES) == {
            "Baseline",
            "FGA",
            "Half-DRAM",
            "PRA",
            "Half-DRAM+PRA",
            "DBI",
            "DBI+PRA",
            "PRA-DM",
            "SDS",
        }


class TestValidation:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            Scheme(name="bad", read_fraction=0.0)
        with pytest.raises(ValueError):
            Scheme(name="bad", write_fraction=1.5)

    def test_burst_multiplier_bounds(self):
        with pytest.raises(ValueError):
            Scheme(name="bad", burst_multiplier=0)
