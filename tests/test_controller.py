"""Controller behaviour: FR-FCFS, PRA activation, false hits, drains, refresh."""

import pytest

from repro.controller.memctrl import ChannelController
from repro.controller.policies import RowPolicy
from repro.core.schemes import BASELINE, HALF_DRAM, PRA
from repro.dram.channel import Channel
from repro.dram.commands import Address, ReqKind, Request
from repro.dram.timing import DDR3_1600
from repro.power.accounting import PowerAccountant
from repro.power.params import DDR3_1600_POWER

T = DDR3_1600


def make_controller(scheme=BASELINE, policy=RowPolicy.RELAXED_CLOSE, **kwargs):
    channel = Channel(
        T,
        num_ranks=2,
        relax_act_constraints=scheme.relax_act_constraints,
        burst_cycles_multiplier=scheme.burst_multiplier,
    )
    acct = PowerAccountant(DDR3_1600_POWER, T, chips_per_rank=8)
    ctrl = ChannelController(channel, scheme, T, policy, acct, **kwargs)
    return ctrl, acct


def req(kind=ReqKind.READ, rank=0, bank=0, row=0, col=0, cycle=0, mask=0xFF):
    return Request(
        kind=kind,
        addr=Address(channel=0, rank=rank, bank=bank, row=row, column=col),
        arrive_cycle=cycle,
        dirty_mask=mask,
    )


def drain(ctrl, max_cycles=100_000):
    """Run the controller until idle; returns the last active cycle."""
    cycle = 0
    while ctrl.pending and cycle < max_cycles:
        issued, hint = ctrl.step(cycle)
        cycle = cycle + 1 if issued else max(hint, cycle + 1)
    assert not ctrl.pending, "controller failed to drain"
    return cycle


class TestBasicService:
    def test_single_read_latency(self):
        ctrl, acct = make_controller()
        r = req()
        assert ctrl.enqueue(r)
        drain(ctrl)
        # ACT at 0 (cmd), READ at tRCD, data at +tCAS+tBURST.
        assert r.complete_cycle == T.trcd + T.tcas + T.tburst
        assert ctrl.stats.reads.served == 1
        assert ctrl.stats.reads.activations == 1
        assert acct.read_bursts == 1

    def test_write_then_counts(self):
        ctrl, acct = make_controller()
        ctrl.enqueue(req(kind=ReqKind.WRITE, mask=0xFF))
        drain(ctrl)
        assert ctrl.stats.writes.served == 1
        assert acct.write_bursts == 1

    def test_row_hit_second_request(self):
        ctrl, _ = make_controller()
        a, b = req(row=5, col=0), req(row=5, col=1)
        ctrl.enqueue(a)
        ctrl.enqueue(b)
        drain(ctrl)
        assert ctrl.stats.reads.row_hits == 1
        assert ctrl.stats.reads.activations == 1

    def test_row_conflict_two_activations(self):
        ctrl, _ = make_controller()
        ctrl.enqueue(req(row=5))
        ctrl.enqueue(req(row=9))
        drain(ctrl)
        assert ctrl.stats.reads.activations == 2

    def test_row_hit_cap_forces_reactivation(self):
        ctrl, _ = make_controller(row_hit_cap=4)
        for col in range(6):
            ctrl.enqueue(req(row=5, col=col))
        drain(ctrl)
        # 6 same-row reads with a 4-access cap need 2 activations.
        assert ctrl.stats.reads.activations == 2

    def test_completed_reads_recorded(self):
        ctrl, _ = make_controller()
        r = req()
        ctrl.enqueue(r)
        drain(ctrl)
        assert [x[1] for x in ctrl.completed_reads] == [r]


class TestPRAActivation:
    def test_partial_write_activation_granularity(self):
        ctrl, acct = make_controller(scheme=PRA)
        ctrl.enqueue(req(kind=ReqKind.WRITE, mask=0b1))
        drain(ctrl)
        assert acct.activations_by_granularity[1] == 1
        assert acct.activations_by_granularity[8] == 0

    def test_mask_or_merging_across_queued_writes(self):
        # Section 5.2.1: queued same-row writes OR their masks.
        ctrl, acct = make_controller(scheme=PRA)
        ctrl.enqueue(req(kind=ReqKind.WRITE, row=5, col=0, mask=0b1))
        ctrl.enqueue(req(kind=ReqKind.WRITE, row=5, col=1, mask=0b10000000))
        drain(ctrl)
        # One activation at granularity 2 serving both writes.
        assert acct.activations_by_granularity[2] == 1
        assert ctrl.stats.writes.activations == 1
        assert ctrl.stats.writes.row_hits == 1

    def test_full_mask_write_is_normal_act(self):
        ctrl, acct = make_controller(scheme=PRA)
        ctrl.enqueue(req(kind=ReqKind.WRITE, mask=0xFF))
        drain(ctrl)
        assert acct.activations_by_granularity[8] == 1

    def test_reads_always_full_row(self):
        ctrl, acct = make_controller(scheme=PRA)
        ctrl.enqueue(req(kind=ReqKind.READ))
        drain(ctrl)
        assert acct.activations_by_granularity[8] == 1

    def test_write_false_hit_detected_and_recovered(self):
        ctrl, acct = make_controller(scheme=PRA)
        w1 = req(kind=ReqKind.WRITE, row=5, col=0, mask=0b1)
        ctrl.enqueue(w1)
        # Serve w1 so the row is open with mask 0b1.
        cycle = 0
        while ctrl.stats.writes.served < 1 and cycle < 10_000:
            issued, hint = ctrl.step(cycle)
            cycle = cycle + 1 if issued else max(hint, cycle + 1)
        bank = ctrl.channel.ranks[0].banks[0]
        if bank.open_row == 5:  # row still open (no other pending work)
            w2 = req(kind=ReqKind.WRITE, row=5, col=1, mask=0b10, cycle=cycle)
            ctrl.enqueue(w2)
            drain(ctrl)
            assert ctrl.stats.writes.false_hits == 1
            assert ctrl.stats.false_hit_reactivations == 1
            assert ctrl.stats.writes.activations == 2

    def test_pra_write_column_delayed_one_cycle(self):
        ctrl, _ = make_controller(scheme=PRA)
        w = req(kind=ReqKind.WRITE, mask=0b1)
        ctrl.enqueue(w)
        drain(ctrl)
        # Column write issued at tRCD+1 instead of tRCD.
        assert w.complete_cycle == T.trcd + 1

    def test_baseline_write_column_at_trcd(self):
        ctrl, _ = make_controller(scheme=BASELINE)
        w = req(kind=ReqKind.WRITE, mask=0b1)
        ctrl.enqueue(w)
        drain(ctrl)
        assert w.complete_cycle == T.trcd


class TestHalfDRAM:
    def test_half_fraction_charged(self):
        ctrl, acct = make_controller(scheme=HALF_DRAM)
        ctrl.enqueue(req(kind=ReqKind.READ))
        drain(ctrl)
        assert acct.activations_by_granularity[4] == 1

    def test_no_false_hits_possible(self):
        # Half-DRAM's vertical split still covers every column.
        ctrl, _ = make_controller(scheme=HALF_DRAM)
        ctrl.enqueue(req(kind=ReqKind.WRITE, row=5, col=0, mask=0b1))
        ctrl.enqueue(req(kind=ReqKind.READ, row=5, col=1))
        drain(ctrl)
        assert ctrl.stats.reads.false_hits == 0
        assert ctrl.stats.writes.false_hits == 0


class TestWriteDrain:
    def test_drain_triggers_at_high_watermark(self):
        ctrl, _ = make_controller(
            read_queue_size=64,
            write_queue_size=64,
            drain_high_watermark=8,
            drain_low_watermark=2,
        )
        for i in range(8):
            ctrl.enqueue(req(kind=ReqKind.WRITE, row=i, bank=i % 8))
        ctrl.step(0)
        assert ctrl.draining
        assert ctrl.stats.drain_entries == 1
        drain(ctrl)
        assert not ctrl.draining

    def test_reads_served_before_writes_below_watermark(self):
        ctrl, _ = make_controller()
        ctrl.enqueue(req(kind=ReqKind.WRITE, row=1))
        r = req(kind=ReqKind.READ, row=2, bank=1)
        ctrl.enqueue(r)
        # The first command should serve the read's path, not the write's.
        cycle = 0
        while ctrl.stats.reads.served == 0 and cycle < 10_000:
            issued, hint = ctrl.step(cycle)
            cycle = cycle + 1 if issued else max(hint, cycle + 1)
        assert ctrl.stats.reads.served == 1
        assert ctrl.stats.writes.served == 0


class TestRestrictedPolicy:
    def test_every_access_activates(self):
        ctrl, _ = make_controller(policy=RowPolicy.RESTRICTED_CLOSE)
        for col in range(4):
            ctrl.enqueue(req(row=5, col=col))
        drain(ctrl)
        assert ctrl.stats.reads.activations == 4
        assert ctrl.stats.reads.row_hits == 0


class TestRefresh:
    def test_refresh_issued_on_schedule(self):
        ctrl, acct = make_controller()
        cycle = 0
        # Idle-run past several tREFI periods.
        while cycle < 3 * T.trefi + 100:
            issued, hint = ctrl.step(cycle)
            cycle = cycle + 1 if issued else max(hint, cycle + 1)
        # 2 ranks x 3 refresh periods.
        assert ctrl.stats.refreshes >= 4
        assert acct.refreshes == ctrl.stats.refreshes


class TestOverflow:
    def test_submit_spills_and_drains(self):
        ctrl, _ = make_controller(read_queue_size=2)
        reqs = [req(row=i, bank=i % 8) for i in range(5)]
        for r in reqs:
            ctrl.submit(r)
        assert len(ctrl.overflow) == 3
        assert ctrl.pending == 5
        drain(ctrl)
        assert ctrl.stats.reads.served == 5

    def test_queue_full_enqueue_returns_false(self):
        ctrl, _ = make_controller(read_queue_size=1)
        assert ctrl.enqueue(req(row=1))
        assert not ctrl.enqueue(req(row=2))


class TestPowerDown:
    def test_idle_rank_enters_power_down(self):
        ctrl, _ = make_controller()
        ctrl.enqueue(req())
        drain(ctrl)
        # Idle-run (including pending refreshes) until both ranks sleep.
        cycle = 10_000
        for _ in range(50):
            issued, hint = ctrl.step(cycle)
            cycle = cycle + 1 if issued else max(hint, cycle + 1)
            if all(r.powered_down for r in ctrl.channel.ranks):
                break
        assert ctrl.stats.power_down_entries >= 2
        assert all(r.powered_down for r in ctrl.channel.ranks)

    def test_open_page_policy_never_powers_down(self):
        ctrl, _ = make_controller(policy=RowPolicy.OPEN_PAGE)
        ctrl.enqueue(req())
        drain(ctrl)
        ctrl.step(5000)
        assert ctrl.stats.power_down_entries == 0
        # Open-page also leaves the row open.
        assert ctrl.channel.ranks[0].banks[0].is_open
