"""Request/Address value types."""

import pytest

from repro.dram.commands import Address, Command, ReqKind, Request
from repro.dram.geometry import FULL_MASK


def addr(**kwargs):
    defaults = dict(channel=0, rank=0, bank=0, row=0, column=0)
    defaults.update(kwargs)
    return Address(**defaults)


class TestAddress:
    def test_same_row(self):
        a = addr(row=5, column=1)
        b = addr(row=5, column=9)
        c = addr(row=6, column=1)
        assert a.same_row(b)
        assert not a.same_row(c)

    def test_same_row_requires_same_bank(self):
        a = addr(row=5)
        b = addr(row=5, bank=1)
        assert not a.same_row(b)

    def test_bank_key(self):
        assert addr(channel=1, rank=0, bank=3).bank_key == (1, 0, 3)


class TestRequest:
    def test_read_forces_full_mask(self):
        r = Request(kind=ReqKind.READ, addr=addr(), arrive_cycle=0, dirty_mask=0b1)
        assert r.dirty_mask == FULL_MASK
        assert r.is_read and not r.is_write

    def test_write_keeps_mask(self):
        w = Request(kind=ReqKind.WRITE, addr=addr(), arrive_cycle=0, dirty_mask=0b101)
        assert w.dirty_mask == 0b101
        assert w.is_write

    def test_write_zero_mask_rejected(self):
        with pytest.raises(ValueError):
            Request(kind=ReqKind.WRITE, addr=addr(), arrive_cycle=0, dirty_mask=0)

    def test_oversized_mask_rejected(self):
        with pytest.raises(ValueError):
            Request(kind=ReqKind.WRITE, addr=addr(), arrive_cycle=0, dirty_mask=0x100)

    def test_unique_ids(self):
        a = Request(kind=ReqKind.READ, addr=addr(), arrive_cycle=0)
        b = Request(kind=ReqKind.READ, addr=addr(), arrive_cycle=0)
        assert a.req_id != b.req_id


class TestCommandEnum:
    def test_pra_act_exists(self):
        # The paper adds one new command to the decoder.
        assert Command.PRA_ACT.value == "PRA_ACT"
        assert {c.name for c in Command} == {
            "ACT",
            "PRA_ACT",
            "READ",
            "WRITE",
            "PRE",
            "REFRESH",
        }
