"""Property-based tests: random command sequences never violate DDR3 rules.

A random but legality-respecting driver exercises Bank/Rank through the
public ``can_*`` predicates; the device must never raise
``BankStateError`` for commands its predicates approved, and protocol
invariants must hold at every step.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.bank import BankStateError
from repro.dram.rank import Rank
from repro.dram.timing import DDR3_1600

T = DDR3_1600

# A program is a list of (action, bank, row) choices; time advances by
# a small random stride between attempts.
actions = st.lists(
    st.tuples(
        st.sampled_from(["act", "read", "write", "pre", "tick"]),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=1, max_value=8),  # granularity eighths
        st.integers(min_value=0, max_value=6),  # time stride
    ),
    min_size=1,
    max_size=120,
)


@given(actions, st.booleans())
@settings(max_examples=120, deadline=None)
def test_random_programs_respect_protocol(program, relaxed):
    rank = Rank(T, num_banks=8, relax_act_constraints=relaxed)
    cycle = 0
    open_rows = {}
    for action, bank_idx, row, gran, stride in program:
        cycle += stride
        bank = rank.banks[bank_idx]
        if action == "tick":
            rank.accrue_background(cycle)
            continue
        try:
            if action == "act" and rank.can_activate(cycle, bank_idx, gran):
                mask = (1 << gran) - 1
                bank.activate(cycle, row, mask)
                rank.record_activate(cycle, gran)
                open_rows[bank_idx] = row
            elif action == "read" and rank.can_read(cycle, bank_idx):
                end = bank.read(cycle)
                rank.record_read(cycle)
                assert end > cycle
            elif action == "write" and rank.can_write(cycle, bank_idx):
                end = bank.write(cycle)
                rank.record_write(cycle, end)
                assert end > cycle
            elif action == "pre" and bank.can_precharge(cycle):
                bank.precharge(cycle)
                open_rows.pop(bank_idx, None)
        except BankStateError as exc:  # pragma: no cover - must not happen
            pytest.fail(f"approved command raised: {exc}")

        # Invariants after every step.
        assert rank.faw.weight_in_window(cycle) <= rank.faw.budget + 1e-9
        for b_idx, b in enumerate(rank.banks):
            if b.is_open:
                assert b.open_mask > 0
                if b_idx in open_rows:
                    assert b.open_row == open_rows[b_idx]


@given(actions)
@settings(max_examples=60, deadline=None)
def test_earliest_activate_is_sound(program):
    """earliest_activate never returns a time at which ACT is illegal."""
    rank = Rank(T, num_banks=8, relax_act_constraints=True)
    cycle = 0
    for action, bank_idx, row, gran, stride in program:
        cycle += stride
        if action != "act":
            continue
        est = rank.earliest_activate(cycle, bank_idx, gran)
        bank = rank.banks[bank_idx]
        if bank.is_open:
            continue  # bank-level openness is outside this predicate
        assert rank.can_activate(est, bank_idx, gran), (
            f"earliest_activate={est} but can_activate is False"
        )
        bank.activate(est, row, (1 << gran) - 1)
        rank.record_activate(est, gran)
        cycle = est
