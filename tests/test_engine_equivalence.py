"""Event engine vs. strict-polling oracle: bit-identical results.

``System.run`` drives the simulation off a min-heap of controller
next-wake cycles (the hint contract); ``strict_polling=True`` selects
the reference loop that re-scans every channel each iteration.  The two
must agree *exactly* — same served counts, same runtime cycles, same
energy — on every scheme/workload/seed.  Any divergence means a hint
was later than a true ready cycle (a scheduling event was skipped).

The parallel sweep/runner engines carry the same obligation: a worker
pool must reproduce the serial rows bit for bit.  So does the front-end
fast path: precompiled trace blocks and warm-state snapshot restore
must yield results bit-identical to per-event generation plus replayed
warmup.

Both loops drive the same hot-path modules — the FR-FCFS controller
(``repro.controller.memctrl``), the array-backed cache
(``repro.cache.set_assoc``), the SoA timing core and the rank views —
so these tests double as the oracle pin for those modules' fast paths
(their ``ORACLE_TESTS`` declarations name this file).  The engine
*build* dimension (mypyc-compiled vs interpreted sources) is pinned
separately by the golden digests in ``tests/test_engine_identity.py``.
"""

import pytest

from repro.controller.policies import RowPolicy
from repro.core.schemes import BASELINE, DBI_PRA, PRA, SDS
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.runner import ExperimentRunner
from repro.sim.snapshot import SNAPSHOTS
from repro.sim.sweep import Sweep
from repro.sim.system import System
from repro.workloads.mixes import workload

EVENTS = 600
WARMUP = 2000


def _build(scheme, workload_name, seed, **kwargs):
    config = SystemConfig(scheme=scheme, cache=CacheConfig(llc_bytes=256 * 1024))
    return System(
        config,
        workload(workload_name),
        EVENTS,
        seed=seed,
        warmup_events_per_core=WARMUP,
        **kwargs,
    )


def _fingerprint(result):
    """Everything a run reports, for bit-identity comparisons."""
    return (
        result.summary(),
        result.runtime_cycles,
        result.controller.total_served,
        [c.ipc for c in result.cores],
    )


@pytest.mark.parametrize("scheme", [BASELINE, PRA], ids=lambda s: s.name)
@pytest.mark.parametrize("workload_name", ["GUPS", "MIX2"])
@pytest.mark.parametrize("seed", [1, 42])
def test_event_engine_matches_polling_oracle(scheme, workload_name, seed):
    event = _build(scheme, workload_name, seed).run()
    polled = _build(scheme, workload_name, seed).run(strict_polling=True)
    assert event.summary() == polled.summary()
    assert event.controller.total_served == polled.controller.total_served
    assert event.runtime_cycles == polled.runtime_cycles
    assert [c.ipc for c in event.cores] == [c.ipc for c in polled.cores]


@pytest.mark.parametrize("seed", [1, 7])
def test_streak_heavy_workload_matches_polling_oracle(seed):
    """Burst-streak commits must be invisible to the oracle.

    libquantum's sequential read stream (mean run length 96 lines)
    piles row hits onto every open row, so the event engine serves
    nearly everything through multi-command streaks.  The strict
    polling loop must still see identical results: a streak is only a
    batched commit of commands the per-cycle scheduler would have
    issued at exactly the same cycles.
    """
    event = _build(PRA, "libquantum", seed).run()
    polled = _build(PRA, "libquantum", seed).run(strict_polling=True)
    assert event.summary() == polled.summary()
    assert event.runtime_cycles == polled.runtime_cycles
    stats = event.controller
    # The workload actually exercised the streak path.
    assert stats.streaks > 0
    assert stats.streak_commands >= 2 * stats.streaks
    assert stats.streak_commands == polled.controller.streak_commands


def test_polling_flag_keyword_only():
    """The oracle path is opt-in and must not swallow ``max_cycles``."""
    system = _build(BASELINE, "GUPS", 1)
    with pytest.raises(TypeError):
        system.run(None, True)  # noqa: intentional positional misuse


def _grid():
    sweep = Sweep(events_per_core=300, warmup_events_per_core=1000)
    sweep.add_axis("scheme", ["Baseline", "PRA"])
    sweep.add_axis("workload", ["GUPS", "MIX1"])
    return sweep


def test_parallel_sweep_matches_serial():
    serial = _grid().run()
    parallel = _grid().run(workers=2)
    assert parallel == serial


def test_run_many_parallel_matches_serial_and_dedups():
    specs = [
        ("MIX1", PRA, RowPolicy.RELAXED_CLOSE),
        ("MIX1", BASELINE, RowPolicy.RELAXED_CLOSE),
        ("MIX1", PRA, RowPolicy.RELAXED_CLOSE),  # duplicate spec
    ]
    serial = ExperimentRunner(
        events_per_core=300, warmup_events_per_core=1000
    ).run_many(specs)
    runner = ExperimentRunner(events_per_core=300, warmup_events_per_core=1000)
    parallel = runner.run_many(specs, workers=2)
    assert [r.summary() for r in parallel] == [r.summary() for r in serial]
    # The duplicate resolved to the same cached object, simulated once.
    assert parallel[0] is parallel[2]
    assert len(runner._results) == 2


@pytest.mark.parametrize(
    "scheme", [BASELINE, PRA, SDS, DBI_PRA], ids=lambda s: s.name
)
def test_fast_path_matches_reference_path(scheme):
    """Precompiled blocks + block warmup == iterators + replayed warmup.

    The reference path is exactly the pre-fast-path construction:
    per-event ``TraceGenerator`` iterators and ``_warm_caches``.
    DBI+PRA covers the DBI mirror inside ``warm_block`` (victim
    companions cleaned through the registry during warmup).
    """
    fast = _build(scheme, "MIX2", 1, use_snapshots=False).run()
    reference = _build(
        scheme, "MIX2", 1, precompiled_traces=False, use_snapshots=False
    ).run()
    assert _fingerprint(fast) == _fingerprint(reference)


@pytest.mark.parametrize("scheme", [BASELINE, PRA, SDS], ids=lambda s: s.name)
@pytest.mark.parametrize("workload_name", ["GUPS", "MIX2"])
def test_snapshot_restore_matches_cold_warmup(scheme, workload_name):
    """Snapshot-restored runs are bit-identical to cold-warmup runs."""
    SNAPSHOTS.clear()
    cold = _build(scheme, workload_name, 1, use_snapshots=False).run()
    # Prime the snapshot cache, then build again: the second build must
    # restore instead of warming, and produce identical results.
    _build(scheme, workload_name, 1)
    restored_system = _build(scheme, workload_name, 1)
    assert restored_system.snapshot_restored
    assert _fingerprint(restored_system.run()) == _fingerprint(cold)


def test_schemes_share_warm_snapshot_unless_dbi():
    """Baseline and PRA share one fingerprint; DBI schemes get their own.

    Warm state only depends on the cache front end, so schemes that
    differ purely in DRAM behaviour must hit the same snapshot — that
    sharing is where the sweep speedup comes from.  A DBI scheme warms
    extra state (the dirty-row registry), so it must *not* share.
    """
    SNAPSHOTS.clear()
    _build(BASELINE, "GUPS", 1)
    assert SNAPSHOTS.misses == 1
    pra = _build(PRA, "GUPS", 1)
    assert pra.snapshot_restored
    assert SNAPSHOTS.hits == 1
    dbi = _build(DBI_PRA, "GUPS", 1)
    assert not dbi.snapshot_restored
    assert len(SNAPSHOTS) == 2


def test_snapshot_disk_layer_round_trip(tmp_path):
    """A second process (simulated by a cleared cache) restores from disk."""
    disk = str(tmp_path / "snaps")
    SNAPSHOTS.clear()
    cold = _build(PRA, "GUPS", 3, use_snapshots=False).run()
    _build(PRA, "GUPS", 3, snapshot_dir=disk)  # writes the snapshot
    SNAPSHOTS.clear()  # forget the memory layer, as a fresh worker would
    restored_system = _build(PRA, "GUPS", 3, snapshot_dir=disk)
    assert restored_system.snapshot_restored
    assert _fingerprint(restored_system.run()) == _fingerprint(cold)


def test_parallel_sweep_with_disk_snapshots_matches_serial(tmp_path):
    """Worker processes reusing disk snapshots keep rows bit-identical."""
    serial = _grid().run()
    sweep = _grid()
    sweep.snapshot_dir = str(tmp_path / "snaps")
    assert sweep.run(workers=2) == serial


def test_timing_core_arrays_mirror_bank_rank_views():
    """The SoA fast path and the Bank/Rank object oracle are one state.

    ``repro.dram.soa.TimingCore`` declares the Bank/Rank views as its
    oracle twin (``ORACLE_TWIN``); driving state changes through the
    object API must be observable, bit for bit, in the flat arrays the
    scheduler reads — and vice versa.
    """
    from repro.dram.channel import Channel
    from repro.dram.geometry import FULL_MASK
    from repro.dram.soa import TimingCore
    from repro.dram.timing import DDR3_1600

    channel = Channel(DDR3_1600, num_ranks=2, num_banks=8)
    core = channel.core
    assert isinstance(core, TimingCore)
    rank = channel.ranks[1]
    bank = rank.banks[3]
    g = 1 * core.num_banks + 3

    # Object-API activation lands in the arrays.
    bank.activate(100, row=42, mask=0x0F)
    assert core.open_row[g] == 42
    assert core.open_mask[g] == 0x0F
    assert core.last_act[g] == 100
    assert core.open_bits[1] == 1 << 3
    assert core.col_ready[g] == 100 + DDR3_1600.trcd + DDR3_1600.pra_extra
    assert core.act_ready[g] == 100 + DDR3_1600.trc

    # ... and the view properties read the very same cells back.
    assert bank.open_row == 42
    assert bank.open_mask == 0x0F
    assert bank.col_ready == core.col_ready[g]

    # Column + precharge round-trip keeps arrays and views coherent.
    bank.read(bank.col_ready)
    assert core.accesses[g] == 1
    bank.precharge(bank.pre_ready)
    assert core.open_row[g] == -1
    assert core.open_mask[g] == FULL_MASK
    assert core.open_bits[1] == 0
    assert bank.open_row is None

    # Array-side writes surface through the views (the scheduler's
    # direction): no shadow copies anywhere.
    core.next_act_ok[1] = 777
    assert rank.next_act_ok == 777
    core.open_row[g] = 9
    assert bank.open_row == 9
