"""Trace-driven core model: pacing, MLP/ROB blocking, IPC."""

import pytest

from repro.cpu.core_model import NEVER, Core
from repro.cpu.trace import TraceEvent, materialize, total_instructions


def make_core(events, **kwargs):
    defaults = dict(
        cpu_per_mem_clock=4.0,
        nonmem_cpi=0.5,
        max_outstanding_misses=2,
        rob_instructions=64,
    )
    defaults.update(kwargs)
    return Core(core_id=0, trace=iter(events), **defaults)


class TestPacing:
    def test_gap_delays_issue(self):
        # gap=80 at CPI 0.5 = 40 CPU cycles = 10 memory cycles.
        core = make_core([TraceEvent(gap=80, line_addr=1)])
        assert core.try_advance(5) is None
        assert core.next_action_cycle(0) == 10
        event = core.try_advance(10)
        assert event is not None
        assert core.retired == 81

    def test_zero_gap_issues_immediately(self):
        core = make_core([TraceEvent(gap=0, line_addr=1)])
        assert core.try_advance(0) is not None

    def test_done_after_trace(self):
        core = make_core([TraceEvent(gap=0, line_addr=1)])
        core.try_advance(0)
        assert core.done
        assert core.finish_cycle == 0
        assert core.next_action_cycle(5) == NEVER


class TestBlocking:
    def test_mlp_limit_blocks(self):
        events = [TraceEvent(gap=0, line_addr=i) for i in range(3)]
        core = make_core(events, max_outstanding_misses=2)
        for i in range(2):
            ev = core.try_advance(0)
            assert ev is not None
            core.note_demand_miss(req_id=i)
        assert core.try_advance(0) is None  # MLP exhausted
        assert core.next_action_cycle(0) == NEVER
        core.on_fill_complete(0, cycle=100)
        assert core.try_advance(100) is not None

    def test_rob_limit_blocks(self):
        events = [TraceEvent(gap=30, line_addr=i) for i in range(5)]
        core = make_core(events, max_outstanding_misses=8, rob_instructions=64)
        ev = core.try_advance(100)
        assert ev is not None
        core.note_demand_miss(req_id=0)
        # Keep retiring until the ROB window past the miss is full.
        issued = 1
        cycle = 100
        while core.try_advance(cycle) is not None:
            issued += 1
            cycle += 10
        # 64-instruction ROB / 31 instructions per event ~= 2 events.
        assert issued <= 3
        core.on_fill_complete(0, cycle=cycle + 50)
        assert core.next_action_cycle(cycle + 50) != NEVER

    def test_fill_unblocks_at_completion_time(self):
        core = make_core([TraceEvent(gap=0, line_addr=0), TraceEvent(gap=0, line_addr=1)],
                         max_outstanding_misses=1)
        core.try_advance(0)
        core.note_demand_miss(0)
        assert core.try_advance(50) is None
        core.on_fill_complete(0, cycle=60)
        # Resumes from the completion time, not earlier.
        assert core.next_action_cycle(0) >= 60

    def test_unknown_fill_rejected(self):
        core = make_core([TraceEvent(gap=0, line_addr=0)])
        with pytest.raises(KeyError):
            core.on_fill_complete(42, cycle=10)

    def test_mlp_overflow_guarded(self):
        core = make_core([TraceEvent(gap=0, line_addr=i) for i in range(4)],
                         max_outstanding_misses=1)
        core.try_advance(0)
        core.note_demand_miss(0)
        with pytest.raises(RuntimeError):
            core.note_demand_miss(1)


class TestIPC:
    def test_ipc_counts_cpu_cycles(self):
        core = make_core([TraceEvent(gap=39, line_addr=0)])
        core.try_advance(10)
        # 40 instructions retired by memory cycle 10 = 40 CPU cycles.
        assert core.ipc(10) == pytest.approx(1.0)

    def test_ipc_zero_before_start(self):
        core = make_core([TraceEvent(gap=0, line_addr=0)])
        assert core.ipc(0) == 0.0

    def test_stall_until(self):
        core = make_core([TraceEvent(gap=0, line_addr=0)])
        core.stall_until(25)
        assert core.try_advance(10) is None
        assert core.try_advance(25) is not None


class TestTraceHelpers:
    def test_materialize_limits(self):
        events = (TraceEvent(gap=0, line_addr=i) for i in range(100))
        assert len(materialize(events, 7)) == 7

    def test_total_instructions(self):
        events = [TraceEvent(gap=3, line_addr=0), TraceEvent(gap=0, line_addr=1)]
        assert total_instructions(events) == 5

    def test_event_validation(self):
        with pytest.raises(ValueError):
            TraceEvent(gap=-1, line_addr=0)
        with pytest.raises(ValueError):
            TraceEvent(gap=0, line_addr=-1)
        with pytest.raises(ValueError):
            TraceEvent(gap=0, line_addr=0, write_mask=0x1FF)

    def test_store_flag(self):
        assert TraceEvent(gap=0, line_addr=0, write_mask=1).is_store
        assert not TraceEvent(gap=0, line_addr=0).is_store
