"""CMP metrics: weighted speedup (Eq. 3), normalization, EDP."""

import pytest

from repro.cpu.metrics import (
    energy_delay_product,
    normalized_performance,
    weighted_speedup,
)
from repro.sim.runner import arithmetic_mean, geometric_mean


class TestWeightedSpeedup:
    def test_equation3(self):
        ws = weighted_speedup([1.0, 2.0], [2.0, 2.0])
        assert ws == pytest.approx(0.5 + 1.0)

    def test_no_slowdown_gives_core_count(self):
        assert weighted_speedup([1.5] * 4, [1.5] * 4) == pytest.approx(4.0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([], [])

    def test_zero_alone_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [0.0])


class TestNormalization:
    def test_normalized_performance(self):
        assert normalized_performance(3.8, 4.0) == pytest.approx(0.95)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalized_performance(1.0, 0.0)


class TestEDP:
    def test_product(self):
        assert energy_delay_product(2.0, 3.0) == 6.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            energy_delay_product(-1.0, 1.0)


class TestMeans:
    def test_arithmetic(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0

    def test_geometric(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            arithmetic_mean([])
        with pytest.raises(ValueError):
            geometric_mean([])
