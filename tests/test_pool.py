"""Oracle-parity and lifecycle tests for the persistent sim pool.

``repro.sim.pool`` is a registered fast path: running a batch through
:class:`SimPool` must be bit-identical — values *and* row order — to
mapping the same task function serially in-process (the oracle twin).
These tests pin that across schemes (including DBI variants and the
on-disk snapshot layer), plus the pool's failure and lifecycle
contracts: a dead worker raises instead of hanging, task exceptions
carry the remote traceback, and one pool serves many batches.
"""

import os

import pytest

from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.pool import (
    SimPool,
    SimPoolBrokenError,
    SimPoolError,
    SimPoolTaskError,
    close_shared_pool,
    shared_pool,
)
from repro.sim.runner import ExperimentRunner
from repro.sim.snapshot import SNAPSHOTS
from repro.sim.sweep import Sweep, _run_point
from repro.controller.policies import RowPolicy
from repro.core.schemes import BASELINE, DBI_PRA, PRA


SMALL_CACHE = CacheConfig(llc_bytes=128 * 1024)


def _small_sweep(snapshot_dir=None):
    sweep = Sweep(
        events_per_core=400,
        base_config=SystemConfig(cache=SMALL_CACHE),
        warmup_events_per_core=1200,
        snapshot_dir=snapshot_dir,
    )
    sweep.add_axis("scheme", ["Baseline", "PRA", "SDS", "DBI+PRA"])
    sweep.add_axis("workload", ["GUPS", "MIX1"])
    return sweep


# ----------------------------------------------------------------------
# Module-level task bodies (pickled by reference into the workers).
def _square(shared, payload):
    return shared["scale"] * payload * payload


def _boom(shared, payload):
    raise ValueError(f"payload {payload} rejected")


def _die(shared, payload):
    os._exit(3)


def _die_once(shared, payload):
    # Kill the hosting worker the first time each payload is seen
    # (marker file = cross-process memory), succeed on resubmission.
    marker = os.path.join(shared["dir"], f"died_{payload}")
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("x")
        os._exit(7)
    return payload * 10


def _echo(shared, payload):
    return (shared, payload)


# ----------------------------------------------------------------------
class TestOracleParity:
    def test_sweep_pooled_identical_to_serial(self):
        serial = _small_sweep().run()
        with SimPool(workers=2) as pool:
            pooled = _small_sweep().run(pool=pool)
        assert pooled == serial  # values AND ordering

    def test_sweep_pooled_identical_with_snapshot_dir(self, tmp_path):
        snap = str(tmp_path / "snaps")
        # Drop in-memory warm state so the disk layer actually engages
        # (the fingerprint is snapshot-dir-agnostic, so a hit from an
        # earlier test would skip the write).
        SNAPSHOTS.clear()
        serial = _small_sweep(snapshot_dir=snap).run()
        with SimPool(workers=2) as pool:
            pooled = _small_sweep(snapshot_dir=snap).run(pool=pool)
            again = _small_sweep(snapshot_dir=snap).run(pool=pool)
        assert pooled == serial
        assert again == serial  # disk-restored warm state, same rows
        assert os.listdir(snap)  # the round-trip actually hit the disk

    def test_runner_pooled_identical_to_serial(self):
        def drive(runner):
            specs = [
                ("GUPS", BASELINE, RowPolicy.RELAXED_CLOSE),
                ("GUPS", PRA, RowPolicy.RELAXED_CLOSE),
                ("MIX1", DBI_PRA, RowPolicy.RELAXED_CLOSE),
            ]
            results = runner.run_many(specs)
            solo = runner.run("GUPS", PRA)
            return [r.summary() for r in results] + [solo.summary()]

        base = SystemConfig(cache=SMALL_CACHE)
        serial = drive(
            ExperimentRunner(
                events_per_core=400, base_config=base, warmup_events_per_core=1200
            )
        )
        with SimPool(workers=2) as pool:
            pooled = drive(
                ExperimentRunner(
                    events_per_core=400,
                    base_config=base,
                    warmup_events_per_core=1200,
                    pool=pool,
                )
            )
        assert pooled == serial

    def test_pool_reused_across_sweeps(self):
        with SimPool(workers=2) as pool:
            first = _small_sweep().run(pool=pool)
            second = _small_sweep().run(pool=pool)
            assert pool.tasks_done == len(first) + len(second)
        assert first == second


# ----------------------------------------------------------------------
class TestStreamingOrder:
    def test_map_restores_submission_order(self):
        with SimPool(workers=3) as pool:
            out = pool.map(_square, list(range(20)), shared={"scale": 2})
        assert out == [2 * i * i for i in range(20)]

    def test_stream_yields_in_submission_order(self):
        with SimPool(workers=3) as pool:
            seen = list(pool.stream(_square, list(range(17)), shared={"scale": 1}))
        assert seen == [i * i for i in range(17)]

    def test_group_keys_preserve_order(self):
        payloads = list(range(12))
        keys = [i % 3 for i in payloads]  # interleaved fingerprints
        with SimPool(workers=2) as pool:
            out = pool.map(_square, payloads, shared={"scale": 1}, group_keys=keys)
        assert out == [i * i for i in payloads]

    def test_shared_context_reaches_every_task(self):
        with SimPool(workers=2) as pool:
            out = pool.map(_echo, ["a", "b", "c"], shared={"k": 1})
        assert out == [({"k": 1}, "a"), ({"k": 1}, "b"), ({"k": 1}, "c")]


# ----------------------------------------------------------------------
class TestFailureModes:
    def test_task_exception_surfaces_remote_traceback(self):
        pool = SimPool(workers=2)
        with pytest.raises(SimPoolTaskError) as excinfo:
            pool.map(_boom, [1, 2, 3])
        assert "payload" in excinfo.value.remote_traceback
        assert "ValueError" in excinfo.value.remote_traceback
        # A failed batch poisons determinism; the pool tears down.
        assert pool.closed

    def test_worker_death_raises_instead_of_hanging(self):
        pool = SimPool(workers=2, max_restarts=0)
        with pytest.raises(SimPoolBrokenError, match="died"):
            pool.map(_die, [1, 2, 3, 4])
        assert pool.closed

    def test_closed_pool_rejects_work(self):
        pool = SimPool(workers=1)
        pool.close()
        with pytest.raises(SimPoolError, match="closed"):
            pool.map(_square, [1], shared={"scale": 1})

    def test_close_is_idempotent(self):
        pool = SimPool(workers=1)
        pool.close()
        pool.close()
        assert pool.closed


# ----------------------------------------------------------------------
class TestWorkerRestart:
    def test_dead_worker_is_replaced_within_budget(self, tmp_path):
        with SimPool(workers=1, max_restarts=1) as pool:
            out = pool.map(_die_once, [5], shared={"dir": str(tmp_path)})
            assert out == [50]
            assert pool.worker_restarts == 1
            assert not pool.closed
            # The healed pool keeps serving later batches.
            assert pool.map(_square, [4], shared={"scale": 1}) == [16]

    def test_restart_resubmits_pending_and_preserves_order(self, tmp_path):
        payloads = list(range(6))
        # Every payload kills its worker once, so each 3-payload slot
        # needs 3 replacements before the batch drains.
        with SimPool(workers=2, max_inflight=2, max_restarts=3) as pool:
            out = pool.map(_die_once, payloads, shared={"dir": str(tmp_path)})
            assert out == [p * 10 for p in payloads]
            assert pool.worker_restarts >= 1

    def test_poison_task_exhausts_restart_budget(self):
        pool = SimPool(workers=1, max_restarts=1)
        with pytest.raises(SimPoolBrokenError, match="restart budget"):
            pool.map(_die, [1])
        assert pool.worker_restarts == 1
        assert pool.closed

    def test_stats_reports_lifetime_counters(self):
        with SimPool(workers=2, max_restarts=3) as pool:
            pool.map(_square, [1, 2], shared={"scale": 1})
            stats = pool.stats()
        assert stats == {
            "workers": 2,
            "tasks_done": 2,
            "worker_restarts": 0,
            "max_restarts": 3,
        }

    def test_negative_restart_budget_rejected(self):
        with pytest.raises(ValueError, match="max_restarts"):
            SimPool(workers=1, max_restarts=-1)


# ----------------------------------------------------------------------
class TestAssignmentPlan:
    def test_grouped_tasks_land_on_one_worker(self):
        pool = SimPool.__new__(SimPool)  # plan logic only, no processes
        pool.workers = 3
        plan = pool._assign(6, ["a", "b", "a", "b", "a", "c"])
        homes = {}
        for wid, members in enumerate(plan):
            for index in members:
                homes[index] = wid
        assert homes[0] == homes[2] == homes[4]  # all of group "a"
        assert homes[1] == homes[3]  # all of group "b"
        assert sorted(homes) == list(range(6))

    def test_plan_is_deterministic(self):
        pool = SimPool.__new__(SimPool)
        pool.workers = 4
        keys = [i % 5 for i in range(23)]
        assert pool._assign(23, keys) == pool._assign(23, keys)

    def test_contiguous_runs_without_keys(self):
        pool = SimPool.__new__(SimPool)
        pool.workers = 3
        plan = pool._assign(7, None)
        assert plan == [[0, 1, 2], [3, 4, 5], [6]]

    def test_key_count_mismatch_rejected(self):
        pool = SimPool.__new__(SimPool)
        pool.workers = 2
        with pytest.raises(ValueError, match="group key"):
            pool._assign(3, ["a"])


# ----------------------------------------------------------------------
class TestSharedPool:
    def test_shared_pool_is_reused_and_closable(self):
        close_shared_pool()
        pool = shared_pool(workers=1)
        try:
            assert shared_pool() is pool
            assert pool.map(_square, [3], shared={"scale": 1}) == [9]
        finally:
            close_shared_pool()
        assert pool.closed
        replacement = shared_pool(workers=1)
        try:
            assert replacement is not pool
        finally:
            close_shared_pool()

    def test_pool_runs_sweep_task_fn_directly(self):
        # The oracle-twin pairing in miniature: the exact worker-side
        # task function, fed through the pool, matches calling it
        # in-process with the same context and point.
        sweep = _small_sweep()
        tasks = sweep._tasks()[:2]
        ctx = sweep._context()
        serial = [_run_point(ctx, point) for point in tasks]
        with SimPool(workers=2) as pool:
            pooled = pool.map(_run_point, tasks, shared=ctx)
        assert pooled == serial
