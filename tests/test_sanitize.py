"""Runtime sanitizer: switches, attached checkers, invariant teeth.

The sanitizer must (a) stay completely off by default, (b) attach a
protocol checker to every controller when enabled via either switch,
(c) pass cleanly on real runs, and (d) actually *fail* when an
invariant is broken — a sanitizer that cannot fire is decoration.
"""

import pytest

from repro.controller.stats import ControllerStats
from repro.dram.protocol import ProtocolChecker
from repro.sim.config import CacheConfig, SimConfig, SystemConfig
from repro.sim.sanitize import (
    SanitizerError,
    check_finalize,
    sanitize_enabled,
    verify_restore,
)
from repro.sim.snapshot import (
    SNAPSHOTS,
    capture_warm_state,
    restore_warm_state,
    state_digest,
)
from repro.sim.system import System
from repro.workloads.mixes import workload

EVENTS = 300
WARMUP = 1500


def _system(sanitize=False, scheme=None, **kwargs):
    config = SimConfig(cache=CacheConfig(llc_bytes=128 * 1024), sanitize=sanitize)
    if scheme is not None:
        config = config.with_scheme(scheme)
    return System(config, workload("GUPS"), EVENTS, seed=4,
                  warmup_events_per_core=WARMUP, **kwargs)


def _merged(system):
    merged = ControllerStats()
    for ctrl in system.controllers:
        merged.merge(ctrl.stats)
    return merged


# ----------------------------------------------------------------------
# Switches
# ----------------------------------------------------------------------
def test_simconfig_is_systemconfig():
    """``SimConfig`` is the documented alias for ``SystemConfig``."""
    assert SimConfig is SystemConfig


def test_off_by_default(monkeypatch):
    """No checker is attached unless explicitly requested."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    system = _system()
    assert not sanitize_enabled(system.config)
    assert all(c.protocol_checker is None for c in system.controllers)


def test_config_field_enables():
    """``SimConfig(sanitize=True)`` attaches a checker per controller."""
    system = _system(sanitize=True)
    assert all(
        isinstance(c.protocol_checker, ProtocolChecker)
        for c in system.controllers
    )


def test_env_var_enables(monkeypatch):
    """``REPRO_SANITIZE=1`` does the same without touching configs."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    system = _system()
    assert all(c.protocol_checker is not None for c in system.controllers)


def test_falsy_env_values_stay_off(monkeypatch):
    """``REPRO_SANITIZE=0`` (and friends) must not arm the sanitizer."""
    for value in ("0", "false", "no", ""):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert not sanitize_enabled()


# ----------------------------------------------------------------------
# Clean runs pass under full checking
# ----------------------------------------------------------------------
def test_sanitized_run_is_clean():
    """A tier-1-sized run completes with every command checked."""
    system = _system(sanitize=True)
    result = system.run()
    checked = sum(c.protocol_checker.commands_checked for c in system.controllers)
    assert checked > result.controller.total_served
    assert result.runtime_cycles > 0


def test_sanitized_results_match_unsanitized():
    """Checking is observation only: results stay bit-identical."""
    SNAPSHOTS.clear()
    plain = _system().run()
    SNAPSHOTS.clear()
    checked = _system(sanitize=True).run()
    assert checked.runtime_cycles == plain.runtime_cycles
    assert checked.controller.total_served == plain.controller.total_served
    assert checked.power.total_pj == plain.power.total_pj


def test_snapshot_restore_digest_verified():
    """A sanitized restore re-hashes the hierarchy against capture."""
    SNAPSHOTS.clear()
    _system(sanitize=True)  # captures the snapshot, with digest
    restored = _system(sanitize=True)  # restores + verifies
    assert restored.snapshot_restored
    key = next(iter(SNAPSHOTS._mem))
    assert SNAPSHOTS._mem[key].digest is not None


# ----------------------------------------------------------------------
# The invariants have teeth
# ----------------------------------------------------------------------
def test_counter_mismatch_fires():
    """Tampered burst counters raise a SanitizerError (not silence)."""
    system = _system(sanitize=True)
    system.run()
    system.accountant.read_bursts += 1
    with pytest.raises(SanitizerError, match="read bursts"):
        check_finalize(system, _merged(system))


def test_refresh_mismatch_fires():
    system = _system(sanitize=True)
    system.run()
    system.accountant.refreshes += 1
    with pytest.raises(SanitizerError, match="refreshes"):
        check_finalize(system, _merged(system))


def test_activation_histogram_mismatch_fires():
    system = _system(sanitize=True)
    system.run()
    system.accountant.activations_by_granularity[8] += 1
    with pytest.raises(SanitizerError, match="activation histogram"):
        check_finalize(system, _merged(system))


def test_nonfinite_energy_fires():
    system = _system(sanitize=True)
    system.run()
    system.accountant.energy_pj["rd"] = float("nan")
    with pytest.raises(SanitizerError, match="finite"):
        check_finalize(system, _merged(system))


def test_corrupt_open_bits_fires():
    """TimingCore incoherence (open_bits vs open_row) is caught."""
    system = _system(sanitize=True)
    system.run()
    system.channels[0].core.open_bits[0] ^= 1
    with pytest.raises(SanitizerError, match="open_bits"):
        check_finalize(system, _merged(system))


def test_corrupt_mask_fires():
    """An out-of-range PRA mask in the timing core is caught."""
    system = _system(sanitize=True)
    system.run()
    system.channels[0].core.open_mask[0] = 0
    with pytest.raises(SanitizerError, match="mask"):
        check_finalize(system, _merged(system))


def test_restore_digest_mismatch_fires():
    """A snapshot whose digest disagrees with the hierarchy fails."""
    SNAPSHOTS.clear()
    system = _system(sanitize=True)
    snapshot = capture_warm_state(system.hierarchy, with_digest=True)
    assert snapshot.digest == state_digest(system.hierarchy)
    verify_restore(system.hierarchy, snapshot)  # faithful: passes
    other = _system(sanitize=True, scheme=None, use_snapshots=False)
    other.hierarchy.l2.access(0x123456789, write_mask=0xFF)
    restore_warm_state(other.hierarchy, snapshot)
    other.hierarchy.l2.access(0x987654321, write_mask=0xFF)  # diverge
    with pytest.raises(SanitizerError, match="diverged"):
        verify_restore(other.hierarchy, snapshot)


def test_digestless_snapshot_skips_verification():
    """Snapshots captured without the sanitizer restore silently."""
    system = _system()
    snapshot = capture_warm_state(system.hierarchy)  # no digest
    assert snapshot.digest is None
    verify_restore(system.hierarchy, snapshot)  # no-op, no raise


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_sanitize_flag_builds_sanitizing_config():
    """``repro run --sanitize`` plumbs through to SystemConfig."""
    from repro.cli import _base_config, build_parser

    args = build_parser().parse_args(
        ["run", "--workload", "GUPS", "--sanitize"]
    )
    assert args.sanitize
    assert _base_config(args).sanitize
    args = build_parser().parse_args(["run", "--workload", "GUPS"])
    assert not _base_config(args).sanitize
