"""Request queues: FCFS order, row indexing, lazy removal, rank counts."""

import pytest

from repro.controller.queues import RequestQueue, row_key
from repro.dram.commands import Address, ReqKind, Request


def make_req(kind=ReqKind.READ, rank=0, bank=0, row=0, column=0, cycle=0, mask=0xFF):
    return Request(
        kind=kind,
        addr=Address(channel=0, rank=rank, bank=bank, row=row, column=column),
        arrive_cycle=cycle,
        dirty_mask=mask,
    )


class TestBasics:
    def test_append_and_len(self):
        q = RequestQueue(4)
        q.append(make_req())
        assert len(q) == 1
        assert not q.is_full

    def test_capacity_enforced(self):
        q = RequestQueue(2)
        q.append(make_req())
        q.append(make_req())
        assert q.is_full
        with pytest.raises(OverflowError):
            q.append(make_req())

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RequestQueue(0)

    def test_oldest_is_fifo(self):
        q = RequestQueue(4)
        first = make_req(row=1)
        second = make_req(row=2)
        q.append(first)
        q.append(second)
        assert q.oldest() is first

    def test_remove_then_oldest(self):
        q = RequestQueue(4)
        first, second = make_req(row=1), make_req(row=2)
        q.append(first)
        q.append(second)
        q.remove(first)
        assert len(q) == 1
        assert q.oldest() is second

    def test_double_remove_rejected(self):
        q = RequestQueue(4)
        req = make_req()
        q.append(req)
        q.remove(req)
        with pytest.raises(KeyError):
            q.remove(req)


class TestRowIndex:
    def test_oldest_for_row(self):
        q = RequestQueue(8)
        a = make_req(rank=0, bank=1, row=7)
        b = make_req(rank=0, bank=1, row=7)
        q.append(a)
        q.append(b)
        key = (0, 1, 7)
        assert q.oldest_for_row(key) is a
        q.remove(a)
        assert q.oldest_for_row(key) is b
        q.remove(b)
        assert q.oldest_for_row(key) is None
        assert not q.has_row(key)

    def test_requests_for_row_skips_served(self):
        q = RequestQueue(8)
        a = make_req(kind=ReqKind.WRITE, row=3, mask=0b1)
        b = make_req(kind=ReqKind.WRITE, row=3, mask=0b10)
        q.append(a)
        q.append(b)
        q.remove(a)
        remaining = q.requests_for_row((0, 0, 3))
        assert remaining == [b]

    def test_row_key_helper(self):
        req = make_req(rank=1, bank=5, row=99)
        assert row_key(req) == (1, 5, 99)


class TestRankAccounting:
    def test_pending_for_rank(self):
        q = RequestQueue(8)
        q.append(make_req(rank=0))
        q.append(make_req(rank=1))
        q.append(make_req(rank=1))
        assert q.pending_for_rank(0) == 1
        assert q.pending_for_rank(1) == 2
        assert q.pending_for_rank(2) == 0

    def test_rank_count_decrements(self):
        q = RequestQueue(8)
        req = make_req(rank=1)
        q.append(req)
        q.remove(req)
        assert q.pending_for_rank(1) == 0


class TestIterOldest:
    def test_limit(self):
        q = RequestQueue(8)
        reqs = [make_req(row=i) for i in range(5)]
        for r in reqs:
            q.append(r)
        assert list(q.iter_oldest(3)) == reqs[:3]

    def test_skips_served(self):
        q = RequestQueue(8)
        reqs = [make_req(row=i) for i in range(4)]
        for r in reqs:
            q.append(r)
        q.remove(reqs[1])
        assert list(q.iter_oldest(10)) == [reqs[0], reqs[2], reqs[3]]
