"""Cache substrate: FGD lines, set-associative LRU cache, eviction stats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.line import CacheLine, word_mask_for_store
from repro.cache.set_assoc import SetAssociativeCache


class TestCacheLine:
    def test_starts_clean(self):
        line = CacheLine(line_addr=1)
        assert not line.dirty
        assert line.dirty_words == 0

    def test_store_sets_word_bits(self):
        line = CacheLine(line_addr=1)
        line.mark_written(0b00000101)
        assert line.dirty
        assert line.dirty_words == 2

    def test_absorb_or_merges(self):
        # L1 eviction ORs its dirty bits into L2 (Figure 8).
        line = CacheLine(line_addr=1, dirty_mask=0b1)
        line.absorb(0b10000000)
        assert line.dirty_mask == 0b10000001

    def test_clean_returns_old_mask(self):
        line = CacheLine(line_addr=1, dirty_mask=0b1010)
        assert line.clean() == 0b1010
        assert not line.dirty

    def test_invalid_masks_rejected(self):
        line = CacheLine(line_addr=1)
        with pytest.raises(ValueError):
            line.mark_written(0)
        with pytest.raises(ValueError):
            line.mark_written(0x100)
        with pytest.raises(ValueError):
            CacheLine(line_addr=1, dirty_mask=-1)


class TestWordMaskForStore:
    def test_aligned_8byte_store(self):
        assert word_mask_for_store(0, 8) == 0b1
        assert word_mask_for_store(56, 8) == 0b10000000

    def test_small_store_one_word(self):
        assert word_mask_for_store(4, 4) == 0b1
        assert word_mask_for_store(9, 1) == 0b10

    def test_straddling_store(self):
        assert word_mask_for_store(4, 8) == 0b11

    def test_full_line(self):
        assert word_mask_for_store(0, 64) == 0xFF

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            word_mask_for_store(60, 8)
        with pytest.raises(ValueError):
            word_mask_for_store(0, 0)


class TestSetAssociativeCache:
    def test_hit_after_install(self):
        cache = SetAssociativeCache(capacity_bytes=8 * 64, ways=2)
        hit, _ = cache.access(100)
        assert not hit
        hit, _ = cache.access(100)
        assert hit

    def test_lru_eviction_order(self):
        cache = SetAssociativeCache(capacity_bytes=2 * 64, ways=2)  # 1 set
        cache.access(0)
        cache.access(1)
        cache.access(0)  # refresh 0
        _, victim = cache.access(2)  # evicts 1 (LRU)
        assert victim is not None
        assert victim.line_addr == 1

    def test_dirty_eviction_carries_mask(self):
        cache = SetAssociativeCache(capacity_bytes=2 * 64, ways=2)
        cache.access(0, write_mask=0b11)
        cache.access(1)
        _, victim = cache.access(2)
        assert victim.line_addr == 0
        assert victim.dirty
        assert victim.dirty_mask == 0b11

    def test_dirty_word_histogram(self):
        # This histogram is Figure 3's data source.
        cache = SetAssociativeCache(capacity_bytes=2 * 64, ways=2)
        cache.access(0, write_mask=0b1)
        cache.access(1, write_mask=0b1111)
        cache.access(2)
        cache.access(3)
        hist = cache.stats.dirty_word_hist
        assert hist[1] == 1
        assert hist[4] == 1

    def test_repeated_stores_accumulate(self):
        cache = SetAssociativeCache(capacity_bytes=4 * 64, ways=4)
        cache.access(7, write_mask=0b1)
        cache.access(7, write_mask=0b10)
        line = cache.lookup(7)
        assert line.dirty_mask == 0b11

    def test_install_with_dirty_mask(self):
        cache = SetAssociativeCache(capacity_bytes=4 * 64, ways=4)
        cache.install(5, dirty_mask=0b101)
        assert cache.lookup(5).dirty_mask == 0b101

    def test_install_merges_existing(self):
        cache = SetAssociativeCache(capacity_bytes=4 * 64, ways=4)
        cache.access(5, write_mask=0b1)
        cache.install(5, dirty_mask=0b10)
        assert cache.lookup(5).dirty_mask == 0b11

    def test_clean_line(self):
        cache = SetAssociativeCache(capacity_bytes=4 * 64, ways=4)
        cache.access(5, write_mask=0b111)
        assert cache.clean_line(5) == 0b111
        assert not cache.lookup(5).dirty
        assert cache.clean_line(404) == 0

    def test_invalidate(self):
        cache = SetAssociativeCache(capacity_bytes=4 * 64, ways=4)
        cache.access(5, write_mask=0b1)
        evicted = cache.invalidate(5)
        assert evicted.dirty_mask == 0b1
        assert cache.lookup(5) is None
        assert cache.invalidate(5) is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=100, ways=3)

    def test_stats_hit_rate(self):
        cache = SetAssociativeCache(capacity_bytes=4 * 64, ways=4)
        cache.access(1)
        cache.access(1)
        cache.access(2)
        assert cache.stats.accesses == 3
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addrs):
        cache = SetAssociativeCache(capacity_bytes=8 * 64, ways=2)
        for addr in addrs:
            cache.access(addr)
        assert cache.resident_lines() <= 8
        # Conservation: every miss either filled a free way or evicted.
        assert cache.stats.misses == cache.stats.evictions + cache.resident_lines()

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=255),
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_dirty_evictions_only_for_dirty_lines(self, ops):
        cache = SetAssociativeCache(capacity_bytes=4 * 64, ways=2)
        for addr, mask in ops:
            _, victim = cache.access(addr, write_mask=mask)
            if victim is not None:
                assert victim.dirty == (victim.dirty_mask != 0)
        assert cache.stats.dirty_evictions <= cache.stats.evictions
