"""Phased workload generator."""

import pytest

from repro.cpu.trace import TraceEvent
from repro.workloads.phased import Phase, PhasedGenerator, phased_workload_name
from repro.workloads.profiles import profile


class TestPhase:
    def test_positive_length(self):
        with pytest.raises(ValueError):
            Phase(profile=profile("GUPS"), events=0)


class TestPhasedGenerator:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PhasedGenerator([])

    def test_tuple_and_phase_forms(self):
        gen = PhasedGenerator([(profile("GUPS"), 5),
                               Phase(profile("lbm"), 5)])
        events = [next(gen) for _ in range(10)]
        assert all(isinstance(e, TraceEvent) for e in events)

    def test_switches_counted(self):
        gen = PhasedGenerator([(profile("GUPS"), 4), (profile("lbm"), 4)])
        for _ in range(12):
            next(gen)
        assert gen.switches == 2

    def test_cycles_back_to_first_phase(self):
        gen = PhasedGenerator([(profile("GUPS"), 3), (profile("lbm"), 3)])
        for _ in range(3):
            next(gen)
        assert gen.current_profile.name == "GUPS"
        next(gen)
        assert gen.current_profile.name == "lbm"
        for _ in range(3):
            next(gen)
        assert gen.current_profile.name == "GUPS"

    def test_phase_character_changes(self):
        # GUPS phase: single-word dirty stores; lbm phase includes
        # full-line stores and no_fill events.
        gen = PhasedGenerator([(profile("GUPS"), 300), (profile("lbm"), 300)])
        first = [next(gen) for _ in range(300)]
        second = [next(gen) for _ in range(300)]
        gups_masks = {e.write_mask for e in first if e.is_store}
        assert all(bin(m).count("1") == 1 for m in sorted(gups_masks))
        assert any(e.no_fill for e in second)

    def test_deterministic(self):
        a = PhasedGenerator([(profile("GUPS"), 10), (profile("mcf"), 10)], seed=3)
        b = PhasedGenerator([(profile("GUPS"), 10), (profile("mcf"), 10)], seed=3)
        assert [next(a) for _ in range(40)] == [next(b) for _ in range(40)]

    def test_name_helper(self):
        phases = [Phase(profile("lbm"), 5), Phase(profile("GUPS"), 5)]
        assert phased_workload_name(phases) == "lbm>GUPS"


class TestPhasedSystemRun:
    def test_system_follows_phases(self):
        """PRA's granularity mix reflects both phases' dirty words."""
        from repro.core.schemes import PRA
        from repro.sim.config import CacheConfig, SystemConfig
        from repro.sim.system import System
        from repro.workloads.trace_io import FileTraceWorkload  # noqa: F401
        from types import SimpleNamespace
        from repro.workloads.mixes import Workload

        phases = [(profile("GUPS"), 2000), (profile("bzip2"), 2000)]
        overrides = [PhasedGenerator(phases, seed=1, core_id=i) for i in range(2)]
        wl = Workload(name="phased", apps=(SimpleNamespace(name="GUPS>bzip2"),) * 2)
        config = SystemConfig(scheme=PRA, cache=CacheConfig(llc_bytes=256 * 1024))
        system = System(config, wl, events_per_core=3000,
                        warmup_events_per_core=3000, trace_overrides=overrides)
        result = system.run()
        hist = result.activation_histogram
        # GUPS phase drives 1/8 rows; bzip2's full-line tail shows as
        # full-row *write* activations beyond the read share.
        assert hist[1] > 0
        assert hist[8] > 0
        assert result.controller.writes.served > 0
