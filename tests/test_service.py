"""Sweep-service tests: digests, store, journal, scheduler, HTTP API.

The service's core promise is pinned here: rows served over HTTP —
computed on sharded pools, deduplicated against the content-addressed
store, coalesced across concurrent jobs — are **bit-identical** to
running the same grid serially in-process with
:class:`repro.sim.sweep.Sweep` (the declared oracle twin of
``repro.service.jobs``).  Around that sit unit tests for each layer:
canonical digests (the cache keys), the atomic result store, the
torn-tail-tolerant journal, and sticky warm-affinity placement.
"""

import asyncio
import contextlib
import json
import os
import threading

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.digest import SweepSpec, canonical_json, spec_job_id
from repro.service.jobs import JobManager
from repro.service.journal import Journal
from repro.service.scheduler import PoolScheduler
from repro.service.server import ServiceServer
from repro.service.store import ResultStore
from repro.sim.sweep import Sweep

#: Small four-point grid (2 schemes x 2 workloads) used end-to-end.
EVENTS = 80
SEED = 3
SPEC = {
    "events_per_core": EVENTS,
    "seed": SEED,
    "axes": {"scheme": ["Baseline", "PRA"], "workload": ["GUPS", "mcf"]},
}


def serial_rows(spec_payload=None):
    """Oracle rows: the same grid via the in-process serial sweep."""
    payload = SPEC if spec_payload is None else spec_payload
    sweep = Sweep(events_per_core=payload["events_per_core"],
                  seed=payload["seed"])
    # Add axes in canonical (_KNOWN_AXES) order to match service grid
    # order: scheme before workload.
    for axis in ("scheme", "workload", "policy", "ecc_chips"):
        if axis in payload["axes"]:
            sweep.add_axis(axis, payload["axes"][axis])
    return sweep.run()


# ----------------------------------------------------------------------
# Digests: canonicalization, stability, validation.
# ----------------------------------------------------------------------
class TestDigests:
    def test_job_id_independent_of_key_order(self):
        shuffled = {
            "axes": {"workload": ["GUPS", "mcf"], "scheme": ["Baseline", "PRA"]},
            "seed": SEED,
            "events_per_core": EVENTS,
        }
        assert spec_job_id(SPEC) == spec_job_id(shuffled)

    def test_job_id_sensitive_to_content(self):
        other = dict(SPEC, seed=SEED + 1)
        assert spec_job_id(SPEC) != spec_job_id(other)

    def test_point_digests_are_stable_and_distinct(self):
        spec = SweepSpec.from_payload(SPEC)
        digests = [spec.point_digest(p) for p in spec.points()]
        assert len(set(digests)) == len(digests)
        again = SweepSpec.from_payload(SPEC)
        assert [again.point_digest(p) for p in again.points()] == digests
        for digest in digests:
            assert len(digest) == 64
            assert digest == digest.lower()

    def test_point_digest_shared_across_different_jobs(self):
        """Overlapping grids address identical points identically."""
        spec = SweepSpec.from_payload(SPEC)
        overlap = SweepSpec.from_payload(
            dict(SPEC, axes={"scheme": ["Baseline"], "workload": ["GUPS"]})
        )
        assert spec.job_id() != overlap.job_id()
        shared = {"scheme": "Baseline", "workload": "GUPS"}
        assert spec.point_digest(shared) == overlap.point_digest(shared)

    def test_canonical_json_is_canonical(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    @pytest.mark.parametrize(
        "payload",
        [
            {},  # no axes at all
            {"axes": {"scheme": ["Baseline"]}},  # workload axis missing
            {"axes": {"workload": ["GUPS", "GUPS"]}},  # duplicate value
            {"axes": {"workload": ["GUPS"], "voltage": [1]}},  # unknown axis
            {"axes": {"workload": ["no-such-workload"]}},
            {"axes": {"workload": ["GUPS"], "scheme": ["NotAScheme"]}},
            {"axes": {"workload": ["GUPS"]}, "events_per_core": 0},
            {"axes": {"workload": ["GUPS"]}, "frobnicate": 1},
        ],
    )
    def test_invalid_specs_fail_at_submit(self, payload):
        with pytest.raises(ValueError):
            SweepSpec.from_payload(payload)

    def test_grid_order_is_canonical_axis_order(self):
        spec = SweepSpec.from_payload(SPEC)
        points = spec.points()
        assert points[0] == {"scheme": "Baseline", "workload": "GUPS"}
        assert points[-1] == {"scheme": "PRA", "workload": "mcf"}


# ----------------------------------------------------------------------
# Result store: atomic, content-addressed, picky about keys.
# ----------------------------------------------------------------------
class TestResultStore:
    DIGEST = "ab" * 32

    def test_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path / "results"))
        assert not store.has(self.DIGEST)
        assert store.get(self.DIGEST) is None
        row = {"scheme": "PRA", "energy": 12.5}
        store.put(self.DIGEST, row)
        assert store.has(self.DIGEST)
        assert store.get(self.DIGEST) == row
        assert store.digests() == [self.DIGEST]
        assert len(store) == 1

    def test_malformed_digest_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path))
        for bad in ("", "abc", "../../etc/passwd", "AB" * 32, "zz" * 32):
            with pytest.raises(ValueError):
                store.get(bad)

    def test_no_partial_files_linger(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(self.DIGEST, {"x": 1})
        assert os.listdir(str(tmp_path)) == [self.DIGEST + ".json"]

    def test_unserializable_row_leaves_no_trace(self, tmp_path):
        store = ResultStore(str(tmp_path))
        with pytest.raises(TypeError):
            store.put(self.DIGEST, {"bad": object()})
        assert not store.has(self.DIGEST)
        assert [n for n in os.listdir(str(tmp_path)) if n.endswith(".tmp")] == []


# ----------------------------------------------------------------------
# Journal: replay, torn tails, no timestamps.
# ----------------------------------------------------------------------
class TestJournal:
    def test_replay_roundtrip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.record_job("job-a", {"axes": {"workload": ["GUPS"]}})
            journal.record_point("d1" * 32)
            journal.record_point("d2" * 32)
            journal.record_done("job-a")
        state = Journal(path).replay()
        assert list(state.jobs) == ["job-a"]
        assert state.jobs["job-a"] == {"axes": {"workload": ["GUPS"]}}
        assert state.completed == {"d1" * 32, "d2" * 32}
        assert state.done_jobs == {"job-a"}

    def test_missing_file_replays_empty(self, tmp_path):
        state = Journal(str(tmp_path / "absent.jsonl")).replay()
        assert state.jobs == {} and state.completed == set()

    def test_torn_tail_is_skipped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.record_job("job-a", {})
            journal.record_point("d1" * 32)
        with open(path, "a") as handle:
            handle.write('{"kind": "point", "digest": "d2')  # SIGKILL here
        state = Journal(path).replay()
        assert state.completed == {"d1" * 32}
        assert list(state.jobs) == ["job-a"]

    def test_lines_carry_no_timestamps(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.record_job("job-a", {"seed": 1})
            journal.record_point("d1" * 32)
            journal.record_done("job-a")
        with open(path) as handle:
            for line in handle:
                entry = json.loads(line)
                assert set(entry) <= {"kind", "job_id", "spec", "digest"}


# ----------------------------------------------------------------------
# Scheduler placement: sticky warm affinity, least-loaded spill.
# ----------------------------------------------------------------------
class TestPlacement:
    def test_sticky_affinity(self):
        sched = PoolScheduler(pools=3)
        first = sched._place("fp-a")
        sched.assigned[first] += 1
        assert sched._place("fp-a") == first  # sticky forever
        second = sched._place("fp-b")
        assert second != first  # least-loaded gets the new fingerprint
        sched.assigned[second] += 1
        third = sched._place("fp-c")
        assert third not in (first, second)

    def test_single_pool_takes_everything(self):
        sched = PoolScheduler(pools=1)
        assert {sched._place(f"fp-{i}") for i in range(5)} == {0}

    def test_pools_must_be_positive(self):
        with pytest.raises(ValueError):
            PoolScheduler(pools=0)


# ----------------------------------------------------------------------
# JobManager: dedup triage (cached / coalesced / computed) and resume.
# ----------------------------------------------------------------------
@contextlib.contextmanager
def manager_loop(root, **kwargs):
    """A started JobManager driven by a private event loop."""
    loop = asyncio.new_event_loop()
    manager = JobManager(str(root), **kwargs)
    loop.run_until_complete(manager.start())
    try:
        yield manager, loop
    finally:
        loop.run_until_complete(manager.close())
        loop.close()


class TestJobManager:
    def test_fresh_grid_is_all_computed(self, tmp_path):
        with manager_loop(tmp_path, pools=2) as (manager, loop):
            status = loop.run_until_complete(manager.submit(SPEC))
            assert (status.cached, status.coalesced, status.computed) == (0, 0, 4)
            final = loop.run_until_complete(manager.wait(status.job_id))
            assert final.state == "done"
            assert manager.rows(status.job_id) == serial_rows()
            assert manager.scheduler.computed == 4
            # Resubmitting lands on the same (finished) job object.
            again = loop.run_until_complete(manager.submit(SPEC))
            assert again.job_id == status.job_id
            assert again.state == "done"

    def test_restarted_manager_serves_from_store(self, tmp_path):
        """A new manager on the same root recomputes nothing."""
        with manager_loop(tmp_path) as (manager, loop):
            status = loop.run_until_complete(manager.submit(SPEC))
            loop.run_until_complete(manager.wait(status.job_id))
            rows_before = manager.rows(status.job_id)
        with manager_loop(tmp_path) as (manager, loop):
            # start() already replayed the journal and resumed the job.
            status = loop.run_until_complete(manager.submit(SPEC))
            assert status.state == "done"
            assert (status.cached, status.computed) == (4, 0)
            assert manager.scheduler.computed == 0
            assert manager.rows(status.job_id) == rows_before

    def test_overlapping_job_computes_only_novel_points(self, tmp_path):
        overlap = dict(
            SPEC,
            axes={"scheme": ["Baseline", "PRA"],
                  "workload": ["GUPS", "mcf", "MIX1"]},
        )
        with manager_loop(tmp_path, pools=2) as (manager, loop):
            first = loop.run_until_complete(manager.submit(SPEC))
            loop.run_until_complete(manager.wait(first.job_id))
            second = loop.run_until_complete(manager.submit(overlap))
            assert (second.cached, second.computed) == (4, 2)
            final = loop.run_until_complete(manager.wait(second.job_id))
            assert final.state == "done"
            assert manager.rows(second.job_id) == serial_rows(overlap)
            assert manager.scheduler.computed == 6  # 4 + 2 novel

    def test_concurrent_jobs_coalesce_inflight_points(self, tmp_path):
        """The second job subscribes to points the first is computing."""
        overlap = dict(
            SPEC,
            axes={"scheme": ["Baseline", "PRA"],
                  "workload": ["GUPS", "mcf", "MIX1"]},
        )

        async def race(manager):
            first = await manager.submit(SPEC)
            second = await manager.submit(overlap)
            await manager.wait(first.job_id)
            final = await manager.wait(second.job_id)
            return first, second, final

        with manager_loop(tmp_path, pools=2) as (manager, loop):
            first, second, final = loop.run_until_complete(race(manager))
            assert first.computed == 4
            # All four shared points were in flight when job two arrived.
            assert (second.coalesced, second.computed) == (4, 2)
            assert final.state == "done"
            assert manager.rows(second.job_id) == serial_rows(overlap)
            assert manager.scheduler.computed == 6  # nothing twice

    def test_events_feed_replays_and_terminates(self, tmp_path):
        async def collect(manager, job_id):
            events = []
            async for event in manager.events(job_id):
                events.append(event)
            return events

        with manager_loop(tmp_path) as (manager, loop):
            status = loop.run_until_complete(manager.submit(SPEC))
            loop.run_until_complete(manager.wait(status.job_id))
            events = loop.run_until_complete(collect(manager, status.job_id))
            assert [e["kind"] for e in events] == ["point"] * 4 + ["done"]
            assert sorted(e["index"] for e in events[:-1]) == [0, 1, 2, 3]
            assert {e["digest"] for e in events[:-1]} == set(status.points)

    def test_bad_spec_rejected_before_any_state(self, tmp_path):
        with manager_loop(tmp_path) as (manager, loop):
            with pytest.raises(ValueError):
                loop.run_until_complete(
                    manager.submit({"axes": {"workload": ["nope"]}})
                )
            assert manager.stats()["jobs"] == 0


# ----------------------------------------------------------------------
# HTTP end-to-end: the service behind a real socket.
# ----------------------------------------------------------------------
@contextlib.contextmanager
def running_service(root, pools=1, workers_per_pool=1):
    """A live ServiceServer on an ephemeral port, in a daemon thread."""
    loop = asyncio.new_event_loop()
    manager = JobManager(str(root), pools=pools,
                         workers_per_pool=workers_per_pool)
    server = ServiceServer(manager, port=0)
    started = threading.Event()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(30), "service failed to start"
    try:
        yield ServiceClient(port=server.port)
    finally:
        future = asyncio.run_coroutine_threadsafe(server.close(), loop)
        future.result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(30)
        loop.close()


class TestHTTPService:
    def test_end_to_end_rows_match_serial_sweep(self, tmp_path):
        with running_service(tmp_path, pools=2) as client:
            assert client.healthy()
            status = client.submit(SPEC)
            assert status["state"] == "running"
            assert status["computed"] == 4
            final = client.wait(status["job_id"])
            assert final["state"] == "done"
            rows = client.rows(status["job_id"])
            assert rows == serial_rows()  # bit-identical to the oracle
            # Every point row is individually addressable by digest.
            for digest, row in zip(status["points"], rows):
                assert client.result(digest) == row
            # Resubmission is idempotent: same job, already done.
            again = client.submit(SPEC)
            assert again["job_id"] == status["job_id"]
            assert again["state"] == "done"
            stats = client.stats()
            assert stats["stored"] == 4
            assert stats["scheduler"]["computed"] == 4
            assert sum(stats["scheduler"]["assigned"]) == 4

    def test_sse_stream_carries_rows(self, tmp_path):
        with running_service(tmp_path) as client:
            status = client.submit(SPEC)
            events = list(client.events(status["job_id"]))
            assert events[-1]["kind"] == "done"
            points = [e for e in events if e["kind"] == "point"]
            assert len(points) == 4
            rows_by_index = {e["index"]: e["row"] for e in points}
            serial = serial_rows()
            for index, row in rows_by_index.items():
                assert row == serial[index]

    def test_error_surfaces(self, tmp_path):
        with running_service(tmp_path) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"axes": {"workload": ["no-such-workload"]}})
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                client.status("not-a-job")
            assert excinfo.value.status == 404
            with pytest.raises(ServiceError) as excinfo:
                client.result("ff" * 32)
            assert excinfo.value.status == 404
            with pytest.raises(ServiceError) as excinfo:
                client.result("not-a-digest")
            assert excinfo.value.status == 400


# ----------------------------------------------------------------------
# Registry hygiene: the service's digest modules are lint-armed.
# ----------------------------------------------------------------------
def test_service_modules_are_registered_for_lint():
    from repro.analysis.registry import (
        DIGEST_MODULE_PATHS,
        FAST_PATH_MODULES,
        is_digest_module,
    )

    assert "src/repro/service/jobs.py" in FAST_PATH_MODULES
    assert "src/repro/service/digest.py" in DIGEST_MODULE_PATHS
    assert is_digest_module("src/repro/service/digest.py", "")
    assert is_digest_module("anything.py", "# reprolint: digest\n")
    assert not is_digest_module("src/repro/sim/pool.py", "")
