"""Kill/resume: SIGKILL the live service mid-sweep, restart, resume.

The scenario the journal + content-addressed store exist for:

1. a real ``repro serve`` subprocess accepts a 6-point sweep over HTTP;
2. the whole process group is SIGKILLed after at least one point's
   result landed (no atexit, no flush — exactly a crash or OOM-kill);
3. a fresh service on the same directory replays the journal, resumes
   the job, and **computes only the points whose results are missing**
   (asserted via the per-job ``cached``/``computed`` counters of
   :mod:`repro.service.jobs` and the scheduler's ``computed`` total —
   not timing);
4. the merged rows are bit-identical to a serial in-process sweep.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service.client import ServiceClient
from repro.sim.sweep import Sweep

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

#: 3 schemes x 2 workloads; each point is slow enough (~0.5-2 s) that
#: the kill reliably lands mid-sweep on one worker.
SPEC = {
    "events_per_core": 4000,
    "seed": 5,
    "axes": {
        "scheme": ["Baseline", "PRA", "SDS"],
        "workload": ["GUPS", "mcf"],
    },
}
TOTAL = 6


def _serial_rows():
    sweep = Sweep(events_per_core=SPEC["events_per_core"], seed=SPEC["seed"])
    sweep.add_axis("scheme", SPEC["axes"]["scheme"])
    sweep.add_axis("workload", SPEC["axes"]["workload"])
    return sweep.run()


def _start_service(root, port_file):
    """Launch ``repro serve`` in its own session (killable as a group)."""
    if os.path.exists(port_file):
        os.unlink(port_file)
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--dir", str(root),
         "--port", "0", "--port-file", str(port_file)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        start_new_session=True,  # workers join the group -> killpg reaps all
    )


def _wait_for_port(port_file, proc, polls=1200):
    for _ in range(polls):
        if proc.poll() is not None:
            stderr = proc.stderr.read().decode() if proc.stderr else ""
            raise RuntimeError(f"service exited early:\n{stderr}")
        try:
            with open(port_file) as handle:
                text = handle.read().strip()
            if text:
                return int(text)
        except FileNotFoundError:
            pass
        time.sleep(0.05)
    raise TimeoutError("service never wrote its port file")


def _killpg(proc):
    try:
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        pass
    proc.wait()


def _stored_digests(root):
    results = os.path.join(str(root), "results")
    if not os.path.isdir(results):
        return set()
    return {name[:-5] for name in os.listdir(results) if name.endswith(".json")}


@pytest.mark.slow
def test_sigkill_mid_sweep_resumes_with_zero_recompute(tmp_path):
    root = tmp_path / "service"
    port_file = str(tmp_path / "port")

    # -- phase 1: submit, then SIGKILL the whole group mid-sweep -------
    first = _start_service(root, port_file)
    try:
        client = ServiceClient(port=_wait_for_port(port_file, first))
        submitted = client.submit(SPEC)
        job_id = submitted["job_id"]
        assert submitted["total"] == TOTAL
        for _ in range(1200):  # wait for >=1 durable result, then kill
            if len(_stored_digests(root)) >= 1:
                break
            assert first.poll() is None, "service died before the kill"
            time.sleep(0.05)
        else:
            pytest.fail("no point completed before the kill window")
    finally:
        _killpg(first)

    stored_at_kill = _stored_digests(root)
    assert 1 <= len(stored_at_kill) < TOTAL, (
        f"kill landed outside the sweep: {len(stored_at_kill)}/{TOTAL} stored"
    )
    assert set(submitted["points"]) >= stored_at_kill

    # -- phase 2: restart on the same directory, resume, finish -------
    second = _start_service(root, port_file)
    try:
        client = ServiceClient(port=_wait_for_port(port_file, second))
        # start() already replayed the journal; submitting the same
        # spec attaches to the one resumed content-addressed job.
        resumed = client.submit(SPEC)
        assert resumed["job_id"] == job_id
        final = client.wait(resumed["job_id"])
        assert final["state"] == "done"

        # Zero recomputation: every surviving result file was served
        # from the store; only the missing points were simulated.
        assert final["cached"] == len(stored_at_kill)
        assert final["computed"] == TOTAL - len(stored_at_kill)
        assert final["coalesced"] == 0
        stats = client.stats()
        assert stats["scheduler"]["computed"] == TOTAL - len(stored_at_kill)

        # Merged rows (cache + resumed compute) == serial oracle.
        assert client.rows(job_id) == _serial_rows()

        # The journal now records the job as done; a third replay
        # would resume nothing.
        with open(os.path.join(str(root), "journal.jsonl")) as handle:
            entries = [json.loads(line) for line in handle if line.strip()]
        assert {"kind": "done", "job_id": job_id} in entries
    finally:
        _killpg(second)
