"""Protocol checker: unit rules + differential verification of the
scheduler (every command issued by full-system runs must be legal).
"""

import pytest

from repro.controller.policies import RowPolicy
from repro.core.schemes import BASELINE, FGA, HALF_DRAM, HALF_DRAM_PRA, PRA
from repro.dram.geometry import FULL_MASK
from repro.dram.protocol import Cmd, CommandRecord, ProtocolChecker, ProtocolViolation
from repro.dram.timing import DDR3_1600
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.system import System
from repro.workloads.mixes import workload

T = DDR3_1600


def act(cycle, rank=0, bank=0, row=1, mask=FULL_MASK, granularity=8, masked=False):
    return CommandRecord(cycle=cycle, cmd=Cmd.ACT, rank=rank, bank=bank,
                         row=row, mask=mask, granularity=granularity, masked=masked)


def rd(cycle, rank=0, bank=0, needed=FULL_MASK, start=None, end=None):
    start = cycle + T.tcas if start is None else start
    end = start + T.tburst if end is None else end
    return CommandRecord(cycle=cycle, cmd=Cmd.RD, rank=rank, bank=bank,
                         burst_start=start, burst_end=end, needed_mask=needed)


def wr(cycle, rank=0, bank=0, needed=FULL_MASK):
    start = cycle + T.tcwl
    return CommandRecord(cycle=cycle, cmd=Cmd.WR, rank=rank, bank=bank,
                         burst_start=start, burst_end=start + T.tburst,
                         needed_mask=needed)


def pre(cycle, rank=0, bank=0, implicit=False):
    return CommandRecord(cycle=cycle, cmd=Cmd.PRE, rank=rank, bank=bank,
                         implicit=implicit)


class TestBasicRules:
    def test_legal_read_sequence(self):
        c = ProtocolChecker(T)
        c.observe(act(0))
        c.observe(rd(T.trcd))
        c.observe(pre(max(T.tras, T.trcd + T.trtp)))
        assert c.commands_checked == 3

    def test_trcd_violation(self):
        c = ProtocolChecker(T)
        c.observe(act(0))
        with pytest.raises(ProtocolViolation, match="tRCD"):
            c.observe(rd(T.trcd - 1))

    def test_pra_extra_cycle_enforced(self):
        c = ProtocolChecker(T)
        c.observe(act(0, mask=0b1, masked=True, granularity=1))
        with pytest.raises(ProtocolViolation, match="tRCD"):
            c.observe(wr(T.trcd, needed=0b1))

    def test_pra_extra_cycle_satisfied(self):
        c = ProtocolChecker(T)
        c.observe(act(0, mask=0b1, masked=True, granularity=1))
        c.observe(wr(T.trcd + 1, needed=0b1))

    def test_act_to_open_bank(self):
        c = ProtocolChecker(T)
        c.observe(act(0))
        with pytest.raises(ProtocolViolation, match="open-bank"):
            c.observe(act(T.trc, row=2))

    def test_tras_violation(self):
        c = ProtocolChecker(T)
        c.observe(act(0))
        with pytest.raises(ProtocolViolation, match="tRAS"):
            c.observe(pre(T.tras - 1))

    def test_trc_violation(self):
        c = ProtocolChecker(T)
        c.observe(act(0))
        c.observe(pre(T.tras))
        with pytest.raises(ProtocolViolation, match="tRC"):
            c.observe(act(T.trc - 1, row=2))

    def test_coverage_violation(self):
        # Serving a request from a non-covering partial row = bug.
        c = ProtocolChecker(T)
        c.observe(act(0, mask=0b1, masked=True, granularity=1))
        with pytest.raises(ProtocolViolation, match="coverage"):
            c.observe(wr(T.trcd + 1, needed=0b10))

    def test_twr_violation(self):
        c = ProtocolChecker(T)
        c.observe(act(0, mask=0xFF))
        record = wr(T.trcd)
        c.observe(record)
        with pytest.raises(ProtocolViolation, match="tWR"):
            c.observe(pre(record.burst_end + T.twr - 1))


class TestRankRules:
    def test_trrd_violation(self):
        c = ProtocolChecker(T)
        c.observe(act(0, bank=0))
        with pytest.raises(ProtocolViolation, match="tRRD"):
            c.observe(act(T.trrd - 1, bank=1))

    def test_relaxed_trrd_allows_partial_acts(self):
        c = ProtocolChecker(T, relax_act_constraints=True)
        c.observe(act(0, bank=0, mask=0b1, masked=True, granularity=1))
        c.observe(act(2, bank=1, mask=0b1, masked=True, granularity=1))

    def test_tfaw_violation(self):
        c = ProtocolChecker(T)
        for i in range(4):
            c.observe(act(i * T.trrd, bank=i))
        with pytest.raises(ProtocolViolation, match="tFAW"):
            c.observe(act(4 * T.trrd, bank=4))

    def test_weighted_tfaw_allows_eighth_acts(self):
        c = ProtocolChecker(T, relax_act_constraints=True)
        for i in range(8):
            c.observe(act(i * 2, bank=i, mask=0b1, masked=True, granularity=1))

    def test_twtr_violation(self):
        c = ProtocolChecker(T)
        c.observe(act(0, bank=0))
        c.observe(act(T.trrd, bank=1))
        record = wr(T.trcd, bank=0)
        c.observe(record)
        with pytest.raises(ProtocolViolation, match="tWTR"):
            c.observe(rd(record.burst_end + T.twtr - 1, bank=1,
                         start=record.burst_end + T.twtr - 1 + T.tcas))

    def test_tccd_violation(self):
        c = ProtocolChecker(T)
        c.observe(act(0, bank=0))
        c.observe(act(T.trrd, bank=1))
        first = rd(16, bank=0)
        c.observe(first)
        # Cycle 19: tRCD for bank 1 is satisfied (ACT at 5) but the
        # rank-level tCCD from the read at 16 is not.
        with pytest.raises(ProtocolViolation, match="tCCD"):
            c.observe(rd(19, bank=1, start=first.burst_end + 5))


class TestBusRules:
    def test_data_bus_overlap(self):
        c = ProtocolChecker(T)
        c.observe(act(0, bank=0))
        c.observe(act(T.trrd, bank=1))
        first = rd(16, bank=0)
        c.observe(first)
        with pytest.raises(ProtocolViolation, match="data-bus"):
            c.observe(rd(20, bank=1, start=first.burst_end - 1))

    def test_rank_switch_penalty(self):
        c = ProtocolChecker(T)
        c.observe(act(0, rank=0, bank=0))
        c.observe(act(T.trrd, rank=1, bank=0))
        first = rd(16, rank=0)
        c.observe(first)
        with pytest.raises(ProtocolViolation, match="tRTRS"):
            c.observe(rd(20, rank=1,
                         start=first.burst_end + T.trtrs - 1))

    def test_command_bus_exclusivity(self):
        c = ProtocolChecker(T)
        c.observe(act(5, bank=0))
        with pytest.raises(ProtocolViolation, match="command-bus"):
            c.observe(act(5, bank=1))

    def test_masked_act_owns_two_cycles(self):
        c = ProtocolChecker(T)
        c.observe(act(0, bank=0, mask=0b1, masked=True, granularity=1))
        with pytest.raises(ProtocolViolation, match="mask-transfer-cycle"):
            c.observe(pre(1, bank=1))

    def test_implicit_pre_exempt_from_cmd_bus(self):
        c = ProtocolChecker(T)
        c.observe(act(0, bank=0))
        c.observe(act(T.trrd, bank=1))
        c.observe(pre(T.tras, bank=0, implicit=True))  # same-ish window ok


class TestRefreshRules:
    def test_refresh_with_open_bank(self):
        c = ProtocolChecker(T)
        c.observe(act(0))
        with pytest.raises(ProtocolViolation, match="REFRESH"):
            c.observe(CommandRecord(cycle=T.tras, cmd=Cmd.REF, rank=0))

    def test_refresh_freezes_rank(self):
        c = ProtocolChecker(T)
        c.observe(CommandRecord(cycle=0, cmd=Cmd.REF, rank=0))
        with pytest.raises(ProtocolViolation, match="tRFC"):
            c.observe(act(T.trfc - 1))
        c2 = ProtocolChecker(T)
        c2.observe(CommandRecord(cycle=0, cmd=Cmd.REF, rank=0))
        c2.observe(act(T.trfc))


@pytest.mark.parametrize(
    "scheme", [BASELINE, FGA, HALF_DRAM, PRA, HALF_DRAM_PRA], ids=lambda s: s.name
)
@pytest.mark.parametrize(
    "policy",
    [RowPolicy.RELAXED_CLOSE, RowPolicy.RESTRICTED_CLOSE],
    ids=lambda p: p.value,
)
class TestDifferentialVerification:
    """Attach the checker to full-system runs: zero violations allowed."""

    def test_full_run_is_protocol_clean(self, scheme, policy):
        config = SystemConfig(
            scheme=scheme, policy=policy, cache=CacheConfig(llc_bytes=256 * 1024)
        )
        system = System(config, workload("MIX2"), 600, warmup_events_per_core=3000)
        for ctrl in system.controllers:
            ctrl.protocol_checker = ProtocolChecker(
                system.config.timing,
                relax_act_constraints=scheme.relax_act_constraints,
            )
        result = system.run()  # raises ProtocolViolation on any breach
        checked = sum(c.protocol_checker.commands_checked for c in system.controllers)
        assert checked > result.controller.total_served
