"""Precompiled trace blocks vs. the per-event generator: bit for bit.

:class:`~repro.workloads.synthetic.TraceBlocks` materializes the same
RNG decision stream as :class:`~repro.workloads.synthetic.TraceGenerator`
into parallel arrays.  These tests hold the two to exact equality for
every benchmark profile, check the slicing view, the shared-block
cache, and — because worker pools rely on it — that spawned processes
materialize byte-identical blocks.
"""

import multiprocessing

import pytest

from repro.workloads.profiles import BENCHMARKS, profile
from repro.workloads.synthetic import (
    TraceBlocks,
    TraceGenerator,
    blocks_digest,
    compiled_trace,
)

EVENTS = 5000  # > one BLOCK_EVENTS block, so block boundaries are crossed


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_blocks_match_iterator(name):
    """Arrays equal the iterator's events for every profile."""
    prof = profile(name)
    blocks = TraceBlocks(prof, seed=7, core_id=1)
    blocks.ensure(EVENTS)
    gen = TraceGenerator(prof, seed=7, core_id=1)
    for i in range(EVENTS):
        event = next(gen)
        assert blocks.gaps[i] == event.gap
        assert blocks.addrs[i] == event.line_addr
        assert blocks.masks[i] == event.write_mask
        assert bool(blocks.flags[i]) == event.no_fill


def test_events_view_matches_slice():
    """``events(start, count)`` equals skipping then islicing the iterator."""
    from itertools import islice

    prof = profile("GUPS")
    blocks = TraceBlocks(prof, seed=3)
    gen = TraceGenerator(prof, seed=3)
    for _ in range(100):
        next(gen)
    expected = list(islice(gen, 50))
    assert list(blocks.events(100, 50)) == expected


def test_compiled_trace_shares_blocks():
    """Same (profile, seed, core) key returns one shared instance."""
    prof = profile("lbm")
    first = compiled_trace(prof, seed=11, core_id=0)
    first.ensure(10)
    again = compiled_trace(prof, seed=11, core_id=0)
    assert again is first
    assert compiled_trace(prof, seed=11, core_id=1) is not first
    assert compiled_trace(prof, seed=12, core_id=0) is not first


def test_blocks_identical_across_spawned_processes():
    """Spawn workers (fresh interpreters) materialize identical bytes.

    Guards against any dependence on process state — hash
    randomization, import order, fork-inherited RNGs.  ``spawn`` is the
    strictest start method: nothing is inherited.
    """
    jobs = [("GUPS", 1, 0, 3000), ("mcf", 42, 2, 3000)]
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(2) as pool:
        worker_digests = pool.starmap(blocks_digest, jobs)
    local_digests = [blocks_digest(*job) for job in jobs]
    assert worker_digests == local_digests
