"""Latency histograms and ASCII report helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.histogram import LatencyHistogram
from repro.stats.report import (
    bar,
    format_breakdown,
    format_comparison,
    format_histogram,
    format_table,
)


class TestHistogramBasics:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.samples == 0
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0

    def test_single_sample(self):
        h = LatencyHistogram()
        h.record(37)
        assert h.samples == 1
        assert h.mean == 37
        assert h.min_value == h.max_value == 37
        assert h.percentile(0) == 37

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1)

    def test_bad_base_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(base=1.0)
        with pytest.raises(ValueError):
            LatencyHistogram(max_buckets=2)

    def test_percentile_bounds_checked(self):
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_summary_keys(self):
        h = LatencyHistogram()
        h.extend([10, 20, 30])
        summary = h.summary()
        assert summary["samples"] == 3
        assert summary["mean"] == pytest.approx(20)
        assert {"p50", "p95", "p99", "min", "max"} <= set(summary)


class TestHistogramAccuracy:
    @given(st.lists(st.integers(min_value=0, max_value=100_000), min_size=5,
                    max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_percentiles_within_bucket_error(self, values):
        h = LatencyHistogram()
        h.extend(values)
        exact = sorted(values)
        n = len(exact)
        for p in (50, 95):
            approx = h.percentile(p)
            lo_ref = exact[max(0, (n * p) // 100 - 1)]
            hi_ref = exact[min(n - 1, -(-(n * p) // 100))]
            # Geometric buckets: relative error bounded by the base,
            # plus slack for tiny absolute values.
            assert approx <= hi_ref * 1.4 + 3
            assert approx >= lo_ref / 1.4 - 3

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                    max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_mean_exact_and_percentiles_monotone(self, values):
        h = LatencyHistogram()
        h.extend(values)
        assert h.mean == pytest.approx(sum(values) / len(values))
        ps = [h.percentile(p) for p in (0, 25, 50, 75, 95, 100)]
        assert ps == sorted(ps)
        assert h.min_value <= ps[0]
        assert ps[-1] <= h.max_value

    def test_merge_equals_combined(self):
        a, b, combined = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        xs, ys = [5, 100, 2000], [1, 50, 50, 9999]
        a.extend(xs)
        b.extend(ys)
        combined.extend(xs + ys)
        a.merge(b)
        assert a.samples == combined.samples
        assert a.total == combined.total
        assert a.percentile(50) == combined.percentile(50)

    def test_merge_shape_mismatch(self):
        a = LatencyHistogram(base=1.3)
        b = LatencyHistogram(base=1.5)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_into_empty(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        b.extend([7, 8])
        a.merge(b)
        assert a.samples == 2
        assert a.min_value == 7


class TestBar:
    def test_full_and_partial(self):
        assert bar(10, 10, width=10) == "#" * 10
        assert bar(5, 10, width=10) == "#" * 5

    def test_clamps_overflow(self):
        assert bar(100, 10, width=10) == "#" * 10

    def test_invalid(self):
        with pytest.raises(ValueError):
            bar(1, 0)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(("name", "value"), [("a", 1.5), ("bb", 20.25)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "20.250" in lines[3]

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_empty_headers(self):
        with pytest.raises(ValueError):
            format_table((), [])

    def test_format_breakdown(self):
        text = format_breakdown({"act_pre": 0.25, "bg": 0.75}, width=8)
        assert "act_pre" in text
        assert "25.0%" in text

    def test_format_comparison(self):
        text = format_comparison({"power": 100.0}, {"power": 80.0})
        assert "0.800" in text

    def test_format_histogram(self):
        h = LatencyHistogram()
        h.extend([10, 10, 500])
        text = format_histogram(h)
        assert "n=3" in text
        assert "#" in text


class TestControllerIntegration:
    def test_latency_histogram_populated_by_runs(self):
        from repro.sim.config import CacheConfig, SystemConfig
        from repro.sim.system import simulate
        from repro.workloads.mixes import workload

        config = SystemConfig(cache=CacheConfig(llc_bytes=128 * 1024))
        result = simulate(config, workload("GUPS"), 600,
                          warmup_events_per_core=1500)
        hist = result.controller.reads.latency_hist
        assert hist.samples == result.controller.reads.served
        assert hist.percentile(50) > 15  # at least ACT+CAS+burst
        assert hist.max_value == result.controller.reads.latency_max
