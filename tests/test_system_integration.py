"""End-to-end integration: full-system runs and cross-module invariants."""

import pytest

from repro.controller.policies import RowPolicy
from repro.core.schemes import BASELINE, DBI_PRA, FGA, HALF_DRAM, HALF_DRAM_PRA, PRA
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.system import System, simulate
from repro.workloads.mixes import Workload, homogeneous, workload
from repro.workloads.profiles import profile

EVENTS = 1200
WARMUP = 4000  # small but enough for a small LLC


def small_config(scheme=BASELINE, policy=RowPolicy.RELAXED_CLOSE):
    # A 256 kB LLC keeps warmup fast while still producing evictions.
    return SystemConfig(
        scheme=scheme,
        policy=policy,
        cache=CacheConfig(llc_bytes=256 * 1024),
    )


def run(scheme=BASELINE, policy=RowPolicy.RELAXED_CLOSE, wl="GUPS", events=EVENTS):
    wl = workload(wl) if isinstance(wl, str) else wl
    return simulate(
        small_config(scheme, policy), wl, events, warmup_events_per_core=WARMUP
    )


@pytest.fixture(scope="module")
def baseline_gups():
    return run(BASELINE)


@pytest.fixture(scope="module")
def pra_gups():
    return run(PRA)


class TestCompletion:
    def test_all_cores_finish(self, baseline_gups):
        assert all(c.finish_cycle > 0 for c in baseline_gups.cores)
        assert all(c.retired_instructions > 0 for c in baseline_gups.cores)

    def test_runtime_positive(self, baseline_gups):
        assert baseline_gups.runtime_cycles > 0

    def test_ipcs_positive_and_bounded(self, baseline_gups):
        for ipc in baseline_gups.ipcs:
            assert 0 < ipc < 8  # 8-wide core upper bound

    def test_traffic_served(self, baseline_gups):
        c = baseline_gups.controller
        assert c.reads.served > 0
        assert c.writes.served > 0


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run(BASELINE)
        b = run(BASELINE)
        assert a.runtime_cycles == b.runtime_cycles
        assert a.power.total_pj == pytest.approx(b.power.total_pj)
        assert a.controller.reads.served == b.controller.reads.served


class TestPowerInvariants:
    def test_breakdown_sums(self, baseline_gups):
        bd = baseline_gups.power
        assert sum(bd.fractions().values()) == pytest.approx(1.0)
        assert bd.total_power_mw > 0

    def test_background_covers_runtime(self, baseline_gups):
        # Background residency is integrated over every rank-cycle.
        # (4 ranks x runtime; the accountant stores energy, so check
        # indirectly: background power within physical bounds.)
        bg_mw = baseline_gups.power.power_mw("bg")
        # 4 ranks x 8 chips: between PRE_PDN and ACT_STBY per chip.
        assert 32 * 17 < bg_mw < 32 * 43

    def test_activation_histogram_matches_controller(self, baseline_gups):
        total_acts = sum(baseline_gups.activation_histogram.values())
        assert total_acts == baseline_gups.controller.total_activations


class TestPRAInvariants:
    def test_baseline_has_no_false_hits(self, baseline_gups):
        assert baseline_gups.controller.reads.false_hits == 0
        assert baseline_gups.controller.writes.false_hits == 0

    def test_baseline_activations_all_full(self, baseline_gups):
        hist = baseline_gups.activation_histogram
        assert all(hist[g] == 0 for g in range(1, 8))
        assert hist[8] > 0

    def test_pra_uses_partial_activations(self, pra_gups):
        hist = pra_gups.activation_histogram
        assert hist[1] > 0, "GUPS single-word writes must use 1/8 rows"

    def test_pra_saves_power(self, baseline_gups, pra_gups):
        assert pra_gups.avg_power_mw < baseline_gups.avg_power_mw

    def test_pra_saves_write_io(self, baseline_gups, pra_gups):
        assert pra_gups.power.energy_pj["wr_io"] < (
            0.5 * baseline_gups.power.energy_pj["wr_io"]
        )

    def test_pra_performance_close_to_baseline(self, baseline_gups, pra_gups):
        ratio = pra_gups.runtime_cycles / baseline_gups.runtime_cycles
        assert 0.9 < ratio < 1.15

    def test_mean_granularity_below_one(self, pra_gups, baseline_gups):
        assert pra_gups.mean_activation_granularity() < 1.0
        assert baseline_gups.mean_activation_granularity() == pytest.approx(1.0)


class TestSchemeMatrix:
    @pytest.mark.parametrize(
        "scheme", [FGA, HALF_DRAM, HALF_DRAM_PRA, DBI_PRA], ids=lambda s: s.name
    )
    def test_all_schemes_complete(self, scheme):
        result = run(scheme)
        assert result.controller.total_served > 0
        assert result.avg_power_mw > 0

    def test_half_dram_half_granularity(self):
        result = run(HALF_DRAM)
        hist = result.activation_histogram
        assert hist[4] == sum(hist.values())

    def test_fga_slower_than_baseline(self, baseline_gups):
        fga = run(FGA)
        assert fga.runtime_cycles > baseline_gups.runtime_cycles

    def test_half_dram_pra_sub_eighth_activations(self):
        result = run(HALF_DRAM_PRA)
        hist = result.activation_histogram
        # Write activations bucket at 1 (=1/16 rounded up); reads at 4.
        assert hist[1] > 0
        assert hist[4] > 0

    def test_dbi_generates_proactive_writebacks(self):
        lbm = Workload(name="lbm4", apps=(profile("lbm"),) * 4)
        result = run(DBI_PRA, wl=lbm)
        assert result.dbi_proactive_writebacks > 0


class TestPolicies:
    def test_restricted_policy_no_hits(self):
        result = run(BASELINE, policy=RowPolicy.RESTRICTED_CLOSE)
        assert result.controller.total_hits == 0
        assert result.controller.total_served > 0

    def test_restricted_activates_per_access(self, baseline_gups):
        restricted = run(BASELINE, policy=RowPolicy.RESTRICTED_CLOSE)
        served = restricted.controller.total_served
        acts = restricted.controller.total_activations
        # At least one ACT per access; a few extra from refresh
        # force-precharges and drain-mode switches.
        assert served <= acts <= 1.15 * served

    def test_open_page_runs(self):
        result = run(BASELINE, policy=RowPolicy.OPEN_PAGE)
        assert result.controller.total_served > 0


class TestMaxCycles:
    def test_cap_stops_early(self):
        config = small_config()
        system = System(config, homogeneous("GUPS"), 5000, warmup_events_per_core=WARMUP)
        result = system.run(max_cycles=500)
        assert result.runtime_cycles <= 1000  # cap plus bounded batch slack


class TestMixWorkload:
    def test_mix_runs_with_heterogeneous_apps(self):
        result = run(BASELINE, wl="MIX2", events=800)
        names = [c.app_name for c in result.cores]
        assert names == ["mcf", "em3d", "GUPS", "LinkedList"]
        assert all(c.retired_instructions > 0 for c in result.cores)
