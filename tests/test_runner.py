"""Experiment runner: caching, weighted speedup plumbing, normalization."""

import pytest

from repro.controller.policies import RowPolicy
from repro.core.schemes import BASELINE, PRA
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.runner import (
    DEFAULT_EVENTS_PER_CORE,
    ExperimentRunner,
    default_events_per_core,
)
from repro.workloads.mixes import Workload
from repro.workloads.profiles import profile


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(
        events_per_core=800,
        base_config=SystemConfig(cache=CacheConfig(llc_bytes=256 * 1024)),
        warmup_events_per_core=4000,
    )


class TestCaching:
    def test_same_key_returns_cached_object(self, runner):
        a = runner.run("GUPS", BASELINE)
        b = runner.run("GUPS", BASELINE)
        assert a is b

    def test_different_scheme_not_cached(self, runner):
        a = runner.run("GUPS", BASELINE)
        b = runner.run("GUPS", PRA)
        assert a is not b

    def test_string_and_object_workloads_share_cache(self, runner):
        from repro.workloads.mixes import workload

        a = runner.run("GUPS", BASELINE)
        b = runner.run(workload("GUPS"), BASELINE)
        assert a is b


class TestWeightedSpeedup:
    def test_alone_ipcs_one_per_app(self, runner):
        ipcs = runner.alone_ipcs("MIX2")
        assert len(ipcs) == 4
        assert all(ipc > 0 for ipc in ipcs)

    def test_ws_bounded_by_core_count(self, runner):
        ws = runner.weighted_speedup("GUPS", BASELINE)
        assert 0 < ws <= 4.3  # shared can rarely beat alone slightly

    def test_normalized_performance_near_one_for_baseline(self, runner):
        assert runner.normalized_performance("GUPS", BASELINE) == pytest.approx(1.0)

    def test_pra_performance_close_to_baseline(self, runner):
        perf = runner.normalized_performance("GUPS", PRA)
        assert 0.85 < perf < 1.1


class TestNormalizedMetrics:
    def test_baseline_normalizes_to_one(self, runner):
        assert runner.normalized_power("GUPS", BASELINE) == pytest.approx(1.0)
        assert runner.normalized_energy("GUPS", BASELINE) == pytest.approx(1.0)
        assert runner.normalized_edp("GUPS", BASELINE) == pytest.approx(1.0)

    def test_pra_reduces_power_energy_edp(self, runner):
        assert runner.normalized_power("GUPS", PRA) < 0.95
        assert runner.normalized_energy("GUPS", PRA) < 0.95
        assert runner.normalized_edp("GUPS", PRA) < 1.0

    def test_category_normalization(self, runner):
        act = runner.normalized_power("GUPS", PRA, category="act_pre")
        assert act < 0.9

    def test_policy_dimension(self, runner):
        restricted = runner.run("GUPS", BASELINE, RowPolicy.RESTRICTED_CLOSE)
        relaxed = runner.run("GUPS", BASELINE, RowPolicy.RELAXED_CLOSE)
        assert restricted is not relaxed
        assert restricted.policy_name == "restricted-close-page"


class TestDefaults:
    def test_default_events(self, monkeypatch):
        monkeypatch.delenv("REPRO_EVENTS", raising=False)
        assert default_events_per_core() == DEFAULT_EVENTS_PER_CORE

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENTS", "1234")
        assert default_events_per_core() == 1234

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENTS", "-3")
        with pytest.raises(ValueError):
            default_events_per_core()
