"""Engine selection layer: decision table, detection, forcing, fallback.

``repro.engine`` picks compiled-vs-interpreted once per process, before
any hot module is imported.  These tests pin the decision table
(injectable, so no compiled build is needed), the filesystem-based
detection, the ``REPRO_ENGINE`` forcing paths (in subprocesses — the
choice is import-time), the loud fallback warning, and the provenance
stamp (``engine_env``) that benchmark artifacts carry.
"""

import importlib.machinery
import json
import os
import subprocess
import sys

import pytest

import repro
from repro.engine import (
    ACTIVE_ENGINE,
    COMPILED_MODULES,
    ENGINES,
    EngineFallbackWarning,
    _SourceOnlyFinder,
    active_engine,
    compiled_available,
    compiled_source_paths,
    compiled_status,
    engine_env,
    resolve_engine,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def _run_python(code, **env_overrides):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env.pop("REPRO_ENGINE", None)
    env.update(env_overrides)
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, env=env,
    )


# ----------------------------------------------------------------------
# Decision table (injectable; no build required).
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "requested,available,expected",
    [
        ("auto", True, "compiled"),
        ("auto", False, "interpreted"),
        ("compiled", True, "compiled"),
        ("interpreted", True, "interpreted"),
        ("interpreted", False, "interpreted"),
    ],
)
def test_resolve_engine_decision_table(requested, available, expected):
    assert resolve_engine(requested, available=available) == expected


def test_resolve_engine_fallback_warns():
    """compiled-but-unavailable falls back loudly, not silently."""
    with pytest.warns(EngineFallbackWarning, match="falling back"):
        assert resolve_engine("compiled", available=False) == "interpreted"


def test_resolve_engine_rejects_unknown():
    with pytest.raises(ValueError, match="not a valid engine"):
        resolve_engine("jit", available=False)


def test_resolve_engine_reads_environment(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "interpreted")
    assert resolve_engine(available=True) == "interpreted"
    monkeypatch.setenv("REPRO_ENGINE", "")
    assert resolve_engine(available=False) == "interpreted"


# ----------------------------------------------------------------------
# Detection: filesystem probe, all-or-nothing availability.
# ----------------------------------------------------------------------
def _fake_tree(tmp_path, compiled):
    """Lay out module sources (plus fake extensions for ``compiled``)."""
    suffix = importlib.machinery.EXTENSION_SUFFIXES[0]
    for module in COMPILED_MODULES:
        rel = module.split(".")[1:]
        base = tmp_path.joinpath(*rel)
        base.parent.mkdir(parents=True, exist_ok=True)
        base.with_name(base.name + ".py").write_text("x = 1\n")
        if module in compiled:
            base.with_name(base.name + suffix).write_bytes(b"\x00")
    return str(tmp_path)


def test_compiled_status_probes_filesystem(tmp_path):
    some = COMPILED_MODULES[:2]
    root = _fake_tree(tmp_path, compiled=some)
    status = compiled_status(root)
    assert set(status) == set(COMPILED_MODULES)
    for module in COMPILED_MODULES:
        assert status[module] == (module in some)
    assert not compiled_available(root)


def test_compiled_available_needs_every_module(tmp_path):
    """A partial build must not be treated as a compiled install."""
    assert compiled_available(_fake_tree(tmp_path, COMPILED_MODULES))
    assert not compiled_available(_fake_tree(tmp_path / "p", COMPILED_MODULES[1:]))


def test_compiled_source_paths_exist():
    """The list handed to mypycify names real, importable sources."""
    paths = compiled_source_paths()
    assert len(paths) == len(COMPILED_MODULES)
    for path in paths:
        assert os.path.isfile(path), path


def test_this_environment_runs_interpreted():
    """The dev container has no mypyc build: detection must say so."""
    assert ACTIVE_ENGINE in ("compiled", "interpreted")
    assert ACTIVE_ENGINE == ("compiled" if compiled_available() else "interpreted")
    assert active_engine() == ACTIVE_ENGINE == repro.ACTIVE_ENGINE


# ----------------------------------------------------------------------
# Forced-interpreted source loading.
# ----------------------------------------------------------------------
def test_source_only_finder_serves_py_sources():
    """The finder resolves listed modules to SourceFileLoader specs."""
    finder = _SourceOnlyFinder(os.path.join(SRC, "repro"))
    spec = finder.find_spec("repro.dram.soa")
    assert spec is not None
    assert isinstance(spec.loader, importlib.machinery.SourceFileLoader)
    assert spec.origin.endswith(os.path.join("dram", "soa.py"))
    # Unlisted modules fall through to the default machinery.
    assert finder.find_spec("repro.dram.bank") is None
    assert finder.find_spec("json") is None


# ----------------------------------------------------------------------
# Import-time forcing (the choice is per-process, so subprocesses).
# ----------------------------------------------------------------------
def test_env_forcing_in_subprocess():
    probe = (
        "import repro, warnings\n"
        "print(repro.ACTIVE_ENGINE)\n"
    )
    out = _run_python(probe, REPRO_ENGINE="interpreted")
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() == "interpreted"

    out = _run_python(probe)  # auto
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() in ("compiled", "interpreted")


def test_env_forcing_invalid_value_is_loud():
    out = _run_python("import repro\n", REPRO_ENGINE="turbo")
    assert out.returncode != 0
    assert "not a valid engine" in out.stderr


def test_env_forcing_compiled_without_build_warns():
    """Only meaningful when no build is installed (the dev default)."""
    if compiled_available():
        pytest.skip("compiled build installed; fallback path not reachable")
    probe = (
        "import warnings\n"
        "with warnings.catch_warnings(record=True) as caught:\n"
        "    warnings.simplefilter('always')\n"
        "    import repro\n"
        "from repro.engine import EngineFallbackWarning\n"
        "assert repro.ACTIVE_ENGINE == 'interpreted'\n"
        "assert any(issubclass(w.category, EngineFallbackWarning)"
        " for w in caught), [str(w) for w in caught]\n"
        "print('fell back')\n"
    )
    out = _run_python(probe, REPRO_ENGINE="compiled")
    assert out.returncode == 0, out.stderr
    assert "fell back" in out.stdout


# ----------------------------------------------------------------------
# Provenance stamp.
# ----------------------------------------------------------------------
def test_engine_env_schema():
    env = engine_env()
    assert env["engine"] == ACTIVE_ENGINE
    assert isinstance(env["python"], str) and env["python"].count(".") == 2
    assert env["numpy"] is None or isinstance(env["numpy"], str)
    assert "-" in env["platform"]
    assert isinstance(env["cpus"], int) and env["cpus"] >= 1
    fp = env["fingerprint"]
    assert len(fp) == 16 and int(fp, 16) >= 0
    # Stable within a process: same inputs, same fingerprint.
    assert engine_env()["fingerprint"] == fp
    # JSON-serializable as-is (it lands in BENCH_throughput.json).
    json.dumps(env)


def test_engines_tuple_is_exhaustive():
    assert ENGINES == ("auto", "compiled", "interpreted")
    assert set(COMPILED_MODULES) == {
        "repro.cache.set_assoc",
        "repro.controller.memctrl",
        "repro.dram.rank",
        "repro.dram.soa",
    }
