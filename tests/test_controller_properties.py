"""Property-based controller tests: random request streams always drain.

For any random batch of requests and any scheme/policy, the controller
must serve everything without deadlock, and its counters must remain
consistent (served = enqueued, hits + misses partition services,
activation histogram totals match activation counts).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.memctrl import ChannelController
from repro.controller.policies import RowPolicy
from repro.core.schemes import BASELINE, FGA, HALF_DRAM, HALF_DRAM_PRA, PRA
from repro.dram.channel import Channel
from repro.dram.commands import Address, ReqKind, Request
from repro.dram.protocol import ProtocolChecker
from repro.dram.timing import DDR3_1600
from repro.power.accounting import PowerAccountant
from repro.power.params import DDR3_1600_POWER

T = DDR3_1600

request_specs = st.lists(
    st.tuples(
        st.booleans(),                          # is_write
        st.integers(min_value=0, max_value=1),  # rank
        st.integers(min_value=0, max_value=7),  # bank
        st.integers(min_value=0, max_value=7),  # row
        st.integers(min_value=0, max_value=15),  # column
        st.integers(min_value=1, max_value=255),  # dirty mask
        st.integers(min_value=0, max_value=30),  # arrival stride
    ),
    min_size=1,
    max_size=60,
)

schemes = st.sampled_from([BASELINE, FGA, HALF_DRAM, PRA, HALF_DRAM_PRA])
policies = st.sampled_from(
    [RowPolicy.RELAXED_CLOSE, RowPolicy.RESTRICTED_CLOSE, RowPolicy.OPEN_PAGE]
)


def build_controller(scheme, policy):
    channel = Channel(
        T,
        num_ranks=2,
        relax_act_constraints=scheme.relax_act_constraints,
        burst_cycles_multiplier=scheme.burst_multiplier,
    )
    acct = PowerAccountant(DDR3_1600_POWER, T, chips_per_rank=8)
    return (
        ChannelController(channel, scheme, T, policy, acct, read_queue_size=16,
                          write_queue_size=16, drain_high_watermark=12,
                          drain_low_watermark=4),
        acct,
    )


@given(request_specs, schemes, policies)
@settings(max_examples=60, deadline=None)
def test_random_streams_drain_and_counters_balance(specs, scheme, policy):
    ctrl, acct = build_controller(scheme, policy)
    cycle = 0
    total_reads = total_writes = 0
    for is_write, rank, bank, row, col, mask, stride in specs:
        cycle += stride
        req = Request(
            kind=ReqKind.WRITE if is_write else ReqKind.READ,
            addr=Address(channel=0, rank=rank, bank=bank, row=row, column=col),
            arrive_cycle=cycle,
            dirty_mask=mask,
        )
        if is_write:
            total_writes += 1
        else:
            total_reads += 1
        ctrl.submit(req)
        # Interleave a little scheduling with arrivals.
        issued, hint = ctrl.step(cycle)
        cycle = cycle + 1 if issued else cycle

    guard = 0
    while ctrl.pending and guard < 400_000:
        issued, hint = ctrl.step(cycle)
        cycle = cycle + 1 if issued else max(hint, cycle + 1)
        guard += 1
    assert not ctrl.pending, f"deadlock with {scheme.name}/{policy.value}"

    stats = ctrl.stats
    assert stats.reads.served == total_reads
    assert stats.writes.served == total_writes
    assert stats.reads.row_hits <= stats.reads.served
    assert stats.writes.row_hits <= stats.writes.served
    assert stats.reads.false_hits <= stats.reads.served
    assert len(ctrl.completed_reads) == total_reads
    # The accountant's histogram covers exactly the issued activations.
    assert sum(acct.activations_by_granularity.values()) == stats.total_activations
    assert acct.read_bursts == total_reads
    assert acct.write_bursts == total_writes
    if not scheme.write_uses_mask:
        assert stats.reads.false_hits == 0
        assert stats.writes.false_hits == 0


@given(request_specs)
@settings(max_examples=30, deadline=None)
def test_pra_activation_granularity_covers_masks(specs):
    """Every PRA write is served by an activation covering its mask."""
    ctrl, acct = build_controller(PRA, RowPolicy.RELAXED_CLOSE)
    cycle = 0
    for is_write, rank, bank, row, col, mask, stride in specs:
        cycle += stride
        req = Request(
            kind=ReqKind.WRITE if is_write else ReqKind.READ,
            addr=Address(channel=0, rank=rank, bank=bank, row=row, column=col),
            arrive_cycle=cycle,
            dirty_mask=mask,
        )
        ctrl.submit(req)
    guard = 0
    while ctrl.pending and guard < 400_000:
        issued, hint = ctrl.step(cycle)
        cycle = cycle + 1 if issued else max(hint, cycle + 1)
        guard += 1
    assert not ctrl.pending
    # Writes were all served despite partial activations: the service
    # loop itself is the oracle (a non-covering activation would strand
    # the request as an endless false hit and trip the guard).


# High-locality streams: a tiny rank x bank x row space with bursty
# arrivals piles mask-compatible column hits onto open rows, which is
# exactly what makes the scheduler commit multi-command burst streaks.
streak_specs = st.lists(
    st.tuples(
        st.booleans(),                           # is_write
        st.integers(min_value=0, max_value=1),   # rank
        st.integers(min_value=0, max_value=1),   # bank
        st.integers(min_value=0, max_value=1),   # row
        st.integers(min_value=0, max_value=15),  # column
        st.integers(min_value=1, max_value=255),  # dirty mask
        st.integers(min_value=0, max_value=2),   # arrival stride
    ),
    min_size=8,
    max_size=60,
)

streak_schemes = st.sampled_from([BASELINE, PRA, HALF_DRAM_PRA])


@given(streak_specs, streak_schemes, policies)
@settings(max_examples=60, deadline=None)
def test_streak_schedules_obey_protocol(specs, scheme, policy):
    """Burst-streak commits never violate DDR3 rules or PRA masking.

    The :class:`ProtocolChecker` shadows every command the controller
    claims to issue and raises on any tCCD/tRTRS/tRRD/tFAW spacing
    breach, command-bus conflict, or a column command whose needed mask
    is not covered by the open activation — so a clean drain of a
    streak-heavy stream is the whole assertion.
    """
    ctrl, acct = build_controller(scheme, policy)
    ctrl.protocol_checker = ProtocolChecker(
        T, relax_act_constraints=scheme.relax_act_constraints
    )
    cycle = 0
    for is_write, rank, bank, row, col, mask, stride in specs:
        cycle += stride
        ctrl.submit(Request(
            kind=ReqKind.WRITE if is_write else ReqKind.READ,
            addr=Address(channel=0, rank=rank, bank=bank, row=row, column=col),
            arrive_cycle=cycle,
            dirty_mask=mask,
        ))
    guard = 0
    while ctrl.pending and guard < 400_000:
        issued, hint = ctrl.step(cycle)
        cycle = cycle + 1 if issued else max(hint, cycle + 1)
        guard += 1
    assert not ctrl.pending, f"deadlock with {scheme.name}/{policy.value}"
    assert ctrl.protocol_checker.commands_checked > 0
    stats = ctrl.stats
    # Streak accounting: each committed streak covers >= 2 column
    # commands, and no streak can serve more than the queue could hold.
    assert stats.streak_commands >= 2 * stats.streaks
    assert stats.streak_commands <= stats.reads.served + stats.writes.served


def test_same_row_read_run_commits_a_streak():
    """A stack of same-row reads must go out as one multi-command streak."""
    ctrl, acct = build_controller(PRA, RowPolicy.OPEN_PAGE)
    ctrl.protocol_checker = ProtocolChecker(T, relax_act_constraints=True)
    for col in range(8):
        ctrl.submit(Request(
            kind=ReqKind.READ,
            addr=Address(channel=0, rank=0, bank=0, row=3, column=col),
            arrive_cycle=0,
        ))
    cycle = 0
    guard = 0
    while ctrl.pending and guard < 100_000:
        issued, hint = ctrl.step(cycle)
        cycle = cycle + 1 if issued else max(hint, cycle + 1)
        guard += 1
    assert not ctrl.pending
    assert ctrl.stats.reads.served == 8
    assert ctrl.stats.streaks >= 1
    assert ctrl.stats.streak_commands >= 2
    # Every service that didn't need its own ACT rode an open-row hit
    # (the row-hit cap may split the run across several activations).
    assert ctrl.stats.reads.row_hits == 8 - ctrl.stats.reads.activations
    assert ctrl.stats.reads.activations <= 2
