"""SDS comparator (Section 3): PRA vs Skinflint granularity reduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sds import (
    GranularityComparison,
    SDSComparator,
    StoreWidthModel,
    masks_from_distribution,
)

masks = st.integers(min_value=1, max_value=0xFF)


class TestStoreWidthModel:
    def test_default_valid(self):
        model = StoreWidthModel()
        assert sum(p for _, p in model.widths) == pytest.approx(1.0)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            StoreWidthModel(widths=((8, 0.5),))

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            StoreWidthModel(widths=((3, 1.0),))

    def test_sampling_in_support(self):
        import random

        model = StoreWidthModel()
        rng = random.Random(1)
        widths = {model.sample(rng) for _ in range(200)}
        assert widths <= {1, 2, 4, 8}


class TestByteColumns:
    @given(masks)
    @settings(max_examples=100)
    def test_columns_nonempty_and_bounded(self, mask):
        comp = SDSComparator(seed=1)
        cols = comp.byte_columns_for_mask(mask)
        assert 0 < cols <= 0xFF

    def test_full_width_stores_touch_all_columns(self):
        comp = SDSComparator(StoreWidthModel(widths=((8, 1.0),)), seed=1)
        # Any single dirty word with an 8-byte store dirties all 8
        # byte positions: SDS cannot skip any chip.
        assert comp.byte_columns_for_mask(0b1) == 0xFF

    def test_single_byte_store_touches_one_column(self):
        comp = SDSComparator(StoreWidthModel(widths=((1, 1.0),)), seed=1)
        cols = comp.byte_columns_for_mask(0b1)
        assert bin(cols).count("1") == 1


class TestComparison:
    def test_pra_fraction_from_popcount(self):
        comp = SDSComparator(seed=2)
        result = comp.compare([0b1, 0b11, 0xFF])
        assert result.lines == 3
        assert result.pra_mean_fraction == pytest.approx((1 + 2 + 8) / 24)

    def test_reductions_complementary(self):
        comp = SDSComparator(seed=2)
        result = comp.compare([0b1] * 10)
        assert result.pra_reduction == pytest.approx(1 - result.pra_mean_fraction)
        assert result.sds_reduction == pytest.approx(1 - result.sds_mean_fraction)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            SDSComparator().compare([])

    def test_paper_section3_shape(self):
        # Single-word-dirty traffic: PRA reduces granularity far more
        # than SDS can reduce chip accesses (42% vs 16% in the paper,
        # measured over the whole workload suite).
        dist = ((1, 0.8), (2, 0.15), (8, 0.05))
        stream = masks_from_distribution(dist, 2000, seed=3)
        result = SDSComparator(seed=4).compare(stream)
        assert result.pra_reduction > 2 * result.sds_reduction
        assert result.pra_reduction > 0.5
        assert result.sds_reduction < 0.35


class TestMasksFromDistribution:
    def test_count_and_range(self):
        stream = masks_from_distribution(((1, 0.5), (8, 0.5)), 100, seed=1)
        assert len(stream) == 100
        assert all(0 < m <= 0xFF for m in stream)

    def test_full_line_mask(self):
        stream = masks_from_distribution(((8, 1.0),), 10, seed=1)
        assert all(m == 0xFF for m in stream)

    def test_deterministic(self):
        a = masks_from_distribution(((1, 1.0),), 50, seed=9)
        b = masks_from_distribution(((1, 1.0),), 50, seed=9)
        assert a == b
