"""Geometry invariants of the baseline DRAM system (Table 3 / Sec 2.1)."""

import pytest

from repro.dram.geometry import (
    BASELINE_GEOMETRY,
    FULL_MASK,
    LINE_BYTES,
    WORD_BYTES,
    WORDS_PER_LINE,
    ChipGeometry,
    SystemGeometry,
)


class TestChipGeometry:
    def test_baseline_capacity_is_2gb(self):
        chip = ChipGeometry()
        assert chip.capacity_bits == 2 * 1024**3

    def test_row_is_8kbit(self):
        # An 8K-bit row is activated per chip (Section 2.2.1).
        assert ChipGeometry().row_bits == 8 * 1024

    def test_mat_grid_matches_row(self):
        chip = ChipGeometry()
        # 16 MATs x 512 columns = 8192 bits = one chip row.
        assert chip.mats_per_subarray * chip.mat_cols == chip.row_bits

    def test_rows_per_subarray(self):
        chip = ChipGeometry()
        assert chip.rows_per_subarray == 512
        assert chip.rows_per_subarray == chip.mat_rows

    def test_mat_groups_is_eight(self):
        # 16 MATs paired into 8 groups = 8 PRA mask bits.
        assert ChipGeometry().mat_groups == 8
        assert ChipGeometry().mat_groups == WORDS_PER_LINE


class TestSystemGeometry:
    def test_baseline_capacity_is_8gb(self):
        assert BASELINE_GEOMETRY.capacity_bytes == 8 * 1024**3

    def test_bus_width_64bit(self):
        assert BASELINE_GEOMETRY.bus_bytes == 8

    def test_rank_row_buffer_is_8kb(self):
        # "an 8KB row is opened" (Section 2.2.1).
        assert BASELINE_GEOMETRY.row_buffer_bytes == 8 * 1024

    def test_lines_per_row(self):
        assert BASELINE_GEOMETRY.lines_per_row == 128

    def test_total_banks(self):
        assert BASELINE_GEOMETRY.total_banks == 2 * 2 * 8

    def test_single_channel_variant(self):
        geo = SystemGeometry(channels=1, ranks_per_channel=1)
        assert geo.capacity_bytes == 2 * 1024**3
        assert geo.row_buffer_bytes == 8 * 1024


class TestLineConstants:
    def test_line_and_word_sizes(self):
        assert LINE_BYTES == 64
        assert WORD_BYTES == 8
        assert WORDS_PER_LINE * WORD_BYTES == LINE_BYTES

    def test_full_mask(self):
        assert FULL_MASK == 0xFF
