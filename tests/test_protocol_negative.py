"""One negative test per documented protocol rule.

:data:`repro.dram.protocol.RULES` enumerates every rule name the
checker can attach to a :class:`ProtocolViolation`.  For each entry
this module crafts a minimal command stream that breaks exactly that
rule and asserts the violation carries the *machine-readable* rule
name (``exc.rule``), not just a matching message — the runtime
sanitizer and debugging tools dispatch on that field.

The parametrization iterates ``RULES`` itself, so adding a rule to the
checker without adding a provocation here fails the suite.
"""

import pytest

from repro.dram.geometry import FULL_MASK
from repro.dram.protocol import (
    Cmd,
    CommandRecord,
    ProtocolChecker,
    ProtocolViolation,
    RULES,
)
from repro.dram.timing import DDR3_1600

T = DDR3_1600


def act(cycle, rank=0, bank=0, row=1, mask=FULL_MASK, granularity=8,
        masked=False):
    return CommandRecord(cycle=cycle, cmd=Cmd.ACT, rank=rank, bank=bank,
                         row=row, mask=mask, granularity=granularity,
                         masked=masked)


def rd(cycle, rank=0, bank=0, needed=FULL_MASK, start=None, end=None):
    start = cycle + T.tcas if start is None else start
    end = start + T.tburst if end is None else end
    return CommandRecord(cycle=cycle, cmd=Cmd.RD, rank=rank, bank=bank,
                         burst_start=start, burst_end=end, needed_mask=needed)


def wr(cycle, rank=0, bank=0, needed=FULL_MASK):
    start = cycle + T.tcwl
    return CommandRecord(cycle=cycle, cmd=Cmd.WR, rank=rank, bank=bank,
                         burst_start=start, burst_end=start + T.tburst,
                         needed_mask=needed)


def pre(cycle, rank=0, bank=0):
    return CommandRecord(cycle=cycle, cmd=Cmd.PRE, rank=rank, bank=bank)


def ref(cycle, rank=0):
    return CommandRecord(cycle=cycle, cmd=Cmd.REF, rank=rank)


# ----------------------------------------------------------------------
# rule name -> command stream whose *last* command breaks exactly it
# ----------------------------------------------------------------------
def _s_act_to_open_bank():
    return [act(0), act(T.trc, row=2)]


def _s_trcd():
    return [act(0), rd(T.trcd - 1)]


def _s_tras():
    return [act(0), pre(T.tras - 1)]


def _s_trp():
    # Delay the PRE so tRP (PRE + tRP) binds strictly later than the
    # same-bank tRC floor; the next ACT then violates tRP alone.
    return [act(0), pre(T.tras + 5), act(T.tras + 5 + T.trp - 1, row=2)]


def _s_trc():
    # Legal earliest PRE: tRP and tRC expire together (tRC = tRAS+tRP
    # on DDR3); the tie is reported as the classic cycle-time rule.
    return [act(0), pre(T.tras), act(T.trc - 1, row=2)]


def _s_twr():
    write = wr(T.trcd)
    return [act(0), write, pre(write.burst_end + T.twr - 1)]


def _s_trtp():
    # A late read pushes the read-to-precharge floor past tRAS.
    read = rd(T.tras + 2)
    return [act(0), read, pre(read.cycle + T.trtp - 1)]


def _s_tccd():
    return [act(0), rd(T.trcd), rd(T.trcd + T.tccd - 1)]


def _s_twtr():
    write = wr(T.trcd)
    return [act(0), write, rd(write.cycle + T.tccd + 1)]


def _s_trrd():
    return [act(0, bank=0), act(T.trrd - 1, bank=1)]


def _s_tfaw():
    stream = [act(i * T.trrd, bank=i) for i in range(4)]
    stream.append(act(4 * T.trrd, bank=4))
    return stream


def _s_mask_coverage():
    return [act(0, mask=0b1, masked=True, granularity=1),
            wr(T.trcd + 1, needed=0b10)]


def _s_mask_validity():
    return [act(0, mask=0)]


def _s_mask_transfer_cycle():
    # A masked ACT owns the following (mask-transfer) command cycle.
    return [act(0, mask=0b1, masked=True, granularity=1), act(1, bank=1)]


def _s_pre_to_precharged_bank():
    return [pre(0)]


def _s_column_to_precharged_bank():
    return [rd(0)]


def _s_command_bus():
    return [act(0, bank=0), act(0, bank=1)]


def _s_data_bus():
    # Second read's burst starts before the first one's has drained.
    first = rd(T.trcd, bank=0)
    return [act(0, bank=0), act(T.trrd, bank=1), first,
            rd(T.trcd + T.tccd + 1, bank=1,
               start=first.burst_end - 1, end=first.burst_end + 3)]


def _s_burst_window():
    return [act(0), rd(T.trcd, start=T.trcd - 1, end=T.trcd + 3)]


def _s_ref_open_banks():
    return [act(0), ref(1)]


def _s_trfc():
    return [ref(0), act(T.trfc - 1)]


PROVOCATIONS = {
    "ACT-to-open-bank": _s_act_to_open_bank,
    "tRCD": _s_trcd,
    "tRAS": _s_tras,
    "tRP": _s_trp,
    "tRC": _s_trc,
    "tWR": _s_twr,
    "tRTP": _s_trtp,
    "tCCD": _s_tccd,
    "tWTR": _s_twtr,
    "tRRD": _s_trrd,
    "tFAW": _s_tfaw,
    "mask-coverage": _s_mask_coverage,
    "mask-validity": _s_mask_validity,
    "mask-transfer-cycle": _s_mask_transfer_cycle,
    "PRE-to-precharged-bank": _s_pre_to_precharged_bank,
    "column-to-precharged-bank": _s_column_to_precharged_bank,
    "command-bus": _s_command_bus,
    "data-bus": _s_data_bus,
    "burst-window": _s_burst_window,
    "REF-open-banks": _s_ref_open_banks,
    "tRFC": _s_trfc,
}


def test_every_documented_rule_has_a_provocation():
    """The table above covers RULES exactly (no drift either way)."""
    assert set(PROVOCATIONS) == set(RULES)


@pytest.mark.parametrize("rule", RULES)
def test_rule_fires_with_its_name(rule):
    """The last command of the stream trips exactly the named rule."""
    stream = PROVOCATIONS[rule]()
    checker = ProtocolChecker(T)
    for record in stream[:-1]:
        checker.observe(record)  # prefix must be legal
    with pytest.raises(ProtocolViolation) as exc:
        checker.observe(stream[-1])
    assert exc.value.rule == rule
    assert rule in str(exc.value)


@pytest.mark.parametrize("rule", RULES)
def test_rule_prefix_is_legal_and_boundary_passes(rule):
    """Dropping the offending command leaves a clean stream."""
    stream = PROVOCATIONS[rule]()
    checker = ProtocolChecker(T)
    for record in stream[:-1]:
        checker.observe(record)
    assert checker.commands_checked == len(stream) - 1


def test_violation_is_not_an_assertion():
    """Violations must survive ``python -O`` (satellite requirement)."""
    assert issubclass(ProtocolViolation, Exception)
    assert not issubclass(ProtocolViolation, AssertionError)
    violation = ProtocolViolation("tRCD", "boom")
    assert violation.rule == "tRCD"
