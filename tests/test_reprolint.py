"""reprolint self-test: the repo lints clean, every fixture fails.

Two obligations pin the linter itself:

* ``python -m repro.analysis.lint src/`` must exit 0 on the committed
  tree (the rules describe invariants the code actually upholds);
* each fixture under ``tests/lint_fixtures/`` must trip exactly its
  named rule with a non-zero exit, so a rule that silently stops
  firing breaks this suite rather than rotting unnoticed.
"""

import os

import pytest

from repro.analysis.lint import lint_paths, main
from repro.analysis.rules import ALL_RULES, RULE_IDS, check_file

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
FIXTURE_DIR = os.path.join(REPO_ROOT, "tests", "lint_fixtures")

#: rule id -> fixture file expected to trip it (rules with several
#: trigger spellings may appear more than once).
FIXTURES = {
    "determinism-global-random": "global_random.py",
    "determinism-wallclock": "wallclock.py",
    "determinism-unordered-iter": "unordered_iter.py",
    "determinism-float-energy": "float_energy.py",
    "determinism-digest-canonical": "digest_noncanonical.py",
    "oracle-twin-undeclared": "oracle_twin_undeclared.py",
    "oracle-test-missing": "oracle_test_missing.py",
    "hygiene-slots": "slots_missing.py",
    "hygiene-try-in-loop": "try_in_loop.py",
    "hygiene-mutable-default": "mutable_default.py",
    "compiled-incompatible": "compiled_incompatible.py",
    "twin-drift": "twin_drift.py",
    "cow-unsafe-mutation": "cow_unsafe_mutation.py",
    "timing-unchecked-issue": "timing_unchecked_issue.py",
}

EXTRA_FIXTURES = {
    "determinism-global-random": ["global_random_import.py"],
}


def _fixture(name):
    return os.path.join(FIXTURE_DIR, name)


# ----------------------------------------------------------------------
# The committed tree is clean.
# ----------------------------------------------------------------------
def test_src_tree_lints_clean():
    """The simulator source trips no rule (acceptance criterion)."""
    findings = lint_paths([SRC], repo_root=REPO_ROOT)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_exits_zero_on_src(capsys):
    """``python -m repro.analysis.lint src/`` exits 0 on the repo."""
    assert main([SRC]) == 0
    assert "0 findings" in capsys.readouterr().err


def test_tests_tree_lints_clean():
    """The test suite itself honours the repo-wide rules too."""
    findings = lint_paths(
        [os.path.join(REPO_ROOT, "tests")], repo_root=REPO_ROOT
    )
    assert findings == [], "\n".join(f.render() for f in findings)


# ----------------------------------------------------------------------
# Fast-path registration coverage: the oracle-parity rules must be
# *armed* for the performance-critical modules, not just pass on them.
# ----------------------------------------------------------------------
BATCH_FAST_PATHS = (
    "src/repro/dram/soa_batch.py",
    "src/repro/sim/batch.py",
)


@pytest.mark.parametrize("rel_path", BATCH_FAST_PATHS)
def test_batch_modules_are_registered_fast_paths(rel_path):
    """The batch-kernel modules are in the registry and lint armed.

    Registration is what makes ``oracle-twin-undeclared`` /
    ``oracle-test-missing`` fire if a future edit drops the
    declarations; an unregistered module passes vacuously.
    """
    from repro.analysis.registry import FAST_PATH_MODULES, is_registered_fast_path

    assert rel_path in FAST_PATH_MODULES
    assert is_registered_fast_path(os.path.join(REPO_ROOT, rel_path))


@pytest.mark.parametrize(
    "module_name", ["repro.dram.soa_batch", "repro.sim.batch"]
)
def test_batch_oracle_declarations_resolve(module_name):
    """ORACLE_TWIN / ORACLE_TESTS on the batch modules are live.

    The twin's dotted path must import (module, optionally attribute)
    and every declared equivalence test must exist and mention the
    module, so the pairing cannot silently rot.
    """
    import importlib

    module = importlib.import_module(module_name)
    assert module.REPRO_FAST_PATH is True

    twin = module.ORACLE_TWIN
    parts = twin.split(".")
    for split in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:split]))
        except ImportError:
            continue
        for attr in parts[split:]:
            obj = getattr(obj, attr)
        break
    else:
        pytest.fail(f"ORACLE_TWIN {twin!r} does not import")

    stem = module_name.rsplit(".", 1)[1]
    for test_rel in module.ORACLE_TESTS:
        test_path = os.path.join(REPO_ROOT, test_rel)
        assert os.path.isfile(test_path), test_rel
        with open(test_path, encoding="utf-8") as handle:
            assert stem in handle.read(), (
                f"{test_rel} never references {stem}"
            )


@pytest.mark.parametrize("rel_path", BATCH_FAST_PATHS)
def test_batch_modules_trip_rule_without_declarations(rel_path, tmp_path):
    """Stripping the declarations from a registered path fails lint."""
    source = open(os.path.join(REPO_ROOT, rel_path), encoding="utf-8").read()
    stripped = "\n".join(
        line for line in source.splitlines()
        if not line.startswith(("ORACLE_TWIN", "ORACLE_TESTS"))
    )
    # Recreate the registered repo-relative path under tmp_path so the
    # path-based registry match still fires.
    clone = tmp_path / rel_path
    clone.parent.mkdir(parents=True)
    clone.write_text(stripped)
    rules = {f.rule for f in check_file(str(clone), repo_root=str(tmp_path))}
    assert "oracle-twin-undeclared" in rules
    assert "oracle-test-missing" in rules


# ----------------------------------------------------------------------
# Compiled-engine list: the registry mirrors repro.engine, every listed
# module keeps resolving oracle declarations, and the mypyc rule is
# armed for the listed paths (not just passing vacuously).
# ----------------------------------------------------------------------
COMPILED_MODULES = (
    "repro.cache.set_assoc",
    "repro.controller.memctrl",
    "repro.dram.rank",
    "repro.dram.soa",
)


def test_compiled_list_matches_engine():
    """registry.COMPILED_MODULE_PATHS mirrors repro.engine exactly.

    The engine list drives the mypyc build and runtime detection; the
    registry list drives the lint rule.  If they diverge, a module
    could be compiled without being linted for compilability (or vice
    versa), so the mapping is pinned structurally.
    """
    from repro.analysis.registry import COMPILED_MODULE_PATHS
    from repro.engine import COMPILED_MODULES as ENGINE_LIST

    assert tuple(sorted(ENGINE_LIST)) == COMPILED_MODULES
    expected = {
        "src/" + mod.replace(".", "/") + ".py" for mod in ENGINE_LIST
    }
    assert COMPILED_MODULE_PATHS == frozenset(expected)


@pytest.mark.parametrize("module_name", COMPILED_MODULES)
def test_compiled_modules_are_registered_fast_paths(module_name):
    """Every compiled module is also oracle-registered (rules armed)."""
    from repro.analysis.registry import (
        FAST_PATH_MODULES,
        is_compiled_module,
        is_registered_fast_path,
    )

    rel_path = "src/" + module_name.replace(".", "/") + ".py"
    assert rel_path in FAST_PATH_MODULES
    full = os.path.join(REPO_ROOT, rel_path)
    assert is_registered_fast_path(full)
    assert is_compiled_module(full, "")


@pytest.mark.parametrize("module_name", COMPILED_MODULES)
def test_compiled_oracle_declarations_resolve(module_name):
    """ORACLE_TWIN / ORACLE_TESTS on the compiled modules are live."""
    import importlib

    module = importlib.import_module(module_name)
    assert module.REPRO_FAST_PATH is True

    twins = module.ORACLE_TWIN
    if isinstance(twins, str):
        twins = (twins,)
    for twin in twins:
        parts = twin.split(".")
        for split in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:split]))
            except ImportError:
                continue
            for attr in parts[split:]:
                obj = getattr(obj, attr)
            break
        else:
            pytest.fail(f"ORACLE_TWIN {twin!r} does not import")

    stem = module_name.rsplit(".", 1)[1]
    for test_rel in module.ORACLE_TESTS:
        test_path = os.path.join(REPO_ROOT, test_rel)
        assert os.path.isfile(test_path), test_rel
        with open(test_path, encoding="utf-8") as handle:
            assert stem in handle.read(), (
                f"{test_rel} never references {stem}"
            )


def test_compiled_rule_is_armed_for_listed_paths(tmp_path):
    """A mypyc-breaking construct at a compiled path fails lint.

    Clones a registered compiled path into tmp_path with a slots
    dataclass appended: the path-based registry match (no marker
    comment involved) must trip ``compiled-incompatible``.
    """
    rel_path = "src/repro/dram/soa.py"
    source = open(os.path.join(REPO_ROOT, rel_path), encoding="utf-8").read()
    clone = tmp_path / rel_path
    clone.parent.mkdir(parents=True)
    clone.write_text(
        source
        + "\n\nfrom dataclasses import dataclass\n\n\n"
        + "@dataclass(slots=True)\nclass Sneaky:\n    x: int = 0\n"
    )
    rules = {f.rule for f in check_file(str(clone), repo_root=str(tmp_path))}
    assert "compiled-incompatible" in rules


# ----------------------------------------------------------------------
# Every rule has a fixture that trips it.
# ----------------------------------------------------------------------
def test_every_rule_has_a_fixture():
    """The fixture table covers the whole rule catalogue."""
    assert set(FIXTURES) == RULE_IDS
    assert len(ALL_RULES) >= 8


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_fixture_trips_its_rule(rule_id, capsys):
    """Each fixture fails lint with (at least) its named rule."""
    path = _fixture(FIXTURES[rule_id])
    findings = check_file(path, repo_root=REPO_ROOT)
    assert rule_id in {f.rule for f in findings}, (
        f"{path} did not trip {rule_id}: "
        + "\n".join(f.render() for f in findings)
    )
    # Non-zero exit through the CLI surface too.
    assert main([path, "-q"]) == 1
    assert f"[{rule_id}]" in capsys.readouterr().out


@pytest.mark.parametrize(
    "rule_id,name",
    [(r, n) for r, names in sorted(EXTRA_FIXTURES.items()) for n in names],
)
def test_extra_fixture_spellings(rule_id, name):
    """Alternative trigger spellings are caught as well."""
    findings = check_file(_fixture(name), repo_root=REPO_ROOT)
    assert rule_id in {f.rule for f in findings}


def test_clean_fixture_passes(capsys):
    """The control fixture (seeded RNG, slots, sorted sets) exits 0."""
    assert main([_fixture("clean.py"), "-q"]) == 0
    assert capsys.readouterr().out == ""


def test_fixtures_are_excluded_from_tree_walks():
    """Walking tests/ must not descend into the failing fixtures."""
    findings = lint_paths(
        [os.path.join(REPO_ROOT, "tests")], repo_root=REPO_ROOT
    )
    assert not any("lint_fixtures" in f.path for f in findings)


# ----------------------------------------------------------------------
# Suppression and CLI behaviour.
# ----------------------------------------------------------------------
def test_allow_pragma_suppresses_one_line(tmp_path):
    """``# reprolint: allow[rule-id]`` silences exactly that line."""
    bad = tmp_path / "pragma.py"
    bad.write_text(
        '"""Doc."""\n'
        "def f(a=[]):  # reprolint: allow[hygiene-mutable-default]\n"
        "    return a\n"
        "def g(b=[]):\n"
        "    return b\n"
    )
    findings = check_file(str(bad), repo_root=REPO_ROOT)
    assert [f.rule for f in findings] == ["hygiene-mutable-default"]
    assert findings[0].line == 4


def test_skip_file_pragma_disables_everything(tmp_path):
    """``# reprolint: skip-file`` turns the whole module off."""
    bad = tmp_path / "skip.py"
    bad.write_text(
        '"""Doc."""\n'
        "# reprolint: skip-file\n"
        "def f(a=[]):\n"
        "    return a\n"
    )
    assert check_file(str(bad), repo_root=REPO_ROOT) == []


def test_select_filters_rules():
    """--select narrows reporting to the requested rule ids."""
    path = _fixture("mutable_default.py")
    only = lint_paths([path], select=["determinism-wallclock"],
                      repo_root=REPO_ROOT)
    assert only == []
    kept = lint_paths([path], select=["hygiene-mutable-default"],
                      repo_root=REPO_ROOT)
    assert [f.rule for f in kept] == ["hygiene-mutable-default"]


def test_unknown_select_is_a_usage_error(capsys):
    """Typos in --select exit 2 instead of silently matching nothing."""
    assert main([_fixture("clean.py"), "--select", "no-such-rule"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_list_rules(capsys):
    """--list-rules prints the full catalogue and exits 0."""
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.id in out


def test_syntax_error_is_reported_not_raised(tmp_path):
    """Unparseable input becomes a finding, not a crash."""
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    findings = check_file(str(bad), repo_root=REPO_ROOT)
    assert [f.rule for f in findings] == ["syntax-error"]


# ----------------------------------------------------------------------
# Typing gate wrapper
# ----------------------------------------------------------------------
def test_typegate_skips_missing_tools(monkeypatch, capsys):
    """Absent tools skip loudly with exit 0 (1 under --strict)."""
    from repro.analysis import typegate

    monkeypatch.setattr(
        typegate, "GATES", (("no_such_tool_xyz", ("no_such_tool_xyz",)),)
    )
    assert typegate.main([]) == 0
    assert typegate.main(["--strict"]) == 1
    err = capsys.readouterr().err
    assert "SKIP no_such_tool_xyz" in err


def test_typegate_runs_available_tools(monkeypatch):
    """An importable tool is executed and its exit code propagated."""
    from repro.analysis import typegate

    # `pytest` is importable in every test environment; --version exits 0.
    monkeypatch.setattr(
        typegate, "GATES", (("pytest", ("pytest", "--version")),)
    )
    assert typegate.main([]) == 0
