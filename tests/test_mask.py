"""PRA mask semantics: coverage, merging, granularity (Section 4.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import mask as m
from repro.core.mask import PRAMask
from repro.dram.geometry import FULL_MASK

masks = st.integers(min_value=1, max_value=FULL_MASK)


class TestPopcountAndGranularity:
    def test_popcount_full(self):
        assert m.popcount(FULL_MASK) == 8

    def test_popcount_single(self):
        for i in range(8):
            assert m.popcount(1 << i) == 1

    def test_granularity_range(self):
        assert m.granularity_eighths(0b00000001) == 1
        assert m.granularity_eighths(0b10000001) == 2
        assert m.granularity_eighths(FULL_MASK) == 8

    def test_granularity_rejects_empty(self):
        with pytest.raises(ValueError):
            m.granularity_eighths(0)

    def test_activated_fraction(self):
        assert m.activated_fraction(0b1111) == pytest.approx(0.5)
        assert m.activated_fraction(FULL_MASK) == pytest.approx(1.0)


class TestCoverage:
    def test_full_row_covers_everything(self):
        for needed in range(1, 256):
            assert m.covers(FULL_MASK, needed)

    def test_partial_covers_subset_only(self):
        # Paper example: open mask 10000001b serves words 0 and 7 only.
        open_mask = 0b10000001
        assert m.covers(open_mask, 0b00000001)
        assert m.covers(open_mask, 0b10000000)
        assert m.covers(open_mask, 0b10000001)
        assert not m.covers(open_mask, 0b00000010)  # false row buffer hit
        assert not m.covers(open_mask, FULL_MASK)  # read against partial row

    @given(masks)
    def test_self_coverage(self, mask):
        assert m.covers(mask, mask)

    @given(masks, masks)
    def test_coverage_iff_subset(self, open_mask, needed):
        assert m.covers(open_mask, needed) == (needed & ~open_mask == 0)


class TestMerge:
    def test_paper_or_merge_example(self):
        # Queued writes to the same row OR their masks (Section 5.2.1).
        assert m.merge(0b10000001, 0b00000010) == 0b10000011

    @given(masks, masks)
    def test_merge_commutative(self, a, b):
        assert m.merge(a, b) == m.merge(b, a)

    @given(masks)
    def test_merge_idempotent(self, a):
        assert m.merge(a, a) == a

    @given(masks, masks, masks)
    def test_merge_associative(self, a, b, c):
        assert m.merge(m.merge(a, b), c) == m.merge(a, m.merge(b, c))

    @given(masks, masks)
    def test_merged_mask_covers_both(self, a, b):
        merged = m.merge(a, b)
        assert m.covers(merged, a)
        assert m.covers(merged, b)

    @given(masks, masks)
    def test_merge_never_shrinks_granularity(self, a, b):
        merged = m.merge(a, b)
        assert m.granularity_eighths(merged) >= m.granularity_eighths(a)
        assert m.granularity_eighths(merged) >= m.granularity_eighths(b)


class TestWordIndices:
    @given(masks)
    def test_roundtrip(self, mask):
        words = m.word_indices(mask)
        rebuilt = 0
        for w in words:
            rebuilt |= 1 << w
        assert rebuilt == mask


class TestPRAMaskClass:
    def test_from_words(self):
        pm = PRAMask.from_words([0, 7])
        assert pm.bits == 0b10000001
        assert pm.granularity == 2
        assert str(pm) == "10000001b"

    def test_full(self):
        assert PRAMask.full().is_full
        assert PRAMask.full().fraction == pytest.approx(1.0)

    def test_or_operator(self):
        assert (PRAMask(0b1) | PRAMask(0b10)).bits == 0b11

    def test_covers(self):
        assert PRAMask.full().covers(PRAMask(0b1010))
        assert not PRAMask(0b1).covers(PRAMask(0b10))

    def test_rejects_empty_and_oversized(self):
        with pytest.raises(ValueError):
            PRAMask(0)
        with pytest.raises(ValueError):
            PRAMask(0x100)

    def test_rejects_bad_word_index(self):
        with pytest.raises(ValueError):
            PRAMask.from_words([8])

    def test_words_listing(self):
        assert PRAMask(0b10000001).words() == (0, 7)
