"""Differential tests against brute-force reference models.

Each test pits a production data structure against a deliberately
naive re-implementation under random operation sequences:

* :class:`SetAssociativeCache` vs a list-based LRU model,
* :class:`RequestQueue` vs a plain list,
* the FGD cache hierarchy vs a *dirty-bit conservation* ledger — the
  invariant PRA's correctness rests on: every word a store dirtied is
  either still dirty in some cache or was carried by a writeback mask
  (a lost dirty bit would mean silent data loss under partial-row
  writes).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.set_assoc import SetAssociativeCache
from repro.controller.queues import RequestQueue, row_key
from repro.dram.commands import Address, ReqKind, Request


# ----------------------------------------------------------------------
# Cache vs naive LRU reference
# ----------------------------------------------------------------------
class NaiveLRUCache:
    """Per-set python-list LRU; obviously correct, hopelessly slow."""

    def __init__(self, sets: int, ways: int) -> None:
        self.sets = [[] for _ in range(sets)]  # list of (addr, mask), MRU last
        self.ways = ways
        self.num_sets = sets

    def access(self, addr: int, mask: int):
        entries = self.sets[addr % self.num_sets]
        victim = None
        for idx, (a, m) in enumerate(entries):
            if a == addr:
                entries.pop(idx)
                entries.append((addr, m | mask))
                return True, victim
        if len(entries) >= self.ways:
            victim = entries.pop(0)
        entries.append((addr, mask))
        return False, victim

    def state(self):
        return {a: m for entries in self.sets for a, m in entries}


cache_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1,
    max_size=300,
)


@given(cache_ops)
@settings(max_examples=80, deadline=None)
def test_cache_matches_naive_lru(ops):
    sets, ways = 4, 2
    real = SetAssociativeCache(capacity_bytes=sets * ways * 64, ways=ways)
    ref = NaiveLRUCache(sets, ways)
    for addr, mask in ops:
        hit, victim = real.access(addr, write_mask=mask)
        ref_hit, ref_victim = ref.access(addr, mask)
        assert hit == ref_hit, f"hit mismatch at {addr}"
        if ref_victim is None:
            assert victim is None
        else:
            assert victim is not None
            assert (victim.line_addr, victim.dirty_mask) == ref_victim
    real_state = {
        line.line_addr: line.dirty_mask
        for cache_set in real._sets
        for line in cache_set.values()
    }
    assert real_state == ref.state()


# ----------------------------------------------------------------------
# RequestQueue vs plain list
# ----------------------------------------------------------------------
queue_programs = st.lists(
    st.tuples(
        st.sampled_from(["append", "remove_oldest", "remove_row_oldest"]),
        st.integers(min_value=0, max_value=3),  # row
        st.integers(min_value=0, max_value=1),  # rank
    ),
    min_size=1,
    max_size=120,
)


@given(queue_programs)
@settings(max_examples=80, deadline=None)
def test_queue_matches_list_model(program):
    real = RequestQueue(256)
    ref = []  # list of Request, arrival order
    for op, row, rank in program:
        if op == "append":
            req = Request(
                kind=ReqKind.READ,
                addr=Address(channel=0, rank=rank, bank=0, row=row, column=0),
                arrive_cycle=0,
            )
            real.append(req)
            ref.append(req)
        elif op == "remove_oldest" and ref:
            victim = ref.pop(0)
            real.remove(victim)
        elif op == "remove_row_oldest":
            key = (rank, 0, row)
            candidates = [r for r in ref if row_key(r) == key]
            assert real.oldest_for_row(key) is (
                candidates[0] if candidates else None
            )
            if candidates:
                ref.remove(candidates[0])
                real.remove(candidates[0])
        # Invariants after every op.
        assert len(real) == len(ref)
        assert real.oldest() is (ref[0] if ref else None)
        for rk in (0, 1):
            expected = sum(1 for r in ref if r.addr.rank == rk)
            assert real.pending_for_rank(rk) == expected
    for row in range(4):
        for rank in range(2):
            key = (rank, 0, row)
            expected = [r for r in ref if row_key(r) == key]
            assert real.requests_for_row(key) == expected


# ----------------------------------------------------------------------
# FGD dirty-bit conservation through the hierarchy
# ----------------------------------------------------------------------
fgd_programs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),   # line address
        st.integers(min_value=0, max_value=255),  # store mask (0 = load)
        st.booleans(),                            # use core 0 / core 1
    ),
    min_size=1,
    max_size=250,
)


@given(fgd_programs, st.booleans())
@settings(max_examples=80, deadline=None)
def test_fgd_dirty_bits_are_conserved(program, use_l1):
    """No store's dirty words may ever be dropped on the floor."""
    l2 = SetAssociativeCache(capacity_bytes=8 * 64, ways=2, name="L2")
    l1s = None
    if use_l1:
        l1s = [
            SetAssociativeCache(capacity_bytes=2 * 64, ways=2, name=f"L1-{i}")
            for i in range(2)
        ]
    hierarchy = CacheHierarchy(l2, l1s=l1s)

    expected = {}     # line -> OR of all store masks
    written_back = {}  # line -> OR of all writeback masks seen

    for line, mask, second_core in program:
        core = 1 if (second_core and use_l1) else 0
        traffic = hierarchy.access(core, line, write_mask=mask)
        if mask:
            expected[line] = expected.get(line, 0) | mask
        for wb_line, wb_mask in traffic.writebacks:
            written_back[wb_line] = written_back.get(wb_line, 0) | wb_mask

    # Drain everything still resident (L1 victims funnel through L2;
    # an install can itself evict a dirty L2 line, which must be
    # captured like any other writeback).
    if l1s:
        for core_id, l1 in enumerate(l1s):
            for cache_set in list(l1._sets):
                for cl in list(cache_set.values()):
                    if cl.dirty:
                        victim = l2.install(cl.line_addr, cl.clean())
                        if victim is not None and victim.dirty:
                            written_back[victim.line_addr] = (
                                written_back.get(victim.line_addr, 0)
                                | victim.dirty_mask
                            )
    for wb_line, wb_mask in hierarchy.flush_dirty():
        written_back[wb_line] = written_back.get(wb_line, 0) | wb_mask

    for line, mask in expected.items():
        assert written_back.get(line, 0) & mask == mask, (
            f"line {line}: stored mask {mask:08b} but only "
            f"{written_back.get(line, 0):08b} ever written back"
        )
