"""Oracle-parity tests for the lane-parallel batch kernel.

``repro.sim.batch`` and ``repro.dram.soa_batch`` are registered fast
paths: every lane of a :class:`BatchSystem` must produce a
:class:`SimResult` bit-identical to running that lane's (config,
workload) through the scalar ``System.run`` on its own — values *and*
structure, pinned here via ``to_dict()`` deep equality.  These tests
cover both slab backends (numpy and the pure-list fallback), batches
mixing snapshot-restored and cold lanes, the ``Sweep.run(batch=N)``
and ``SimPool.map_groups`` integration layers, the CLI worker-budget
guard, and a hypothesis property test driving randomized lane
counts/configs through the kernel.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cli
from repro.core.schemes import by_name
from repro.dram.soa_batch import (
    BACKENDS,
    BatchTimingCore,
    HAVE_NUMPY,
    default_backend,
)
from repro.sim.batch import BatchSystem, simulate_batch
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.pool import SimPool, SimPoolError
from repro.sim.snapshot import SNAPSHOTS
from repro.sim.sweep import Sweep
from repro.sim.system import System
from repro.workloads.mixes import workload as lookup_workload

SMALL_CACHE = CacheConfig(llc_bytes=128 * 1024)
EVENTS = 400
WARMUP = 1200

#: Skip marker for tests that exercise the numpy backend specifically.
needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy not installed (pip install 'repro[fast]')"
)


def _specs(schemes=("Baseline", "PRA", "SDS", "DBI+PRA"), workloads=("GUPS", "MIX1")):
    base = SystemConfig(cache=SMALL_CACHE)
    return [
        (base.with_scheme(by_name(scheme)), wl)
        for scheme in schemes
        for wl in workloads
    ]


def _serial(specs, events=EVENTS, warmup=WARMUP):
    """The scalar oracle: each lane run on its own, cold caches."""
    SNAPSHOTS.clear()
    out = []
    for config, wl in specs:
        system = System(
            config, lookup_workload(wl), events, warmup_events_per_core=warmup
        )
        out.append(system.run().to_dict())
    return out


def _small_sweep():
    sweep = Sweep(
        events_per_core=EVENTS,
        base_config=SystemConfig(cache=SMALL_CACHE),
        warmup_events_per_core=WARMUP,
    )
    sweep.add_axis("scheme", ["Baseline", "PRA", "SDS", "DBI+PRA"])
    sweep.add_axis("workload", ["GUPS", "MIX1"])
    return sweep


# ----------------------------------------------------------------------
class TestLaneBitIdentity:
    @pytest.mark.parametrize(
        "backend",
        [pytest.param("numpy", marks=needs_numpy), "list"],
    )
    def test_every_lane_matches_its_serial_run(self, backend):
        specs = _specs()
        serial = _serial(specs)
        SNAPSHOTS.clear()
        results = simulate_batch(
            specs, EVENTS, warmup_events_per_core=WARMUP, backend=backend
        )
        assert [r.to_dict() for r in results] == serial

    def test_mixed_cold_and_snapshot_restored_lanes(self):
        # With a cold snapshot cache, the first lane of each warm
        # fingerprint warms cold and stores; the rest of its group
        # restore copy-on-write — a genuinely mixed batch.
        specs = _specs()
        serial = _serial(specs)
        SNAPSHOTS.clear()
        batch = BatchSystem(specs, EVENTS, warmup_events_per_core=WARMUP)
        restored = [lane.system.snapshot_restored for lane in batch.lanes]
        assert True in restored and False in restored
        assert [r.to_dict() for r in batch.run()] == serial

    def test_all_lanes_snapshot_restored(self):
        specs = _specs()
        serial = _serial(specs)  # leaves SNAPSHOTS warm
        batch = BatchSystem(specs, EVENTS, warmup_events_per_core=WARMUP)
        assert all(lane.system.snapshot_restored for lane in batch.lanes)
        assert [r.to_dict() for r in batch.run()] == serial

    def test_single_lane_batch(self):
        specs = _specs(schemes=("DBI+PRA",), workloads=("MIX1",))
        serial = _serial(specs)
        SNAPSHOTS.clear()
        results = simulate_batch(specs, EVENTS, warmup_events_per_core=WARMUP)
        assert [r.to_dict() for r in results] == serial

    def test_run_is_single_shot(self):
        specs = _specs(schemes=("Baseline",), workloads=("GUPS",))
        batch = BatchSystem(specs, 100, warmup_events_per_core=200)
        batch.run()
        with pytest.raises(RuntimeError, match="only be called once"):
            batch.run()

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one lane"):
            BatchSystem([], 100)


# ----------------------------------------------------------------------
class TestSweepIntegration:
    def test_sweep_batched_identical_to_serial(self):
        SNAPSHOTS.clear()
        serial = _small_sweep().run()
        SNAPSHOTS.clear()
        batched = _small_sweep().run(batch=4)
        assert batched == serial  # values AND grid ordering

    def test_sweep_batched_on_pool_identical_to_serial(self):
        SNAPSHOTS.clear()
        serial = _small_sweep().run()
        with SimPool(workers=1) as pool:
            batched = _small_sweep().run(pool=pool, batch=3)
        assert batched == serial

    def test_batch_size_larger_than_grid(self):
        SNAPSHOTS.clear()
        serial = _small_sweep().run()
        SNAPSHOTS.clear()
        batched = _small_sweep().run(batch=64)
        assert batched == serial

    def test_batch_of_one_falls_back_to_serial_path(self):
        SNAPSHOTS.clear()
        serial = _small_sweep().run()
        SNAPSHOTS.clear()
        assert _small_sweep().run(batch=1) == serial

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError, match="batch"):
            _small_sweep().run(batch=0)


# ----------------------------------------------------------------------
def _double_each(shared, group):
    return [shared * item for item in group]


def _wrong_shape(shared, group):
    return "not a list"


class TestMapGroups:
    def test_flattens_in_submission_order(self):
        groups = [[1, 2], [3], [4, 5, 6]]
        with SimPool(workers=2) as pool:
            flat = pool.map_groups(_double_each, groups, shared=10)
        assert flat == [10, 20, 30, 40, 50, 60]

    def test_misshapen_group_result_rejected(self):
        pool = SimPool(workers=1)
        try:
            with pytest.raises(SimPoolError, match="one result per group item"):
                pool.map_groups(_wrong_shape, [[1, 2]])
        finally:
            pool.close()


# ----------------------------------------------------------------------
class TestSlab:
    @pytest.mark.parametrize(
        "backend",
        [pytest.param("numpy", marks=needs_numpy), "list"],
    )
    def test_backends_allocate_identical_state(self, backend):
        slab = BatchTimingCore(3, 2, 8, backend=backend)
        reference = BatchTimingCore(3, 2, 8, backend="list")
        for field in BatchTimingCore.__slots__:
            if field in ("backend",):
                continue
            assert getattr(slab, field) == getattr(reference, field), field

    def test_lane_views_alias_slab_rows(self):
        slab = BatchTimingCore(2, 2, 8, backend="list")
        lane0 = slab.lane(0)
        lane1 = slab.lane(1)
        lane0.open_row[3] = 77
        assert slab.open_row[0][3] == 77
        assert lane1.open_row[3] == -1  # other lanes unaffected
        assert slab.open_banks_per_lane() == [1, 0]

    def test_reset_lane_preserves_row_identity(self):
        slab = BatchTimingCore(2, 2, 8, backend="list")
        lane = slab.lane(0)
        lane.open_row[0] = 5
        lane.gate[1] = 9
        slab.reset_lane(0)
        assert lane.open_row[0] == -1  # view saw the reset in place
        assert lane.gate[1] == 0

    def test_geometry_and_lane_validation(self):
        with pytest.raises(ValueError, match="at least one lane"):
            BatchTimingCore(0, 2, 8)
        slab = BatchTimingCore(1, 2, 8, backend="list")
        with pytest.raises(IndexError, match="out of range"):
            slab.lane(1)
        with pytest.raises(ValueError, match="unknown backend"):
            BatchTimingCore(1, 2, 8, backend="cuda")

    def test_default_backend_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_BACKEND", "list")
        assert default_backend() == "list"
        monkeypatch.setenv("REPRO_BATCH_BACKEND", "weird")
        with pytest.raises(ValueError, match="REPRO_BATCH_BACKEND"):
            default_backend()
        monkeypatch.delenv("REPRO_BATCH_BACKEND")
        assert default_backend() in BACKENDS


# ----------------------------------------------------------------------
class TestWorkerBudgetGuard:
    def test_sweep_pool_over_cpu_budget_exits_nonzero(
        self, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.setattr(cli, "_available_cpus", lambda: 2)
        out = str(tmp_path / "grid.csv")
        rc = cli.main(["sweep", "--pool", "3", "--out", out])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--pool 3 exceeds the 2 available CPU" in err

    def test_sweep_workers_over_cpu_budget_exits_nonzero(
        self, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.setattr(cli, "_available_cpus", lambda: 1)
        out = str(tmp_path / "grid.csv")
        rc = cli.main(["sweep", "--workers", "8", "--out", out])
        assert rc == 2
        assert "--workers 8 exceeds" in capsys.readouterr().err

    def test_bench_pool_over_cpu_budget_exits_nonzero(self, monkeypatch, capsys):
        monkeypatch.setattr(cli, "_available_cpus", lambda: 2)
        rc = cli.main(["bench", "--suite", "quick", "--pool", "16"])
        assert rc == 2
        assert "--pool 16 exceeds the 2 available CPU" in capsys.readouterr().err

    def test_bench_default_pool_respects_cpu_budget(self, monkeypatch):
        # The default (no explicit --pool) must resolve to a legal
        # worker count instead of tripping the guard on small machines.
        monkeypatch.setattr(cli, "_available_cpus", lambda: 1)
        args = cli.build_parser().parse_args(["bench", "--suite", "quick"])
        assert args.pool is None  # resolved inside cmd_bench, not argparse

    def test_within_budget_passes(self, monkeypatch):
        monkeypatch.setattr(cli, "_available_cpus", lambda: 4)
        cli._check_worker_budget("--pool", 4)  # no raise

    def test_invalid_batch_exits_nonzero(self, tmp_path, capsys):
        out = str(tmp_path / "grid.csv")
        rc = cli.main(["sweep", "--batch", "0", "--out", out])
        assert rc == 2
        assert "--batch" in capsys.readouterr().err

    def test_cli_batched_sweep_matches_plain(self, tmp_path):
        plain, batched = tmp_path / "plain.csv", tmp_path / "batched.csv"
        common = [
            "sweep", "--schemes", "Baseline", "PRA", "--workloads", "GUPS",
            "--events", "300",
        ]
        assert cli.main(common + ["--out", str(plain)]) == 0
        assert cli.main(common + ["--batch", "2", "--out", str(batched)]) == 0
        assert batched.read_text() == plain.read_text()


# ----------------------------------------------------------------------
# Property test: randomized lane counts and configurations, every lane
# bit-identical to its serial run.  DBI+PRA lanes are always in the mix
# (distinct warm fingerprint → snapshot-restored and cold lanes coexist
# in one batch), and duplicate specs exercise multi-lane fingerprint
# groups sharing one snapshot copy-on-write.
_SCHEME_NAMES = ["Baseline", "PRA", "SDS", "DBI+PRA"]
_WORKLOADS = ["GUPS", "MIX1"]

lane_choices = st.lists(
    st.tuples(
        st.sampled_from(_SCHEME_NAMES),
        st.sampled_from(_WORKLOADS),
    ),
    min_size=1,
    max_size=5,
)


@given(lanes=lane_choices, events=st.integers(min_value=50, max_value=250))
@settings(max_examples=5, deadline=None)
def test_randomized_batches_match_serial(lanes, events):
    base = SystemConfig(cache=CacheConfig(llc_bytes=64 * 1024))
    # Always include a DBI+PRA lane so DBI state (separate fingerprint,
    # tuple-COW restore path) is exercised in every example.
    lanes = lanes + [("DBI+PRA", "MIX1")]
    specs = [(base.with_scheme(by_name(s)), wl) for s, wl in lanes]
    warmup = 600
    SNAPSHOTS.clear()
    serial = []
    for config, wl in specs:
        system = System(
            config, lookup_workload(wl), events, warmup_events_per_core=warmup
        )
        serial.append(system.run().to_dict())
    SNAPSHOTS.clear()
    results = simulate_batch(specs, events, warmup_events_per_core=warmup)
    assert [r.to_dict() for r in results] == serial
