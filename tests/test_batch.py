"""Oracle-parity tests for the lane-parallel batch kernel.

``repro.sim.batch`` and ``repro.dram.soa_batch`` are registered fast
paths: every lane of a :class:`BatchSystem` must produce a
:class:`SimResult` bit-identical to running that lane's (config,
workload) through the scalar ``System.run`` on its own — values *and*
structure, pinned here via ``to_dict()`` deep equality.  These tests
cover both slab backends (numpy and the pure-list fallback), batches
mixing snapshot-restored and cold lanes, the ``Sweep.run(batch=N)``
and ``SimPool.map_groups`` integration layers, the CLI worker-budget
guard, and a hypothesis property test driving randomized lane
counts/configs through the kernel.

PR 7 adds cohort stepping (same-cycle lanes screened column-wise):
the suite pins the cohort loop bit-identical to the PR-6
one-lane-per-pop interleaving (``run(_cohort=False)``) on random lane
cohorts across both backends, and covers the cohort kernel ops
(``decay_timers`` / ``open_row_hits`` / ``mask_compatible`` /
``refresh_due`` / ``next_wake_min`` / ``power_down_resident``)
including slab-row aliasing of the new ``pd`` / ``next_refresh``
columns, plus ``batch="auto"`` lane sizing.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cli
from repro.core.schemes import by_name
from repro.dram.geometry import FULL_MASK
from repro.dram.soa_batch import (
    BACKENDS,
    BatchTimingCore,
    HAVE_NUMPY,
    decay_timers,
    default_backend,
    mask_compatible,
    next_wake_min,
    open_row_hits,
    power_down_resident,
    refresh_due,
)
from repro.sim.batch import BatchSystem, simulate_batch
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.pool import SimPool, SimPoolError
from repro.sim.snapshot import SNAPSHOTS
from repro.sim import sweep as sweep_mod
from repro.sim.sweep import Sweep, auto_batch_lanes
from repro.sim.system import System
from repro.workloads.mixes import workload as lookup_workload

SMALL_CACHE = CacheConfig(llc_bytes=128 * 1024)
EVENTS = 400
WARMUP = 1200

#: Skip marker for tests that exercise the numpy backend specifically.
needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy not installed (pip install 'repro[fast]')"
)


def _specs(schemes=("Baseline", "PRA", "SDS", "DBI+PRA"), workloads=("GUPS", "MIX1")):
    base = SystemConfig(cache=SMALL_CACHE)
    return [
        (base.with_scheme(by_name(scheme)), wl)
        for scheme in schemes
        for wl in workloads
    ]


def _serial(specs, events=EVENTS, warmup=WARMUP):
    """The scalar oracle: each lane run on its own, cold caches."""
    SNAPSHOTS.clear()
    out = []
    for config, wl in specs:
        system = System(
            config, lookup_workload(wl), events, warmup_events_per_core=warmup
        )
        out.append(system.run().to_dict())
    return out


def _small_sweep():
    sweep = Sweep(
        events_per_core=EVENTS,
        base_config=SystemConfig(cache=SMALL_CACHE),
        warmup_events_per_core=WARMUP,
    )
    sweep.add_axis("scheme", ["Baseline", "PRA", "SDS", "DBI+PRA"])
    sweep.add_axis("workload", ["GUPS", "MIX1"])
    return sweep


# ----------------------------------------------------------------------
class TestLaneBitIdentity:
    @pytest.mark.parametrize(
        "backend",
        [pytest.param("numpy", marks=needs_numpy), "list"],
    )
    def test_every_lane_matches_its_serial_run(self, backend):
        specs = _specs()
        serial = _serial(specs)
        SNAPSHOTS.clear()
        results = simulate_batch(
            specs, EVENTS, warmup_events_per_core=WARMUP, backend=backend
        )
        assert [r.to_dict() for r in results] == serial

    def test_mixed_cold_and_snapshot_restored_lanes(self):
        # With a cold snapshot cache, the first lane of each warm
        # fingerprint warms cold and stores; the rest of its group
        # restore copy-on-write — a genuinely mixed batch.
        specs = _specs()
        serial = _serial(specs)
        SNAPSHOTS.clear()
        batch = BatchSystem(specs, EVENTS, warmup_events_per_core=WARMUP)
        restored = [lane.system.snapshot_restored for lane in batch.lanes]
        assert True in restored and False in restored
        assert [r.to_dict() for r in batch.run()] == serial

    def test_all_lanes_snapshot_restored(self):
        specs = _specs()
        serial = _serial(specs)  # leaves SNAPSHOTS warm
        batch = BatchSystem(specs, EVENTS, warmup_events_per_core=WARMUP)
        assert all(lane.system.snapshot_restored for lane in batch.lanes)
        assert [r.to_dict() for r in batch.run()] == serial

    def test_single_lane_batch(self):
        specs = _specs(schemes=("DBI+PRA",), workloads=("MIX1",))
        serial = _serial(specs)
        SNAPSHOTS.clear()
        results = simulate_batch(specs, EVENTS, warmup_events_per_core=WARMUP)
        assert [r.to_dict() for r in results] == serial

    def test_run_is_single_shot(self):
        specs = _specs(schemes=("Baseline",), workloads=("GUPS",))
        batch = BatchSystem(specs, 100, warmup_events_per_core=200)
        batch.run()
        with pytest.raises(RuntimeError, match="only be called once"):
            batch.run()

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one lane"):
            BatchSystem([], 100)


# ----------------------------------------------------------------------
class TestSweepIntegration:
    def test_sweep_batched_identical_to_serial(self):
        SNAPSHOTS.clear()
        serial = _small_sweep().run()
        SNAPSHOTS.clear()
        batched = _small_sweep().run(batch=4)
        assert batched == serial  # values AND grid ordering

    def test_sweep_batched_on_pool_identical_to_serial(self):
        SNAPSHOTS.clear()
        serial = _small_sweep().run()
        with SimPool(workers=1) as pool:
            batched = _small_sweep().run(pool=pool, batch=3)
        assert batched == serial

    def test_batch_size_larger_than_grid(self):
        SNAPSHOTS.clear()
        serial = _small_sweep().run()
        SNAPSHOTS.clear()
        batched = _small_sweep().run(batch=64)
        assert batched == serial

    def test_batch_of_one_falls_back_to_serial_path(self):
        SNAPSHOTS.clear()
        serial = _small_sweep().run()
        SNAPSHOTS.clear()
        assert _small_sweep().run(batch=1) == serial

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError, match="batch"):
            _small_sweep().run(batch=0)


# ----------------------------------------------------------------------
def _double_each(shared, group):
    return [shared * item for item in group]


def _wrong_shape(shared, group):
    return "not a list"


class TestMapGroups:
    def test_flattens_in_submission_order(self):
        groups = [[1, 2], [3], [4, 5, 6]]
        with SimPool(workers=2) as pool:
            flat = pool.map_groups(_double_each, groups, shared=10)
        assert flat == [10, 20, 30, 40, 50, 60]

    def test_misshapen_group_result_rejected(self):
        pool = SimPool(workers=1)
        try:
            with pytest.raises(SimPoolError, match="one result per group item"):
                pool.map_groups(_wrong_shape, [[1, 2]])
        finally:
            pool.close()


# ----------------------------------------------------------------------
class TestSlab:
    @pytest.mark.parametrize(
        "backend",
        [pytest.param("numpy", marks=needs_numpy), "list"],
    )
    def test_backends_allocate_identical_state(self, backend):
        slab = BatchTimingCore(3, 2, 8, backend=backend)
        reference = BatchTimingCore(3, 2, 8, backend="list")
        for field in BatchTimingCore.__slots__:
            if field in ("backend",):
                continue
            assert getattr(slab, field) == getattr(reference, field), field

    def test_lane_views_alias_slab_rows(self):
        slab = BatchTimingCore(2, 2, 8, backend="list")
        lane0 = slab.lane(0)
        lane1 = slab.lane(1)
        lane0.open_row[3] = 77
        assert slab.open_row[0][3] == 77
        assert lane1.open_row[3] == -1  # other lanes unaffected
        assert slab.open_banks_per_lane() == [1, 0]

    def test_reset_lane_preserves_row_identity(self):
        slab = BatchTimingCore(2, 2, 8, backend="list")
        lane = slab.lane(0)
        lane.open_row[0] = 5
        lane.gate[1] = 9
        slab.reset_lane(0)
        assert lane.open_row[0] == -1  # view saw the reset in place
        assert lane.gate[1] == 0

    def test_geometry_and_lane_validation(self):
        with pytest.raises(ValueError, match="at least one lane"):
            BatchTimingCore(0, 2, 8)
        slab = BatchTimingCore(1, 2, 8, backend="list")
        with pytest.raises(IndexError, match="out of range"):
            slab.lane(1)
        with pytest.raises(ValueError, match="unknown backend"):
            BatchTimingCore(1, 2, 8, backend="cuda")

    def test_default_backend_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_BACKEND", "list")
        assert default_backend() == "list"
        monkeypatch.setenv("REPRO_BATCH_BACKEND", "weird")
        with pytest.raises(ValueError, match="REPRO_BATCH_BACKEND"):
            default_backend()
        monkeypatch.delenv("REPRO_BATCH_BACKEND")
        assert default_backend() in BACKENDS


# ----------------------------------------------------------------------
#: Both slab backends, numpy skipped where unavailable.
both_backends = pytest.mark.parametrize(
    "backend",
    [pytest.param("numpy", marks=needs_numpy), "list"],
)

#: Randomized lane mixes shared by the cohort/serial property tests:
#: schemes and workloads sampled with repetition, so duplicate specs
#: exercise multi-lane fingerprint groups sharing one snapshot.
_SCHEME_NAMES = ["Baseline", "PRA", "SDS", "DBI+PRA"]
_WORKLOADS = ["GUPS", "MIX1"]

lane_choices = st.lists(
    st.tuples(
        st.sampled_from(_SCHEME_NAMES),
        st.sampled_from(_WORKLOADS),
    ),
    min_size=1,
    max_size=5,
)


class TestCohortKernelOps:
    """Column-wise cohort ops: correctness on both backends, plus the
    slab-row aliasing contract for the PR-7 ``pd`` / ``next_refresh``
    columns (all mutations go through *lane views*, so a passing test
    proves the views alias the rows the ops read)."""

    @staticmethod
    def _slab(backend):
        slab = BatchTimingCore(4, 2, 4, backend=backend)
        lane1, lane3 = slab.lane(1), slab.lane(3)
        lane1.open_bits[0] = 0b0101
        lane1.next_refresh[:] = [700, 640]
        lane1.pd[:] = [1, 1]
        lane3.open_bits[1] = 0b1000
        lane3.next_refresh[:] = [500, 900]
        lane3.pd[0] = 1
        return slab

    @both_backends
    def test_open_row_hits(self, backend):
        slab = self._slab(backend)
        assert open_row_hits(slab, [1, 3, 0]) == [0b0101, 0b1000, 0]

    @both_backends
    def test_refresh_due_aliases_lane_views(self, backend):
        slab = self._slab(backend)
        assert refresh_due(slab, [1, 3, 0]) == [640, 500, 0]
        slab.lane(3).next_refresh[1] = 450  # view write, column read
        assert refresh_due(slab, [3]) == [450]

    @both_backends
    def test_power_down_resident_aliases_lane_views(self, backend):
        slab = self._slab(backend)
        assert power_down_resident(slab, [1, 3, 0]) == [True, False, False]
        slab.lane(3).pd[1] = 1
        assert power_down_resident(slab, [3]) == [True]

    @both_backends
    def test_mask_compatible(self, backend):
        slab = self._slab(backend)
        lane0, lane2 = slab.lane(0), slab.lane(2)
        lane0.open_mask[5] = 0b0011  # rank 1, bank 1 (g = 1*4 + 1)
        lane2.open_mask[5] = 0b0110
        # Fresh lanes hold FULL_MASK: everything is covered.
        assert mask_compatible(slab, [0, 2, 1], 5, 0b0010) == [
            True, True, True,
        ]
        assert mask_compatible(slab, [0, 2], 5, 0b0101) == [False, False]
        assert mask_compatible(slab, [1], 5, FULL_MASK) == [True]

    @both_backends
    def test_decay_timers_clamps_in_place(self, backend):
        slab = BatchTimingCore(3, 2, 4, backend=backend)
        lane0, lane2 = slab.lane(0), slab.lane(2)
        lane0.next_act_ok[:] = [10, 900]  # one stale, one live
        lane0.gate[:] = [0, 55]
        lane2.next_write_ok[:] = [99, 100]
        decay_timers(slab, [0, 2], 100)
        # Stale timers clamped to the cycle, live ones untouched — and
        # the pre-existing lane views observe it (row identity kept).
        assert lane0.next_act_ok == [100, 900]
        assert lane0.gate == [100, 100]
        assert lane2.next_write_ok == [100, 100]
        assert slab.lane(2).next_col_ok == [100, 100]
        # Lane 1 was not in the cohort: untouched.
        assert slab.lane(1).next_act_ok == [0, 0]
        # Non-timer columns are never decayed.
        assert lane0.next_refresh == [0, 0]
        assert lane0.last_act == [-1] * 8

    @both_backends
    def test_next_wake_min(self, backend):
        assert next_wake_min([[7, 3, 9], [4, 4, 4]], backend) == [3, 4]
        # Ragged rows (lanes with different candidate counts) must fall
        # back cleanly on the numpy backend.
        assert next_wake_min([[5], [2, 8], [6, 1, 7]], backend) == [5, 2, 1]

    def test_reset_lane_clears_new_columns_in_place(self):
        slab = self._slab("list")
        lane1 = slab.lane(1)
        slab.reset_lane(1)
        assert lane1.pd == [0, 0]  # view saw the reset in place
        assert lane1.next_refresh == [0, 0]
        assert power_down_resident(slab, [1]) == [False]

    @needs_numpy
    def test_backends_agree(self):
        a, b = self._slab("numpy"), self._slab("list")
        slots = [3, 1, 0, 2]
        assert open_row_hits(a, slots) == open_row_hits(b, slots)
        assert refresh_due(a, slots) == refresh_due(b, slots)
        assert power_down_resident(a, slots) == power_down_resident(b, slots)
        assert mask_compatible(a, slots, 2, 0b11) == mask_compatible(
            b, slots, 2, 0b11
        )
        decay_timers(a, slots, 50)
        decay_timers(b, slots, 50)
        for field in ("next_act_ok", "next_col_ok", "gate"):
            assert getattr(a, field) == getattr(b, field), field


# ----------------------------------------------------------------------
class TestCohortStepping:
    """Cohort stepping (PR 7) vs the PR-6 one-lane-per-pop loop.

    ``BatchSystem.run(_cohort=False)`` is the retained interleaved
    loop; the cohort fast path must be bit-identical to it on any lane
    mix — it is the same screened controllers, re-armed column-wise.
    """

    @both_backends
    def test_cohort_matches_interleaved_and_serial(self, backend):
        specs = _specs()
        serial = _serial(specs)
        SNAPSHOTS.clear()
        batch = BatchSystem(
            specs, EVENTS, warmup_events_per_core=WARMUP, backend=backend
        )
        interleaved = [r.to_dict() for r in batch.run(_cohort=False)]
        SNAPSHOTS.clear()
        batch = BatchSystem(
            specs, EVENTS, warmup_events_per_core=WARMUP, backend=backend
        )
        cohort = [r.to_dict() for r in batch.run()]
        assert interleaved == serial
        assert cohort == serial

    @both_backends
    @given(lanes=lane_choices, events=st.integers(min_value=50, max_value=250))
    @settings(max_examples=4, deadline=None)
    def test_random_cohorts_match_interleaved_loop(self, backend, lanes, events):
        # Random lane cohorts: mixed schemes, duplicate specs (multi-
        # lane fingerprint groups), and a forced DBI+PRA lane so every
        # example mixes warm fingerprints and cold + snapshot-restored
        # lanes.  Both arms start from a cold snapshot cache so their
        # cold/restored structure is identical.
        base = SystemConfig(cache=CacheConfig(llc_bytes=64 * 1024))
        lanes = lanes + [("DBI+PRA", "MIX1")]
        specs = [(base.with_scheme(by_name(s)), wl) for s, wl in lanes]
        warmup = 600
        SNAPSHOTS.clear()
        batch = BatchSystem(
            specs, events, warmup_events_per_core=warmup, backend=backend
        )
        interleaved = [r.to_dict() for r in batch.run(_cohort=False)]
        SNAPSHOTS.clear()
        batch = BatchSystem(
            specs, events, warmup_events_per_core=warmup, backend=backend
        )
        assert [r.to_dict() for r in batch.run()] == interleaved


# ----------------------------------------------------------------------
class TestAutoBatch:
    """``batch="auto"``: grid-sized lane count, memory permitting."""

    def test_auto_matches_serial(self):
        SNAPSHOTS.clear()
        serial = _small_sweep().run()
        SNAPSHOTS.clear()
        assert _small_sweep().run(batch="auto") == serial

    def test_lane_count_capped_by_available_memory(self, monkeypatch):
        base = SystemConfig(cache=CacheConfig(llc_bytes=8 * 1024 * 1024))
        # 64 MB available, 8 MB LLC -> 4 MB/lane envelope, half of
        # available budgeted: 32 MB / 4 MB = 8 lanes.
        monkeypatch.setattr(
            sweep_mod, "_available_memory_bytes", lambda: 64 << 20
        )
        assert auto_batch_lanes(24, base) == 8
        # Tiny machines still get one lane rather than zero.
        monkeypatch.setattr(
            sweep_mod, "_available_memory_bytes", lambda: 1 << 20
        )
        assert auto_batch_lanes(24, base) == 1

    def test_unknown_memory_uses_grid_size(self, monkeypatch):
        monkeypatch.setattr(sweep_mod, "_available_memory_bytes", lambda: None)
        assert auto_batch_lanes(24, SystemConfig()) == 24
        assert auto_batch_lanes(3, SystemConfig()) == 3
        with pytest.raises(ValueError, match="at least one grid point"):
            auto_batch_lanes(0, SystemConfig())

    def test_small_llc_floors_at_minimum_envelope(self, monkeypatch):
        # A 128 KB LLC must not let the estimate claim thousands of
        # lanes fit: the 4 MB floor covers queues/cores/controllers.
        monkeypatch.setattr(
            sweep_mod, "_available_memory_bytes", lambda: 256 << 20
        )
        assert auto_batch_lanes(1000, SystemConfig(cache=SMALL_CACHE)) == 32

    def test_bad_batch_string_rejected(self):
        with pytest.raises(ValueError, match="'auto'"):
            _small_sweep().run(batch="turbo")

    def test_cli_parses_auto_and_rejects_junk(self, capsys):
        common = ["sweep", "--out", "grid.csv", "--batch"]
        args = cli.build_parser().parse_args(common + ["auto"])
        assert args.batch == "auto"
        args = cli.build_parser().parse_args(common + ["6"])
        assert args.batch == 6
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(common + ["fast"])
        assert "--batch" in capsys.readouterr().err

    def test_cli_auto_sweep_matches_plain(self, tmp_path):
        plain, auto = tmp_path / "plain.csv", tmp_path / "auto.csv"
        common = [
            "sweep", "--schemes", "Baseline", "PRA", "--workloads", "GUPS",
            "--events", "300",
        ]
        assert cli.main(common + ["--out", str(plain)]) == 0
        assert cli.main(common + ["--batch", "auto", "--out", str(auto)]) == 0
        assert auto.read_text() == plain.read_text()


# ----------------------------------------------------------------------
class TestWorkerBudgetGuard:
    def test_sweep_pool_over_cpu_budget_exits_nonzero(
        self, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.setattr(cli, "_available_cpus", lambda: 2)
        out = str(tmp_path / "grid.csv")
        rc = cli.main(["sweep", "--pool", "3", "--out", out])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--pool 3 exceeds the 2 available CPU" in err

    def test_sweep_workers_over_cpu_budget_exits_nonzero(
        self, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.setattr(cli, "_available_cpus", lambda: 1)
        out = str(tmp_path / "grid.csv")
        rc = cli.main(["sweep", "--workers", "8", "--out", out])
        assert rc == 2
        assert "--workers 8 exceeds" in capsys.readouterr().err

    def test_bench_pool_over_cpu_budget_exits_nonzero(self, monkeypatch, capsys):
        monkeypatch.setattr(cli, "_available_cpus", lambda: 2)
        rc = cli.main(["bench", "--suite", "quick", "--pool", "16"])
        assert rc == 2
        assert "--pool 16 exceeds the 2 available CPU" in capsys.readouterr().err

    def test_bench_default_pool_respects_cpu_budget(self, monkeypatch):
        # The default (no explicit --pool) must resolve to a legal
        # worker count instead of tripping the guard on small machines.
        monkeypatch.setattr(cli, "_available_cpus", lambda: 1)
        args = cli.build_parser().parse_args(["bench", "--suite", "quick"])
        assert args.pool is None  # resolved inside cmd_bench, not argparse

    def test_within_budget_passes(self, monkeypatch):
        monkeypatch.setattr(cli, "_available_cpus", lambda: 4)
        cli._check_worker_budget("--pool", 4)  # no raise

    def test_invalid_batch_exits_nonzero(self, tmp_path, capsys):
        out = str(tmp_path / "grid.csv")
        rc = cli.main(["sweep", "--batch", "0", "--out", out])
        assert rc == 2
        assert "--batch" in capsys.readouterr().err

    def test_cli_batched_sweep_matches_plain(self, tmp_path):
        plain, batched = tmp_path / "plain.csv", tmp_path / "batched.csv"
        common = [
            "sweep", "--schemes", "Baseline", "PRA", "--workloads", "GUPS",
            "--events", "300",
        ]
        assert cli.main(common + ["--out", str(plain)]) == 0
        assert cli.main(common + ["--batch", "2", "--out", str(batched)]) == 0
        assert batched.read_text() == plain.read_text()


# ----------------------------------------------------------------------
# Property test: randomized lane counts and configurations, every lane
# bit-identical to its serial run.  DBI+PRA lanes are always in the mix
# (distinct warm fingerprint → snapshot-restored and cold lanes coexist
# in one batch), and duplicate specs exercise multi-lane fingerprint
# groups sharing one snapshot copy-on-write.
@given(lanes=lane_choices, events=st.integers(min_value=50, max_value=250))
@settings(max_examples=5, deadline=None)
def test_randomized_batches_match_serial(lanes, events):
    base = SystemConfig(cache=CacheConfig(llc_bytes=64 * 1024))
    # Always include a DBI+PRA lane so DBI state (separate fingerprint,
    # tuple-COW restore path) is exercised in every example.
    lanes = lanes + [("DBI+PRA", "MIX1")]
    specs = [(base.with_scheme(by_name(s)), wl) for s, wl in lanes]
    warmup = 600
    SNAPSHOTS.clear()
    serial = []
    for config, wl in specs:
        system = System(
            config, lookup_workload(wl), events, warmup_events_per_core=warmup
        )
        serial.append(system.run().to_dict())
    SNAPSHOTS.clear()
    results = simulate_batch(specs, events, warmup_events_per_core=warmup)
    assert [r.to_dict() for r in results] == serial
