"""Rank-level constraints: tRRD/tFAW (+ PRA relaxation), power-down, refresh."""

import pytest

from repro.dram.bank import BankStateError
from repro.dram.rank import Rank
from repro.dram.timing import DDR3_1600

T = DDR3_1600


@pytest.fixture
def rank():
    return Rank(T, num_banks=8)


@pytest.fixture
def relaxed_rank():
    return Rank(T, num_banks=8, relax_act_constraints=True)


def _activate(rank, cycle, bank, row=1, granularity=8):
    rank.banks[bank].activate(cycle, row)
    rank.record_activate(cycle, granularity)


class TestTRRD:
    def test_back_to_back_acts_blocked(self, rank):
        assert rank.can_activate(0, 0)
        _activate(rank, 0, 0)
        assert not rank.can_activate(T.trrd - 1, 1)
        assert rank.can_activate(T.trrd, 1)

    def test_relaxed_trrd_for_partial(self, relaxed_rank):
        # A 1/8 activation shrinks the ACT-to-ACT spacing (Sec 4.1.3).
        relaxed_rank.banks[0].activate(0, 1)
        relaxed_rank.record_activate(0, granularity_eighths=1)
        assert relaxed_rank.can_activate(2, 1)

    def test_unrelaxed_rank_ignores_granularity(self, rank):
        _activate(rank, 0, 0, granularity=1)
        assert not rank.can_activate(2, 1)
        assert rank.can_activate(T.trrd, 1)


class TestTFAW:
    def test_fifth_act_waits_for_window(self, rank):
        cycle = 0
        for bank in range(4):
            assert rank.can_activate(cycle, bank)
            _activate(rank, cycle, bank)
            cycle += T.trrd
        # 4 ACTs at 0,5,10,15; window = 24 => fifth must wait past 24.
        assert not rank.can_activate(20, 4)
        assert rank.can_activate(25, 4)

    def test_relaxed_faw_with_partial_acts(self, relaxed_rank):
        # Eight 1/8-row ACTs weigh 1.0 total; all fit in one window.
        cycle = 0
        for bank in range(8):
            assert relaxed_rank.can_activate(cycle, bank, granularity_eighths=1)
            relaxed_rank.banks[bank].activate(cycle, 1)
            relaxed_rank.record_activate(cycle, 1)
            cycle += 2
        assert relaxed_rank.faw.weight_in_window(cycle) == pytest.approx(1.0)

    def test_earliest_activate_accounts_for_faw(self, rank):
        cycle = 0
        for bank in range(4):
            _activate(rank, cycle, bank)
            cycle += T.trrd
        est = rank.earliest_activate(16, 4)
        assert est >= 25
        assert rank.can_activate(est, 4)


class TestColumnTurnaround:
    def test_write_to_read_needs_twtr(self, rank):
        _activate(rank, 0, 0)
        wr_cycle = T.trcd
        burst_end = rank.banks[0].write(wr_cycle)
        rank.record_write(wr_cycle, burst_end)
        assert not rank.can_read(burst_end + T.twtr - 1, 0)
        assert rank.can_read(burst_end + T.twtr, 0)

    def test_ccd_across_banks(self, rank):
        _activate(rank, 0, 0)
        _activate(rank, T.trrd, 1)
        rank.banks[0].read(T.trcd)
        rank.record_read(T.trcd)
        # Bank 1 column must respect rank-level tCCD.
        assert not rank.can_read(T.trcd + T.tccd - 1, 1)


class TestPowerDown:
    def test_enter_requires_all_precharged(self, rank):
        _activate(rank, 0, 0)
        with pytest.raises(BankStateError):
            rank.enter_power_down(5)

    def test_enter_exit_cycle(self, rank):
        rank.enter_power_down(10)
        assert rank.powered_down
        assert not rank.can_activate(20, 0)
        ready = rank.exit_power_down(20)
        assert ready == 20 + T.txp
        assert not rank.powered_down
        assert not rank.can_activate(ready - 1, 0)
        assert rank.can_activate(ready, 0)

    def test_background_residency_tracks_pd(self, rank):
        rank.enter_power_down(10)
        rank.exit_power_down(30)
        rank.accrue_background(50)
        assert rank.bg_residency["pre_stby"] == 10 + 20
        assert rank.bg_residency["pre_pdn"] == 20


class TestBackgroundResidency:
    def test_active_standby_when_bank_open(self, rank):
        rank.accrue_background(10)  # 10 cycles precharged
        _activate(rank, 10, 0)
        rank.accrue_background(40)  # 30 cycles active
        assert rank.bg_residency["pre_stby"] == 10
        assert rank.bg_residency["act_stby"] == 30

    def test_accrue_is_monotonic(self, rank):
        rank.accrue_background(100)
        rank.accrue_background(50)  # earlier cycle: no-op
        assert sum(rank.bg_residency.values()) == 100


class TestRefresh:
    def test_refresh_due_schedule(self, rank):
        assert not rank.refresh_due(T.trefi - 1)
        assert rank.refresh_due(T.trefi)

    def test_refresh_blocks_rank(self, rank):
        rank.do_refresh(T.trefi)
        assert rank.refresh_until == T.trefi + T.trfc
        assert not rank.can_activate(T.trefi + T.trfc - 1, 0)
        assert rank.can_activate(T.trefi + T.trfc, 0)

    def test_refresh_requires_precharged(self, rank):
        _activate(rank, 0, 0)
        with pytest.raises(BankStateError):
            rank.do_refresh(T.trefi)

    def test_catch_up_is_bounded(self, rank):
        # After a long idle skip we bunch at most ~8 refreshes.
        late = 100 * T.trefi
        count = 0
        while rank.refresh_due(late) and count < 50:
            rank.do_refresh(late)
            late += T.trfc
            count += 1
        assert count <= 10
