"""CLI: argument parsing and end-to-end command behaviour."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "MIX1"
        assert args.scheme == "PRA"
        assert args.policy == "relaxed"

    def test_compare_schemes(self):
        args = build_parser().parse_args(
            ["compare", "--schemes", "PRA", "Half-DRAM"]
        )
        assert args.schemes == ["PRA", "Half-DRAM"]

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profile_flag(self):
        args = build_parser().parse_args(["run", "--profile"])
        assert args.profile is True
        args = build_parser().parse_args(["run"])
        assert args.profile is False


@pytest.mark.slow
class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "MIX1" in out
        assert "PRA" in out
        assert "relaxed" in out

    def test_run_small(self, capsys):
        code = main(["run", "--workload", "GUPS", "--scheme", "PRA",
                     "--events", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GUPS / PRA" in out
        assert "total_power_mw" in out
        assert "1/8 row" in out

    def test_compare_small(self, capsys):
        code = main(["compare", "--workload", "GUPS", "--events", "300",
                     "--schemes", "PRA"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Baseline" in out  # baseline auto-added
        assert "PRA" in out

    def test_unknown_scheme_clean_error(self, capsys):
        code = main(["run", "--scheme", "bogus", "--events", "300"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown scheme" in err
        assert "Traceback" not in err

    def test_unknown_workload_clean_error(self, capsys):
        code = main(["run", "--workload", "nope", "--events", "300"])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_run_profiled(self, capsys):
        code = main(["run", "--workload", "GUPS", "--scheme", "Baseline",
                     "--events", "300", "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GUPS / Baseline" in out
        # The cProfile report follows the normal output.
        assert "cumulative" in out
        assert "function calls" in out

    def test_restricted_policy(self, capsys):
        code = main(["run", "--workload", "GUPS", "--scheme", "Baseline",
                     "--events", "300", "--policy", "restricted"])
        assert code == 0
        assert "restricted-close-page" in capsys.readouterr().out


@pytest.mark.slow
class TestSweepCommand:
    def test_sweep_csv(self, tmp_path, capsys):
        out = tmp_path / "grid.csv"
        code = main([
            "sweep", "--workloads", "GUPS", "--schemes", "Baseline", "PRA",
            "--events", "300", "--out", str(out),
        ])
        assert code == 0
        import csv

        with open(out) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert {r["scheme"] for r in rows} == {"Baseline", "PRA"}

    def test_sweep_json(self, tmp_path):
        out = tmp_path / "grid.json"
        code = main([
            "sweep", "--workloads", "GUPS", "--schemes", "PRA",
            "--events", "300", "--out", str(out),
        ])
        assert code == 0
        import json

        assert len(json.loads(out.read_text())) == 1

    def test_sweep_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])
