"""Robustness: non-default geometries run end to end.

The library should not be hard-wired to the paper's 2-channel/2-rank
configuration: single-channel systems, single-rank channels, DDR4-ish
bank counts and small chips must all simulate and account correctly.
"""

import pytest

from repro.core.schemes import BASELINE, PRA
from repro.dram.geometry import ChipGeometry, SystemGeometry
from repro.dram.mapping import AddressMapper, Interleaving
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.system import simulate
from repro.sim.validate import validate_result
from repro.workloads.mixes import Workload, workload
from repro.workloads.profiles import profile

SMALL_CACHE = CacheConfig(llc_bytes=128 * 1024)


def run(geometry, scheme=PRA, events=500, wl=None):
    config = SystemConfig(scheme=scheme, geometry=geometry, cache=SMALL_CACHE)
    wl = wl if wl is not None else workload("GUPS")
    return simulate(config, wl, events, warmup_events_per_core=1500)


class TestGeometryVariants:
    def test_single_channel(self):
        geo = SystemGeometry(channels=1)
        result = run(geo)
        validate_result(result)
        assert result.controller.total_served > 0

    def test_single_rank_no_termination_partner(self):
        geo = SystemGeometry(ranks_per_channel=1)
        result = run(geo)
        validate_result(result)
        # With one rank per channel there is no other-rank termination,
        # so I/O power is lower than the dual-rank default.
        dual = run(SystemGeometry())
        io_single = result.power.power_mw("rd_io") / max(1, result.controller.reads.served)
        io_dual = dual.power.power_mw("rd_io") / max(1, dual.controller.reads.served)
        assert io_single < io_dual

    def test_ddr4_style_sixteen_banks(self):
        geo = SystemGeometry(chip=ChipGeometry(banks=16, rows=16384))
        result = run(geo)
        validate_result(result)

    def test_quad_channel(self):
        geo = SystemGeometry(channels=4)
        result = run(geo)
        validate_result(result)
        # More channels => more parallelism => no slower than dual.
        dual = run(SystemGeometry())
        assert result.runtime_cycles <= dual.runtime_cycles * 1.2

    def test_small_chip_wraps_addresses(self):
        # 256Mb-class chip: tiny capacity; generator footprints wrap.
        geo = SystemGeometry(chip=ChipGeometry(rows=4096))
        result = run(geo)
        validate_result(result)

    def test_mapper_roundtrip_on_variants(self):
        for geo in (
            SystemGeometry(channels=1),
            SystemGeometry(ranks_per_channel=1),
            SystemGeometry(chip=ChipGeometry(banks=16, rows=16384)),
            SystemGeometry(channels=4, ranks_per_channel=1),
        ):
            for interleaving in Interleaving:
                mapper = AddressMapper(geo, interleaving)
                for line in (0, 1, 12345, mapper.line_capacity - 1):
                    assert mapper.encode_line(mapper.decode_line(line)) == line

    def test_single_core_single_channel_pra_saves_power(self):
        geo = SystemGeometry(channels=1, ranks_per_channel=1)
        wl = Workload(name="solo", apps=(profile("GUPS"),))
        base = run(geo, scheme=BASELINE, wl=wl)
        pra = run(geo, scheme=PRA, wl=wl)
        assert pra.avg_power_mw < base.avg_power_mw
