"""Cross-validation: device predicates vs the independent checker.

The scheduler trusts the Bank/Rank/Channel ``can_*`` predicates; the
protocol checker re-implements the same DDR3 rules from scratch.  Here
a random driver issues only predicate-approved commands and replays
every one through the checker: any divergence between the two
implementations fails the test.  (This is the opposite direction of
``tests/test_protocol.py``'s full-system verification, which exercises
the scheduler; this one exercises the raw device model.)
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.channel import Channel
from repro.dram.geometry import FULL_MASK
from repro.dram.protocol import Cmd, CommandRecord, ProtocolChecker, ProtocolViolation
from repro.dram.timing import DDR3_1600

T = DDR3_1600

programs = st.lists(
    st.tuples(
        st.sampled_from(["act", "read", "write", "pre"]),
        st.integers(min_value=0, max_value=1),   # rank
        st.integers(min_value=0, max_value=7),   # bank
        st.integers(min_value=0, max_value=7),   # row
        st.integers(min_value=1, max_value=255),  # mask
        st.integers(min_value=0, max_value=8),   # time stride
    ),
    min_size=5,
    max_size=150,
)


@given(programs, st.booleans())
@settings(max_examples=80, deadline=None)
def test_predicate_approved_commands_pass_the_checker(program, relaxed):
    channel = Channel(T, num_ranks=2, relax_act_constraints=relaxed)
    checker = ProtocolChecker(T, relax_act_constraints=relaxed)
    cycle = 0
    cmd_bus_free = 0
    for action, rank_idx, bank_idx, row, mask, stride in program:
        cycle += stride
        if cycle < cmd_bus_free:
            cycle = cmd_bus_free
        rank = channel.ranks[rank_idx]
        bank = rank.banks[bank_idx]
        granularity = bin(mask).count("1")
        try:
            if action == "act":
                if not rank.can_activate(cycle, bank_idx, granularity):
                    continue
                masked = mask != FULL_MASK
                bank.activate(cycle, row, mask)
                rank.record_activate(cycle, granularity)
                checker.observe(CommandRecord(
                    cycle=cycle, cmd=Cmd.ACT, rank=rank_idx, bank=bank_idx,
                    row=row, mask=mask, granularity=granularity, masked=masked))
                cmd_bus_free = cycle + (2 if masked else 1)
            elif action in ("read", "write"):
                is_read = action == "read"
                if is_read and not rank.can_read(cycle, bank_idx):
                    continue
                if not is_read and not rank.can_write(cycle, bank_idx):
                    continue
                # Coverage: only issue if the open mask covers a
                # random needed subset (mirror the controller).
                needed = bank.open_mask if not is_read else FULL_MASK
                if needed & ~bank.open_mask:
                    continue
                if is_read and bank.open_mask != FULL_MASK:
                    continue  # a read against a partial row = false hit
                delay = T.tcas if is_read else T.tcwl
                burst_start = channel.earliest_burst_start(cycle + delay, rank_idx)
                if burst_start > cycle + delay:
                    continue
                if is_read:
                    bank.read(cycle)
                else:
                    bank.write(cycle)
                burst_end = channel.occupy_data_bus(cycle + delay, rank_idx)
                if is_read:
                    rank.record_read(cycle)
                else:
                    bank.pre_ready = max(bank.pre_ready, burst_end + T.twr)
                    rank.record_write(cycle, burst_end)
                checker.observe(CommandRecord(
                    cycle=cycle, cmd=Cmd.RD if is_read else Cmd.WR,
                    rank=rank_idx, bank=bank_idx,
                    burst_start=cycle + delay, burst_end=burst_end,
                    needed_mask=needed))
                cmd_bus_free = cycle + 1
            elif action == "pre":
                if not bank.can_precharge(cycle):
                    continue
                bank.precharge(cycle)
                checker.observe(CommandRecord(
                    cycle=cycle, cmd=Cmd.PRE, rank=rank_idx, bank=bank_idx))
                cmd_bus_free = cycle + 1
        except ProtocolViolation as exc:  # pragma: no cover - divergence
            pytest.fail(f"device model and checker diverge: {exc}")
    assert checker.commands_checked >= 0
