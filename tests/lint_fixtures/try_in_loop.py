"""Fixture: hygiene-try-in-loop (exception frame in a per-cycle loop)."""
# reprolint: hot-path


def drain(queue: list) -> int:
    """Sets up a try frame every iteration of the inner loop."""
    served = 0
    for item in queue:
        try:
            served += item
        except TypeError:
            pass
    return served
