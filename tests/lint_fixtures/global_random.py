"""Fixture: determinism-global-random (module-global RNG call)."""

import random


def jitter(base: int) -> int:
    """Draw from the process-global RNG — irreproducible across runs."""
    return base + random.randrange(8)
