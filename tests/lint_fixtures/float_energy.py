"""Fixture: determinism-float-energy (ad-hoc energy accumulation)."""


class RogueCounter:
    """Accumulates energy outside repro/power, breaking centralization."""

    def __init__(self) -> None:
        self.energy_pj = 0.0

    def add_burst(self, pj: float) -> None:
        """Float += into an energy counter away from the accountant."""
        self.energy_pj += pj * 0.5
