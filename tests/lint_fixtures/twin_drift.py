"""Fixture: twin-drift (in-file twin pair that has diverged).

Declares a ``REPRO_TWIN_PAIRS`` pair whose two functions were once
transcriptions of each other but no longer are: ``fast_sum`` grew an
early-exit the reference never got.  The pass compares the two bodies
structurally (names and docstrings excluded), so the divergence fires
regardless of line positions.
"""

REPRO_TWIN_PAIRS = (("fixture-sum", "reference_sum", "fast_sum"),)


def reference_sum(values: list) -> int:
    """The slow reference."""
    total = 0
    for value in values:
        total += value
    return total


def fast_sum(values: list) -> int:
    """Supposed transcription of :func:`reference_sum` — drifted."""
    total = 0
    for value in values:
        if value == 0:
            continue
        total += value
    return total
