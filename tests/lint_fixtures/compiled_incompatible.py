"""Fixture: mypyc-incompatible constructs in a compiled-engine module.

Opts into the ``compiled-incompatible`` rule via the marker comment
below (standing in for membership in
``repro.analysis.registry.COMPILED_MODULE_PATHS``).  Every construct
here either fails or silently deoptimizes a mypyc build.
"""
# reprolint: compiled

from dataclasses import dataclass


@dataclass(slots=True)  # the slots decorator replaces the class object
class SlotsDataclass:
    value: int = 0


class WithKeywords(dict, metaclass=type):  # class keywords + 2 bases
    pass


class WithFinalizer:
    def __del__(self):  # finalizers unsupported on native classes
        pass


def make_class():
    class Nested:  # mypyc only compiles module-level classes
        pass

    return Nested


def dynamic(code):
    exec(code)  # dynamically executed code is invisible to mypyc


def unbind(obj):
    del obj.attr  # native attributes cannot be unbound
