"""Fixture: hygiene-mutable-default (shared-state default argument)."""


def collect(value: int, into: list = []) -> list:
    """The default list is shared across every call site."""
    into.append(value)
    return into
