"""Fixture: determinism-wallclock (host clock read inside sim code)."""

import time


def stamp() -> float:
    """Wall-clock timestamps differ per run; sim results must not."""
    return time.perf_counter()
