"""Fixture: oracle-test-missing (ORACLE_TESTS names a ghost file)."""

REPRO_FAST_PATH = True
ORACLE_TWIN = "repro.dram.bank"
ORACLE_TESTS = ("tests/test_does_not_exist.py",)
