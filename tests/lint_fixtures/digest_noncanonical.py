"""Fixture: determinism-digest-canonical (non-canonical cache keys)."""
# reprolint: digest

import hashlib
import json


def bad_point_digest(point: dict) -> str:
    """Both spellings of a digest that drifts between processes."""
    salted = hash(tuple(sorted(point)))  # per-process salt (PEP 456)
    payload = json.dumps({"point": point, "salt": salted})  # insertion order
    return hashlib.sha256(payload.encode()).hexdigest()
