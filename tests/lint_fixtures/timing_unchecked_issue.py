"""Fixture: timing-unchecked-issue (ACT committed with no gate reads).

Opted into the timing-coverage pass with the marker below.  The bad
scheme commits an activate (``open_row[g] = row``) without consulting
any of the mandated ACT state (``act_ready``/``next_act_ok``/``faw``/
``gate``) — the protocol hole the pass exists to catch.  The good
scheme performs the full consultation chain and is not flagged.
"""

# reprolint: timing


class SneakyScheme:
    """Issues activates with zero timing-state consultation."""

    def try_activate(self, core, g: int, row: int) -> bool:
        core.open_row[g] = row
        return True


class CheckedScheme:
    """Performs the mandated consultation before committing."""

    def try_activate(self, core, rank, cycle: int, g: int, row: int) -> bool:
        rank_idx = g // 8
        if cycle < core.act_ready[g]:
            return False
        if cycle < core.next_act_ok[rank_idx]:
            return False
        if cycle < core.gate[rank_idx]:
            return False
        if rank.faw.next_allowed(cycle, 1) > cycle:
            return False
        core.open_row[g] = row
        return True
