"""Fixture: a module that violates nothing (exit-0 control)."""
# reprolint: hot-path

import random
from dataclasses import dataclass


@dataclass(slots=True)
class Event:
    """Slotted per-event record."""

    cycle: int


def draw(seed: int) -> int:
    """Seeded instance RNG plus sorted set iteration: all legal."""
    rng = random.Random(seed)
    total = 0
    for tag in sorted({"a", "b"}):
        total += rng.randrange(8) + len(tag)
    return total
