"""Fixture: cow-unsafe-mutation (shared value mutated off the guard).

The module declares a COW protocol (``_tags`` containers shared until
``_own_set`` privatizes), then mutates a shared per-set container on a
path the privatization guard does not dominate: the guard sits inside
an ``if`` branch while the mutation runs unconditionally after the
join, so the unguarded path writes through a snapshot-shared dict.
"""

REPRO_COW_PROTOCOL = {
    "shared_roots": ("_tags",),
    "shared_calls": (),
    "privatizers": ("_own_set",),
}


class LeakyCache:
    """Minimal COW tag store with a broken write path."""

    def __init__(self, num_sets: int) -> None:
        self._tags = [dict() for _ in range(num_sets)]
        self._cow_owned: set = set()

    def _own_set(self, set_idx: int) -> dict:
        tags = dict(self._tags[set_idx])
        self._tags[set_idx] = tags
        self._cow_owned.add(set_idx)
        return tags

    def install_guarded(self, set_idx: int, tag: int, slot: int) -> None:
        """Correct shape: privatization guard dominates the write."""
        tags = self._tags[set_idx]
        if set_idx not in self._cow_owned:
            tags = self._own_set(set_idx)
        tags[tag] = slot

    def install_leaky(self, set_idx: int, tag: int, slot: int) -> None:
        """Broken shape: no privatization on any path — the write goes
        straight through a possibly snapshot-shared dict."""
        tags = self._tags[set_idx]
        tags[tag] = slot

    def evict_leaky(self, set_idx: int, tag: int) -> None:
        """Broken shape: mutating method call on a shared container."""
        self._tags[set_idx].pop(tag, None)
