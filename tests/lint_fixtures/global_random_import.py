"""Fixture: determinism-global-random (from-import of the global RNG)."""

from random import randrange


def jitter(base: int) -> int:
    """Same global-RNG dependence, hidden behind a bare name."""
    return base + randrange(8)
