"""Fixture: oracle-twin-undeclared (dangling ORACLE_TWIN target)."""

REPRO_FAST_PATH = True
ORACLE_TWIN = "ghost.oracle.module"
ORACLE_TESTS = ("tests/test_reprolint.py",)
