"""Fixture: determinism-unordered-iter (hash-order dependent loop)."""


def merge(results: list) -> list:
    """Iterates a set literal — order is hash-seed dependent."""
    merged = []
    for tag in {"reads", "writes", "refreshes"}:
        merged.append((tag, results))
    return merged
