"""Fixture: hygiene-slots (hot-path dataclass with a __dict__)."""
# reprolint: hot-path

from dataclasses import dataclass


@dataclass
class PerEventRecord:
    """Created per event; pays an unnecessary __dict__ without slots."""

    cycle: int
    value: int
