"""Unit tests for the dataflow layer (repro.analysis.flow).

The v2 lint passes stand on three facts this module must get right in
isolation — CFG shape, dominance, and forward may-state propagation —
so each is pinned here on small synthetic functions, independent of
any lint rule.
"""

import ast

from repro.analysis.flow import (
    build_cfg,
    iter_functions,
    join_max,
    solve_forward,
)


def _body(source):
    """Parse a function's body statements from source text."""
    tree = ast.parse(source)
    fn = tree.body[0]
    assert isinstance(fn, ast.FunctionDef)
    return fn.body


def _stmt(cfg, marker):
    """The placed statement whose unparse contains ``marker``."""
    for block in cfg.blocks:
        for stmt in block.stmts:
            if marker in ast.unparse(stmt).split("\n")[0]:
                return stmt
    raise AssertionError(f"no placed statement matches {marker!r}")


# ----------------------------------------------------------------------
# CFG construction.
# ----------------------------------------------------------------------
def test_straight_line_is_one_block():
    cfg = build_cfg(_body("def f():\n    a = 1\n    b = 2\n    return b\n"))
    placed = [s for b in cfg.blocks for s in b.stmts]
    assert len(placed) == 3
    # All three statements share the entry block.
    positions = {cfg.position(s)[0] for s in placed}
    assert positions == {cfg.entry.id}


def test_if_branches_and_join():
    cfg = build_cfg(_body(
        "def f(c):\n"
        "    a = 1\n"
        "    if c:\n"
        "        b = 2\n"
        "    else:\n"
        "        b = 3\n"
        "    return b\n"
    ))
    header = _stmt(cfg, "if c:")
    then_stmt = _stmt(cfg, "b = 2")
    else_stmt = _stmt(cfg, "b = 3")
    ret = _stmt(cfg, "return b")
    header_block = cfg.position(header)[0]
    # Branches live in distinct blocks, both successors of the header's.
    assert cfg.position(then_stmt)[0] != cfg.position(else_stmt)[0]
    succs = set(cfg.blocks[header_block].succs)
    assert cfg.position(then_stmt)[0] in succs
    assert cfg.position(else_stmt)[0] in succs
    # The join point is downstream of both branches.
    assert cfg.position(ret)[0] not in (
        cfg.position(then_stmt)[0], cfg.position(else_stmt)[0],
    )


def test_while_loop_back_edge():
    cfg = build_cfg(_body(
        "def f(n):\n"
        "    i = 0\n"
        "    while i < n:\n"
        "        i = i + 1\n"
        "    return i\n"
    ))
    header_block = cfg.position(_stmt(cfg, "while i < n:"))[0]
    body_block = cfg.position(_stmt(cfg, "i = i + 1"))[0]
    # Loop body edges back to the header.
    assert header_block in cfg.blocks[body_block].succs


def test_break_edges_to_loop_exit_not_header():
    cfg = build_cfg(_body(
        "def f(n):\n"
        "    while True:\n"
        "        if n:\n"
        "            break\n"
        "        n = n - 1\n"
        "    return n\n"
    ))
    break_block = cfg.position(_stmt(cfg, "break"))[0]
    header_block = cfg.position(_stmt(cfg, "while True:"))[0]
    ret_block = cfg.position(_stmt(cfg, "return n"))[0]
    assert header_block not in cfg.blocks[break_block].succs
    # The break reaches the return without passing the header again.
    reachable = {break_block}
    work = [break_block]
    while work:
        for succ in cfg.blocks[work.pop()].succs:
            if succ not in reachable:
                reachable.add(succ)
                work.append(succ)
    assert ret_block in reachable


def test_return_ends_the_path():
    cfg = build_cfg(_body(
        "def f(c):\n"
        "    if c:\n"
        "        return 1\n"
        "    return 2\n"
    ))
    ret1_block = cfg.position(_stmt(cfg, "return 1"))[0]
    assert cfg.blocks[ret1_block].succs == [cfg.exit.id]


def test_try_handler_reachable_from_header():
    cfg = build_cfg(_body(
        "def f():\n"
        "    try:\n"
        "        a = 1\n"
        "    except ValueError:\n"
        "        a = 2\n"
        "    return a\n"
    ))
    header_block = cfg.position(_stmt(cfg, "try:"))[0]
    handler_block = cfg.position(_stmt(cfg, "a = 2"))[0]
    assert handler_block in cfg.blocks[header_block].succs


# ----------------------------------------------------------------------
# Dominance.
# ----------------------------------------------------------------------
def test_header_dominates_branches_and_join():
    cfg = build_cfg(_body(
        "def f(c):\n"
        "    guard = c\n"
        "    if guard:\n"
        "        a = 1\n"
        "    else:\n"
        "        a = 2\n"
        "    use = a\n"
    ))
    header = _stmt(cfg, "if guard:")
    assert cfg.stmt_dominates(header, _stmt(cfg, "a = 1"))
    assert cfg.stmt_dominates(header, _stmt(cfg, "a = 2"))
    assert cfg.stmt_dominates(header, _stmt(cfg, "use = a"))
    # A branch does NOT dominate the join (the other path bypasses it).
    assert not cfg.stmt_dominates(_stmt(cfg, "a = 1"), _stmt(cfg, "use = a"))


def test_same_block_dominance_is_order():
    cfg = build_cfg(_body("def f():\n    a = 1\n    b = 2\n"))
    first = _stmt(cfg, "a = 1")
    second = _stmt(cfg, "b = 2")
    assert cfg.stmt_dominates(first, second)
    assert not cfg.stmt_dominates(second, first)
    assert not cfg.stmt_dominates(first, first)


def test_loop_body_does_not_dominate_exit():
    cfg = build_cfg(_body(
        "def f(n):\n"
        "    for i in range(n):\n"
        "        x = i\n"
        "    return n\n"
    ))
    assert not cfg.stmt_dominates(_stmt(cfg, "x = i"), _stmt(cfg, "return n"))
    assert cfg.stmt_dominates(
        _stmt(cfg, "for i in range(n):"), _stmt(cfg, "return n")
    )


# ----------------------------------------------------------------------
# Forward may-analysis (alias-style propagation).
# ----------------------------------------------------------------------
def _tainting_transfer(stmt, state):
    """Toy transfer: ``x = taint()`` sets x=2, any other assign clears."""
    out = dict(state)
    if isinstance(stmt, ast.Assign) and isinstance(stmt.targets[0], ast.Name):
        name = stmt.targets[0].id
        value = stmt.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "taint"
        ):
            out[name] = 2
        elif isinstance(value, ast.Name) and state.get(value.id, 0) == 2:
            out[name] = 2  # propagate through copies
        else:
            out.pop(name, None)
    return out


def _pre(cfg, pre_states, marker):
    return pre_states[id(_stmt(cfg, marker))]


def test_branch_join_is_may_union():
    cfg = build_cfg(_body(
        "def f(c):\n"
        "    if c:\n"
        "        x = taint()\n"
        "    else:\n"
        "        x = 1\n"
        "    sink = x\n"
    ))
    pre = solve_forward(cfg, _tainting_transfer)
    # At the join, x *may* be tainted (one path taints it).
    assert _pre(cfg, pre, "sink = x").get("x") == 2


def test_rebind_kills_taint():
    cfg = build_cfg(_body(
        "def f():\n"
        "    x = taint()\n"
        "    x = 1\n"
        "    sink = x\n"
    ))
    pre = solve_forward(cfg, _tainting_transfer)
    assert _pre(cfg, pre, "sink = x").get("x") is None


def test_copy_propagates_taint():
    cfg = build_cfg(_body(
        "def f():\n"
        "    x = taint()\n"
        "    y = x\n"
        "    sink = y\n"
    ))
    pre = solve_forward(cfg, _tainting_transfer)
    assert _pre(cfg, pre, "sink = y").get("y") == 2


def test_loop_reaches_fixpoint_with_carry():
    # Taint introduced inside the loop must be visible at the loop
    # header on the second iteration (back-edge propagation).
    cfg = build_cfg(_body(
        "def f(n):\n"
        "    while n:\n"
        "        sink = x\n"
        "        x = taint()\n"
        "    return n\n"
    ))
    pre = solve_forward(cfg, _tainting_transfer)
    assert _pre(cfg, pre, "sink = x").get("x") == 2


def test_join_max_takes_per_name_maximum():
    assert join_max([{"a": 1, "b": 2}, {"a": 2, "c": 1}]) == {
        "a": 2, "b": 2, "c": 1,
    }
    assert join_max([]) == {}


# ----------------------------------------------------------------------
# Function discovery.
# ----------------------------------------------------------------------
def test_iter_functions_qualnames():
    tree = ast.parse(
        "def top():\n"
        "    def inner():\n"
        "        pass\n"
        "class C:\n"
        "    def method(self):\n"
        "        pass\n"
        "if True:\n"
        "    def guarded():\n"
        "        pass\n"
    )
    names = {qual for qual, _ in iter_functions(tree)}
    assert names == {"top", "top.<locals>.inner", "C.method", "guarded"}
