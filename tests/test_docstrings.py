"""Documentation gate: every public item carries a docstring.

Walks the installed ``repro`` package and asserts that each module,
public class, public function and public method is documented —
keeping the "doc comments on every public item" guarantee honest as
the library grows.
"""

import importlib
import inspect
import pkgutil

import repro

EXEMPT_MODULES = {"repro.__main__"}


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in EXEMPT_MODULES:
            continue
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_every_module_has_docstring():
    undocumented = [m.__name__ for m in _iter_modules() if not m.__doc__]
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_every_public_class_and_function_has_docstring():
    missing = []
    for module in _iter_modules():
        for name, obj in _public_members(module):
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def _body_lines(func) -> int:
    try:
        source = inspect.getsource(func)
    except (OSError, TypeError):
        return 0
    lines = [ln for ln in source.splitlines() if ln.strip()]
    return max(0, len(lines) - 1)  # minus the def line


def test_substantive_public_methods_have_docstrings():
    """Methods with real bodies must be documented; one-line
    properties and trivial forwarders may go bare."""
    missing = []
    for module in _iter_modules():
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for meth_name, meth in vars(cls).items():
                if meth_name.startswith("_"):
                    continue
                if not (inspect.isfunction(meth) or isinstance(meth, property)):
                    continue
                target = meth.fget if isinstance(meth, property) else meth
                if target is None or inspect.getdoc(target):
                    continue
                if _body_lines(target) <= 3:
                    continue  # trivial property/forwarder
                missing.append(f"{module.__name__}.{cls_name}.{meth_name}")
    assert not missing, f"undocumented substantive methods: {missing}"
