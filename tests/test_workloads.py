"""Workload generators: determinism, stream statistics, mixes."""

import pytest

from repro.cpu.trace import TraceEvent
from repro.workloads.mixes import ALL_WORKLOADS, MIXES, Workload, homogeneous, workload
from repro.workloads.profiles import BENCHMARKS, BenchmarkProfile, profile
from repro.workloads.synthetic import REGION_LINES, TraceGenerator, generate


class TestProfiles:
    def test_eight_benchmarks(self):
        assert set(BENCHMARKS) == {
            "bzip2",
            "lbm",
            "libquantum",
            "mcf",
            "omnetpp",
            "em3d",
            "GUPS",
            "LinkedList",
        }

    def test_lookup_case_insensitive(self):
        assert profile("gups").name == "GUPS"
        with pytest.raises(KeyError):
            profile("povray")

    def test_fractions_sum_to_one(self):
        for prof in BENCHMARKS.values():
            total = prof.load_fraction + prof.store_fraction + prof.rmw_fraction
            assert total == pytest.approx(1.0)

    def test_dirty_distributions_sum_to_one(self):
        for prof in BENCHMARKS.values():
            assert sum(p for _, p in prof.dirty_word_dist) == pytest.approx(1.0)

    def test_gups_is_single_word_dirty(self):
        assert profile("GUPS").mean_dirty_words() == pytest.approx(1.0)

    def test_most_benchmarks_dominated_by_one_word(self):
        # Figure 3: not many dirty words in written-back lines.
        one_word_heavy = sum(
            1
            for prof in BENCHMARKS.values()
            if dict(prof.dirty_word_dist).get(1, 0.0) >= 0.45
        )
        assert one_word_heavy >= 6

    def test_validation(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="bad",
                mean_gap=1.0,
                load_fraction=0.5,
                store_fraction=0.5,
                rmw_fraction=0.5,
                read_run=1.0,
                write_run=1.0,
                footprint_lines=10,
                dirty_word_dist=((1, 1.0),),
            )
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="bad",
                mean_gap=1.0,
                load_fraction=1.0,
                store_fraction=0.0,
                rmw_fraction=0.0,
                read_run=1.0,
                write_run=1.0,
                footprint_lines=10,
                dirty_word_dist=((1, 0.5),),
            )

    def test_rmw_run_defaults_to_write_run(self):
        prof = BenchmarkProfile(
            name="x",
            mean_gap=1.0,
            load_fraction=1.0,
            store_fraction=0.0,
            rmw_fraction=0.0,
            read_run=1.0,
            write_run=3.0,
            footprint_lines=10,
            dirty_word_dist=((1, 1.0),),
        )
        assert prof.rmw_run == 3.0


class TestGenerator:
    def test_deterministic_for_seed(self):
        a = generate(profile("GUPS"), 200, seed=7)
        b = generate(profile("GUPS"), 200, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate(profile("GUPS"), 200, seed=7)
        b = generate(profile("GUPS"), 200, seed=8)
        assert a != b

    def test_cores_use_disjoint_regions(self):
        a = generate(profile("GUPS"), 500, seed=1, core_id=0)
        b = generate(profile("GUPS"), 500, seed=1, core_id=1)
        max_a = max(e.line_addr for e in a)
        min_b = min(e.line_addr for e in b)
        assert max_a < REGION_LINES <= min_b

    def test_rmw_pairs_load_then_store_same_line(self):
        events = generate(profile("GUPS"), 1000, seed=3)
        pairs = 0
        for first, second in zip(events, events[1:]):
            if not first.is_store and second.is_store:
                if first.line_addr == second.line_addr:
                    pairs += 1
        # GUPS is 88% RMW: nearly half of all events are pair-starts.
        assert pairs > 300

    def test_store_masks_follow_distribution(self):
        events = generate(profile("GUPS"), 2000, seed=5)
        masks = [e.write_mask for e in events if e.is_store]
        assert masks, "GUPS must generate stores"
        assert all(bin(m).count("1") == 1 for m in masks)

    def test_full_line_mask_for_eight_words(self):
        prof = BenchmarkProfile(
            name="full",
            mean_gap=0.0,
            load_fraction=0.0,
            store_fraction=1.0,
            rmw_fraction=0.0,
            read_run=1.0,
            write_run=1.0,
            footprint_lines=1000,
            dirty_word_dist=((8, 1.0),),
        )
        events = [next(TraceGenerator(prof, seed=1)) for _ in range(50)]
        assert all(e.write_mask == 0xFF for e in events)

    def test_no_fill_flag_propagates(self):
        events = generate(profile("lbm"), 3000, seed=2)
        flagged = [e for e in events if e.no_fill]
        assert flagged, "lbm streaming stores must skip fills"
        assert all(e.is_store for e in flagged)

    def test_read_fraction_roughly_matches(self):
        prof = profile("mcf")
        events = generate(prof, 5000, seed=9)
        stores = sum(1 for e in events if e.is_store)
        # mcf: 27% RMW => stores ~ 0.27 / 1.27 of all events.
        expected = prof.rmw_fraction / (1 + prof.rmw_fraction)
        assert stores / len(events) == pytest.approx(expected, abs=0.05)

    def test_gap_mean_in_range(self):
        prof = profile("omnetpp")
        events = generate(prof, 4000, seed=11)
        gaps = [e.gap for e in events if not e.is_store or True]
        mean_gap = sum(gaps) / len(gaps)
        # RMW store halves ride with gap=2, so the mean sits below the
        # profile's mean_gap but well above zero.
        assert 0.3 * prof.mean_gap < mean_gap < 1.2 * prof.mean_gap

    def test_sequential_runs_present(self):
        events = generate(profile("libquantum"), 2000, seed=13)
        loads = [e.line_addr for e in events if not e.is_store]
        # The pure-load and RMW-load streams interleave, so compare each
        # load against a small window of successors.
        sequential = sum(
            1
            for i, a in enumerate(loads[:-3])
            if any(b == a + 1 for b in loads[i + 1 : i + 4])
        )
        assert sequential > len(loads) * 0.5


class TestMixes:
    def test_table4_mixes(self):
        assert MIXES["MIX1"].app_names == ("bzip2", "lbm", "libquantum", "omnetpp")
        assert MIXES["MIX2"].app_names == ("mcf", "em3d", "GUPS", "LinkedList")
        assert MIXES["MIX3"].app_names == ("bzip2", "mcf", "lbm", "em3d")
        assert MIXES["MIX4"].app_names == (
            "libquantum",
            "GUPS",
            "omnetpp",
            "LinkedList",
        )
        assert MIXES["MIX5"].app_names == ("bzip2", "LinkedList", "lbm", "GUPS")
        assert MIXES["MIX6"].app_names == ("libquantum", "em3d", "omnetpp", "mcf")

    def test_fourteen_workloads(self):
        assert len(ALL_WORKLOADS) == 14

    def test_homogeneous_four_copies(self):
        wl = homogeneous("GUPS")
        assert wl.num_cores == 4
        assert wl.app_names == ("GUPS",) * 4

    def test_workload_lookup(self):
        assert workload("mix3").name == "MIX3"
        assert workload("GUPS").num_cores == 4
        with pytest.raises(KeyError):
            workload("MIX9")


class TestCrossProcessDeterminism:
    def test_seed_is_hashseed_independent(self):
        """Traces must not depend on PYTHONHASHSEED (process-stable)."""
        import os
        import subprocess
        import sys

        import repro

        # Minimal env: the child still needs to find the package, which
        # may be importable via PYTHONPATH rather than installed.
        repro_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        script = (
            "from repro.workloads.synthetic import generate\n"
            "from repro.workloads.profiles import profile\n"
            "events = generate(profile('GUPS'), 50, seed=3)\n"
            "print(sum(e.line_addr for e in events))\n"
        )
        outputs = set()
        for hashseed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={
                    "PYTHONHASHSEED": hashseed,
                    "PYTHONPATH": repro_root,
                    "PATH": "/usr/bin:/bin",
                },
                check=True,
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1, f"trace depends on hash seed: {outputs}"
