"""Sweep harness: grid execution and export."""

import csv
import json

import pytest

from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.sweep import Sweep


@pytest.fixture(scope="module")
def ran_sweep():
    sweep = Sweep(
        events_per_core=500,
        base_config=SystemConfig(cache=CacheConfig(llc_bytes=128 * 1024)),
        warmup_events_per_core=1500,
    )
    sweep.add_axis("scheme", ["Baseline", "PRA"])
    sweep.add_axis("workload", ["GUPS"])
    sweep.run()
    return sweep


class TestAxes:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown axis"):
            Sweep().add_axis("voltage", [1.5])

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Sweep().add_axis("scheme", [])

    def test_workload_axis_required(self):
        sweep = Sweep().add_axis("scheme", ["PRA"])
        with pytest.raises(ValueError, match="workload"):
            sweep.run()

    def test_no_axes_rejected(self):
        with pytest.raises(ValueError, match="axis"):
            Sweep().run()


class TestResults:
    def test_grid_size(self, ran_sweep):
        assert len(ran_sweep.rows) == 2  # 2 schemes x 1 workload

    def test_rows_carry_point_and_summary(self, ran_sweep):
        for row in ran_sweep.rows:
            assert row["workload"] == "GUPS"
            assert row["scheme"] in ("Baseline", "PRA")
            assert row["total_power_mw"] > 0
            assert "edp" in row

    def test_pra_row_cheaper(self, ran_sweep):
        by_scheme = {r["scheme"]: r for r in ran_sweep.rows}
        assert by_scheme["PRA"]["total_power_mw"] < by_scheme["Baseline"]["total_power_mw"]


class TestExport:
    def test_csv(self, ran_sweep, tmp_path):
        path = tmp_path / "sweep.csv"
        ran_sweep.to_csv(str(path))
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["scheme"] == "Baseline"

    def test_json(self, ran_sweep, tmp_path):
        path = tmp_path / "sweep.json"
        ran_sweep.to_json(str(path))
        data = json.loads(path.read_text())
        assert len(data) == 2

    def test_export_before_run_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="run"):
            Sweep().to_csv(str(tmp_path / "x.csv"))


class TestPolicyAndECCAxes:
    def test_policy_and_ecc_grid(self):
        sweep = Sweep(
            events_per_core=300,
            base_config=SystemConfig(cache=CacheConfig(llc_bytes=128 * 1024)),
            warmup_events_per_core=1000,
        )
        sweep.add_axis("workload", ["GUPS"])
        sweep.add_axis("policy", ["relaxed", "restricted"])
        sweep.add_axis("ecc_chips", [0, 1])
        rows = sweep.run()
        assert len(rows) == 4
        ecc_power = [r["total_power_mw"] for r in rows if r["ecc_chips"] == 1]
        plain_power = [r["total_power_mw"] for r in rows if r["ecc_chips"] == 0]
        assert min(ecc_power) > min(plain_power)
