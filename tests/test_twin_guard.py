"""Tests for scripts/check_twin_regen.py (one-sided regen guard).

The guard closes the last loophole in the twin-drift contract: an
editor who changes one side of a pair and silently re-pins the
fingerprints.  These tests drive ``check()`` and ``main()`` through
the ``--files`` override, so no git plumbing is involved.
"""

import importlib.util
import os

from repro.analysis import twins

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_GUARD = os.path.join(REPO_ROOT, "scripts", "check_twin_regen.py")

_spec = importlib.util.spec_from_file_location("check_twin_regen", _GUARD)
assert _spec is not None and _spec.loader is not None
guard = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(guard)

_FP = twins.FINGERPRINT_FILE
_SCALAR = "src/repro/sim/system.py"
_BATCH = "src/repro/sim/batch.py"
_MEMCTRL = "src/repro/controller/memctrl.py"
_SOA = "src/repro/dram/soa.py"
_SOA_BATCH = "src/repro/dram/soa_batch.py"


def test_no_fingerprint_change_is_vacuous():
    assert guard.check([]) == []
    # Twin source edits without a re-pin are the lint pass's problem,
    # not the guard's.
    assert guard.check([_SCALAR]) == []


def test_one_sided_regen_is_rejected():
    violations = guard.check([_FP, _SCALAR])
    assert len(violations) == 1
    assert "scalar-loop" in violations[0]
    assert "mirror the edit" in violations[0]


def test_rejection_works_for_either_side():
    # Touching only the b side of the issue-screen pair is just as
    # one-sided as touching only the a side.
    violations = guard.check([_FP, _MEMCTRL, _SCALAR, _BATCH])
    # scalar-loop (system+batch) is mirrored; issue-screen
    # (memctrl+batch) is mirrored too — clean.
    assert violations == []
    violations = guard.check([_FP, _BATCH])
    assert any("issue-screen" in v for v in violations)
    assert any("scalar-loop" in v for v in violations)


def test_both_sides_touched_passes():
    assert guard.check([_FP, _SOA, _SOA_BATCH]) == []


def test_single_sided_pins_are_never_rejected():
    # engine.py appears only in single-sided pins (compiled-modules):
    # those have no mirror obligation.
    assert guard.check([_FP, "src/repro/engine.py"]) == []


def test_untouched_pairs_do_not_block_a_regen():
    # Re-pinning with neither side of a pair in the diff (new pair
    # added, note edited) is allowed.
    assert guard.check([_FP]) == []


def test_backslash_paths_normalize():
    assert guard.check(
        ["tests\\data\\twin_fingerprints.json", _SCALAR.replace("/", "\\")]
    )  # still one-sided after normalization


def test_main_files_mode_exit_codes(capsys):
    assert guard.main(["--files", _FP, _SCALAR]) == 1
    out = capsys.readouterr()
    assert "scalar-loop" in out.out
    assert "rejected" in out.err

    assert guard.main(["--files", _FP, _SOA, _SOA_BATCH]) == 0
    assert guard.main(["--files"]) == 0  # empty diff: vacuous pass


def test_main_requires_base_or_files(capsys):
    assert guard.main([]) == 2
    assert "need --base or --files" in capsys.readouterr().err
