"""Golden-digest pinning of the compiled engine to the interpreted one.

The compiled engine (mypyc builds of ``repro.dram.soa``,
``repro.controller.memctrl``, ``repro.dram.rank`` and
``repro.cache.set_assoc`` — see ``repro.engine.COMPILED_MODULES``)
must be *bit-identical* to the interpreted sources: same counters, same
energy, same protocol-checker command traces, on every scheme.  The two
engines cannot coexist in one process (the extension modules shadow the
``.py`` sources at the same import paths), so the pin is carried by
golden digests:

* this suite, run on the **interpreted** engine, generates and commits
  the digests in ``tests/data/engine_digests.json``
  (``REPRO_REGEN_DIGESTS=1`` rewrites them);
* the CI compiled leg re-runs the same suite on the **compiled** engine
  and must reproduce every digest byte for byte.

Each digest hashes everything a run reports — the summary, raw
controller counters (including the profiling-only ``sched_passes``,
which pins scheduler control flow, not just end results), the power
breakdown, per-core IPCs, the activation histogram and the LLC
counters — plus, for the trace cases, the cycle-exact DRAM command
stream as seen by a :class:`~repro.dram.protocol.ProtocolChecker`
subclass.  Cold construction and warm-snapshot restore must both land
on the same digest, so the pin covers the snapshot machinery too.
"""

import hashlib
import json
import os

import pytest

from repro.core.schemes import ALL_SCHEMES, BASELINE, DBI_PRA, PRA, SDS
from repro.dram.protocol import ProtocolChecker
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.snapshot import SNAPSHOTS
from repro.sim.system import System
from repro.workloads.mixes import workload

EVENTS = 400
WARMUP = 1500

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DIGEST_PATH = os.path.join(REPO_ROOT, "tests", "data", "engine_digests.json")
REGEN = os.environ.get("REPRO_REGEN_DIGESTS", "") not in ("", "0")

#: Workload spread for the scheme subset (beyond the all-scheme MIX2
#: sweep): covers every MIX's access pattern on the paper's headline
#: schemes.
SPREAD_SCHEMES = (BASELINE, PRA, DBI_PRA)
SPREAD_WORKLOADS = ("MIX1", "MIX2", "MIX3", "MIX4", "MIX5", "MIX6")

#: Schemes whose full command trace is digest-pinned (cycle, command,
#: rank, bank, row, mask, granularity of every DRAM command issued).
TRACE_SCHEMES = (BASELINE, PRA, DBI_PRA, SDS)


def _build(scheme, workload_name, seed=1, sanitize=False, **kwargs):
    config = SystemConfig(
        scheme=scheme,
        sanitize=sanitize,
        cache=CacheConfig(llc_bytes=256 * 1024),
    )
    return System(
        config,
        workload(workload_name),
        EVENTS,
        seed=seed,
        warmup_events_per_core=WARMUP,
        **kwargs,
    )


def _digest(result):
    """sha256 over a canonical-JSON dump of everything a run reports."""
    ctrl = result.controller
    payload = {
        "summary": result.summary(),
        "runtime_cycles": result.runtime_cycles,
        "ipcs": result.ipcs,
        "reads": {
            "served": ctrl.reads.served,
            "row_hits": ctrl.reads.row_hits,
            "false_hits": ctrl.reads.false_hits,
            "activations": ctrl.reads.activations,
            "latency_sum": ctrl.reads.latency_sum,
            "latency_max": ctrl.reads.latency_max,
        },
        "writes": {
            "served": ctrl.writes.served,
            "row_hits": ctrl.writes.row_hits,
            "false_hits": ctrl.writes.false_hits,
            "activations": ctrl.writes.activations,
            "latency_sum": ctrl.writes.latency_sum,
            "latency_max": ctrl.writes.latency_max,
        },
        "refreshes": ctrl.refreshes,
        "precharges": ctrl.precharges,
        "drain_entries": ctrl.drain_entries,
        "power_down_entries": ctrl.power_down_entries,
        "false_hit_reactivations": ctrl.false_hit_reactivations,
        "streaks": ctrl.streaks,
        "streak_commands": ctrl.streak_commands,
        "sched_passes": ctrl.sched_passes,
        "power_mw": result.power.as_dict_mw(),
        "activation_histogram": {
            str(k): v for k, v in sorted(result.activation_histogram.items())
        },
        "llc": {
            "hits": result.llc.hits,
            "misses": result.llc.misses,
            "evictions": result.llc.evictions,
            "dirty_evictions": result.llc.dirty_evictions,
            "dirty_word_hist": {
                str(k): v for k, v in sorted(result.llc.dirty_word_hist.items())
            },
        },
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _load_goldens():
    if not os.path.isfile(DIGEST_PATH):
        return {}
    with open(DIGEST_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def _check_golden(key, digest):
    """Compare against (or, under REPRO_REGEN_DIGESTS=1, record) golden."""
    goldens = _load_goldens()
    if REGEN:
        goldens.setdefault("_note", (
            "Golden run digests generated on the interpreted engine; the "
            "CI compiled leg must reproduce them bit for bit.  Regenerate "
            "with: REPRO_REGEN_DIGESTS=1 PYTHONPATH=src python -m pytest "
            "tests/test_engine_identity.py"
        ))
        runs = goldens.setdefault("runs", {})
        runs[key] = digest
        os.makedirs(os.path.dirname(DIGEST_PATH), exist_ok=True)
        with open(DIGEST_PATH, "w", encoding="utf-8") as handle:
            json.dump(goldens, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return
    runs = goldens.get("runs", {})
    assert key in runs, (
        f"no golden digest for {key!r}; regenerate with "
        f"REPRO_REGEN_DIGESTS=1 (interpreted engine only)"
    )
    assert runs[key] == digest, (
        f"digest mismatch for {key!r}: engine diverged from the golden "
        f"interpreted run ({digest[:12]} != {runs[key][:12]})"
    )


class DigestChecker(ProtocolChecker):
    """Protocol checker that also hashes the exact command stream.

    Subclasses (rather than wraps) :class:`ProtocolChecker` because the
    controller's ``protocol_checker`` attribute is typed — under the
    compiled engine, mypyc enforces the annotation at runtime, so duck
    types would be rejected.
    """

    def __init__(self, timing, relax_act_constraints=False):
        super().__init__(timing, relax_act_constraints=relax_act_constraints)
        self.hasher = hashlib.sha256()

    def observe(self, record):
        super().observe(record)
        self.hasher.update(repr((
            record.cycle, record.cmd.value, record.rank, record.bank,
            record.row, record.mask, record.granularity, record.masked,
            record.burst_start, record.burst_end, record.implicit,
        )).encode("utf-8"))


# ----------------------------------------------------------------------
# Every scheme: cold == restored == golden on MIX2.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "scheme_name", sorted(ALL_SCHEMES), ids=lambda n: n
)
def test_all_schemes_cold_restored_golden(scheme_name):
    scheme = ALL_SCHEMES[scheme_name]
    SNAPSHOTS.clear()
    cold = _build(scheme, "MIX2", use_snapshots=False).run()
    _build(scheme, "MIX2")  # prime the snapshot cache
    restored_system = _build(scheme, "MIX2")
    assert restored_system.snapshot_restored
    cold_digest = _digest(cold)
    assert cold_digest == _digest(restored_system.run()), (
        f"{scheme_name}: snapshot restore diverged from cold construction"
    )
    _check_golden(f"{scheme_name}/MIX2", cold_digest)


# ----------------------------------------------------------------------
# Headline schemes: every MIX workload against golden.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload_name", SPREAD_WORKLOADS)
@pytest.mark.parametrize("scheme", SPREAD_SCHEMES, ids=lambda s: s.name)
def test_workload_spread_golden(scheme, workload_name):
    result = _build(scheme, workload_name).run()
    _check_golden(f"{scheme.name}/{workload_name}", _digest(result))


# ----------------------------------------------------------------------
# Command-trace pinning: the engines must issue the *same commands at
# the same cycles*, not merely converge on the same totals.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", TRACE_SCHEMES, ids=lambda s: s.name)
def test_command_trace_golden(scheme):
    system = _build(scheme, "MIX2")
    checkers = []
    for ctrl in system.controllers:
        checker = DigestChecker(
            system.config.timing,
            relax_act_constraints=scheme.relax_act_constraints,
        )
        ctrl.protocol_checker = checker
        checkers.append(checker)
    system.run()
    assert all(c.commands_checked > 0 for c in checkers)
    trace = hashlib.sha256()
    for checker in checkers:
        trace.update(checker.hasher.digest())
    _check_golden(f"trace/{scheme.name}/MIX2", trace.hexdigest())


# ----------------------------------------------------------------------
# Property check: cold == restored under the sanitizer on random
# scheme/workload/seed points (no goldens; the invariant itself).
# ----------------------------------------------------------------------
try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a test dep
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        scheme_name=st.sampled_from(sorted(ALL_SCHEMES)),
        workload_name=st.sampled_from(SPREAD_WORKLOADS),
        seed=st.integers(min_value=1, max_value=2**16),
    )
    def test_cold_equals_restored_sanitized(scheme_name, workload_name, seed):
        scheme = ALL_SCHEMES[scheme_name]
        SNAPSHOTS.clear()
        cold = _build(
            scheme, workload_name, seed=seed,
            sanitize=True, use_snapshots=False,
        ).run()
        _build(scheme, workload_name, seed=seed, sanitize=True)
        restored_system = _build(
            scheme, workload_name, seed=seed, sanitize=True
        )
        assert restored_system.snapshot_restored
        assert _digest(cold) == _digest(restored_system.run())
