"""Power accounting: event-to-energy conversion and breakdowns."""

import pytest

from repro.dram.timing import DDR3_1600
from repro.power.accounting import CATEGORIES, PowerAccountant, PowerBreakdown
from repro.power.params import DDR3_1600_POWER

T = DDR3_1600
P = DDR3_1600_POWER
CHIPS = 8


@pytest.fixture
def acct():
    return PowerAccountant(P, T, chips_per_rank=CHIPS)


class TestActivationEnergy:
    def test_full_activation_energy(self, acct):
        acct.on_activate(8)
        expected = P.act_power(8) * T.row_cycle_ns * CHIPS
        assert acct.energy_pj["act_pre"] == pytest.approx(expected)

    def test_partial_activation_cheaper(self, acct):
        acct.on_activate(1)
        one_eighth = acct.energy_pj["act_pre"]
        acct.energy_pj["act_pre"] = 0.0
        acct.on_activate(8)
        assert one_eighth < acct.energy_pj["act_pre"] / 4

    def test_histogram(self, acct):
        acct.on_activate(8)
        acct.on_activate(1)
        acct.on_activate(1)
        assert acct.activations_by_granularity[8] == 1
        assert acct.activations_by_granularity[1] == 2

    def test_fraction_buckets_to_nearest_eighth(self, acct):
        acct.on_activate_fraction(0.5)
        assert acct.activations_by_granularity[4] == 1
        acct.on_activate_fraction(1 / 16)  # Half-DRAM + PRA minimum
        assert acct.activations_by_granularity[1] == 1


class TestBurstEnergy:
    def test_read_burst(self, acct):
        acct.on_read_burst(other_ranks=1)
        burst_ns = T.cycles_to_ns(T.tburst)
        assert acct.energy_pj["rd"] == pytest.approx(P.rd_mw * burst_ns * CHIPS)
        io = (P.rd_io_mw + P.rd_term_mw) * burst_ns * CHIPS * P.io_scale
        assert acct.energy_pj["rd_io"] == pytest.approx(io)

    def test_write_burst_full(self, acct):
        acct.on_write_burst(1.0, other_ranks=1)
        burst_ns = T.cycles_to_ns(T.tburst)
        io = (P.wr_odt_mw + P.wr_term_mw) * burst_ns * CHIPS * P.io_scale
        assert acct.energy_pj["wr_io"] == pytest.approx(io)

    def test_partial_write_scales_io(self, acct):
        # PRA: only dirty words are driven (Section 4.1 / Fig 12b).
        acct.on_write_burst(1.0, other_ranks=1)
        full_io = acct.energy_pj["wr_io"]
        full_wr = acct.energy_pj["wr"]
        acct.energy_pj["wr_io"] = acct.energy_pj["wr"] = 0.0
        acct.on_write_burst(0.125, other_ranks=1)
        assert acct.energy_pj["wr_io"] == pytest.approx(full_io * 0.125)
        assert acct.energy_pj["wr"] == pytest.approx(full_wr * 0.125)

    def test_wr_core_scaling_can_be_disabled(self):
        acct = PowerAccountant(P, T, chips_per_rank=CHIPS, scale_wr_core_with_mask=False)
        acct.on_write_burst(0.125, other_ranks=0)
        burst_ns = T.cycles_to_ns(T.tburst)
        assert acct.energy_pj["wr"] == pytest.approx(P.wr_mw * burst_ns * CHIPS)

    def test_no_other_ranks_no_termination(self, acct):
        acct.on_read_burst(other_ranks=0)
        burst_ns = T.cycles_to_ns(T.tburst)
        expected = P.rd_io_mw * burst_ns * CHIPS * P.io_scale
        assert acct.energy_pj["rd_io"] == pytest.approx(expected)

    def test_driven_fraction_bounds(self, acct):
        with pytest.raises(ValueError):
            acct.on_write_burst(0.0)
        with pytest.raises(ValueError):
            acct.on_write_burst(1.5)


class TestBatchedBursts:
    """count=N calls (burst-streak commits) against N single calls."""

    def test_read_count_matches_n_single_calls(self, acct):
        loop = PowerAccountant(P, T, chips_per_rank=CHIPS)
        for _ in range(7):
            loop.on_read_burst(other_ranks=1)
        acct.on_read_burst(other_ranks=1, count=7)
        assert acct.read_bursts == loop.read_bursts == 7
        assert acct.energy_pj["rd"] == pytest.approx(loop.energy_pj["rd"])
        assert acct.energy_pj["rd_io"] == pytest.approx(loop.energy_pj["rd_io"])

    def test_write_count_matches_n_single_calls(self, acct):
        loop = PowerAccountant(P, T, chips_per_rank=CHIPS)
        for _ in range(5):
            loop.on_write_burst(driven_fraction=0.375, other_ranks=1)
        acct.on_write_burst(driven_fraction=0.375, other_ranks=1, count=5)
        assert acct.write_bursts == loop.write_bursts == 5
        assert acct.energy_pj["wr"] == pytest.approx(loop.energy_pj["wr"])
        assert acct.energy_pj["wr_io"] == pytest.approx(loop.energy_pj["wr_io"])

    def test_count_one_is_bitwise_identical(self, acct):
        """x * 1 is exact in IEEE floats: not approx, equality."""
        single = PowerAccountant(P, T, chips_per_rank=CHIPS)
        single.on_read_burst(other_ranks=1)
        single.on_write_burst(driven_fraction=0.5, other_ranks=1)
        acct.on_read_burst(other_ranks=1, count=1)
        acct.on_write_burst(driven_fraction=0.5, other_ranks=1, count=1)
        assert acct.energy_pj == single.energy_pj

    def test_count_validation(self, acct):
        with pytest.raises(ValueError):
            acct.on_read_burst(count=0)
        with pytest.raises(ValueError):
            acct.on_write_burst(count=-3)


class TestBackgroundAndRefresh:
    def test_background_by_state(self, acct):
        acct.add_background({"act_stby": 100, "pre_stby": 50, "pre_pdn": 10})
        tck = T.tck_ns
        expected = (
            100 * tck * P.act_stby_mw + 50 * tck * P.pre_stby_mw + 10 * tck * P.pre_pdn_mw
        ) * CHIPS
        assert acct.energy_pj["bg"] == pytest.approx(expected)

    def test_refresh_energy(self, acct):
        acct.on_refresh()
        expected = P.ref_mw * T.cycles_to_ns(T.trfc) * CHIPS
        assert acct.energy_pj["ref"] == pytest.approx(expected)
        assert acct.refreshes == 1


class TestBreakdown:
    def test_categories_complete(self, acct):
        bd = acct.breakdown(1000)
        assert set(bd.energy_pj) == set(CATEGORIES)

    def test_fractions_sum_to_one(self, acct):
        acct.on_activate(8)
        acct.on_read_burst()
        acct.on_refresh()
        bd = acct.breakdown(1000)
        assert sum(bd.fractions().values()) == pytest.approx(1.0)

    def test_power_is_energy_over_time(self, acct):
        acct.on_activate(8)
        bd = acct.breakdown(800)  # 800 cycles = 1000 ns
        assert bd.power_mw("act_pre") == pytest.approx(
            acct.energy_pj["act_pre"] / 1000.0
        )

    def test_zero_runtime_guard(self, acct):
        bd = acct.breakdown(0)
        assert bd.total_power_mw == 0.0

    def test_total_mj(self, acct):
        acct.on_activate(8)
        bd = acct.breakdown(1000)
        assert bd.total_mj == pytest.approx(bd.total_pj * 1e-9)
