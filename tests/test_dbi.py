"""Dirty-Block Index: row-organized dirty tracking, DRAM-aware writeback."""

import pytest

from repro.cache.dbi import DirtyBlockIndex

#: Toy row function: 4 lines per "row".
row_of = lambda line: line // 4  # noqa: E731


@pytest.fixture
def dbi():
    return DirtyBlockIndex(row_of=row_of, max_writebacks=16)


class TestTracking:
    def test_mark_and_query(self, dbi):
        dbi.mark_dirty(5)
        assert dbi.is_dirty(5)
        assert not dbi.is_dirty(6)
        assert len(dbi) == 1

    def test_mark_clean(self, dbi):
        dbi.mark_dirty(5)
        dbi.mark_clean(5)
        assert not dbi.is_dirty(5)
        assert len(dbi) == 0

    def test_clean_unknown_is_noop(self, dbi):
        dbi.mark_clean(42)
        assert len(dbi) == 0

    def test_companions_same_row_only(self, dbi):
        dbi.mark_dirty(4)
        dbi.mark_dirty(5)
        dbi.mark_dirty(6)
        dbi.mark_dirty(8)  # different row
        assert dbi.dirty_lines_in_row(4) == [5, 6]


class TestWriteback:
    def test_writeback_drains_row(self, dbi):
        # When any dirty line of a row is written back, the other dirty
        # lines of that row go with it (Section 5.2.3).
        for line in (4, 5, 6):
            dbi.mark_dirty(line)
        companions = dbi.on_writeback(4)
        assert companions == [5, 6]
        assert len(dbi) == 0
        assert dbi.proactive_writebacks == 2
        assert dbi.triggers == 1

    def test_writeback_respects_cap(self):
        dbi = DirtyBlockIndex(row_of=lambda line: 0, max_writebacks=3)
        for line in range(10):
            dbi.mark_dirty(line)
        companions = dbi.on_writeback(0)
        assert len(companions) == 3
        # The trigger and the drained companions are cleaned.
        assert len(dbi) == 10 - 1 - 3

    def test_writeback_of_lonely_line(self, dbi):
        dbi.mark_dirty(4)
        assert dbi.on_writeback(4) == []
        assert len(dbi) == 0

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            DirtyBlockIndex(row_of=row_of, max_writebacks=0)

    def test_idempotent_mark(self, dbi):
        dbi.mark_dirty(4)
        dbi.mark_dirty(4)
        assert len(dbi) == 1
