"""Legacy setuptools entry point (offline environments without wheel).

``REPRO_COMPILED=1`` additionally compiles the simulation hot path
(the modules listed in ``repro.engine.COMPILED_MODULES``: TimingCore,
the FR-FCFS controller step loop, the rank timing views and the
array-backed cache) with mypyc::

    pip install '.[compiled]'            # pulls mypy (ships mypyc)
    REPRO_COMPILED=1 python setup.py build_ext --inplace

The produced extension modules shadow their ``.py`` sources at the same
import paths; ``repro.engine`` auto-detects them at import
(``REPRO_ENGINE=auto|compiled|interpreted`` overrides).  Without the
env var this stays a plain pure-Python install — the compiled engine is
strictly optional and the interpreted sources remain the oracle.
"""
import os
import sys

from setuptools import setup

ext_modules = []
if os.environ.get("REPRO_COMPILED") == "1":
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
    )
    from mypyc.build import mypycify

    from repro.engine import compiled_source_paths

    ext_modules = mypycify(compiled_source_paths(), opt_level="3")

setup(ext_modules=ext_modules)
