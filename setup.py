"""Legacy setuptools entry point (offline environments without wheel)."""
from setuptools import setup

setup()
