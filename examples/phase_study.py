#!/usr/bin/env python3
"""Watch PRA adapt to program phases.

Builds a phased workload (GUPS-style random updates, then bzip2-style
mixed stores, repeating), runs it under PRA with an epoch sampler, and
renders how activation power tracks the phases while the baseline pays
full-row activation throughout.

Usage::

    python examples/phase_study.py [events_per_phase]
"""

import sys
from types import SimpleNamespace

from repro import BASELINE, PRA, SystemConfig, System
from repro.sim.config import CacheConfig
from repro.sim.sampling import EpochSampler
from repro.workloads import PhasedGenerator, Workload, profile


def build_system(scheme, phase_events, sampler=None):
    phases = [(profile("GUPS"), phase_events), (profile("bzip2"), phase_events)]
    overrides = [PhasedGenerator(phases, seed=2, core_id=i) for i in range(4)]
    wl = Workload(name="GUPS>bzip2", apps=(SimpleNamespace(name="GUPS>bzip2"),) * 4)
    config = SystemConfig(scheme=scheme, cache=CacheConfig(llc_bytes=1024 * 1024))
    return System(
        config,
        wl,
        events_per_core=4 * phase_events,
        warmup_events_per_core=3 * phase_events,
        trace_overrides=overrides,
        sampler=sampler,
    )


def main() -> None:
    phase_events = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    print(f"Phased workload: GUPS ({phase_events} ev) <-> bzip2 ({phase_events} ev)")

    sampler = EpochSampler(epoch_cycles=1500)
    system = build_system(PRA, phase_events, sampler)
    result = system.run()
    series = sampler.series(tck_ns=system.config.timing.tck_ns)

    base = build_system(BASELINE, phase_events).run()

    print()
    print("PRA activation power over time (phases visible as level shifts):")
    peak = max(e.power_mw["act_pre"] for e in series) or 1.0
    for epoch in series[:24]:
        act = epoch.power_mw["act_pre"]
        bar = "#" * int(40 * act / peak)
        print(f"  cyc {epoch.start_cycle:>8}  {act:7.0f} mW  {bar}")

    print()
    print(f"{'':<26}{'Baseline':>10}{'PRA':>10}")
    print(f"{'total power (mW)':<26}{base.avg_power_mw:>10.0f}{result.avg_power_mw:>10.0f}")
    print(f"{'1/8-row activations':<26}{base.activation_histogram[1]:>10}"
          f"{result.activation_histogram[1]:>10}")
    print(f"{'full-row activations':<26}{base.activation_histogram[8]:>10}"
          f"{result.activation_histogram[8]:>10}")
    saving = 1 - result.avg_power_mw / base.avg_power_mw
    print(f"\nPRA saves {saving:.1%} across the phase mix.")


if __name__ == "__main__":
    main()
