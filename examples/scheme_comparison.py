#!/usr/bin/env python3
"""Compare Baseline / FGA / Half-DRAM / PRA on one workload (Fig. 12-13).

Usage::

    python examples/scheme_comparison.py [workload] [events_per_core]

``workload`` is any of the paper's 14: the eight benchmark names
(4 identical copies each) or MIX1..MIX6.
"""

import sys

from repro import BASELINE, FGA, HALF_DRAM, PRA, ExperimentRunner
from repro.workloads import ALL_WORKLOADS


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "MIX1"
    events = int(sys.argv[2]) if len(sys.argv) > 2 else 4000
    if name not in ALL_WORKLOADS:
        raise SystemExit(f"unknown workload {name!r}; pick one of {sorted(ALL_WORKLOADS)}")

    runner = ExperimentRunner(events_per_core=events)
    print(f"Workload {name}, {events} memory instructions per core")
    print(f"(apps: {', '.join(ALL_WORKLOADS[name].app_names)})")
    print()

    base = runner.run(name, BASELINE)
    header = (
        f"{'scheme':<11}{'ACT power':>10}{'I/O power':>10}{'total pwr':>10}"
        f"{'energy':>8}{'EDP':>8}{'perf':>8}"
    )
    print(header)
    print("-" * len(header))
    for scheme in (BASELINE, FGA, HALF_DRAM, PRA):
        r = runner.run(name, scheme)
        act = r.power.power_mw("act_pre") / base.power.power_mw("act_pre")
        io_now = r.power.power_mw("rd_io") + r.power.power_mw("wr_io")
        io_base = base.power.power_mw("rd_io") + base.power.power_mw("wr_io")
        total = r.avg_power_mw / base.avg_power_mw
        energy = r.total_energy_mj / base.total_energy_mj
        edp = r.edp / base.edp
        perf = runner.normalized_performance(name, scheme)
        print(
            f"{scheme.name:<11}{act:>10.3f}{io_now / io_base:>10.3f}{total:>10.3f}"
            f"{energy:>8.3f}{edp:>8.3f}{perf:>8.3f}"
        )

    pra = runner.run(name, PRA)
    print()
    print("PRA details:")
    print(f"  mean activation granularity: {pra.mean_activation_granularity():.2f} of a row")
    print(f"  false row-buffer hits: reads {pra.controller.reads.false_hit_rate:.3%}, "
          f"writes {pra.controller.writes.false_hit_rate:.3%}")
    print(f"  row-buffer hit rate: {base.controller.total_hit_rate:.1%} -> "
          f"{pra.controller.total_hit_rate:.1%}")


if __name__ == "__main__":
    main()
