#!/usr/bin/env python3
"""Plot (in ASCII) DRAM power over time, baseline vs PRA.

Attaches an epoch sampler to two runs of the same workload and renders
per-epoch total power and the write-I/O component, showing write-drain
bursts and PRA flattening them.

Usage::

    python examples/power_over_time.py [workload] [events_per_core]
"""

import sys

from repro import BASELINE, PRA, SystemConfig, System
from repro.sim.sampling import EpochSampler
from repro.workloads import workload


def run_with_sampler(scheme, wl, events):
    sampler = EpochSampler(epoch_cycles=2000)
    config = SystemConfig(scheme=scheme)
    system = System(config, wl, events, sampler=sampler)
    system.run()
    return sampler.series(tck_ns=config.timing.tck_ns)


def render(series, label, value, scale):
    print(f"--- {label} ---")
    for epoch in series:
        v = value(epoch)
        bar = "#" * int(v / scale)
        print(f"  cyc {epoch.start_cycle:>8}  {v:8.0f} mW  {bar}")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "lbm"
    events = int(sys.argv[2]) if len(sys.argv) > 2 else 3000
    wl = workload(name)

    print(f"Sampling {name} with 2000-cycle epochs...")
    base = run_with_sampler(BASELINE, wl, events)
    pra = run_with_sampler(PRA, wl, events)

    # Common scale for comparability.
    peak = max(e.total_power_mw for e in base + pra)
    scale = max(peak / 50, 1.0)

    print()
    render(base[:20], "baseline: total DRAM power", lambda e: e.total_power_mw, scale)
    print()
    render(pra[:20], "PRA: total DRAM power", lambda e: e.total_power_mw, scale)

    avg = lambda s, f: sum(f(e) for e in s) / len(s)
    print()
    print(f"{'':<26}{'baseline':>10}{'PRA':>10}")
    print(f"{'avg total power (mW)':<26}"
          f"{avg(base, lambda e: e.total_power_mw):>10.0f}"
          f"{avg(pra, lambda e: e.total_power_mw):>10.0f}")
    print(f"{'avg write-I/O power (mW)':<26}"
          f"{avg(base, lambda e: e.power_mw['wr_io']):>10.0f}"
          f"{avg(pra, lambda e: e.power_mw['wr_io']):>10.0f}")
    print(f"{'avg ACT-PRE power (mW)':<26}"
          f"{avg(base, lambda e: e.power_mw['act_pre']):>10.0f}"
          f"{avg(pra, lambda e: e.power_mw['act_pre']):>10.0f}")


if __name__ == "__main__":
    main()
