#!/usr/bin/env python3
"""Bring-your-own-trace: run the PRA system on trace files.

Demonstrates the trace I/O path end to end:

1. synthesize two small traces and save them to disk (stand-ins for
   traces captured from a real application),
2. load them back through :class:`FileTraceWorkload`,
3. run baseline vs PRA on the file-driven workload.

Usage::

    python examples/custom_trace.py [events_per_core]
"""

import sys
import tempfile
from pathlib import Path

from repro import BASELINE, PRA, SystemConfig, System
from repro.sim.config import CacheConfig
from repro.workloads import FileTraceWorkload, generate, profile, save_trace


def main() -> None:
    events = int(sys.argv[1]) if len(sys.argv) > 1 else 2500
    workdir = Path(tempfile.mkdtemp(prefix="repro-traces-"))

    # 1. Write two traces: an update kernel and a streaming kernel.
    paths = []
    for core_id, bench in enumerate(("GUPS", "lbm")):
        # 5x the run length: 4x warms the (small) LLC to steady state,
        # the rest is the timed region.
        trace = generate(profile(bench), events * 5, seed=7, core_id=core_id)
        path = workdir / f"{bench}.trace"
        save_trace(trace, path)
        paths.append(path)
        print(f"wrote {len(trace)} events to {path}")

    # 2/3. Replay the files through the full system.
    ftw = FileTraceWorkload(paths)
    wl = ftw.as_workload("custom-pair")
    print(f"\nrunning {wl.app_names} from trace files...")
    results = {}
    for scheme in (BASELINE, PRA):
        config = SystemConfig(scheme=scheme, cache=CacheConfig(llc_bytes=128 * 1024))
        system = System(
            config,
            wl,
            events_per_core=events,
            warmup_events_per_core=events * 4,
            trace_overrides=FileTraceWorkload(paths).overrides(),
        )
        results[scheme.name] = system.run()

    base, pra = results["Baseline"], results["PRA"]
    print(f"\n{'metric':<26}{'Baseline':>12}{'PRA':>12}")
    print(f"{'total DRAM power (mW)':<26}{base.avg_power_mw:>12.0f}{pra.avg_power_mw:>12.0f}")
    print(f"{'DRAM energy (mJ)':<26}{base.total_energy_mj:>12.3f}{pra.total_energy_mj:>12.3f}")
    print(f"{'runtime (k cycles)':<26}{base.runtime_cycles / 1e3:>12.1f}"
          f"{pra.runtime_cycles / 1e3:>12.1f}")
    print(f"\nPRA saves {1 - pra.avg_power_mw / base.avg_power_mw:.1%} power "
          f"on your traces.")


if __name__ == "__main__":
    main()
