#!/usr/bin/env python3
"""Explore the analytic DRAM power models (Tables 2-3, Figure 9).

No simulation here: this walks the CACTI-3DD-style activation-energy
model and the IDD-based power equations, printing the paper's numbers
next to the model's.

Usage::

    python examples/power_model_explorer.py
"""

from repro.power import (
    ActivationEnergyModel,
    DieAreaModel,
    FGDOverheadModel,
    IDDValues,
    TABLE3_ACT_MW,
    pure_activation_power_mw,
)


def table2() -> None:
    model = ActivationEnergyModel()
    area = DieAreaModel()
    print("=== Table 2: 2Gb x8 DDR3-1600 chip at 20 nm ===")
    print(f"{'die area (mm^2)':<28}{area.total_mm2:>10.3f}   (paper: 11.884)")
    print(f"{'energy per MAT (pJ)':<28}{model.per_mat_pj:>10.3f}   (paper: 16.921)")
    print(f"{'shared per bank (pJ)':<28}{model.shared_pj:>10.3f}   (paper: 18.016)")
    print(f"{'full-row activation (pJ)':<28}{model.full_row_pj:>10.3f}   (paper: 288.752)")
    print()
    print("activation energy breakdown:")
    for component, pj in model.breakdown().items():
        print(f"  {component:<22}{pj:>10.3f} pJ")


def figure9() -> None:
    model = ActivationEnergyModel()
    print()
    print("=== Figure 9: activation energy vs MATs activated ===")
    for mats in (2, 4, 6, 8, 10, 12, 14, 16):
        factor = model.scaling_factor(mats)
        bar = "#" * int(50 * factor)
        print(f"  {mats:>2} MATs  {model.energy_pj(mats):8.1f} pJ  {factor:6.1%}  {bar}")
    print("  note: 8 MATs (half row) costs "
          f"{model.scaling_factor(8):.1%} of full - shared structures keep it above 50%.")


def table3() -> None:
    print()
    print("=== Table 3 ACT row from Eq. 1-2 + Figure 9 scaling ===")
    idd = IDDValues()
    full = pure_activation_power_mw(idd)
    print(f"Eq. 1-2 with IDD0={idd.idd0} mA -> P_ACT(full) = {full:.1f} mW "
          f"(paper: 22.2)")
    model = ActivationEnergyModel()
    print(f"{'granularity':<14}{'projected (mW)':>16}{'paper (mW)':>12}")
    for g in range(8, 0, -1):
        projected = full * model.scaling_factor(2 * g)
        print(f"{g}/8 row{'':<7}{projected:>16.2f}{TABLE3_ACT_MW[g]:>12.1f}")


def overheads() -> None:
    print()
    print("=== Section 4.2 hardware overheads ===")
    area = DieAreaModel()
    fgd = FGDOverheadModel()
    print(f"PRA latches:        {area.pra_latch_overhead():.3%} of die area")
    print(f"wordline AND gates: {area.wordline_gate_overhead():.1%} of die area")
    print(f"FGD in 32kB L1:     {fgd.l1_area:.2%} area, {fgd.l1_leakage:.2%} leakage")
    print(f"FGD in 4MB L2:      {fgd.l2_area:.2%} area, {fgd.l2_leakage:.2%} leakage")
    print(f"FGD storage:        {fgd.extra_bits_per_line()} extra bits per 64B line "
          f"({fgd.storage_overhead_fraction():.2%} of line storage)")


if __name__ == "__main__":
    table2()
    figure9()
    table3()
    overheads()
