#!/usr/bin/env python3
"""Walk the FGD dirty bits from a store to the PRA mask (Fig. 8 / Fig. 6).

Uses the two-level cache hierarchy directly (no timing simulation) to
show how word-granularity dirty bits are produced by stores, OR-merged
on L1 eviction, and finally delivered to DRAM as a PRA mask.

Usage::

    python examples/fgd_cache_walkthrough.py
"""

from repro.cache import CacheHierarchy, SetAssociativeCache, word_mask_for_store
from repro.core import PRAMask
from repro.dram import AddressMapper, mats_activated
from repro.power import DDR3_1600_POWER


def main() -> None:
    # Tiny caches so evictions happen on demand.
    l1 = SetAssociativeCache(capacity_bytes=2 * 64, ways=2, name="L1")
    l2 = SetAssociativeCache(capacity_bytes=8 * 64, ways=8, name="L2")
    hierarchy = CacheHierarchy(l2, l1s=[l1])
    mapper = AddressMapper()

    line = 0x1234
    print(f"cache line {line:#x} maps to {mapper.decode_line(line)}")
    print()

    # A store writes bytes 4..11: words 0 and 1 become dirty.
    mask = word_mask_for_store(offset_bytes=4, size_bytes=8)
    print(f"store of 8 bytes at offset 4 -> word mask {PRAMask(mask)}")
    hierarchy.access(0, line, write_mask=mask)

    # A later store touches word 7.
    mask2 = word_mask_for_store(offset_bytes=56, size_bytes=8)
    print(f"store of 8 bytes at offset 56 -> word mask {PRAMask(mask2)}")
    hierarchy.access(0, line, write_mask=mask2)

    # Evict from L1 (two conflicting lines): dirty bits merge into L2.
    hierarchy.access(0, line + 2 * l1.num_sets)
    hierarchy.access(0, line + 4 * l1.num_sets)
    l2_line = l2.lookup(line)
    print(f"after L1 eviction, L2 line dirty mask = {PRAMask(l2_line.dirty_mask)}")

    # Force the L2 eviction: the writeback carries the merged mask.
    writebacks = []
    step = l2.num_sets
    probe = line + step
    while not writebacks:
        traffic = hierarchy.access(0, probe)
        writebacks = [wb for wb in traffic.writebacks if wb[0] == line]
        probe += step
    addr, final_mask = writebacks[0]
    pra = PRAMask(final_mask)
    print()
    print(f"L2 evicted line {addr:#x} with PRA mask {pra}")
    print(f"  -> activates {pra.granularity}/8 of the row "
          f"({mats_activated(final_mask)} of 16 MATs per chip)")
    act = DDR3_1600_POWER.act_power(pra.granularity)
    full = DDR3_1600_POWER.act_power(8)
    print(f"  -> activation power {act:.1f} mW vs {full:.1f} mW full "
          f"({1 - act / full:.0%} saved, Table 3)")
    print(f"  -> write burst drives {pra.granularity}/8 of the bytes "
          f"(write I/O scaled accordingly)")


if __name__ == "__main__":
    main()
