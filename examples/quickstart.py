#!/usr/bin/env python3
"""Quickstart: measure what PRA saves on a write-heavy workload.

Runs the GUPS update kernel (4 cores) on the baseline DDR3-1600 system
and on the same system with Partial Row Activation, then prints the
power/energy comparison the paper leads with.

Usage::

    python examples/quickstart.py [events_per_core]
"""

import sys

from repro import BASELINE, PRA, ExperimentRunner


def main() -> None:
    events = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    runner = ExperimentRunner(events_per_core=events)

    print(f"Simulating GUPS (4 cores, {events} memory instructions/core)...")
    base = runner.run("GUPS", BASELINE)
    pra = runner.run("GUPS", PRA)

    print()
    print(f"{'metric':<28}{'Baseline':>12}{'PRA':>12}{'ratio':>8}")
    rows = [
        ("total DRAM power (mW)", base.avg_power_mw, pra.avg_power_mw),
        ("ACT-PRE power (mW)", base.power.power_mw("act_pre"), pra.power.power_mw("act_pre")),
        ("write I/O power (mW)", base.power.power_mw("wr_io"), pra.power.power_mw("wr_io")),
        ("DRAM energy (mJ)", base.total_energy_mj, pra.total_energy_mj),
        ("runtime (k cycles)", base.runtime_cycles / 1e3, pra.runtime_cycles / 1e3),
    ]
    for label, b, p in rows:
        print(f"{label:<28}{b:>12.2f}{p:>12.2f}{p / b:>8.3f}")

    hist = pra.granularity_fractions()
    print()
    print("PRA activation granularity mix (fraction of activations):")
    for g in range(1, 9):
        bar = "#" * int(60 * hist[g])
        print(f"  {g}/8 row  {hist[g]:6.1%}  {bar}")

    saving = 1 - pra.avg_power_mw / base.avg_power_mw
    print()
    print(f"PRA saves {saving:.1%} total DRAM power on GUPS "
          f"(paper: up to 32%, 23% on average across 14 workloads).")


if __name__ == "__main__":
    main()
