#!/usr/bin/env python3
"""Case study: PRA combined with DRAM-aware writeback (DBI), Fig. 15.

DBI proactively drains dirty LLC lines that share a DRAM row, raising
the write row-buffer hit rate; PRA shrinks each write activation.
Together they interact: DBI's write bursts carry heterogeneous masks,
which raises PRA's false-hit pressure.  This script reproduces that
interaction on the paper's three representative benchmarks.

Usage::

    python examples/writeback_study.py [events_per_core]
"""

import sys

from repro import BASELINE, DBI, DBI_PRA, PRA, ExperimentRunner


def main() -> None:
    events = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    runner = ExperimentRunner(events_per_core=events)

    # Paper's picks: bzip2 (DBI gain lost), GUPS (only PRA helps),
    # em3d (synergy).
    for name in ("bzip2", "GUPS", "em3d"):
        base = runner.run(name, BASELINE)
        print(f"=== {name} ===")
        header = (
            f"{'scheme':<9}{'power':>8}{'energy':>8}{'perf':>8}"
            f"{'wr hit':>8}{'false wr':>9}{'proactive':>10}"
        )
        print(header)
        for scheme in (DBI, PRA, DBI_PRA):
            r = runner.run(name, scheme)
            print(
                f"{scheme.name:<9}"
                f"{r.avg_power_mw / base.avg_power_mw:>8.3f}"
                f"{r.total_energy_mj / base.total_energy_mj:>8.3f}"
                f"{runner.normalized_performance(name, scheme):>8.3f}"
                f"{r.controller.writes.hit_rate:>8.1%}"
                f"{r.controller.writes.false_hit_rate:>9.2%}"
                f"{r.dbi_proactive_writebacks:>10}"
            )
        print(f"{'(base)':<9}{'1.000':>8}{'1.000':>8}{'1.000':>8}"
              f"{base.controller.writes.hit_rate:>8.1%}{'-':>9}{'-':>10}")
        print()

    print("Paper's observation: DBI helps performance, PRA helps power;")
    print("combined, extra false row-buffer hits make DBI+PRA save less")
    print("power than PRA alone on average.")


if __name__ == "__main__":
    main()
