"""Figure 3: proportion of dirty words in LLC-evicted cache lines.

The phenomenon PRA exploits: most written-back lines carry only a few
dirty 8-byte words, so most write activations can be 1/8-row.
"""

import pytest

from repro.core.schemes import BASELINE
from conftest import single_core
from repro.workloads.profiles import BENCHMARKS


def test_fig03_dirty_words(benchmark, runner):
    def run_all():
        return {
            name: runner.run(single_core(name), BASELINE).dirty_word_fractions
            for name in BENCHMARKS
        }

    dists = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("=== Figure 3: dirty words per evicted LLC line ===")
    print(f"{'bench':<12}" + "".join(f"{n:>7}" for n in range(1, 9)))
    for name, frac in dists.items():
        print(f"{name:<12}" + "".join(f"{frac[n]:>7.2f}" for n in range(1, 9)))

    avg_one = sum(d[1] for d in dists.values()) / len(dists)
    avg_full = sum(d[8] for d in dists.values()) / len(dists)
    print(f"{'average':<12}1-word {avg_one:.1%}, full-line {avg_full:.1%}")

    # Shape: single-word dirtiness dominates; full-line is a minority.
    assert avg_one > 0.55
    assert avg_full < 0.2
    # GUPS updates exactly one word.
    assert dists["GUPS"][1] > 0.95
    # Every distribution is a valid probability vector.
    for name, frac in dists.items():
        assert sum(frac.values()) == pytest.approx(1.0, abs=1e-6), name
