"""Figure 11: proportion of row-activation granularities under PRA.

Both policies of the paper: (a) restricted close-page with
line-interleaved mapping, where the dirty-word distribution maps
directly onto activation granularity, and (b) relaxed close-page.
Paper averages (relaxed): 39% 1/8-row, 2% 2/8, slivers in between,
58% full; restricted: 36% / 2.3% / ... / 60%.
"""

import pytest

from repro.controller.policies import RowPolicy
from repro.core.schemes import PRA
from conftest import WORKLOAD_ORDER


def _average(fractions_by_workload):
    n = len(fractions_by_workload)
    return {
        g: sum(f[g] for f in fractions_by_workload.values()) / n for g in range(1, 9)
    }


def test_fig11_granularity(benchmark, runner):
    def run_all():
        out = {}
        for policy in (RowPolicy.RELAXED_CLOSE, RowPolicy.RESTRICTED_CLOSE):
            per_wl = {
                name: runner.run(name, PRA, policy).granularity_fractions()
                for name in WORKLOAD_ORDER
            }
            out[policy.value] = per_wl
        return out

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)

    paper_avg = {
        "relaxed-close-page": (0.39, 0.02, 0.0043, 0.0045, 0.0005, 0.0005, 0.0002, 0.58),
        "restricted-close-page": (0.36, 0.023, 0.004, 0.012, 0.0004, 0.0004, 0.0002, 0.60),
    }
    for policy_name, per_wl in data.items():
        avg = _average(per_wl)
        print()
        print(f"=== Figure 11 ({policy_name}): activation granularity mix ===")
        print(f"{'workload':<12}" + "".join(f"{g}/8".rjust(7) for g in range(1, 9)))
        for name, frac in per_wl.items():
            print(f"{name:<12}" + "".join(f"{frac[g]:>7.2f}" for g in range(1, 9)))
        print(f"{'average':<12}" + "".join(f"{avg[g]:>7.2f}" for g in range(1, 9)))
        print(f"{'paper avg':<12}" + "".join(f"{v:>7.2f}" for v in paper_avg[policy_name]))

        # Shape: bimodal mix of 1/8-row writes and full-row reads.
        assert 0.25 < avg[1] < 0.55, f"{policy_name}: 1/8 share {avg[1]:.2f}"
        assert 0.40 < avg[8] < 0.75, f"{policy_name}: full share {avg[8]:.2f}"
        middle = sum(avg[g] for g in range(2, 8))
        assert middle < 0.15, f"{policy_name}: middle {middle:.2f}"
        assert sum(avg.values()) == pytest.approx(1.0, abs=1e-6)
