#!/usr/bin/env python
"""Perf-trajectory regression guard over the benchmark history.

Compares the *fresh* per-scheme throughput in ``BENCH_throughput.json``
against the most recent ``BENCH_history.jsonl`` record produced in the
**same environment** — matched by the ``_env.fingerprint`` stamp
(engine, python/numpy major.minor, platform), so a compiled-engine run
is never graded against an interpreted baseline, nor a 3.12 run
against a 3.10 one.  A scheme whose best-of-N req/s dropped more than
the threshold (default 25%, ``REPRO_PERF_REGRESSION_PCT`` or
``--threshold`` overrides) fails the check.

Stdlib-only on purpose: CI runs it right after the benchmark steps
(``python benchmarks/check_perf_trajectory.py``) without needing the
package importable, and it must never perturb what it measures.

No baseline in the history (first run on a new environment, fresh
clone without history) passes vacuously with a notice — the guard
gates *trajectories*, not absolute numbers; the absolute floors live
in the benchmarks themselves.
"""

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
THROUGHPUT_PATH = REPO_ROOT / "BENCH_throughput.json"
HISTORY_PATH = REPO_ROOT / "BENCH_history.jsonl"

#: Per-scheme metric the trajectory is graded on.  Older snapshots
#: (before the dispersion-adaptive best-of-N reps) recorded the rate
#: under the legacy key, so history records keep grading across the
#: rename.
RATE_KEY = "requests_per_second_best"
LEGACY_RATE_KEYS = ("requests_per_second_best_of_3",)

DEFAULT_THRESHOLD_PCT = 25.0


def scheme_rates(sections):
    """scheme name -> req/s for every scheme section of a snapshot.

    Scheme sections are the non-underscore keys carrying the rate
    metric; harness sections (``_construction``, ``_sweep``, ``_env``,
    ...) are skipped.
    """
    rates = {}
    for name, section in sections.items():
        if name.startswith("_") or not isinstance(section, dict):
            continue
        for key in (RATE_KEY, *LEGACY_RATE_KEYS):
            rate = section.get(key)
            if isinstance(rate, (int, float)) and rate > 0:
                rates[name] = float(rate)
                break
    return rates


def read_history(path):
    """Parsed history records, oldest first (bad lines skipped)."""
    if not path.exists():
        return []
    records = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and isinstance(record.get("sections"), dict):
            records.append(record)
    return records


def find_baseline(records, fingerprint, current_sections):
    """Most recent same-environment record that isn't the current run.

    The benchmark session appends the refreshed snapshot to the history
    before CI runs this guard, so a record whose sections equal the
    current snapshot is the run under test, not a baseline.
    """
    for record in reversed(records):
        sections = record["sections"]
        if sections == current_sections:
            continue
        env = sections.get("_env")
        if not isinstance(env, dict) or env.get("fingerprint") != fingerprint:
            continue
        if scheme_rates(sections):
            return record
    return None


def compare(current_rates, baseline_rates, threshold_pct):
    """(failures, report lines) for schemes present in both snapshots."""
    failures = []
    lines = []
    for name in sorted(current_rates):
        if name not in baseline_rates:
            lines.append(f"  {name:<12} {current_rates[name]:>10,.0f} req/s "
                         f"(no baseline entry)")
            continue
        now, then = current_rates[name], baseline_rates[name]
        delta_pct = (now - then) / then * 100.0
        verdict = "ok"
        if delta_pct < -threshold_pct:
            verdict = f"REGRESSION (>{threshold_pct:.0f}% drop)"
            failures.append(name)
        lines.append(
            f"  {name:<12} {now:>10,.0f} req/s vs {then:>10,.0f} "
            f"({delta_pct:+6.1f}%)  {verdict}"
        )
    return failures, lines


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold", type=float,
        default=float(os.environ.get(
            "REPRO_PERF_REGRESSION_PCT", DEFAULT_THRESHOLD_PCT
        )),
        help="max tolerated drop in percent (default %(default)s)",
    )
    parser.add_argument(
        "--snapshot", type=Path, default=THROUGHPUT_PATH,
        help="BENCH_throughput.json to grade",
    )
    parser.add_argument(
        "--history", type=Path, default=HISTORY_PATH,
        help="BENCH_history.jsonl holding the baselines",
    )
    args = parser.parse_args(argv)

    try:
        current = json.loads(args.snapshot.read_text())
    except (OSError, ValueError):
        print(f"perf-guard: no readable snapshot at {args.snapshot}; "
              f"nothing to grade (pass)")
        return 0
    current_rates = scheme_rates(current)
    env = current.get("_env")
    if not current_rates or not isinstance(env, dict):
        print("perf-guard: snapshot carries no per-scheme rates or no "
              "_env stamp; nothing to grade (pass)")
        return 0

    records = read_history(args.history)
    baseline = find_baseline(records, env.get("fingerprint"), current)
    if baseline is None:
        print(f"perf-guard: no prior history for environment "
              f"{env.get('fingerprint')!r} (engine={env.get('engine')}); "
              f"vacuous pass — this run becomes the baseline")
        return 0

    baseline_rates = scheme_rates(baseline["sections"])
    failures, lines = compare(current_rates, baseline_rates, args.threshold)
    print(f"perf-guard: comparing against commit "
          f"{baseline.get('commit')} ({baseline.get('timestamp')}), "
          f"environment {env.get('fingerprint')!r}, "
          f"threshold {args.threshold:.0f}%")
    for line in lines:
        print(line)
    if failures:
        print(f"perf-guard: FAIL — {', '.join(failures)} regressed more "
              f"than {args.threshold:.0f}%")
        return 1
    print("perf-guard: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
