"""Figure 13: normalized performance (weighted speedup), DRAM energy
and energy-delay product for FGA, Half-DRAM and PRA.

Paper averages: PRA performance -0.8% (worst -4.8%), Half-DRAM +0.3%,
FGA -14%; PRA energy 0.77 and EDP 0.78, the best of the three.
"""

import pytest

from repro.core.schemes import FGA, HALF_DRAM, PRA
from conftest import WORKLOAD_ORDER
from repro.sim.runner import arithmetic_mean

SCHEMES = (FGA, HALF_DRAM, PRA)


def test_fig13_perf_energy_edp(benchmark, runner):
    def run_all():
        rows = {}
        for name in WORKLOAD_ORDER:
            rows[name] = {
                scheme.name: {
                    "perf": runner.normalized_performance(name, scheme),
                    "energy": runner.normalized_energy(name, scheme),
                    "edp": runner.normalized_edp(name, scheme),
                }
                for scheme in SCHEMES
            }
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    for metric in ("perf", "energy", "edp"):
        print()
        print(f"=== Figure 13 ({metric}, normalized to baseline) ===")
        print(f"{'workload':<12}" + "".join(f"{s.name:>11}" for s in SCHEMES))
        for name, per_scheme in rows.items():
            print(f"{name:<12}" + "".join(
                f"{per_scheme[s.name][metric]:>11.3f}" for s in SCHEMES))
        means = {
            s.name: arithmetic_mean([rows[w][s.name][metric] for w in rows])
            for s in SCHEMES
        }
        print(f"{'average':<12}" + "".join(f"{means[s.name]:>11.3f}" for s in SCHEMES))

    perf = {s.name: arithmetic_mean([rows[w][s.name]["perf"] for w in rows]) for s in SCHEMES}
    energy = {s.name: arithmetic_mean([rows[w][s.name]["energy"] for w in rows]) for s in SCHEMES}
    edp = {s.name: arithmetic_mean([rows[w][s.name]["edp"] for w in rows]) for s in SCHEMES}
    print()
    print(f"paper: perf FGA 0.86 / Half 1.003 / PRA 0.992;"
          f" energy PRA 0.77; EDP PRA 0.78")

    # PRA: almost no performance loss.
    assert 0.94 < perf["PRA"] < 1.03
    # Half-DRAM: neutral-to-slightly-positive performance.
    assert 0.96 < perf["Half-DRAM"] < 1.05
    # FGA: significant performance loss (larger here than the paper's
    # 14% because our cores saturate the bus; see module docstring).
    assert perf["FGA"] < 0.9
    # Energy: PRA best, in the paper's band; FGA worst (bandwidth loss
    # cancels its activation saving).
    assert 0.68 < energy["PRA"] < 0.88
    assert energy["PRA"] < energy["Half-DRAM"] < energy["FGA"]
    # EDP: PRA best of the three (paper: -22% average).
    assert edp["PRA"] < edp["Half-DRAM"]
    assert edp["PRA"] < edp["FGA"]
    assert 0.65 < edp["PRA"] < 0.92
