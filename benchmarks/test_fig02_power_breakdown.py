"""Figure 2: baseline DRAM power-consumption breakdown.

Single-core runs of the eight benchmarks on the baseline system; the
figure shows what share of DRAM power goes to ACT-PRE, RD/WR core,
read/write I/O, background and refresh.  The paper's headline numbers:
ACT-PRE up to 33% (avg 25%), I/O up to 19% (avg 14%).
"""

import pytest

from repro.core.schemes import BASELINE
from repro.power.accounting import CATEGORIES
from conftest import single_core
from repro.workloads.profiles import BENCHMARKS


def test_fig02_power_breakdown(benchmark, runner):
    def run_all():
        return {
            name: runner.run(single_core(name), BASELINE).power.fractions()
            for name in BENCHMARKS
        }

    fractions = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("=== Figure 2: DRAM power breakdown (fractions) ===")
    print(f"{'bench':<12}" + "".join(f"{c:>8}" for c in CATEGORIES))
    for name, frac in fractions.items():
        print(f"{name:<12}" + "".join(f"{frac[c]:>8.3f}" for c in CATEGORIES))

    act_shares = [f["act_pre"] for f in fractions.values()]
    io_shares = [f["rd_io"] + f["wr_io"] for f in fractions.values()]
    avg_act = sum(act_shares) / len(act_shares)
    avg_io = sum(io_shares) / len(io_shares)
    print(f"{'average':<12}act-pre {avg_act:.1%} (paper ~25%), "
          f"i/o {avg_io:.1%} (paper ~14%)")

    # Shape assertions (generous bands around the paper's averages).
    assert 0.10 < avg_act < 0.40
    assert 0.04 < avg_io < 0.25
    assert max(act_shares) < 0.55
    # Every category present somewhere; fractions sum to 1 per bench.
    for frac in fractions.values():
        assert sum(frac.values()) == pytest.approx(1.0)
        assert frac["bg"] > 0
        assert frac["ref"] > 0
