"""Shared I/O for the benchmark snapshot artifacts.

Every meta-benchmark that records numbers goes through
:func:`update_results`, which read-modify-writes its section of
``BENCH_throughput.json`` and refreshes the ``_env`` provenance stamp
(engine, python/numpy versions, platform, git sha, and the comparison
fingerprint from :func:`repro.engine.engine_env`).  The stamp is what
makes the numbers *interpretable*: a throughput jump means nothing
until you know whether the compiled engine, a different interpreter,
or a different machine produced it — and the perf-trajectory guard
(``check_perf_trajectory.py``) only ever compares entries whose
fingerprints match.

The benchmark conftest mirrors the whole snapshot (``_env`` included)
into ``BENCH_history.jsonl``, one line per refreshing session.
"""

import json
import subprocess
from pathlib import Path

#: Where the benchmark snapshot lands (repo root; uploaded by CI).
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


def git_head(root=None):
    """Current commit sha (with ``-dirty`` suffix), or None outside git."""
    root = str(root or RESULTS_PATH.parent)
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10,
        )
        if sha.returncode != 0:
            return None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    head = sha.stdout.strip()
    if status.returncode == 0 and status.stdout.strip():
        head += "-dirty"
    return head


def load_results(path=None):
    """The current snapshot dict (tolerant of absence/corruption)."""
    path = path or RESULTS_PATH
    if not path.exists():
        return {}
    try:
        return json.loads(path.read_text())
    except (ValueError, OSError):
        return {}


def current_env():
    """The ``_env`` stamp: engine provenance plus the git sha."""
    from repro.engine import engine_env

    env = engine_env()
    env["git"] = git_head()
    return env


def _write(results, path):
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")


def update_results(section, payload, path=None):
    """Replace one section of the snapshot and refresh ``_env``.

    Returns the full snapshot as written.  Sections are either scheme
    names or underscore-prefixed harness sections (``_construction``,
    ``_sweep``, ``_batch``, ``_engine``); ``_env`` is reserved and
    always rewritten here so it describes the process that last touched
    the file.
    """
    path = path or RESULTS_PATH
    results = load_results(path)
    results[section] = payload
    results["_env"] = current_env()
    _write(results, path)
    return results


def update_subsection(section, key, payload, path=None):
    """Merge ``payload`` under ``results[section][key]`` (+ ``_env``).

    Used by the engine speedup harness, whose interpreted and compiled
    measurements come from *different processes* writing the same
    ``_engine`` section.
    """
    path = path or RESULTS_PATH
    results = load_results(path)
    sub = results.get(section)
    if not isinstance(sub, dict):
        sub = {}
    sub[key] = payload
    results[section] = sub
    results["_env"] = current_env()
    _write(results, path)
    return results
