#!/usr/bin/env python
"""Compiled-vs-interpreted engine speedup: measure and enforce.

The two engines cannot coexist in one process (extension modules
shadow the ``.py`` sources at the same import paths), so the speedup
is measured as two process invocations writing into one artifact::

    REPRO_ENGINE=interpreted python benchmarks/engine_bench.py measure
    REPRO_COMPILED=1 python setup.py build_ext --inplace
    python benchmarks/engine_bench.py measure            # auto: compiled
    python benchmarks/engine_bench.py enforce --floor 1.8

``measure`` runs the standard throughput point (PRA, MIX2, 4 cores,
512 KiB LLC — the same configuration as
``test_simulator_throughput.one_run``) best-of-N and records req/s
under ``_engine.<engine>`` in ``BENCH_throughput.json``; ``enforce``
reads both labels back and fails below the floor (1.8x locally, CI
passes ``--floor 1.5`` to absorb shared-runner jitter).
"""

import argparse
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(Path(__file__).resolve().parent))  # bench_io
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from bench_io import update_subsection, load_results  # noqa: E402

EVENTS = 1500
WARMUP = 2000
DEFAULT_ROUNDS = 3
DEFAULT_FLOOR = 1.8


def measure(label=None, rounds=DEFAULT_ROUNDS):
    """Record best-of-``rounds`` req/s under ``_engine.<label>``."""
    from repro.engine import ACTIVE_ENGINE, engine_env
    from repro.core.schemes import PRA
    from repro.sim.config import CacheConfig, SystemConfig
    from repro.sim.system import System
    from repro.workloads.mixes import workload

    label = label or ACTIVE_ENGINE
    rates = []
    served = cycles = 0
    for _ in range(rounds):
        config = SystemConfig(
            scheme=PRA, cache=CacheConfig(llc_bytes=512 * 1024)
        )
        system = System(
            config, workload("MIX2"), EVENTS, warmup_events_per_core=WARMUP
        )
        t0 = time.perf_counter()
        result = system.run()
        elapsed = time.perf_counter() - t0
        served = result.controller.total_served
        cycles = result.runtime_cycles
        rates.append(served / elapsed)
    best = max(rates)
    print(f"engine-bench: {label} engine (process runs "
          f"{ACTIVE_ENGINE}): {best:,.0f} req/s best-of-{rounds} "
          f"({served} served, {cycles} cycles)")
    update_subsection("_engine", label, {
        "requests_per_second_best_of_n": round(best),
        "rounds": rounds,
        "engine": ACTIVE_ENGINE,
        "fingerprint": engine_env()["fingerprint"],
        "requests_served": served,
        "simulated_cycles": cycles,
        "events_per_core": EVENTS,
        "warmup_events_per_core": WARMUP,
        "workload": "MIX2",
    })
    return 0


def enforce(floor=DEFAULT_FLOOR):
    """Fail unless compiled/interpreted speedup reaches ``floor``."""
    section = load_results().get("_engine")
    if not isinstance(section, dict):
        print("engine-bench: no _engine section in BENCH_throughput.json; "
              "run 'measure' on both engines first")
        return 1
    missing = [
        name for name in ("interpreted", "compiled") if name not in section
    ]
    if missing:
        print(f"engine-bench: missing measurement(s): {', '.join(missing)}")
        return 1
    interp = section["interpreted"]["requests_per_second_best_of_n"]
    compiled = section["compiled"]["requests_per_second_best_of_n"]
    if section["compiled"].get("engine") != "compiled":
        print("engine-bench: the 'compiled' measurement was produced by a "
              "process running the interpreted engine — build first")
        return 1
    speedup = compiled / interp if interp else 0.0
    print(f"engine-bench: compiled {compiled:,.0f} req/s vs interpreted "
          f"{interp:,.0f} req/s -> {speedup:.2f}x (floor {floor}x)")
    if speedup < floor:
        print("engine-bench: FAIL — compiled engine below the speedup floor")
        return 1
    print("engine-bench: ok")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)
    m = sub.add_parser("measure", help="record req/s for this process's engine")
    m.add_argument("--label", default=None,
                   help="artifact key (default: the active engine)")
    m.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    e = sub.add_parser("enforce", help="check compiled/interpreted speedup")
    e.add_argument("--floor", type=float, default=float(
        os.environ.get("REPRO_ENGINE_SPEEDUP_FLOOR", DEFAULT_FLOOR)
    ))
    args = parser.parse_args(argv)
    if args.command == "measure":
        return measure(label=args.label, rounds=args.rounds)
    return enforce(floor=args.floor)


if __name__ == "__main__":
    sys.exit(main())
