"""Ablation: which of PRA's ingredients buys what (DESIGN.md ablations).

Decomposes PRA's total saving into its mechanisms on a write-heavy
workload (GUPS) and a locality-heavy one (libquantum):

* partial activation only (no write-I/O scaling),
* write-I/O scaling only at full activation granularity? (not a real
  design - I/O scaling requires the mask, so the nearest ablation is
  PRA without the relaxed tRRD/tFAW timing),
* full PRA.

Also quantifies the ECC (x72) configuration of Section 4.2.
"""

import dataclasses

import pytest

from repro.core.schemes import BASELINE, PRA
from repro.sim.config import SystemConfig
from repro.sim.system import simulate
from repro.workloads.mixes import workload
from conftest import BENCH_EVENTS

PRA_NO_IO = dataclasses.replace(PRA, name="PRA-noIO", scale_write_io=False)
PRA_NO_RELAX = dataclasses.replace(PRA, name="PRA-noRelax", relax_act_constraints=False)
VARIANTS = (PRA_NO_IO, PRA_NO_RELAX, PRA)
WORKLOADS = ("GUPS", "libquantum")


def test_ablation_pra_features(benchmark):
    def run_all():
        rows = {}
        for name in WORKLOADS:
            wl = workload(name)
            base = simulate(SystemConfig(scheme=BASELINE), wl, BENCH_EVENTS)
            per = {}
            for scheme in VARIANTS:
                r = simulate(SystemConfig(scheme=scheme), wl, BENCH_EVENTS)
                per[scheme.name] = {
                    "power": r.avg_power_mw / base.avg_power_mw,
                    "runtime": r.runtime_cycles / base.runtime_cycles,
                }
            # ECC variant of full PRA.
            base_ecc = simulate(SystemConfig(scheme=BASELINE, ecc_chips=1), wl, BENCH_EVENTS)
            pra_ecc = simulate(SystemConfig(scheme=PRA, ecc_chips=1), wl, BENCH_EVENTS)
            per["PRA+ECC"] = {
                "power": pra_ecc.avg_power_mw / base_ecc.avg_power_mw,
                "runtime": pra_ecc.runtime_cycles / base_ecc.runtime_cycles,
            }
            rows[name] = per
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("=== Ablation: PRA mechanisms (normalized to baseline) ===")
    variants = [s.name for s in VARIANTS] + ["PRA+ECC"]
    print(f"{'workload':<12}{'metric':<9}" + "".join(f"{v:>13}" for v in variants))
    for name, per in rows.items():
        for metric in ("power", "runtime"):
            print(f"{name:<12}{metric:<9}" + "".join(
                f"{per[v][metric]:>13.3f}" for v in variants))

    for name, per in rows.items():
        # Write-I/O scaling contributes real savings on top of the
        # partial activation alone.
        assert per["PRA"]["power"] < per["PRA-noIO"]["power"], name
        # Removing the tRRD/tFAW relaxation must not change power much.
        assert abs(per["PRA-noRelax"]["power"] - per["PRA"]["power"]) < 0.06, name
        # ECC shrinks the saving but PRA still wins.
        assert per["PRA"]["power"] < per["PRA+ECC"]["power"] < 1.0, name
