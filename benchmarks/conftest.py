"""Shared fixtures for the paper-reproduction benchmark harness.

Every benchmark module regenerates one table or figure of the paper.
The session-scoped :class:`ExperimentRunner` caches simulations, so
e.g. Figures 10-13 share their baseline/PRA runs.

Run length defaults to a laptop-friendly size; set ``REPRO_EVENTS``
(memory instructions per core) to scale fidelity up, e.g.::

    REPRO_EVENTS=20000 pytest benchmarks/ --benchmark-only -s

Set ``REPRO_POOL`` to a worker count to run every figure suite's
simulations through one persistent :class:`repro.sim.pool.SimPool`:
the warm workers keep snapshot and trace-block caches across all 21
benchmark modules (results are bit-identical to in-process runs)::

    REPRO_POOL=4 pytest benchmarks/ --benchmark-only -s
"""

import os

import pytest

from repro.sim.config import SystemConfig
from repro.sim.pool import SimPool
from repro.sim.runner import ExperimentRunner
from repro.workloads.mixes import ALL_WORKLOADS, Workload
from repro.workloads.profiles import BENCHMARKS, profile

#: Default memory instructions per core for benchmark runs.
BENCH_EVENTS = int(os.environ.get("REPRO_EVENTS", "5000"))

#: Persistent-pool worker count for the whole benchmark session
#: (0 = serial in-process, the default).
POOL_WORKERS = int(os.environ.get("REPRO_POOL", "0"))

#: The paper's 14 multiprogrammed workloads, in presentation order.
WORKLOAD_ORDER = list(BENCHMARKS) + [f"MIX{i}" for i in range(1, 7)]


@pytest.fixture(scope="session")
def sim_pool():
    """One warm worker pool shared by every benchmark module."""
    if POOL_WORKERS < 1:
        yield None
        return
    with SimPool(workers=POOL_WORKERS) as pool:
        yield pool


@pytest.fixture(scope="session")
def runner(sim_pool) -> ExperimentRunner:
    return ExperimentRunner(
        events_per_core=BENCH_EVENTS,
        base_config=SystemConfig(),
        pool=sim_pool,
    )


def single_core(name: str) -> Workload:
    """Single instance of a benchmark (Table 1 / Figs 2-3 methodology)."""
    return Workload(name=f"{name}-1core", apps=(profile(name),))
