"""Shared fixtures for the paper-reproduction benchmark harness.

Every benchmark module regenerates one table or figure of the paper.
The session-scoped :class:`ExperimentRunner` caches simulations, so
e.g. Figures 10-13 share their baseline/PRA runs.

Run length defaults to a laptop-friendly size; set ``REPRO_EVENTS``
(memory instructions per core) to scale fidelity up, e.g.::

    REPRO_EVENTS=20000 pytest benchmarks/ --benchmark-only -s

Set ``REPRO_POOL`` to a worker count to run every figure suite's
simulations through one persistent :class:`repro.sim.pool.SimPool`:
the warm workers keep snapshot and trace-block caches across all 21
benchmark modules (results are bit-identical to in-process runs)::

    REPRO_POOL=4 pytest benchmarks/ --benchmark-only -s

Sessions that refresh ``BENCH_throughput.json`` (the meta-benchmarks
in ``test_simulator_throughput.py`` / ``test_sweep_throughput.py``)
also append one line to ``BENCH_history.jsonl`` — commit sha,
timestamp, and every performance section — so the repo accumulates a
perf trajectory per commit that CI archives alongside the snapshot
numbers.
"""

import json
import os
import time

import pytest

from bench_io import RESULTS_PATH as THROUGHPUT_PATH
from bench_io import git_head
from repro.sim.config import SystemConfig
from repro.sim.pool import SimPool
from repro.sim.runner import ExperimentRunner
from repro.workloads.mixes import ALL_WORKLOADS, Workload
from repro.workloads.profiles import BENCHMARKS, profile

#: Default memory instructions per core for benchmark runs.
BENCH_EVENTS = int(os.environ.get("REPRO_EVENTS", "5000"))

#: Persistent-pool worker count for the whole benchmark session
#: (0 = serial in-process, the default).
POOL_WORKERS = int(os.environ.get("REPRO_POOL", "0"))

#: The paper's 14 multiprogrammed workloads, in presentation order.
WORKLOAD_ORDER = list(BENCHMARKS) + [f"MIX{i}" for i in range(1, 7)]

#: Per-commit perf trajectory: one JSON line per benchmark session
#: that refreshed the throughput snapshot.  (The snapshot path itself,
#: and the git helper, live in :mod:`bench_io` so the meta-benchmarks
#: and the trajectory guard share them.)
HISTORY_PATH = THROUGHPUT_PATH.with_name("BENCH_history.jsonl")


def _throughput_mtime() -> "float | None":
    try:
        return THROUGHPUT_PATH.stat().st_mtime
    except OSError:
        return None


def pytest_sessionstart(session):
    """Remember the throughput snapshot's pre-session mtime."""
    session.config._repro_bench_mtime = _throughput_mtime()


def pytest_sessionfinish(session, exitstatus):
    """Append a perf-trajectory line when the snapshot was refreshed.

    Only sessions that actually rewrote ``BENCH_throughput.json``
    append (figure-only benchmark runs leave the history untouched),
    so every line corresponds to fresh numbers.  Failures to read git
    state degrade to ``"commit": null`` rather than failing the
    session — the history is an artifact, never a gate.
    """
    before = getattr(session.config, "_repro_bench_mtime", None)
    if _throughput_mtime() in (None, before):
        return
    try:
        sections = json.loads(THROUGHPUT_PATH.read_text())
    except (OSError, ValueError):
        return
    record = {
        "commit": git_head(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "exitstatus": int(getattr(exitstatus, "value", exitstatus)),
        "sections": sections,
    }
    with HISTORY_PATH.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def sim_pool():
    """One warm worker pool shared by every benchmark module."""
    if POOL_WORKERS < 1:
        yield None
        return
    with SimPool(workers=POOL_WORKERS) as pool:
        yield pool


@pytest.fixture(scope="session")
def runner(sim_pool) -> ExperimentRunner:
    return ExperimentRunner(
        events_per_core=BENCH_EVENTS,
        base_config=SystemConfig(),
        pool=sim_pool,
    )


def single_core(name: str) -> Workload:
    """Single instance of a benchmark (Table 1 / Figs 2-3 methodology)."""
    return Workload(name=f"{name}-1core", apps=(profile(name),))
