"""Shared fixtures for the paper-reproduction benchmark harness.

Every benchmark module regenerates one table or figure of the paper.
The session-scoped :class:`ExperimentRunner` caches simulations, so
e.g. Figures 10-13 share their baseline/PRA runs.

Run length defaults to a laptop-friendly size; set ``REPRO_EVENTS``
(memory instructions per core) to scale fidelity up, e.g.::

    REPRO_EVENTS=20000 pytest benchmarks/ --benchmark-only -s
"""

import os

import pytest

from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner
from repro.workloads.mixes import ALL_WORKLOADS, Workload
from repro.workloads.profiles import BENCHMARKS, profile

#: Default memory instructions per core for benchmark runs.
BENCH_EVENTS = int(os.environ.get("REPRO_EVENTS", "5000"))

#: The paper's 14 multiprogrammed workloads, in presentation order.
WORKLOAD_ORDER = list(BENCHMARKS) + [f"MIX{i}" for i in range(1, 7)]


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner(events_per_core=BENCH_EVENTS, base_config=SystemConfig())


def single_core(name: str) -> Workload:
    """Single instance of a benchmark (Table 1 / Figs 2-3 methodology)."""
    return Workload(name=f"{name}-1core", apps=(profile(name),))


