"""Meta-benchmark: whole-sweep throughput, cold-spawn vs warm pool.

Not a paper figure — this measures the sweep *service* itself: a
24-point grid (6 schemes x 4 workloads) executed

* on a throwaway ``multiprocessing`` pool under the **spawn** start
  method — every worker pays the full cold start (interpreter boot,
  package import, trace-block compilation, one warmup replay per warm
  fingerprint it encounters), the cost every fresh sweep invocation
  pays; versus
* on a persistent :class:`repro.sim.pool.SimPool` whose workers are
  already **warm** — snapshot and trace caches populated by an earlier
  batch, fingerprint-grouped scheduling keeping them hot — the steady
  state of the benchmark conftest, ``repro bench`` and repeated
  ``Sweep.run(pool=...)`` calls.

Both arms (and the serial oracle) must produce row-for-row identical
grids; the speedup and absolute points/sec land in the ``_sweep``
section of ``BENCH_throughput.json`` so CI archives them per commit.
The floor is 3x locally; CI sets ``REPRO_SWEEP_SPEEDUP_FLOOR=2`` to
absorb shared-runner jitter.

``test_batch_sweep_speedup`` adds the third backend: the lane-parallel
batch kernel (``Sweep.run(batch=N)``, :mod:`repro.sim.batch`) on the
same 24-point grid at *screening* fidelity — a realistic 2 MB LLC and
a handful of timed events per point, the regime sensitivity screens
actually run in, where per-point construction / restore / IPC dominate
and batching is designed to win.  Its numbers land in the ``_batch``
section with a ``REPRO_BATCH_SPEEDUP_FLOOR`` floor (3x locally, 2x in
CI) over the warm pool, plus a 10x floor over cold spawn.
"""

import os
import time

from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.pool import SimPool
from repro.sim.snapshot import SNAPSHOTS
from repro.sim.sweep import Sweep

from bench_io import update_results

#: Kept small so the grid is warmup-dominated, like real sensitivity
#: sweeps at screening fidelity: the warm-state reuse the pool provides
#: is exactly what separates the two arms.
EVENTS = 100
WARMUP = 12000
WORKERS = 2

SCHEMES = ["Baseline", "FGA", "Half-DRAM", "PRA", "SDS", "DBI+PRA"]
WORKLOADS = ["GUPS", "MIX1", "MIX2", "LinkedList"]
POLICIES = ["relaxed"]


def make_sweep() -> Sweep:
    sweep = Sweep(
        events_per_core=EVENTS,
        base_config=SystemConfig(cache=CacheConfig(llc_bytes=512 * 1024)),
        warmup_events_per_core=WARMUP,
    )
    sweep.add_axis("scheme", SCHEMES)
    sweep.add_axis("workload", WORKLOADS)
    sweep.add_axis("policy", POLICIES)
    return sweep


def test_sweep_pool_speedup():
    """Warm-pool sweep vs cold-spawn sweep on the same 24-point grid."""
    floor = float(os.environ.get("REPRO_SWEEP_SPEEDUP_FLOOR", "3.0"))
    points = len(SCHEMES) * len(WORKLOADS) * len(POLICIES)

    # Serial oracle (also the bit-identity reference for both arms).
    serial_rows = make_sweep().run()

    # Cold arm: throwaway pool, spawn start method — each worker is a
    # fresh interpreter with empty caches, as in a fresh CLI/CI
    # invocation.  Parent caches are irrelevant to spawned children but
    # are cleared anyway so the arm never depends on test order.
    SNAPSHOTS.clear()
    cold_sweep = make_sweep()
    t0 = time.perf_counter()
    cold_rows = cold_sweep.run(workers=WORKERS, mp_start="spawn")
    cold_s = time.perf_counter() - t0

    # Warm arm: a persistent pool that has already served one batch
    # (the steady state of the benchmark session / repeated sweeps).
    with SimPool(workers=WORKERS) as pool:
        make_sweep().run(pool=pool)  # warms worker caches; untimed
        t0 = time.perf_counter()
        pooled_rows = make_sweep().run(pool=pool)
        pooled_s = time.perf_counter() - t0

    assert cold_rows == serial_rows
    assert pooled_rows == serial_rows
    speedup = cold_s / pooled_s

    print()
    print(f"=== Sweep service ({points} points, {WORKERS} workers) ===")
    print(f"  cold spawn     {cold_s:6.2f} s  ({points / cold_s:6.1f} points/s)")
    print(f"  warm pool      {pooled_s:6.2f} s  ({points / pooled_s:6.1f} points/s)")
    print(f"  speedup        {speedup:6.2f}x  (floor {floor}x)")

    update_results("_sweep", {
        "grid_points": points,
        "workers": WORKERS,
        "events_per_core": EVENTS,
        "warmup_events_per_core": WARMUP,
        "cold_spawn_seconds": round(cold_s, 3),
        "cold_spawn_points_per_second": round(points / cold_s, 2),
        "pooled_seconds": round(pooled_s, 3),
        "pooled_points_per_second": round(points / pooled_s, 2),
        "pooled_speedup": round(speedup, 2),
    })

    assert speedup >= floor


# -- Batched sweep (lane-parallel kernel) ------------------------------

#: Screening fidelity: a realistic full-size LLC and a handful of timed
#: events per point.  Here per-point overhead — cache construction,
#: warm-state restore, task IPC — dominates the wall time, which is
#: exactly the regime the batch kernel amortizes: one shared event loop,
#: copy-on-write snapshot restores, one task message per lane group.
BATCH_LLC_BYTES = 2 * 1024 * 1024
BATCH_EVENTS = 2
BATCH_REPEATS = 3


def make_batch_sweep() -> Sweep:
    sweep = Sweep(
        events_per_core=BATCH_EVENTS,
        base_config=SystemConfig(cache=CacheConfig(llc_bytes=BATCH_LLC_BYTES)),
        warmup_events_per_core=WARMUP,
    )
    sweep.add_axis("scheme", SCHEMES)
    sweep.add_axis("workload", WORKLOADS)
    sweep.add_axis("policy", POLICIES)
    return sweep


def _best_of(fn, repeats: int = BATCH_REPEATS) -> float:
    """Min wall time over ``repeats`` runs (standard jitter control)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_batch_sweep_speedup():
    """Batched sweep vs warm pool vs cold spawn on the 24-point grid."""
    floor = float(os.environ.get("REPRO_BATCH_SPEEDUP_FLOOR", "3.0"))
    points = len(SCHEMES) * len(WORKLOADS) * len(POLICIES)

    # Serial oracle: the bit-identity reference for every arm (also
    # builds the warm snapshots the in-process arms restore from).
    serial_rows = make_batch_sweep().run()

    # Cold arm: spawn-start throwaway pool, exactly one (untimed-warmup
    #-free) run — every worker pays interpreter boot, imports and one
    # warmup replay per fingerprint it encounters.
    SNAPSHOTS.clear()
    t0 = time.perf_counter()
    cold_rows = make_batch_sweep().run(workers=WORKERS, mp_start="spawn")
    cold_s = time.perf_counter() - t0
    make_batch_sweep().run()  # re-warm parent snapshots for the arms below

    # Warm-pool baseline: persistent SimPool in steady state.
    with SimPool(workers=WORKERS) as pool:
        make_batch_sweep().run(pool=pool)  # warms worker caches; untimed
        pooled_s = _best_of(lambda: make_batch_sweep().run(pool=pool))
        pooled_rows = make_batch_sweep().run(pool=pool)

    # Batched arm: the whole grid as one lane group through one shared
    # event loop, in-process.
    make_batch_sweep().run(batch=points)  # untimed: triggers lazy imports
    batch_s = _best_of(lambda: make_batch_sweep().run(batch=points))
    batch_rows = make_batch_sweep().run(batch=points)

    assert cold_rows == serial_rows
    assert pooled_rows == serial_rows
    assert batch_rows == serial_rows
    pool_speedup = pooled_s / batch_s
    cold_speedup = cold_s / batch_s

    print()
    print(f"=== Batched sweep ({points} points, batch={points}, "
          f"{BATCH_EVENTS} events/core, {BATCH_LLC_BYTES // 1024} KB LLC) ===")
    print(f"  cold spawn     {cold_s:6.2f} s  ({points / cold_s:6.1f} points/s)")
    print(f"  warm pool      {pooled_s:6.2f} s  ({points / pooled_s:6.1f} points/s)")
    print(f"  batched        {batch_s:6.2f} s  ({points / batch_s:6.1f} points/s)")
    print(f"  vs warm pool   {pool_speedup:6.2f}x  (floor {floor}x)")
    print(f"  vs cold spawn  {cold_speedup:6.2f}x  (floor 10x)")

    update_results("_batch", {
        "grid_points": points,
        "batch_lanes": points,
        # Cohort stepping: same-cycle lanes screened column-wise
        # across the lane-major slabs (PR 7) rather than stepped one
        # scalar probe at a time.
        "vectorized": True,
        "events_per_core": BATCH_EVENTS,
        "warmup_events_per_core": WARMUP,
        "llc_bytes": BATCH_LLC_BYTES,
        "workers": WORKERS,
        "cold_spawn_seconds": round(cold_s, 3),
        "cold_spawn_points_per_second": round(points / cold_s, 2),
        "pooled_seconds": round(pooled_s, 3),
        "pooled_points_per_second": round(points / pooled_s, 2),
        "batched_seconds": round(batch_s, 3),
        "batched_points_per_second": round(points / batch_s, 2),
        "batched_speedup_vs_pool": round(pool_speedup, 2),
        "batched_speedup_vs_cold": round(cold_speedup, 2),
    })

    assert pool_speedup >= floor
    assert cold_speedup >= 10.0
