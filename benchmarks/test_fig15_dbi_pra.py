"""Figure 15: PRA combined with the Dirty-Block Index (DBI).

DBI proactively writes back dirty LLC lines sharing a DRAM row,
raising the write row-hit rate; PRA shrinks write activations.  The
paper's representative picks: bzip2 (power saved by PRA, DBI's
performance gain lost), GUPS (only PRA helps), em3d (synergy).  On
average DBI+PRA beats DBI alone but saves less power than PRA alone,
because DBI's write bursts raise PRA's false-hit pressure.
"""

import pytest

from repro.core.schemes import DBI, DBI_PRA, PRA
from conftest import WORKLOAD_ORDER
from repro.sim.runner import arithmetic_mean

SCHEMES = (DBI, PRA, DBI_PRA)
SPOTLIGHT = ("bzip2", "GUPS", "em3d")


def test_fig15_dbi_pra(benchmark, runner):
    def run_all():
        rows = {}
        for name in WORKLOAD_ORDER:
            rows[name] = {
                scheme.name: {
                    "power": runner.normalized_power(name, scheme),
                    "perf": runner.normalized_performance(name, scheme),
                    "energy": runner.normalized_energy(name, scheme),
                    "edp": runner.normalized_edp(name, scheme),
                    "wr_hit": runner.run(name, scheme).controller.writes.hit_rate,
                    "false_w": runner.run(name, scheme).controller.writes.false_hit_rate,
                }
                for scheme in SCHEMES
            }
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("=== Figure 15: DBI / PRA / DBI+PRA ===")
    print(f"{'workload':<12}{'scheme':<9}{'power':>8}{'perf':>8}{'energy':>8}"
          f"{'EDP':>8}{'wrHit':>8}{'falseW':>8}")
    for name in SPOTLIGHT + ("MEAN",):
        for scheme in SCHEMES:
            if name == "MEAN":
                m = {
                    k: arithmetic_mean([rows[w][scheme.name][k] for w in rows])
                    for k in ("power", "perf", "energy", "edp", "wr_hit", "false_w")
                }
            else:
                m = rows[name][scheme.name]
            print(f"{name:<12}{scheme.name:<9}{m['power']:>8.3f}{m['perf']:>8.3f}"
                  f"{m['energy']:>8.3f}{m['edp']:>8.3f}{m['wr_hit']:>8.1%}{m['false_w']:>8.2%}")

    mean = {
        s.name: {
            k: arithmetic_mean([rows[w][s.name][k] for w in rows])
            for k in ("power", "perf", "energy", "edp", "wr_hit", "false_w")
        }
        for s in SCHEMES
    }

    # PRA is the power tool; DBI alone saves little power.
    assert mean["PRA"]["power"] < mean["DBI"]["power"]
    # Combined beats DBI alone on power...
    assert mean["DBI+PRA"]["power"] < mean["DBI"]["power"]
    # ...but stays at or above PRA alone (the paper attributes this to
    # extra false hits; our DBI enqueues a row's companions atomically,
    # so their masks OR-merge perfectly and the loss shows up as larger
    # merged activations instead — same direction, different channel).
    assert mean["DBI+PRA"]["power"] >= mean["PRA"]["power"] - 0.01
    assert mean["DBI+PRA"]["false_w"] >= mean["PRA"]["false_w"] - 0.001
    # DBI raises the write row-hit rate.
    assert mean["DBI"]["wr_hit"] > mean["PRA"]["wr_hit"]
    # Nothing falls off a performance cliff.
    for s in SCHEMES:
        assert mean[s.name]["perf"] > 0.9
