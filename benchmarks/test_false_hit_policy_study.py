"""False row-buffer hits vs row policy (Section 5.2.1 mechanism study).

The paper evaluates PRA's false hits under the relaxed close-page
policy, where partially-open write rows are closed as soon as nothing
pending can use them — which is why read false hits are so rare.  This
study makes the mechanism visible by sweeping the policy:

* relaxed close-page — partial rows close quickly: false hits rare;
* open-page — partial write rows linger until a conflict, so later
  reads (and wider writes) collide with them far more often;
* restricted close-page — every access re-activates: false hits are
  impossible by construction.
"""

import pytest

from repro.controller.policies import RowPolicy
from repro.core.schemes import PRA
from conftest import WORKLOAD_ORDER

POLICIES = (
    RowPolicy.RELAXED_CLOSE,
    RowPolicy.OPEN_PAGE,
    RowPolicy.RESTRICTED_CLOSE,
)
STUDY_WORKLOADS = ("lbm", "libquantum", "MIX1", "MIX5")


def test_false_hit_policy_study(benchmark, runner):
    def run_all():
        rows = {}
        for name in STUDY_WORKLOADS:
            per = {}
            for policy in POLICIES:
                c = runner.run(name, PRA, policy).controller
                per[policy.value] = {
                    "false_r": c.reads.false_hit_rate,
                    "false_w": c.writes.false_hit_rate,
                    "reactivations": c.false_hit_reactivations,
                    "served": c.total_served,
                }
            rows[name] = per
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("=== PRA false row-buffer hits vs row policy ===")
    print(f"{'workload':<10}{'policy':<26}{'falseR':>9}{'falseW':>9}{'re-ACTs':>9}")
    for name, per in rows.items():
        for policy, m in per.items():
            print(f"{name:<10}{policy:<26}{m['false_r']:>9.3%}{m['false_w']:>9.3%}"
                  f"{m['reactivations']:>9}")

    for name, per in rows.items():
        relaxed = per[RowPolicy.RELAXED_CLOSE.value]
        open_page = per[RowPolicy.OPEN_PAGE.value]
        restricted = per[RowPolicy.RESTRICTED_CLOSE.value]
        # Restricted: rows close right after their access, so false
        # hits can only occur inside the tWR window before the
        # auto-precharge fires - vanishingly rare, never common.
        assert restricted["false_r"] < 0.001, name
        assert restricted["false_w"] < 0.001, name
        # Open-page lets partial rows linger: at least as many false
        # hits as the relaxed policy on every workload.
        combined_open = open_page["false_r"] + open_page["false_w"]
        combined_relaxed = relaxed["false_r"] + relaxed["false_w"]
        assert combined_open >= combined_relaxed - 1e-9, name
    # And the lingering effect is material somewhere.
    assert any(
        per[RowPolicy.OPEN_PAGE.value]["reactivations"]
        > per[RowPolicy.RELAXED_CLOSE.value]["reactivations"]
        for per in rows.values()
    )
