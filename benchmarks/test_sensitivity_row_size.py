"""Sensitivity: PRA's benefit vs DRAM row size (Section 2.2.1 outlook).

"This power inefficiency of row activation will increase in future
DRAMs, which will have larger capacities and more bitlines."  The
sweep scales the chip's row (4 KB / 8 KB / 16 KB rank-level rows) with
activation power proportional to the bitlines opened, and measures
PRA's total-power saving at each point.
"""

import dataclasses

import pytest

from repro.core.schemes import BASELINE, PRA
from repro.dram.geometry import ChipGeometry, SystemGeometry
from repro.power.params import DDR3_1600_POWER
from repro.sim.config import SystemConfig
from repro.sim.system import simulate
from repro.workloads.mixes import workload
from conftest import BENCH_EVENTS

#: Columns-per-chip for 4 KB, 8 KB (baseline) and 16 KB rank rows.
ROW_SWEEP = {4096: 512, 8192: 1024, 16384: 2048}


def _config(scheme, columns, row_bytes):
    # Activation power scales with the bitlines opened per activation.
    scale = row_bytes / 8192
    power = DDR3_1600_POWER.scaled(
        tuple(
            DDR3_1600_POWER.act_power(g) * scale / DDR3_1600_POWER.act_power(8)
            for g in range(1, 9)
        )
    )
    # Keep chip capacity constant: halve/double rows as columns change.
    rows = 32768 * 1024 // columns
    geometry = SystemGeometry(chip=ChipGeometry(rows=rows, columns=columns))
    return SystemConfig(scheme=scheme, geometry=geometry, power=power)


def test_sensitivity_row_size(benchmark):
    def run_sweep():
        wl = workload("GUPS")
        savings = {}
        for row_bytes, columns in ROW_SWEEP.items():
            base = simulate(_config(BASELINE, columns, row_bytes), wl, BENCH_EVENTS)
            pra = simulate(_config(PRA, columns, row_bytes), wl, BENCH_EVENTS)
            savings[row_bytes] = {
                "saving": 1 - pra.avg_power_mw / base.avg_power_mw,
                "act_share": base.power.fraction("act_pre"),
            }
        return savings

    savings = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print()
    print("=== Sensitivity: PRA total-power saving vs row size (GUPS) ===")
    print(f"{'rank row':<12}{'ACT share':>12}{'PRA saving':>12}")
    for row_bytes, data in sorted(savings.items()):
        print(f"{row_bytes // 1024:>6} KB{'':<4}{data['act_share']:>12.1%}"
              f"{data['saving']:>12.1%}")

    ordered = [savings[k] for k in sorted(savings)]
    # Larger rows burn a larger activation share...
    assert ordered[0]["act_share"] < ordered[1]["act_share"] < ordered[2]["act_share"]
    # ...so PRA's saving grows with row size (the paper's outlook).
    assert ordered[0]["saving"] < ordered[2]["saving"]
    assert all(d["saving"] > 0.05 for d in ordered)
