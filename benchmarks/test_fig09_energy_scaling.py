"""Figure 9: row-activation energy vs. number of MATs activated.

Regenerates the energy-proportionality curve and its key property:
halving the MATs does *not* halve the energy, because the row
activation bus and predecoder are shared across the sub-array.
"""

import pytest

from repro.power.energy_model import MATS_PER_SUBARRAY, ActivationEnergyModel


def build_curve():
    model = ActivationEnergyModel()
    return {m: model.energy_pj(m) for m in range(1, MATS_PER_SUBARRAY + 1)}


def test_fig09_energy_scaling(benchmark):
    curve = benchmark.pedantic(build_curve, rounds=1, iterations=1)
    model = ActivationEnergyModel()
    full = curve[MATS_PER_SUBARRAY]

    print()
    print("=== Figure 9: activation energy vs #MATs ===")
    for mats in range(2, MATS_PER_SUBARRAY + 1, 2):
        frac = curve[mats] / full
        print(f"  {mats:>2} MATs {curve[mats]:>9.1f} pJ {frac:>7.1%} " + "#" * int(40 * frac))

    # Monotone increasing, linear increments.
    for m in range(1, MATS_PER_SUBARRAY):
        assert curve[m + 1] - curve[m] == pytest.approx(model.per_mat_pj)
    # The headline property: 8 MATs cost more than 50% of 16 MATs.
    assert curve[8] / full > 0.5
    assert curve[8] / full == pytest.approx(0.531, abs=0.01)
    # And a 2-MAT (1/8-row) activation is dramatically cheaper.
    assert curve[2] / full < 0.2
