"""Figure 14: PRA combined with Half-DRAM (restricted close-page).

The combined scheme stacks PRA's masked write activation on top of
Half-DRAM's vertically split MATs: writes open g/16 of a row, reads
half a row.  The paper reports synergy on every metric versus either
scheme alone, evaluated under the restricted close-page policy (with
line-interleaved mapping), where relaxed tRRD/tFAW matter most.
"""

import pytest

from repro.controller.policies import RowPolicy
from repro.core.schemes import HALF_DRAM, HALF_DRAM_PRA, PRA
from conftest import WORKLOAD_ORDER
from repro.sim.runner import arithmetic_mean

POLICY = RowPolicy.RESTRICTED_CLOSE
SCHEMES = (HALF_DRAM, PRA, HALF_DRAM_PRA)


def test_fig14_halfdram_pra(benchmark, runner):
    def run_all():
        means = {}
        for scheme in SCHEMES:
            power, perf, energy, edp = [], [], [], []
            for name in WORKLOAD_ORDER:
                power.append(runner.normalized_power(name, scheme, POLICY))
                perf.append(runner.normalized_performance(name, scheme, POLICY))
                energy.append(runner.normalized_energy(name, scheme, POLICY))
                edp.append(runner.normalized_edp(name, scheme, POLICY))
            means[scheme.name] = {
                "power": arithmetic_mean(power),
                "perf": arithmetic_mean(perf),
                "energy": arithmetic_mean(energy),
                "edp": arithmetic_mean(edp),
            }
        return means

    means = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("=== Figure 14: Half-DRAM + PRA (restricted close-page, mean of 14) ===")
    print(f"{'scheme':<16}{'power':>8}{'perf':>8}{'energy':>8}{'EDP':>8}")
    for name, m in means.items():
        print(f"{name:<16}{m['power']:>8.3f}{m['perf']:>8.3f}{m['energy']:>8.3f}{m['edp']:>8.3f}")

    combo = means["Half-DRAM+PRA"]
    half = means["Half-DRAM"]
    pra = means["PRA"]

    # Synergy: the combined scheme saves more power/energy than either.
    assert combo["power"] < half["power"]
    assert combo["power"] < pra["power"]
    assert combo["energy"] < half["energy"]
    assert combo["energy"] < pra["energy"]
    assert combo["edp"] < pra["edp"]
    # Nobody loses significant performance under restricted close-page.
    for m in means.values():
        assert m["perf"] > 0.93
    # All schemes save power versus the restricted baseline.
    for m in means.values():
        assert m["power"] < 1.0
