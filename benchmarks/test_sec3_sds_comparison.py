"""Section 3 claim: PRA vs Skinflint DRAM System (SDS) coverage.

"Our scheme reduces average row activation granularity by 42% whereas
SDS can reduce average chip access granularity by only 16%."

The comparator replays each benchmark's Figure-3 dirty-word
distribution through both schemes' skip rules: PRA masks one MAT group
per dirty word; SDS can skip a chip only when its byte position is
clean in *every* word of the line.
"""

import pytest

from repro.core.sds import SDSComparator, masks_from_distribution
from repro.workloads.profiles import BENCHMARKS

LINES_PER_BENCH = 4000


def test_sec3_sds_comparison(benchmark):
    def run_all():
        rows = {}
        for name, prof in BENCHMARKS.items():
            stream = masks_from_distribution(
                prof.dirty_word_dist, LINES_PER_BENCH, seed=11
            )
            rows[name] = SDSComparator(seed=13).compare(stream)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("=== Section 3: PRA vs SDS access-granularity reduction ===")
    print(f"{'bench':<12}{'PRA reduce':>12}{'SDS reduce':>12}")
    for name, result in rows.items():
        print(f"{name:<12}{result.pra_reduction:>12.1%}{result.sds_reduction:>12.1%}")
    avg_pra = sum(r.pra_reduction for r in rows.values()) / len(rows)
    avg_sds = sum(r.sds_reduction for r in rows.values()) / len(rows)
    print(f"{'average':<12}{avg_pra:>12.1%}{avg_sds:>12.1%}   (paper: 42% vs 16%)")

    # The paper's qualitative claim: PRA covers far more than SDS.
    assert avg_pra > 2 * avg_sds
    assert 0.4 < avg_pra < 0.95
    assert avg_sds < 0.4
    # SDS never skips anything the data doesn't allow.
    for result in rows.values():
        assert 0.0 <= result.sds_reduction <= result.pra_reduction + 0.2
