"""Figure 10: PRA's impact on row-buffer read/write/total hit rates.

False row-buffer hits (request targets an open row whose needed MAT
groups are closed) turn would-be hits into misses.  The paper reports
they are rare on reads (avg 0.04%, max 0.26%) and only mildly affect
the total hit rate (-0.1 pp on average).
"""

import pytest

from repro.core.schemes import BASELINE, PRA
from conftest import WORKLOAD_ORDER


def test_fig10_row_hit_rates(benchmark, runner):
    def run_all():
        rows = {}
        for name in WORKLOAD_ORDER:
            base = runner.run(name, BASELINE).controller
            pra = runner.run(name, PRA).controller
            rows[name] = {
                "base": (base.reads.hit_rate, base.writes.hit_rate, base.total_hit_rate),
                "pra": (pra.reads.hit_rate, pra.writes.hit_rate, pra.total_hit_rate),
                "false": (pra.reads.false_hit_rate, pra.writes.false_hit_rate),
            }
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("=== Figure 10: row-buffer hit rates, baseline vs PRA ===")
    print(f"{'workload':<12}{'rd b/p':>14}{'wr b/p':>14}{'tot b/p':>14}{'falseR':>8}{'falseW':>8}")
    for name, r in rows.items():
        print(
            f"{name:<12}"
            f"{r['base'][0]:>6.1%}/{r['pra'][0]:<6.1%}"
            f"{r['base'][1]:>6.1%}/{r['pra'][1]:<6.1%}"
            f"{r['base'][2]:>6.1%}/{r['pra'][2]:<6.1%}"
            f"{r['false'][0]:>8.2%}{r['false'][1]:>8.2%}"
        )

    n = len(rows)
    avg_false_read = sum(r["false"][0] for r in rows.values()) / n
    max_false_read = max(r["false"][0] for r in rows.values())
    avg_total_drop = sum(r["base"][2] - r["pra"][2] for r in rows.values()) / n
    print(f"avg read false-hit rate {avg_false_read:.3%} (paper 0.04%), "
          f"max {max_false_read:.2%} (paper 0.26%); "
          f"avg total hit-rate drop {avg_total_drop * 100:.2f} pp (paper 0.1)")

    # Paper shapes: read false hits are rare; total hit rate barely moves.
    assert avg_false_read < 0.01
    assert max_false_read < 0.05
    assert abs(avg_total_drop) < 0.02
    # Reads keep their locality under PRA (full-row read activation).
    for name, r in rows.items():
        assert r["pra"][0] >= r["base"][0] - 0.05, name
