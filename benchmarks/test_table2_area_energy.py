"""Table 2: die area and row-activation energy breakdown (analytic).

Regenerates both halves of Table 2 from the CACTI-3DD-style model and
checks them against the published values.
"""

import pytest

from repro.power.energy_model import ActivationEnergyModel, DieAreaModel

PAPER_AREA = {
    "dram_cell_mm2": 4.677,
    "sense_amp_mm2": 1.909,
    "row_predecoder_mm2": 0.067,
    "local_wordline_driver_mm2": 1.617,
}
PAPER_TOTAL_AREA = 11.884
PAPER_PER_MAT = {
    "local_bitline": 15.583,
    "local_sense_amp": 1.257,
    "local_wordline": 0.046,
    "row_decoder": 0.035,
}
PAPER_PER_BANK = {"row_act_bus": 17.944, "row_predecoder": 0.072}
PAPER_TOTAL_PJ = 288.752


def build_table2():
    model = ActivationEnergyModel()
    area = DieAreaModel()
    return {
        "area": {k: getattr(area, k) for k in PAPER_AREA},
        "total_area": area.total_mm2,
        "per_mat": {
            "local_bitline": model.local_bitline_pj,
            "local_sense_amp": model.local_sense_amp_pj,
            "local_wordline": model.local_wordline_pj,
            "row_decoder": model.row_decoder_pj,
        },
        "per_bank": {
            "row_act_bus": model.row_act_bus_pj,
            "row_predecoder": model.row_predecoder_pj,
        },
        "total_pj": model.full_row_pj,
    }


def test_table2_area_energy(benchmark):
    table = benchmark.pedantic(build_table2, rounds=1, iterations=1)

    print()
    print("=== Table 2: DRAM die area (mm^2) ===")
    for key, value in table["area"].items():
        print(f"  {key:<28}{value:>8.3f}  (paper: {PAPER_AREA[key]})")
    print(f"  {'total':<28}{table['total_area']:>8.3f}  (paper: {PAPER_TOTAL_AREA})")
    print("=== Table 2: activation energy (pJ) ===")
    for key, value in table["per_mat"].items():
        print(f"  {key:<28}{value:>8.3f}  (paper: {PAPER_PER_MAT[key]})")
    for key, value in table["per_bank"].items():
        print(f"  {key:<28}{value:>8.3f}  (paper: {PAPER_PER_BANK[key]})")
    print(f"  {'total per bank':<28}{table['total_pj']:>8.3f}  (paper: {PAPER_TOTAL_PJ})")

    for key, value in table["area"].items():
        assert value == pytest.approx(PAPER_AREA[key], abs=1e-3)
    assert table["total_area"] == pytest.approx(PAPER_TOTAL_AREA, abs=1e-3)
    for key, value in table["per_mat"].items():
        assert value == pytest.approx(PAPER_PER_MAT[key], abs=1e-3)
    for key, value in table["per_bank"].items():
        assert value == pytest.approx(PAPER_PER_BANK[key], abs=1e-3)
    assert table["total_pj"] == pytest.approx(PAPER_TOTAL_PJ, abs=1e-3)
