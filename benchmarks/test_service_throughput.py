"""Meta-benchmark: sweep-service caching — cold grid vs warm store.

Not a paper figure — this measures the content-addressed sweep
service (:mod:`repro.service`) on the same 24-point screening grid as
``test_sweep_throughput.py`` (6 schemes x 4 workloads, 512 KB LLC,
warmup-dominated points):

* **cold** — a fresh service root: every point is novel, scheduled on
  the warm-affinity pools, simulated, stored, journaled;
* **warm resubmit** — the service is torn down and rebuilt on the same
  root (exactly a restart): journal replay plus the content-addressed
  store serve the identical job without simulating anything.  The
  floor is 50x (``REPRO_SERVICE_SPEEDUP_FLOOR`` overrides), and the
  zero-compute claim is asserted on the scheduler's ``computed``
  counter, not timing;
* **50% overlap** — a different job sharing half its grid: exactly the
  novel half is computed (counters again), the rest is cache hits.

All three land in the ``_service`` section of
``BENCH_throughput.json`` (mirrored into ``BENCH_history.jsonl`` by
the benchmark conftest), and the cold rows are checked bit-identical
against the serial in-process sweep.
"""

import asyncio
import os
import time

from repro.sim.snapshot import SNAPSHOTS
from repro.sim.sweep import Sweep
from repro.service.jobs import JobManager

from bench_io import update_results

#: Same screening-fidelity grid as the sweep benchmark: warmup
#: dominates each point, which is exactly what the store amortizes.
EVENTS = 100
WARMUP = 12000
LLC_BYTES = 512 * 1024
POOLS = 2
WORKERS_PER_POOL = 1

SCHEMES = ["Baseline", "FGA", "Half-DRAM", "PRA", "SDS", "DBI+PRA"]
WORKLOADS = ["GUPS", "MIX1", "MIX2", "LinkedList"]
#: Overlap job: same schemes, half old workloads + as many new ones.
OVERLAP_WORKLOADS = ["GUPS", "MIX1", "MIX3", "MIX4"]

SPEC = {
    "events_per_core": EVENTS,
    "warmup_events_per_core": WARMUP,
    "llc_bytes": LLC_BYTES,
    "axes": {"scheme": SCHEMES, "workload": WORKLOADS},
}
OVERLAP_SPEC = {
    "events_per_core": EVENTS,
    "warmup_events_per_core": WARMUP,
    "llc_bytes": LLC_BYTES,
    "axes": {"scheme": SCHEMES, "workload": OVERLAP_WORKLOADS},
}


def _serial_rows():
    from repro.sim.config import CacheConfig, SystemConfig

    sweep = Sweep(
        events_per_core=EVENTS,
        base_config=SystemConfig(cache=CacheConfig(llc_bytes=LLC_BYTES)),
        warmup_events_per_core=WARMUP,
    )
    sweep.add_axis("scheme", SCHEMES)
    sweep.add_axis("workload", WORKLOADS)
    return sweep.run()


async def _timed_job(root, spec):
    """(seconds, final status, rows, scheduler stats) for one service
    lifetime submitting ``spec``; startup/replay is inside the timing —
    a resubmit pays journal replay plus store lookups, which is the
    cost being claimed."""
    manager = JobManager(
        root, pools=POOLS, workers_per_pool=WORKERS_PER_POOL
    )
    t0 = time.perf_counter()
    await manager.start()
    status = await manager.submit(spec)
    final = await manager.wait(status.job_id)
    elapsed = time.perf_counter() - t0
    rows = manager.rows(final.job_id)
    stats = manager.scheduler.stats()
    await manager.close()
    return elapsed, final, rows, stats


async def _overlap_job(root, spec):
    """Submit the overlap spec to a running service on ``root``."""
    manager = JobManager(
        root, pools=POOLS, workers_per_pool=WORKERS_PER_POOL
    )
    await manager.start()
    # start() resumed the journaled 24-point job; isolate the overlap
    # job's own compute in the scheduler counter.
    base_computed = manager.scheduler.computed
    t0 = time.perf_counter()
    status = await manager.submit(spec)
    final = await manager.wait(status.job_id)
    elapsed = time.perf_counter() - t0
    rows = manager.rows(final.job_id)
    computed = manager.scheduler.computed - base_computed
    await manager.close()
    return elapsed, final, rows, computed


def test_service_store_speedup(tmp_path):
    """Warm-store resubmit vs cold compute; overlap computes only novel."""
    floor = float(os.environ.get("REPRO_SERVICE_SPEEDUP_FLOOR", "50.0"))
    root = str(tmp_path / "service")
    points = len(SCHEMES) * len(WORKLOADS)

    serial = _serial_rows()

    # Cold arm: empty root, every point novel.
    SNAPSHOTS.clear()
    cold_s, cold_final, cold_rows, cold_stats = asyncio.run(
        _timed_job(root, SPEC)
    )
    assert cold_final.state == "done"
    assert (cold_final.cached, cold_final.computed) == (0, points)
    assert cold_stats["computed"] == points
    assert cold_rows == serial  # bit-identical to the serial oracle

    # Warm arm: a *restarted* service on the same root — replay the
    # journal, dedup against the store, simulate nothing.
    warm_s, warm_final, warm_rows, warm_stats = asyncio.run(
        _timed_job(root, SPEC)
    )
    assert warm_final.state == "done"
    assert warm_final.job_id == cold_final.job_id
    assert (warm_final.cached, warm_final.computed) == (points, 0)
    assert warm_stats["computed"] == 0  # zero recomputation, by counter
    assert warm_rows == cold_rows

    speedup = cold_s / warm_s

    # Overlap arm: a different job id sharing exactly half its grid.
    overlap_points = len(SCHEMES) * len(OVERLAP_WORKLOADS)
    novel = len(SCHEMES) * len(
        set(OVERLAP_WORKLOADS) - set(WORKLOADS)
    )
    overlap_s, overlap_final, overlap_rows, overlap_computed = asyncio.run(
        _overlap_job(root, OVERLAP_SPEC)
    )
    assert overlap_final.state == "done"
    assert overlap_final.job_id != cold_final.job_id
    assert overlap_final.cached == overlap_points - novel
    assert overlap_final.computed == novel
    assert overlap_computed == novel  # only the novel half simulated
    assert overlap_rows is not None and len(overlap_rows) == overlap_points

    print()
    print(f"=== Sweep service store ({points} points, {POOLS} pools) ===")
    print(f"  cold compute   {cold_s:7.2f} s  ({points / cold_s:6.1f} points/s)")
    print(f"  warm resubmit  {warm_s:7.3f} s  ({points / warm_s:6.1f} points/s)")
    print(f"  speedup        {speedup:7.1f}x  (floor {floor}x)")
    print(f"  50% overlap    {overlap_s:7.2f} s  "
          f"({overlap_final.cached} cached, {overlap_final.computed} computed)")

    update_results("_service", {
        "grid_points": points,
        "pools": POOLS,
        "workers_per_pool": WORKERS_PER_POOL,
        "events_per_core": EVENTS,
        "warmup_events_per_core": WARMUP,
        "llc_bytes": LLC_BYTES,
        "cold_seconds": round(cold_s, 3),
        "cold_points_per_second": round(points / cold_s, 2),
        "warm_resubmit_seconds": round(warm_s, 3),
        "warm_resubmit_speedup": round(speedup, 1),
        "warm_recomputed_points": warm_stats["computed"],
        "overlap_grid_points": overlap_points,
        "overlap_cached": overlap_final.cached,
        "overlap_computed": overlap_final.computed,
        "overlap_seconds": round(overlap_s, 3),
    })

    assert speedup >= floor
