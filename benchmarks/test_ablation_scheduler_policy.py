"""Ablation: request scheduler and row-buffer policy (methodology study).

The paper adopts FR-FCFS (ready row hits first) and evaluates two row
policies.  This bench quantifies both choices on a locality-heavy and a
random workload:

* FR-FCFS vs plain FCFS (no hit-first pass),
* relaxed close-page vs restricted close-page vs open-page.
"""

import pytest

from repro.controller.policies import RowPolicy
from repro.core.schemes import BASELINE, PRA
from repro.sim.config import ControllerConfig, SystemConfig
from repro.sim.system import simulate
from repro.workloads.mixes import workload
from conftest import BENCH_EVENTS

POLICIES = (RowPolicy.RELAXED_CLOSE, RowPolicy.RESTRICTED_CLOSE, RowPolicy.OPEN_PAGE)
WORKLOADS = ("libquantum", "GUPS")


def test_ablation_scheduler_policy(benchmark):
    def run_all():
        rows = {}
        for name in WORKLOADS:
            wl = workload(name)
            per = {}
            for sched in ("frfcfs", "fcfs"):
                cfg = SystemConfig(controller=ControllerConfig(scheduler=sched))
                r = simulate(cfg, wl, BENCH_EVENTS)
                per[f"sched:{sched}"] = {
                    "hit_rate": r.controller.total_hit_rate,
                    "cycles": r.runtime_cycles,
                    "power_mw": r.avg_power_mw,
                }
            for policy in POLICIES:
                cfg = SystemConfig(policy=policy)
                r = simulate(cfg, wl, BENCH_EVENTS)
                per[f"policy:{policy.value}"] = {
                    "hit_rate": r.controller.total_hit_rate,
                    "cycles": r.runtime_cycles,
                    "power_mw": r.avg_power_mw,
                }
            rows[name] = per
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("=== Ablation: scheduler and row policy (baseline scheme) ===")
    for name, per in rows.items():
        print(f"--- {name} ---")
        for variant, metrics in per.items():
            print(f"  {variant:<32}hit {metrics['hit_rate']:>6.1%}"
                  f"  cycles {metrics['cycles']:>9}"
                  f"  power {metrics['power_mw']:>7.0f} mW")

    for name, per in rows.items():
        frfcfs = per["sched:frfcfs"]
        fcfs = per["sched:fcfs"]
        # The hit-first pass can only help locality and performance.
        assert frfcfs["hit_rate"] >= fcfs["hit_rate"] - 1e-9, name
        assert frfcfs["cycles"] <= fcfs["cycles"] * 1.05, name

    # Locality workload: restricted close-page throws row hits away,
    # costing activations (visible as power) vs the relaxed policy.
    lq = rows["libquantum"]
    assert lq["policy:restricted-close-page"]["hit_rate"] == 0.0
    assert (
        lq["policy:relaxed-close-page"]["hit_rate"]
        > lq["policy:restricted-close-page"]["hit_rate"]
    )
    # Random workload: hits are rare under any policy.
    assert rows["GUPS"]["policy:relaxed-close-page"]["hit_rate"] < 0.1
