"""Read-latency distribution: why PRA barely hurts performance.

Supporting evidence for Figure 13(a): PRA's overheads (the +1 tCK mask
cycle, rare false hits, the occasional extra activation) land on
*writes*, which are posted; the read-latency distribution — what IPC
actually depends on — is nearly unchanged.
"""

import pytest

from repro.core.schemes import BASELINE, PRA
from repro.stats.report import format_histogram
from conftest import WORKLOAD_ORDER


def test_latency_distribution(benchmark, runner):
    def run_all():
        rows = {}
        for name in ("GUPS", "lbm", "MIX1"):
            base = runner.run(name, BASELINE).controller.reads.latency_hist
            pra = runner.run(name, PRA).controller.reads.latency_hist
            rows[name] = (base, pra)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("=== Read-latency percentiles (cycles), baseline vs PRA ===")
    print(f"{'workload':<10}{'p50 b/p':>16}{'p95 b/p':>16}{'p99 b/p':>18}")
    for name, (base, pra) in rows.items():
        print(
            f"{name:<10}"
            f"{base.percentile(50):>8.0f}{pra.percentile(50):>8.0f}"
            f"{base.percentile(95):>8.0f}{pra.percentile(95):>8.0f}"
            f"{base.percentile(99):>9.0f}{pra.percentile(99):>9.0f}"
        )
    print()
    base, pra = rows["GUPS"]
    print(format_histogram(base, title="GUPS baseline read latency"))

    for name, (base, pra) in rows.items():
        # Medians move by at most ~15% in either direction.
        assert pra.percentile(50) <= base.percentile(50) * 1.15, name
        assert pra.percentile(50) >= base.percentile(50) * 0.8, name
        # Tails stay the same order of magnitude.
        assert pra.percentile(99) <= base.percentile(99) * 1.6, name
        # Physical floor: a read cannot beat CAS + burst.
        assert base.min_value >= 15
        assert pra.min_value >= 15
