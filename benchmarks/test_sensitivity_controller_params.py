"""Sensitivity: the controller parameters the paper fixes.

Two methodology choices of Section 5.1.2 get a sensitivity sweep:

* the write-queue drain watermarks (48/16 of 64 entries),
* the row-hit cap (4 accesses per activation, after Minimalist
  Open-page).

The point is to show the paper's operating point is in a stable
region: PRA's saving is insensitive to reasonable watermark settings,
and the hit cap trades activation power against fairness as expected.
"""

import dataclasses

import pytest

from repro.core.schemes import BASELINE, PRA
from repro.sim.config import ControllerConfig, SystemConfig
from repro.sim.system import simulate
from repro.workloads.mixes import workload
from conftest import BENCH_EVENTS

WATERMARKS = ((48, 16), (32, 8), (56, 32))
HIT_CAPS = (1, 2, 4, 8, 16)


def test_sensitivity_controller_params(benchmark):
    def run_all():
        wl_w = workload("GUPS")
        wl_c = workload("libquantum")
        out = {"watermarks": {}, "hit_cap": {}}
        for hi, lo in WATERMARKS:
            ctrl = ControllerConfig(drain_high_watermark=hi, drain_low_watermark=lo)
            base = simulate(SystemConfig(scheme=BASELINE, controller=ctrl), wl_w, BENCH_EVENTS)
            pra = simulate(SystemConfig(scheme=PRA, controller=ctrl), wl_w, BENCH_EVENTS)
            out["watermarks"][(hi, lo)] = {
                "saving": 1 - pra.avg_power_mw / base.avg_power_mw,
                "read_p95": base.controller.reads.latency_hist.percentile(95),
            }
        for cap in HIT_CAPS:
            ctrl = ControllerConfig(row_hit_cap=cap)
            r = simulate(SystemConfig(scheme=BASELINE, controller=ctrl), wl_c, BENCH_EVENTS)
            out["hit_cap"][cap] = {
                "hit_rate": r.controller.total_hit_rate,
                "activations": r.controller.total_activations,
                "act_power": r.power.power_mw("act_pre"),
            }
        return out

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("=== Write-drain watermarks (GUPS): PRA saving stability ===")
    for (hi, lo), m in out["watermarks"].items():
        print(f"  hi/lo {hi}/{lo}: saving {m['saving']:.1%}, "
              f"baseline read p95 {m['read_p95']:.0f} cyc")
    print("=== Row-hit cap (libquantum, baseline) ===")
    for cap, m in out["hit_cap"].items():
        print(f"  cap {cap:>2}: hit rate {m['hit_rate']:.1%}, "
              f"activations {m['activations']}, ACT power {m['act_power']:.0f} mW")

    savings = [m["saving"] for m in out["watermarks"].values()]
    # PRA's saving is a property of the traffic, not the watermarks.
    assert max(savings) - min(savings) < 0.06
    assert all(s > 0.15 for s in savings)

    caps = out["hit_cap"]
    # More allowed hits => fewer activations (monotone trend).
    assert caps[1]["activations"] >= caps[4]["activations"] >= caps[16]["activations"]
    assert caps[1]["hit_rate"] < caps[4]["hit_rate"] <= caps[16]["hit_rate"] + 1e-9
    # The paper's cap of 4 already captures most of the locality win.
    gain_4 = caps[4]["hit_rate"] - caps[1]["hit_rate"]
    gain_16 = caps[16]["hit_rate"] - caps[4]["hit_rate"]
    assert gain_4 > gain_16
