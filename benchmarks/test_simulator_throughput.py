"""Meta-benchmark: simulation throughput of the platform itself.

Not a paper figure — this is the classic pytest-benchmark use, tracking
how many DRAM commands and memory requests per second the pure-Python
simulator sustains, so performance regressions in the hot scheduling
paths show up in CI.
"""

import pytest

from repro.core.schemes import PRA
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.system import System
from repro.workloads.mixes import workload

EVENTS = 1500
#: Cache-warmup events per core.  2000 is enough to wake up dirty
#: evictions (DRAM write traffic) in the 512 KiB LLC used here while
#: keeping the measured run dominated by the scheduling hot path.
WARMUP = 2000


def one_run():
    config = SystemConfig(scheme=PRA, cache=CacheConfig(llc_bytes=512 * 1024))
    system = System(config, workload("MIX2"), EVENTS, warmup_events_per_core=WARMUP)
    result = system.run()
    return result.controller.total_served, result.runtime_cycles


def test_simulator_throughput(benchmark):
    served, cycles = benchmark.pedantic(one_run, rounds=3, iterations=1)
    seconds = benchmark.stats["mean"]
    print()
    print("=== Simulator throughput (PRA, MIX2, 4 cores) ===")
    print(f"  requests served      {served}")
    print(f"  simulated cycles     {cycles}")
    print(f"  wall time            {seconds:.2f} s per run")
    print(f"  requests / second    {served / seconds:,.0f}")
    print(f"  sim cycles / second  {cycles / seconds:,.0f}")
    assert served > 0
    # Floor set from measured history (best-of-5 on a 1-core container):
    # seed engine ~4,700 req/s, event-engine rework ~8,300 req/s.  2000
    # leaves ~4x headroom for slower CI machines while still catching a
    # regression back to per-cycle-scan behavior.
    assert served / seconds > 2000
