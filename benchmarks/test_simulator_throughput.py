"""Meta-benchmark: simulation throughput of the platform itself.

Not a paper figure — this is the classic pytest-benchmark use, tracking
how many DRAM commands and memory requests per second the pure-Python
simulator sustains, so performance regressions in the hot scheduling
paths show up in CI.

Two tests:

* ``test_simulator_throughput`` — the historical PRA+MIX2 measurement
  with a hard req/s floor (the regression tripwire);
* ``test_throughput_per_scheme`` — Baseline / PRA / SDS side by side,
  written to ``BENCH_throughput.json`` so CI can archive the numbers
  per commit (schemes stress different controller paths: Baseline has
  no mask bookkeeping, PRA adds masked ACTs and false-hit recovery,
  SDS exercises the write-I/O scaling without partial rows);
* ``test_construction_fast_path`` — System construction time cold
  (reference path: per-event trace iterators + replayed warmup) versus
  snapshot-restored (precompiled blocks + warm-state copy-in), also
  archived in ``BENCH_throughput.json``.

All sections are written through :mod:`bench_io`, which stamps the
``_env`` provenance (engine, python/numpy, platform, git sha,
comparison fingerprint) into the snapshot; besides the best-of-N
headline (N = 3, stretched to 5 when the spread exceeds 15%), each
scheme records min/median/spread and ``reps_used`` so the trajectory
history captures measurement dispersion, not just the headline.
"""

import statistics
import time

import pytest

from bench_io import RESULTS_PATH, update_results  # noqa: F401 - re-exported
from repro.core.schemes import BASELINE, PRA, SDS
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.snapshot import SNAPSHOTS
from repro.sim.system import System
from repro.workloads.mixes import workload

EVENTS = 1500
#: Cache-warmup events per core.  2000 is enough to wake up dirty
#: evictions (DRAM write traffic) in the 512 KiB LLC used here while
#: keeping the measured run dominated by the scheduling hot path.
WARMUP = 2000

#: Per-scheme dispersion control: start at best-of-3 and take up to
#: two more reps when the spread exceeds the limit, so a noisy sample
#: window (measured 25%+ on SDS under a busy 1-core container) tightens
#: itself instead of polluting the trajectory history.
REPS_BASE = 3
REPS_MAX = 5
SPREAD_LIMIT_PCT = 15.0


def _spread_pct(rates):
    best, worst = max(rates), min(rates)
    return (best - worst) / worst * 100.0 if worst else 0.0


def one_run(scheme=PRA):
    config = SystemConfig(scheme=scheme, cache=CacheConfig(llc_bytes=512 * 1024))
    system = System(config, workload("MIX2"), EVENTS, warmup_events_per_core=WARMUP)
    result = system.run()
    return result.controller.total_served, result.runtime_cycles


def test_simulator_throughput(benchmark):
    served, cycles = benchmark.pedantic(one_run, rounds=3, iterations=1)
    seconds = benchmark.stats["mean"]
    print()
    print("=== Simulator throughput (PRA, MIX2, 4 cores) ===")
    print(f"  requests served      {served}")
    print(f"  simulated cycles     {cycles}")
    print(f"  wall time            {seconds:.2f} s per run")
    print(f"  requests / second    {served / seconds:,.0f}")
    print(f"  sim cycles / second  {cycles / seconds:,.0f}")
    assert served > 0
    # Floor set from measured history (best-of-N on a 1-core container):
    # seed engine ~4,700 req/s, event-engine rework ~8,300 req/s, the
    # array-backed core + burst-streak scheduling ~10,300 req/s, the
    # front-end fast path (array-backed caches + precompiled traces +
    # warm-state snapshots) ~12,000 req/s.  4000 leaves ~3x headroom
    # for slower CI machines while still catching a regression back to
    # per-cycle-scan behavior.
    assert served / seconds > 4000


@pytest.mark.parametrize("scheme", [BASELINE, PRA, SDS], ids=lambda s: s.name)
def test_throughput_per_scheme(scheme):
    """Best-of-N req/s per scheme (+ dispersion), archived as JSON.

    N adapts to the measurement: 3 reps normally, up to 5 when the
    best/min spread exceeds :data:`SPREAD_LIMIT_PCT` — extra reps are
    the cheap fix for a noisy window, and ``reps_used`` rides along so
    the history shows when a sample needed them.
    """
    rates = []
    served = cycles = 0
    while len(rates) < REPS_BASE or (
        _spread_pct(rates) > SPREAD_LIMIT_PCT and len(rates) < REPS_MAX
    ):
        t0 = time.perf_counter()
        served, cycles = one_run(scheme)
        elapsed = time.perf_counter() - t0
        rates.append(served / elapsed)
    best, worst = max(rates), min(rates)
    median = statistics.median(rates)
    spread_pct = _spread_pct(rates)
    print(f"\n  {scheme.name:<10} {best:,.0f} req/s best-of-{len(rates)} "
          f"(median {median:,.0f}, min {worst:,.0f}, "
          f"spread {spread_pct:.1f}%; {served} served, {cycles} cycles)")
    assert served > 0
    # Per-scheme tripwire, tighter than the main benchmark's: every
    # scheme sustains ~10-12k req/s on a 1-core container (the PRA
    # write path now rides the queue's per-row OR aggregates instead
    # of bucket walks), so 6000 still leaves ~2x headroom for slower
    # CI machines while catching any per-scheme regression.
    assert best > 6000

    # Dispersion rides along with the headline so the trajectory
    # history can tell a real regression from a noisy sample: a 25%
    # drop with a 3% spread is a regression; with a 40% spread it is a
    # flaky machine.
    update_results(scheme.name, {
        "requests_per_second_best": round(best),
        "requests_per_second_median": round(median),
        "requests_per_second_min": round(worst),
        "requests_per_second_spread_pct": round(spread_pct, 1),
        "reps_used": len(rates),
        "requests_served": served,
        "simulated_cycles": cycles,
        "events_per_core": EVENTS,
        "warmup_events_per_core": WARMUP,
        "workload": "MIX2",
    })


def _best_construction_ms(rounds, **system_kwargs):
    """Best-of-``rounds`` System construction wall time in ms."""
    config = SystemConfig(scheme=PRA, cache=CacheConfig(llc_bytes=512 * 1024))
    best = float("inf")
    system = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        system = System(
            config,
            workload("MIX2"),
            EVENTS,
            warmup_events_per_core=WARMUP,
            **system_kwargs,
        )
        best = min(best, (time.perf_counter() - t0) * 1000.0)
    return best, system


def test_construction_fast_path():
    """Snapshot-restored construction must beat cold warmup >= 5x.

    ``cold`` is the pre-fast-path construction: per-event trace
    iterators and a replayed warmup (the reference path every sweep
    point used to pay).  ``restored`` is the default path once a warm
    snapshot exists: precompiled blocks plus state copy-in.  Both land
    in ``BENCH_throughput.json`` alongside the intermediate
    ``blocks_cached`` variant (blocks reused, warmup still replayed).
    """
    SNAPSHOTS.clear()
    cold_ms, _ = _best_construction_ms(
        3, precompiled_traces=False, use_snapshots=False
    )
    # Prime blocks + snapshot, then measure the two fast variants.
    System(
        SystemConfig(scheme=PRA, cache=CacheConfig(llc_bytes=512 * 1024)),
        workload("MIX2"),
        EVENTS,
        warmup_events_per_core=WARMUP,
    )
    blocks_ms, _ = _best_construction_ms(3, use_snapshots=False)
    restored_ms, system = _best_construction_ms(3)
    assert system.snapshot_restored, "warm snapshot should have been reused"
    speedup = cold_ms / restored_ms
    print()
    print("=== System construction (PRA, MIX2, 4 cores) ===")
    print(f"  cold (reference path)     {cold_ms:8.2f} ms")
    print(f"  blocks cached, warmed     {blocks_ms:8.2f} ms")
    print(f"  snapshot restored         {restored_ms:8.2f} ms")
    print(f"  cold / restored           {speedup:8.1f} x")
    # Acceptance floor: warm-state restore must save at least 5x over
    # replaying warmup (measured ~20x on the dev container).
    assert speedup >= 5.0

    update_results("_construction", {
        "cold_ms_best_of_3": round(cold_ms, 3),
        "blocks_cached_ms_best_of_3": round(blocks_ms, 3),
        "snapshot_restored_ms_best_of_3": round(restored_ms, 3),
        "cold_over_restored": round(speedup, 2),
        "events_per_core": EVENTS,
        "warmup_events_per_core": WARMUP,
        "workload": "MIX2",
    })
