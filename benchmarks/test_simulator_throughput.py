"""Meta-benchmark: simulation throughput of the platform itself.

Not a paper figure — this is the classic pytest-benchmark use, tracking
how many DRAM commands and memory requests per second the pure-Python
simulator sustains, so performance regressions in the hot scheduling
paths show up in CI.

Two tests:

* ``test_simulator_throughput`` — the historical PRA+MIX2 measurement
  with a hard req/s floor (the regression tripwire);
* ``test_throughput_per_scheme`` — Baseline / PRA / SDS side by side,
  written to ``BENCH_throughput.json`` so CI can archive the numbers
  per commit (schemes stress different controller paths: Baseline has
  no mask bookkeeping, PRA adds masked ACTs and false-hit recovery,
  SDS exercises the write-I/O scaling without partial rows).
"""

import json
import time
from pathlib import Path

import pytest

from repro.core.schemes import BASELINE, PRA, SDS
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.system import System
from repro.workloads.mixes import workload

EVENTS = 1500
#: Cache-warmup events per core.  2000 is enough to wake up dirty
#: evictions (DRAM write traffic) in the 512 KiB LLC used here while
#: keeping the measured run dominated by the scheduling hot path.
WARMUP = 2000

#: Where the per-scheme results land (repo root; uploaded by CI).
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


def one_run(scheme=PRA):
    config = SystemConfig(scheme=scheme, cache=CacheConfig(llc_bytes=512 * 1024))
    system = System(config, workload("MIX2"), EVENTS, warmup_events_per_core=WARMUP)
    result = system.run()
    return result.controller.total_served, result.runtime_cycles


def test_simulator_throughput(benchmark):
    served, cycles = benchmark.pedantic(one_run, rounds=3, iterations=1)
    seconds = benchmark.stats["mean"]
    print()
    print("=== Simulator throughput (PRA, MIX2, 4 cores) ===")
    print(f"  requests served      {served}")
    print(f"  simulated cycles     {cycles}")
    print(f"  wall time            {seconds:.2f} s per run")
    print(f"  requests / second    {served / seconds:,.0f}")
    print(f"  sim cycles / second  {cycles / seconds:,.0f}")
    assert served > 0
    # Floor set from measured history (best-of-N on a 1-core container):
    # seed engine ~4,700 req/s, event-engine rework ~8,300 req/s, the
    # array-backed core + burst-streak scheduling ~10,300 req/s.  3000
    # leaves >3x headroom for slower CI machines while still catching a
    # regression back to per-cycle-scan behavior.
    assert served / seconds > 3000


@pytest.mark.parametrize("scheme", [BASELINE, PRA, SDS], ids=lambda s: s.name)
def test_throughput_per_scheme(scheme):
    """Best-of-3 req/s per scheme, accumulated into one JSON file."""
    best = 0.0
    served = cycles = 0
    for _ in range(3):
        t0 = time.perf_counter()
        served, cycles = one_run(scheme)
        elapsed = time.perf_counter() - t0
        best = max(best, served / elapsed)
    print(f"\n  {scheme.name:<10} {best:,.0f} req/s best-of-3 "
          f"({served} served, {cycles} cycles)")
    assert served > 0
    # Same tripwire as the main benchmark, per scheme.
    assert best > 3000

    results = {}
    if RESULTS_PATH.exists():
        try:
            results = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            results = {}
    results[scheme.name] = {
        "requests_per_second_best_of_3": round(best),
        "requests_served": served,
        "simulated_cycles": cycles,
        "events_per_core": EVENTS,
        "warmup_events_per_core": WARMUP,
        "workload": "MIX2",
    }
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
