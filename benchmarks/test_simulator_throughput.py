"""Meta-benchmark: simulation throughput of the platform itself.

Not a paper figure — this is the classic pytest-benchmark use, tracking
how many DRAM commands and memory requests per second the pure-Python
simulator sustains, so performance regressions in the hot scheduling
paths show up in CI.
"""

import pytest

from repro.core.schemes import PRA
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.system import System
from repro.workloads.mixes import workload

EVENTS = 1500


def one_run():
    config = SystemConfig(scheme=PRA, cache=CacheConfig(llc_bytes=512 * 1024))
    system = System(config, workload("MIX2"), EVENTS, warmup_events_per_core=6000)
    result = system.run()
    return result.controller.total_served, result.runtime_cycles


def test_simulator_throughput(benchmark):
    served, cycles = benchmark.pedantic(one_run, rounds=3, iterations=1)
    seconds = benchmark.stats["mean"]
    print()
    print("=== Simulator throughput (PRA, MIX2, 4 cores) ===")
    print(f"  requests served      {served}")
    print(f"  simulated cycles     {cycles}")
    print(f"  wall time            {seconds:.2f} s per run")
    print(f"  requests / second    {served / seconds:,.0f}")
    print(f"  sim cycles / second  {cycles / seconds:,.0f}")
    assert served > 0
    # Loose floor so CI catches order-of-magnitude regressions only.
    assert served / seconds > 300
