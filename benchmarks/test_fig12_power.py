"""Figure 12: normalized DRAM row-activation, I/O, and total power for
FGA, Half-DRAM and PRA across the 14 workloads.

Paper averages: PRA activation power 0.66 (up to 0.57), PRA I/O power
0.55 (up to 0.42), PRA total power 0.77 (up to 0.68); FGA and Half-DRAM
save more activation power than PRA (half-row for reads *and* writes)
but nothing on I/O, so PRA wins on total power.

Known divergence (see EXPERIMENTS.md): our trace-driven cores stress
bandwidth harder than the paper's gem5 cores, so FGA's runtime
inflation — and therefore its *average-power* deflation — is larger
than in the paper; the energy comparison (Fig. 13) is the
runtime-independent view.
"""

import pytest

from repro.core.schemes import FGA, HALF_DRAM, PRA
from conftest import WORKLOAD_ORDER
from repro.sim.runner import arithmetic_mean

SCHEMES = (FGA, HALF_DRAM, PRA)


def test_fig12_power(benchmark, runner):
    def run_all():
        rows = {}
        for name in WORKLOAD_ORDER:
            per_scheme = {}
            for scheme in SCHEMES:
                per_scheme[scheme.name] = {
                    "act": runner.normalized_power(name, scheme, category="act_pre"),
                    "io": _io_ratio(runner, name, scheme),
                    "total": runner.normalized_power(name, scheme),
                }
            rows[name] = per_scheme
        return rows

    def _io_ratio(runner, name, scheme):
        from repro.core.schemes import BASELINE

        r = runner.run(name, scheme)
        b = runner.run(name, BASELINE)
        io = r.power.power_mw("rd_io") + r.power.power_mw("wr_io")
        io_b = b.power.power_mw("rd_io") + b.power.power_mw("wr_io")
        return io / io_b

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    for metric, paper_pra in (("act", 0.66), ("io", 0.55), ("total", 0.77)):
        print()
        print(f"=== Figure 12 ({metric} power, normalized to baseline) ===")
        print(f"{'workload':<12}" + "".join(f"{s.name:>11}" for s in SCHEMES))
        for name, per_scheme in rows.items():
            print(f"{name:<12}" + "".join(
                f"{per_scheme[s.name][metric]:>11.3f}" for s in SCHEMES))
        means = {
            s.name: arithmetic_mean([rows[w][s.name][metric] for w in rows])
            for s in SCHEMES
        }
        print(f"{'average':<12}" + "".join(f"{means[s.name]:>11.3f}" for s in SCHEMES))
        if metric == "total":
            print(f"(paper averages: FGA 0.85, Half-DRAM 0.89, PRA {paper_pra})")

    pra_act = arithmetic_mean([rows[w]["PRA"]["act"] for w in rows])
    pra_io = arithmetic_mean([rows[w]["PRA"]["io"] for w in rows])
    pra_tot = arithmetic_mean([rows[w]["PRA"]["total"] for w in rows])
    half_act = arithmetic_mean([rows[w]["Half-DRAM"]["act"] for w in rows])
    half_io = arithmetic_mean([rows[w]["Half-DRAM"]["io"] for w in rows])
    half_tot = arithmetic_mean([rows[w]["Half-DRAM"]["total"] for w in rows])

    # PRA activation-power saving: ~34% average in the paper.
    assert 0.55 < pra_act < 0.80
    # Half-row schemes save *more* activation power than PRA.
    assert half_act < pra_act
    # PRA is the only scheme that cuts I/O power (Half-DRAM ~ 1.0).
    assert pra_io < 0.75
    assert half_io == pytest.approx(1.0, abs=0.08)
    # PRA total power saving in the paper's band, beating Half-DRAM.
    assert 0.68 < pra_tot < 0.85
    assert pra_tot < half_tot
    # Every workload saves total power with PRA.
    assert all(rows[w]["PRA"]["total"] < 1.0 for w in rows)
