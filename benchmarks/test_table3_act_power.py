"""Table 3 (power rows): per-granularity ACT power from Eq. 1-2.

Regenerates the ACT full..1/8-row power parameters by projecting the
Figure 9 energy-scaling factors onto the Eq. 1-2 activation power, and
checks the remaining Table 3 power parameters.
"""

import pytest

from repro.power.energy_model import ActivationEnergyModel
from repro.power.idd import pure_activation_power_mw
from repro.power.params import DDR3_1600_POWER, TABLE3_ACT_MW, IDDValues


def build_act_row():
    full = pure_activation_power_mw(IDDValues())
    model = ActivationEnergyModel()
    return {g: full * model.scaling_factor(2 * g) for g in range(1, 9)}


def test_table3_act_power(benchmark):
    projected = benchmark.pedantic(build_act_row, rounds=1, iterations=1)

    print()
    print("=== Table 3: ACT power by granularity (mW) ===")
    print(f"  {'granularity':<12}{'projected':>10}{'paper':>8}")
    for g in range(8, 0, -1):
        print(f"  {g}/8 row{'':<5}{projected[g]:>10.2f}{TABLE3_ACT_MW[g]:>8.1f}")

    # Eq. 1-2 reproduce the full-row value; scaled values within 0.5 mW.
    assert projected[8] == pytest.approx(22.2, abs=0.1)
    for g in range(1, 9):
        assert projected[g] == pytest.approx(TABLE3_ACT_MW[g], abs=0.5)

    # Static power rows of Table 3.
    p = DDR3_1600_POWER
    print("  static rows: PRE_STBY %.0f  PRE_PDN %.0f  REF %.0f  ACT_STBY %.0f" % (
        p.pre_stby_mw, p.pre_pdn_mw, p.ref_mw, p.act_stby_mw))
    print("               RD %.0f  WR %.0f  RD I/O %.1f  WR ODT %.1f  TERM %.1f/%.1f" % (
        p.rd_mw, p.wr_mw, p.rd_io_mw, p.wr_odt_mw, p.rd_term_mw, p.wr_term_mw))
    assert (p.pre_stby_mw, p.pre_pdn_mw, p.ref_mw, p.act_stby_mw) == (27, 18, 210, 42)
