"""Table 1: memory characteristics of the benchmarks.

Single-core baseline runs reproducing the three column groups: row
buffer hit rate (read/write), memory traffic split, and row-activation
split.  The key property PRA builds on — locality asymmetry between
reads and writes — must be visible.
"""

import pytest

from repro.core.schemes import BASELINE
from conftest import single_core
from repro.workloads.profiles import BENCHMARKS

PAPER_TABLE1 = {
    #           rdHit wrHit  rd%  wr%  rdAct wrAct
    "bzip2": (32, 1, 69, 31, 60, 40),
    "lbm": (29, 18, 57, 43, 54, 46),
    "libquantum": (73, 48, 66, 34, 50, 50),
    "mcf": (18, 1, 79, 21, 76, 24),
    "omnetpp": (47, 2, 71, 29, 57, 43),
    "em3d": (5, 1, 51, 49, 50, 50),
    "GUPS": (3, 1, 53, 47, 52, 48),
    "LinkedList": (4, 1, 65, 35, 64, 36),
}


def test_table1_memory_characteristics(benchmark, runner):
    def run_all():
        rows = {}
        for name in BENCHMARKS:
            c = runner.run(single_core(name), BASELINE).controller
            t, a = c.traffic_split(), c.activation_split()
            rows[name] = (
                100 * c.reads.hit_rate,
                100 * c.writes.hit_rate,
                100 * t["read"],
                100 * t["write"],
                100 * a["read"],
                100 * a["write"],
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("=== Table 1: memory characteristics (measured vs paper) ===")
    print(f"{'bench':<12}{'rdHit':>12}{'wrHit':>12}{'rd%':>12}{'wrAct%':>12}")
    for name, row in rows.items():
        p = PAPER_TABLE1[name]
        print(
            f"{name:<12}"
            f"{row[0]:>6.0f}({p[0]:>3})"
            f"{row[1]:>7.0f}({p[1]:>3})"
            f"{row[2]:>7.0f}({p[2]:>3})"
            f"{row[5]:>7.0f}({p[5]:>3})"
        )

    for name, row in rows.items():
        p = PAPER_TABLE1[name]
        assert abs(row[0] - p[0]) <= 12, f"{name} read hit rate off"
        assert abs(row[1] - p[1]) <= 10, f"{name} write hit rate off"
        assert abs(row[2] - p[2]) <= 6, f"{name} traffic split off"

    # Average asymmetry: reads hit far more often than writes.
    avg_rd = sum(r[0] for r in rows.values()) / len(rows)
    avg_wr = sum(r[1] for r in rows.values()) / len(rows)
    print(f"{'average':<12}{avg_rd:>6.0f}( 26){avg_wr:>7.0f}(  9)")
    assert avg_rd > 2 * avg_wr
