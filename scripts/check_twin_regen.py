#!/usr/bin/env python3
"""CI guard: reject one-sided twin-fingerprint regenerations.

``tests/data/twin_fingerprints.json`` pins the structural digests of
the declared oracle-twin pairs (see ``repro.analysis.twins``).  The
lint pass forces an editor of twin code to regenerate the file — this
guard closes the remaining loophole: regenerating the fingerprints
while the diff edits only ONE side of a two-sided pair means the twin
transcription was *not* mirrored, just re-pinned around.

Policy, per two-sided pair, when the diff touches the fingerprint
file:

* neither side touched  — fine (new pair added, note edited, …)
* both sides touched    — fine (the edit was mirrored)
* exactly one side      — REJECTED

Single-sided pins (compiled-API surfaces) have no mirror obligation
and are never rejected here.

Usage::

    python scripts/check_twin_regen.py --base origin/main
    python scripts/check_twin_regen.py --files a.py b.py ...  # tests

With ``--base``, the changed-file list comes from ``git diff
--name-only <base>...HEAD``; when the range cannot be resolved
(shallow clone, first commit) the guard passes vacuously rather than
blocking CI.  ``--files`` bypasses git entirely.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from typing import List, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis import twins  # noqa: E402  (path set up above)


def changed_files_from_git(base: str) -> Optional[List[str]]:
    """Repo-relative changed paths for ``base...HEAD``, or None."""
    try:
        completed = subprocess.run(
            ["git", "diff", "--name-only", f"{base}...HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=60,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return [line.strip() for line in completed.stdout.splitlines() if line.strip()]


def check(changed: Sequence[str]) -> List[str]:
    """Violation messages for one changed-file set (empty = pass)."""
    changed_set = {path.replace("\\", "/") for path in changed}
    if twins.FINGERPRINT_FILE not in changed_set:
        return []
    violations: List[str] = []
    for pair in twins.PAIRS:
        if pair.b is None:
            continue
        a_touched = pair.a.path in changed_set
        b_touched = pair.b.path in changed_set
        if a_touched == b_touched:
            continue
        touched, untouched = (
            (pair.a, pair.b) if a_touched else (pair.b, pair.a)
        )
        violations.append(
            f"pair '{pair.id}': fingerprints were regenerated and "
            f"{touched.label()} changed, but its twin "
            f"{untouched.label()} did not — mirror the edit on both "
            f"sides before re-pinning ({pair.note})"
        )
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_twin_regen",
        description="Reject twin-fingerprint regenerations whose diff "
        "touches only one side of a two-sided pair.",
    )
    parser.add_argument(
        "--base", default=None,
        help="git ref to diff HEAD against (e.g. origin/main)",
    )
    parser.add_argument(
        "--files", nargs="*", default=None,
        help="explicit changed-file list (bypasses git; for tests)",
    )
    args = parser.parse_args(argv)

    if args.files is not None:
        changed: Optional[List[str]] = list(args.files)
    elif args.base:
        changed = changed_files_from_git(args.base)
    else:
        parser.print_usage(sys.stderr)
        print("check_twin_regen: need --base or --files", file=sys.stderr)
        return 2

    if changed is None:
        print(
            "check_twin_regen: diff range unavailable (shallow clone or "
            "unknown base); passing vacuously",
            file=sys.stderr,
        )
        return 0

    violations = check(changed)
    for violation in violations:
        print(f"check_twin_regen: {violation}")
    if violations:
        print(
            f"check_twin_regen: {len(violations)} one-sided "
            f"regeneration(s) rejected",
            file=sys.stderr,
        )
        return 1
    print("check_twin_regen: ok", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
