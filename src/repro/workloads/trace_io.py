"""Trace file I/O: save synthetic traces, replay external ones.

Lets downstream users bring their own LLC-level memory traces instead
of the calibrated synthetic generators.  The format is a plain text
file, one event per line::

    # repro-trace v1
    <gap> <line_addr> <write_mask_hex> <no_fill:0|1>

Loads have ``write_mask`` 0.  Lines starting with ``#`` are comments.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Union

if TYPE_CHECKING:
    from repro.workloads.mixes import Workload

from repro.cpu.trace import TraceEvent

HEADER = "# repro-trace v1"


def save_trace(events: Iterable[TraceEvent], path: "Union[str, Path]") -> int:
    """Write events to ``path``; returns the number written."""
    count = 0
    with open(path, "w") as handle:
        handle.write(HEADER + "\n")
        for event in events:
            handle.write(
                f"{event.gap} {event.line_addr} {event.write_mask:02x} "
                f"{1 if event.no_fill else 0}\n"
            )
            count += 1
    return count


def _parse_line(line: str, lineno: int) -> TraceEvent:
    parts = line.split()
    if len(parts) != 4:
        raise ValueError(f"line {lineno}: expected 4 fields, got {len(parts)}")
    try:
        gap = int(parts[0])
        line_addr = int(parts[1])
        write_mask = int(parts[2], 16)
        no_fill = parts[3] == "1"
    except ValueError as exc:
        raise ValueError(f"line {lineno}: {exc}") from exc
    return TraceEvent(gap=gap, line_addr=line_addr, write_mask=write_mask,
                      no_fill=no_fill)


def load_trace(path: "Union[str, Path]") -> List[TraceEvent]:
    """Read a whole trace file into memory."""
    return list(iter_trace(path))


def iter_trace(path: "Union[str, Path]") -> Iterator[TraceEvent]:
    """Stream a trace file lazily (for long traces)."""
    with open(path) as handle:
        first = handle.readline().rstrip("\n")
        if first != HEADER:
            raise ValueError(f"not a repro trace file (header {first!r})")
        for lineno, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            yield _parse_line(line, lineno)


class FileTraceWorkload:
    """Adapter: one trace file per core, usable in place of profiles.

    Example::

        traces = FileTraceWorkload(["core0.trace", "core1.trace"])
        system = System(
            config,
            traces.as_workload("mytrace"),
            events_per_core=...,
            trace_overrides=traces.overrides(),
        )

    ``as_workload`` supplies the core names; ``overrides`` supplies the
    per-core event iterators that replace the synthetic generators.

    Each file is parsed once and the events cached, so building many
    Systems over the same traces (scheme comparisons, sweeps) re-reads
    nothing — ``overrides`` hands out fresh iterators over the cached
    lists.
    """

    def __init__(self, paths: "List[Union[str, Path]]") -> None:
        if not paths:
            raise ValueError("need at least one trace file")
        self.paths = [Path(p) for p in paths]
        for p in self.paths:
            if not p.exists():
                raise FileNotFoundError(str(p))
        self._cache: "List[Optional[List[TraceEvent]]]" = [None] * len(self.paths)

    def _parsed(self, index: int) -> "List[TraceEvent]":
        """Events of ``paths[index]``, parsed on first use then cached."""
        events = self._cache[index]
        if events is None:
            events = load_trace(self.paths[index])
            self._cache[index] = events
        return events

    def events(self, core_id: int) -> Iterator[TraceEvent]:
        return iter(self._parsed(core_id % len(self.paths)))

    @property
    def num_cores(self) -> int:
        return len(self.paths)

    def as_workload(self, name: str = "file-trace") -> "Workload":
        """Build a Workload naming each core after its trace file."""
        from types import SimpleNamespace

        from repro.workloads.mixes import Workload

        apps = tuple(SimpleNamespace(name=p.stem) for p in self.paths)
        return Workload(name=name, apps=apps)

    def overrides(self) -> "List[Iterator[TraceEvent]]":
        """Per-core event iterators for ``System(trace_overrides=...)``."""
        return [self.events(i) for i in range(self.num_cores)]
