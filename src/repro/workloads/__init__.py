"""Workload substrate: calibrated benchmark profiles, generators, mixes."""

from repro.workloads.mixes import (
    ALL_WORKLOADS,
    MIX1,
    MIX2,
    MIX3,
    MIX4,
    MIX5,
    MIX6,
    MIXES,
    Workload,
    homogeneous,
    workload,
)
from repro.workloads.phased import Phase, PhasedGenerator, phased_workload_name
from repro.workloads.profiles import BENCHMARKS, BenchmarkProfile, profile
from repro.workloads.synthetic import (
    REGION_LINES,
    TraceBlocks,
    TraceGenerator,
    compiled_trace,
    generate,
)
from repro.workloads.trace_io import (
    FileTraceWorkload,
    iter_trace,
    load_trace,
    save_trace,
)

__all__ = [
    "ALL_WORKLOADS",
    "BenchmarkProfile",
    "BENCHMARKS",
    "compiled_trace",
    "FileTraceWorkload",
    "generate",
    "iter_trace",
    "load_trace",
    "save_trace",
    "homogeneous",
    "MIX1",
    "MIX2",
    "MIX3",
    "MIX4",
    "MIX5",
    "MIX6",
    "MIXES",
    "Phase",
    "PhasedGenerator",
    "phased_workload_name",
    "profile",
    "REGION_LINES",
    "TraceBlocks",
    "TraceGenerator",
    "Workload",
    "workload",
]
