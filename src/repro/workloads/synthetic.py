"""Synthetic trace generation from benchmark profiles.

The generator maintains one sequential address stream per access kind
(loads, streaming stores, RMW updates).  A stream continues its current
run with geometric run lengths (row locality) and jumps uniformly
within the benchmark footprint otherwise.  RMW events emit a load
followed, a couple of instructions later, by a store to the same line
(the load fills the LLC, the store only dirties it — matching how
update-heavy kernels hit DRAM with a 1:1 read/write mix).

Everything is driven by a seeded ``random.Random``, so traces are
reproducible.

Two consumption paths exist:

* :class:`TraceGenerator` — the per-event iterator, kept as the
  reference/oracle;
* :class:`TraceBlocks` — the fast path: the same RNG decisions
  materialized in chunks into parallel arrays (gaps, line addresses,
  write masks, no-fill flags) and cached per (profile, seed, core) via
  :func:`compiled_trace`, so every scheme of a sweep replays the same
  arrays instead of regenerating an identical trace.  The block
  materializer calls the *same* bound helpers in the *same* order as
  ``__next__``, so the two paths consume one RNG stream identically —
  ``tests/test_trace_blocks.py`` holds them to that bit for bit.
"""

from __future__ import annotations

import hashlib
import random
import zlib
from array import array
from collections import OrderedDict
from typing import Iterator, List, Optional, Tuple

from repro.cpu.trace import TraceEvent
from repro.workloads.profiles import BenchmarkProfile

# Oracle-parity declaration enforced by reprolint: the precompiled
# ``TraceBlocks`` arrays are the fast path; the per-event
# ``TraceGenerator`` iterator in this module is the oracle.
REPRO_FAST_PATH = True
ORACLE_TWIN = "repro.workloads.synthetic.TraceGenerator"
ORACLE_TESTS = ("tests/test_trace_blocks.py",)

#: Line-address stride between per-core memory regions (1 GB).
REGION_LINES = 1 << 24


class _Stream:
    """Sequential-run address stream within a footprint."""

    def __init__(
        self, rng: random.Random, base: int, footprint: int, mean_run: float
    ) -> None:
        self.rng = rng
        self.base = base
        self.footprint = footprint
        self.mean_run = mean_run
        self.pos = base
        self.run_left = 0

    def next_line(self) -> int:
        if self.run_left > 0:
            self.run_left -= 1
            self.pos += 1
        else:
            self.pos = self.base + self.rng.randrange(self.footprint)
            if self.mean_run > 1.0:
                # Geometric run with the configured mean (>= 1).
                p = 1.0 / self.mean_run
                run = 1
                while self.rng.random() > p:
                    run += 1
                self.run_left = run - 1
            else:
                self.run_left = 0
        return self.pos


class TraceGenerator:
    """Infinite trace of :class:`TraceEvent` for one benchmark instance."""

    def __init__(
        self,
        profile: BenchmarkProfile,
        seed: int = 0,
        core_id: int = 0,
        region_lines: int = REGION_LINES,
    ) -> None:
        self.profile = profile
        # zlib.crc32 instead of hash(): str hashing is randomized per
        # process (PYTHONHASHSEED), which would break cross-process
        # reproducibility of every experiment.
        name_hash = zlib.crc32(profile.name.encode())
        self.rng = random.Random((seed << 8) ^ name_hash)
        base = core_id * region_lines
        self.loads = _Stream(self.rng, base, profile.footprint_lines, profile.read_run)
        self.stores = _Stream(
            self.rng, base + region_lines // 2, profile.footprint_lines, profile.write_run
        )
        self.rmw = _Stream(
            self.rng, base + region_lines // 4, profile.footprint_lines, profile.rmw_run
        )
        self._pending_store: Optional[TraceEvent] = None
        # Cumulative stream-choice thresholds.
        self._load_cut = profile.load_fraction
        self._store_cut = profile.load_fraction + profile.store_fraction
        self._dist = profile.dirty_word_dist

    # ------------------------------------------------------------------
    def _gap(self) -> int:
        mean = self.profile.mean_gap
        if mean <= 0:
            return 0
        return min(int(self.rng.expovariate(1.0 / mean)), int(mean * 8) + 1)

    def _dirty_mask(self) -> int:
        roll = self.rng.random()
        cumulative = 0.0
        words = 1
        for count, prob in self._dist:
            cumulative += prob
            if roll <= cumulative:
                words = count
                break
        else:
            words = self._dist[-1][0]
        if words >= 8:
            return 0xFF
        positions = self.rng.sample(range(8), words)
        mask = 0
        for bit in positions:
            mask |= 1 << bit
        return mask

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[TraceEvent]:
        return self

    def __next__(self) -> TraceEvent:
        if self._pending_store is not None:
            event, self._pending_store = self._pending_store, None
            return event
        roll = self.rng.random()
        if roll < self._load_cut:
            return TraceEvent(gap=self._gap(), line_addr=self.loads.next_line())
        if roll < self._store_cut:
            return TraceEvent(
                gap=self._gap(),
                line_addr=self.stores.next_line(),
                write_mask=self._dirty_mask(),
                no_fill=self.profile.store_no_fill,
            )
        # RMW: load now, store to the same line right after.
        line = self.rmw.next_line()
        self._pending_store = TraceEvent(
            gap=2, line_addr=line, write_mask=self._dirty_mask()
        )
        return TraceEvent(gap=self._gap(), line_addr=line)


def generate(
    profile: BenchmarkProfile,
    events: int,
    seed: int = 0,
    core_id: int = 0,
) -> List[TraceEvent]:
    """Materialize ``events`` trace events for tests and examples."""
    gen = TraceGenerator(profile, seed=seed, core_id=core_id)
    return [next(gen) for _ in range(events)]


class TraceBlocks:
    """Precompiled trace for one (profile, seed, core): parallel arrays.

    Events are materialized in chunks of :data:`BLOCK_EVENTS` into four
    parallel typed arrays — ``gaps``, ``addrs``, ``masks``, ``flags``
    (``array('i'/'q'/'B'/'b')``, ~14 bytes per event instead of one
    ``TraceEvent`` object) — by an inlined copy of the
    :class:`TraceGenerator` dispatch loop that reuses the generator's
    own RNG helpers, so the arrays are bit-identical to the iterator's
    output.  Cache warmup consumes the arrays directly (no
    :class:`TraceEvent` allocation at all); the timed run consumes them
    through :meth:`events`.  One instance is shared by every scheme of
    the same (profile, seed, core) via :func:`compiled_trace`.
    """

    #: Events materialized per growth step.
    BLOCK_EVENTS = 4096

    __slots__ = ("gaps", "addrs", "masks", "flags", "_gen", "_pending")

    def __init__(
        self,
        profile: BenchmarkProfile,
        seed: int = 0,
        core_id: int = 0,
        region_lines: int = REGION_LINES,
    ) -> None:
        """Wrap a fresh reference generator; arrays start empty."""
        self._gen = TraceGenerator(
            profile, seed=seed, core_id=core_id, region_lines=region_lines
        )
        self.gaps = array("i")
        self.addrs = array("q")
        self.masks = array("B")
        self.flags = array("b")
        #: Deferred RMW store carried across block boundaries.
        self._pending: Optional[Tuple[int, int, int]] = None

    def __len__(self) -> int:
        """Events materialized so far."""
        return len(self.gaps)

    @property
    def profile(self) -> BenchmarkProfile:
        """The benchmark profile driving the trace."""
        return self._gen.profile

    def ensure(self, count: int) -> None:
        """Materialize blocks until at least ``count`` events exist."""
        while len(self.gaps) < count:
            self._materialize_block()

    def _materialize_block(self) -> None:
        """Append one block of events to the parallel arrays.

        Mirrors ``TraceGenerator.__next__`` exactly — same RNG calls in
        the same order via the generator's own bound helpers — but
        appends plain ints instead of constructing ``TraceEvent``
        objects, and batches the loop over :data:`BLOCK_EVENTS` events.
        """
        gen = self._gen
        gaps, addrs = self.gaps, self.addrs
        masks, flags = self.masks, self.flags
        rng_random = gen.rng.random
        load_cut = gen._load_cut
        store_cut = gen._store_cut
        gap = gen._gap
        dirty_mask = gen._dirty_mask
        loads_next = gen.loads.next_line
        stores_next = gen.stores.next_line
        rmw_next = gen.rmw.next_line
        no_fill = gen.profile.store_no_fill
        pending = self._pending
        for _ in range(self.BLOCK_EVENTS):
            if pending is not None:
                g, a, m = pending
                pending = None
                gaps.append(g)
                addrs.append(a)
                masks.append(m)
                flags.append(0)
                continue
            roll = rng_random()
            if roll < load_cut:
                g = gap()
                a = loads_next()
                m = 0
                nf = 0
            elif roll < store_cut:
                g = gap()
                a = stores_next()
                m = dirty_mask()
                nf = 1 if no_fill else 0
            else:
                # RMW: load now, store to the same line right after.
                a = rmw_next()
                pending = (2, a, dirty_mask())
                g = gap()
                m = 0
                nf = 0
            gaps.append(g)
            addrs.append(a)
            masks.append(m)
            flags.append(nf)
        self._pending = pending

    def events(self, start: int, count: int) -> Iterator[TraceEvent]:
        """Yield ``count`` events from index ``start`` as trace events.

        The block twin of "skip ``start`` events, then islice
        ``count``" on the iterator; materialization happens lazily at
        the first pull.
        """
        self.ensure(start + count)
        gaps, addrs = self.gaps, self.addrs
        masks, flags = self.masks, self.flags
        for i in range(start, start + count):
            yield TraceEvent(
                gap=gaps[i],
                line_addr=addrs[i],
                write_mask=masks[i],
                no_fill=bool(flags[i]),
            )

    def digest(self, count: int) -> str:
        """SHA-256 over the first ``count`` events' arrays.

        Determinism guard: the digest must be identical no matter which
        process (or platform) materialized the blocks.
        """
        self.ensure(count)
        h = hashlib.sha256()
        for arr in (self.gaps, self.addrs, self.masks, self.flags):
            h.update(arr[:count].tobytes())
        return h.hexdigest()


#: In-process LRU of shared :class:`TraceBlocks`, keyed by
#: (profile, seed, core_id, region_lines).
_BLOCK_CACHE: "OrderedDict[tuple, TraceBlocks]" = OrderedDict()
_BLOCK_CACHE_CAPACITY = 64


def compiled_trace(
    profile: BenchmarkProfile,
    seed: int = 0,
    core_id: int = 0,
    region_lines: int = REGION_LINES,
) -> TraceBlocks:
    """Shared :class:`TraceBlocks` for (profile, seed, core, region).

    Every scheme of a sweep re-simulates the same workload/seed pair;
    the block cache makes them all replay one materialization instead
    of regenerating identical traces.  Bounded LRU (the blocks of a
    finished grid point age out once :data:`_BLOCK_CACHE_CAPACITY`
    newer keys arrive).
    """
    key = (profile, seed, core_id, region_lines)
    blocks = _BLOCK_CACHE.get(key)
    if blocks is None:
        blocks = TraceBlocks(
            profile, seed=seed, core_id=core_id, region_lines=region_lines
        )
        _BLOCK_CACHE[key] = blocks
        while len(_BLOCK_CACHE) > _BLOCK_CACHE_CAPACITY:
            _BLOCK_CACHE.popitem(last=False)
    else:
        _BLOCK_CACHE.move_to_end(key)
    return blocks


def blocks_digest(
    profile_name: str, seed: int, core_id: int, events: int
) -> str:
    """Digest of a freshly materialized block set (no cache involved).

    Module-level so spawned worker processes can import and call it —
    the cross-process determinism guard of ``tests/test_trace_blocks``
    compares these digests between spawn workers and the parent.
    """
    from repro.workloads.profiles import profile

    return TraceBlocks(profile(profile_name), seed=seed, core_id=core_id).digest(
        events
    )
