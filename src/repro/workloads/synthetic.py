"""Synthetic trace generation from benchmark profiles.

The generator maintains one sequential address stream per access kind
(loads, streaming stores, RMW updates).  A stream continues its current
run with geometric run lengths (row locality) and jumps uniformly
within the benchmark footprint otherwise.  RMW events emit a load
followed, a couple of instructions later, by a store to the same line
(the load fills the LLC, the store only dirties it — matching how
update-heavy kernels hit DRAM with a 1:1 read/write mix).

Everything is driven by a seeded ``random.Random``, so traces are
reproducible.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterator, List, Optional

from repro.cpu.trace import TraceEvent
from repro.workloads.profiles import BenchmarkProfile

#: Line-address stride between per-core memory regions (1 GB).
REGION_LINES = 1 << 24


class _Stream:
    """Sequential-run address stream within a footprint."""

    def __init__(
        self, rng: random.Random, base: int, footprint: int, mean_run: float
    ) -> None:
        self.rng = rng
        self.base = base
        self.footprint = footprint
        self.mean_run = mean_run
        self.pos = base
        self.run_left = 0

    def next_line(self) -> int:
        if self.run_left > 0:
            self.run_left -= 1
            self.pos += 1
        else:
            self.pos = self.base + self.rng.randrange(self.footprint)
            if self.mean_run > 1.0:
                # Geometric run with the configured mean (>= 1).
                p = 1.0 / self.mean_run
                run = 1
                while self.rng.random() > p:
                    run += 1
                self.run_left = run - 1
            else:
                self.run_left = 0
        return self.pos


class TraceGenerator:
    """Infinite trace of :class:`TraceEvent` for one benchmark instance."""

    def __init__(
        self,
        profile: BenchmarkProfile,
        seed: int = 0,
        core_id: int = 0,
        region_lines: int = REGION_LINES,
    ) -> None:
        self.profile = profile
        # zlib.crc32 instead of hash(): str hashing is randomized per
        # process (PYTHONHASHSEED), which would break cross-process
        # reproducibility of every experiment.
        name_hash = zlib.crc32(profile.name.encode())
        self.rng = random.Random((seed << 8) ^ name_hash)
        base = core_id * region_lines
        self.loads = _Stream(self.rng, base, profile.footprint_lines, profile.read_run)
        self.stores = _Stream(
            self.rng, base + region_lines // 2, profile.footprint_lines, profile.write_run
        )
        self.rmw = _Stream(
            self.rng, base + region_lines // 4, profile.footprint_lines, profile.rmw_run
        )
        self._pending_store: Optional[TraceEvent] = None
        # Cumulative stream-choice thresholds.
        self._load_cut = profile.load_fraction
        self._store_cut = profile.load_fraction + profile.store_fraction
        self._dist = profile.dirty_word_dist

    # ------------------------------------------------------------------
    def _gap(self) -> int:
        mean = self.profile.mean_gap
        if mean <= 0:
            return 0
        return min(int(self.rng.expovariate(1.0 / mean)), int(mean * 8) + 1)

    def _dirty_mask(self) -> int:
        roll = self.rng.random()
        cumulative = 0.0
        words = 1
        for count, prob in self._dist:
            cumulative += prob
            if roll <= cumulative:
                words = count
                break
        else:
            words = self._dist[-1][0]
        if words >= 8:
            return 0xFF
        positions = self.rng.sample(range(8), words)
        mask = 0
        for bit in positions:
            mask |= 1 << bit
        return mask

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[TraceEvent]:
        return self

    def __next__(self) -> TraceEvent:
        if self._pending_store is not None:
            event, self._pending_store = self._pending_store, None
            return event
        roll = self.rng.random()
        if roll < self._load_cut:
            return TraceEvent(gap=self._gap(), line_addr=self.loads.next_line())
        if roll < self._store_cut:
            return TraceEvent(
                gap=self._gap(),
                line_addr=self.stores.next_line(),
                write_mask=self._dirty_mask(),
                no_fill=self.profile.store_no_fill,
            )
        # RMW: load now, store to the same line right after.
        line = self.rmw.next_line()
        self._pending_store = TraceEvent(
            gap=2, line_addr=line, write_mask=self._dirty_mask()
        )
        return TraceEvent(gap=self._gap(), line_addr=line)


def generate(
    profile: BenchmarkProfile,
    events: int,
    seed: int = 0,
    core_id: int = 0,
) -> List[TraceEvent]:
    """Materialize ``events`` trace events for tests and examples."""
    gen = TraceGenerator(profile, seed=seed, core_id=core_id)
    return [next(gen) for _ in range(events)]
