"""Benchmark profiles calibrated to the paper's published measurements.

Each profile drives the synthetic trace generator so that the resulting
DRAM-level behaviour approximates the paper's characterization of the
real benchmark:

* Table 1 — read/write split of memory traffic and row activations,
  read vs. write row-buffer hit rates (the locality asymmetry PRA
  exploits);
* Figure 3 — the distribution of dirty words in evicted LLC lines
  (which becomes the PRA mask distribution).

Knobs:

* ``mean_gap`` — average non-memory instructions between LLC-level
  accesses (memory intensity);
* ``load/store/rmw`` fractions — pure loads, streaming stores and
  load-modify-store pairs (RMW keeps DRAM read:write near 1:1, as in
  GUPS-style update kernels);
* ``read_run`` / ``write_run`` — mean sequential run length of each
  address stream (row-buffer locality);
* ``footprint_lines`` — working-set size (LLC filtering);
* ``store_no_fill`` — streaming stores that skip the write-allocate
  fill (non-temporal);
* ``dirty_word_dist`` — Figure 3 histogram of dirty words per evicted
  line.

The numbers are synthetic calibrations, not measurements of the real
SPEC binaries; tests in ``tests/test_calibration.py`` check that the
emergent behaviour lands in the paper's bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generator parameters for one benchmark."""

    name: str
    mean_gap: float
    load_fraction: float
    store_fraction: float
    rmw_fraction: float
    read_run: float
    write_run: float
    footprint_lines: int
    dirty_word_dist: Tuple[Tuple[int, float], ...]
    store_no_fill: bool = False
    #: Run length of the RMW (update) stream; defaults to ``write_run``.
    rmw_run: float = 0.0

    def __post_init__(self) -> None:
        total = self.load_fraction + self.store_fraction + self.rmw_fraction
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: stream fractions must sum to 1, got {total}")
        dist_total = sum(p for _, p in self.dirty_word_dist)
        if abs(dist_total - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: dirty-word distribution must sum to 1")
        for words, _ in self.dirty_word_dist:
            if not 1 <= words <= 8:
                raise ValueError(f"{self.name}: dirty word count out of range: {words}")
        if self.mean_gap < 0 or self.read_run < 1 or self.write_run < 1:
            raise ValueError(f"{self.name}: invalid gap or run length")
        if self.rmw_run == 0.0:
            object.__setattr__(self, "rmw_run", self.write_run)
        if self.rmw_run < 1:
            raise ValueError(f"{self.name}: rmw_run must be >= 1")
        if self.footprint_lines < 1:
            raise ValueError(f"{self.name}: footprint must be positive")

    def mean_dirty_words(self) -> float:
        return sum(w * p for w, p in self.dirty_word_dist)


BZIP2 = BenchmarkProfile(
    name="bzip2",
    mean_gap=40.0,
    load_fraction=0.50,
    store_fraction=0.25,
    rmw_fraction=0.25,
    read_run=2.5,
    write_run=1.5,
    footprint_lines=1 << 20,
    dirty_word_dist=((1, 0.50), (2, 0.15), (3, 0.05), (4, 0.10), (8, 0.20)),
)

LBM = BenchmarkProfile(
    name="lbm",
    mean_gap=8.0,
    load_fraction=0.45,
    store_fraction=0.35,
    rmw_fraction=0.20,
    read_run=1.7,
    write_run=12.0,
    footprint_lines=1 << 21,
    dirty_word_dist=((1, 0.45), (2, 0.20), (4, 0.15), (8, 0.20)),
    store_no_fill=True,
    rmw_run=1.2,
)

LIBQUANTUM = BenchmarkProfile(
    name="libquantum",
    mean_gap=6.0,
    load_fraction=0.50,
    store_fraction=0.0,
    rmw_fraction=0.50,
    read_run=96.0,
    write_run=8.0,
    footprint_lines=1 << 21,
    dirty_word_dist=((1, 0.90), (2, 0.10)),
)

MCF = BenchmarkProfile(
    name="mcf",
    mean_gap=10.0,
    load_fraction=0.73,
    store_fraction=0.0,
    rmw_fraction=0.27,
    read_run=1.3,
    write_run=1.0,
    footprint_lines=1 << 22,
    dirty_word_dist=((1, 0.85), (2, 0.10), (4, 0.05)),
)

OMNETPP = BenchmarkProfile(
    name="omnetpp",
    mean_gap=18.0,
    load_fraction=0.59,
    store_fraction=0.0,
    rmw_fraction=0.41,
    read_run=18.0,
    write_run=1.0,
    footprint_lines=1 << 21,
    dirty_word_dist=((1, 0.80), (2, 0.15), (8, 0.05)),
)

EM3D = BenchmarkProfile(
    name="em3d",
    mean_gap=6.0,
    load_fraction=0.04,
    store_fraction=0.0,
    rmw_fraction=0.96,
    read_run=2.0,
    write_run=1.1,

    footprint_lines=1 << 22,
    dirty_word_dist=((1, 0.90), (2, 0.10)),
)

GUPS = BenchmarkProfile(
    name="GUPS",
    mean_gap=5.0,
    load_fraction=0.12,
    store_fraction=0.0,
    rmw_fraction=0.88,
    read_run=1.0,
    write_run=1.0,
    footprint_lines=1 << 22,
    dirty_word_dist=((1, 1.0),),
)

LINKEDLIST = BenchmarkProfile(
    name="LinkedList",
    mean_gap=6.0,
    load_fraction=0.46,
    store_fraction=0.0,
    rmw_fraction=0.54,
    read_run=1.0,
    write_run=1.0,
    footprint_lines=1 << 22,
    dirty_word_dist=((1, 1.0),),
)

#: The eight benchmarks of Table 1, in the paper's order.
BENCHMARKS: Dict[str, BenchmarkProfile] = {
    p.name: p
    for p in (BZIP2, LBM, LIBQUANTUM, MCF, OMNETPP, EM3D, GUPS, LINKEDLIST)
}


def profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name (case-insensitive)."""
    for key, prof in BENCHMARKS.items():
        if key.lower() == name.lower():
            return prof
    raise KeyError(f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}")
