"""Phased workloads: applications whose behaviour changes over time.

Real programs alternate phases (pointer-chasing setup, streaming
compute, random updates...).  A :class:`PhasedGenerator` concatenates
the synthetic generators of several profiles, switching every N events,
so schemes can be studied under time-varying dirty-word distributions
and localities — e.g. watching PRA's activation-granularity mix follow
the phases through an :class:`repro.sim.sampling.EpochSampler`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.cpu.trace import TraceEvent
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.synthetic import TraceGenerator


@dataclass(frozen=True)
class Phase:
    """One phase: a profile and how many events it lasts."""

    profile: BenchmarkProfile
    events: int

    def __post_init__(self) -> None:
        if self.events <= 0:
            raise ValueError("phase length must be positive")


class PhasedGenerator:
    """Infinite trace cycling through the given phases.

    Each phase keeps its own address streams (so returning to a phase
    resumes its working set), which matches how applications revisit
    data structures across phases.
    """

    def __init__(
        self,
        phases: "Sequence[Tuple[BenchmarkProfile, int] | Phase]",
        seed: int = 0,
        core_id: int = 0,
    ) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        self.phases: List[Phase] = [
            p if isinstance(p, Phase) else Phase(profile=p[0], events=p[1])
            for p in phases
        ]
        self._generators = [
            TraceGenerator(phase.profile, seed=seed + idx, core_id=core_id)
            for idx, phase in enumerate(self.phases)
        ]
        self._phase_idx = 0
        self._left_in_phase = self.phases[0].events
        #: Total phase switches performed (stats/tests).
        self.switches = 0

    @property
    def current_profile(self) -> BenchmarkProfile:
        return self.phases[self._phase_idx].profile

    def __iter__(self) -> Iterator[TraceEvent]:
        return self

    def __next__(self) -> TraceEvent:
        if self._left_in_phase <= 0:
            self._phase_idx = (self._phase_idx + 1) % len(self.phases)
            self._left_in_phase = self.phases[self._phase_idx].events
            self.switches += 1
        self._left_in_phase -= 1
        return next(self._generators[self._phase_idx])


def phased_workload_name(phases: "Sequence[Phase]") -> str:
    """Conventional display name, e.g. ``lbm>GUPS>lbm``."""
    return ">".join(p.profile.name for p in phases)
