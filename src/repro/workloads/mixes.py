"""Workload definitions: homogeneous 4-copy runs and MIX1-6 (Table 4).

The paper evaluates 14 multiprogrammed workloads on the 4-core CMP:
four identical instances of each of the eight benchmarks, plus the six
heterogeneous mixes of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.workloads.profiles import BENCHMARKS, BenchmarkProfile, profile


@dataclass(frozen=True)
class Workload:
    """A named multiprogrammed workload (one profile per core)."""

    name: str
    apps: Tuple[BenchmarkProfile, ...]

    @property
    def num_cores(self) -> int:
        return len(self.apps)

    @property
    def app_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.apps)


def homogeneous(name: str, copies: int = 4) -> Workload:
    """Four identical instances of a single benchmark."""
    prof = profile(name)
    return Workload(name=prof.name, apps=(prof,) * copies)


def _mix(name: str, *apps: str) -> Workload:
    return Workload(name=name, apps=tuple(profile(a) for a in apps))


MIX1 = _mix("MIX1", "bzip2", "lbm", "libquantum", "omnetpp")
MIX2 = _mix("MIX2", "mcf", "em3d", "GUPS", "LinkedList")
MIX3 = _mix("MIX3", "bzip2", "mcf", "lbm", "em3d")
MIX4 = _mix("MIX4", "libquantum", "GUPS", "omnetpp", "LinkedList")
MIX5 = _mix("MIX5", "bzip2", "LinkedList", "lbm", "GUPS")
MIX6 = _mix("MIX6", "libquantum", "em3d", "omnetpp", "mcf")

MIXES: Dict[str, Workload] = {
    m.name: m for m in (MIX1, MIX2, MIX3, MIX4, MIX5, MIX6)
}

#: The 14 workloads of the evaluation: 8 homogeneous + 6 mixes.
ALL_WORKLOADS: Dict[str, Workload] = {
    **{name: homogeneous(name) for name in BENCHMARKS},
    **MIXES,
}


def workload(name: str) -> Workload:
    """Look up any of the 14 evaluation workloads by name."""
    for key, value in ALL_WORKLOADS.items():
        if key.lower() == name.lower():
            return value
    raise KeyError(f"unknown workload {name!r}; known: {sorted(ALL_WORKLOADS)}")
