"""Engine selection: compiled (mypyc) vs interpreted simulation hot path.

The scheduler's hot path — :mod:`repro.dram.soa` (TimingCore),
:mod:`repro.controller.memctrl` (the FR-FCFS step loop),
:mod:`repro.dram.rank` and :mod:`repro.cache.set_assoc` — is strict-mypy
clean and compiles with mypyc into C extension modules (the
``.[compiled]`` extra; ``REPRO_COMPILED=1 python setup.py build_ext
--inplace``).  The compiled build is a drop-in replacement: extension
modules shadow the ``.py`` sources at the same import paths, so no call
site changes.  Its oracle twin is the interpreted source itself, pinned
bit-identical through the golden digests in
``tests/test_engine_identity.py``.

Selection mirrors the batch kernel's backend idiom
(``HAVE_NUMPY`` / ``REPRO_BATCH_BACKEND`` in :mod:`repro.dram.soa_batch`):

* ``REPRO_ENGINE=auto`` (default) — use the compiled modules when every
  one of them is installed, else the interpreted sources;
* ``REPRO_ENGINE=compiled`` — require the compiled modules; fall back to
  interpreted with a loud :class:`EngineFallbackWarning` when absent;
* ``REPRO_ENGINE=interpreted`` — force the ``.py`` sources even when
  extension modules are installed (a :data:`sys.meta_path` finder loads
  the listed modules through ``SourceFileLoader``, since an extension
  module otherwise shadows its source in the same directory);
* anything else raises ``ValueError`` (loud, like an unknown
  ``REPRO_BATCH_BACKEND``).

The choice is made once, at ``import repro`` time, *before* any hot
module is imported — :data:`ACTIVE_ENGINE` records it.  Detection probes
the filesystem directly instead of ``importlib.util.find_spec`` because
``find_spec`` imports parent packages, which would pull the hot modules
in ahead of the finder installation.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import json
import os
import sys
import warnings
from typing import Dict, List, Optional, Sequence

#: Dotted names of the modules the ``.[compiled]`` extra compiles with
#: mypyc.  This is the single source of truth: ``setup.py`` derives the
#: source list from it, and the reprolint registry's
#: ``COMPILED_MODULE_PATHS`` is test-pinned to mirror it
#: (``tests/test_engine.py``).
COMPILED_MODULES = (
    "repro.cache.set_assoc",
    "repro.controller.memctrl",
    "repro.dram.rank",
    "repro.dram.soa",
)

#: Valid ``REPRO_ENGINE`` values.
ENGINES = ("auto", "compiled", "interpreted")


class EngineFallbackWarning(RuntimeWarning):
    """``REPRO_ENGINE=compiled`` was requested but no compiled build is
    installed; the interpreted engine runs instead."""


def _package_root() -> str:
    """Directory of the ``repro`` package itself."""
    return os.path.dirname(os.path.abspath(__file__))


def _module_base(module: str, root: str) -> str:
    """Path of ``module`` inside the package, without extension."""
    return os.path.join(root, *module.split(".")[1:])


def compiled_source_paths(root: Optional[str] = None) -> List[str]:
    """``.py`` sources handed to ``mypycify`` by the setup.py shim."""
    root = root or _package_root()
    return [_module_base(module, root) + ".py" for module in COMPILED_MODULES]


def compiled_status(root: Optional[str] = None) -> Dict[str, bool]:
    """Per-module: does a compiled extension exist next to the source?"""
    root = root or _package_root()
    status: Dict[str, bool] = {}
    for module in COMPILED_MODULES:
        base = _module_base(module, root)
        status[module] = any(
            os.path.isfile(base + suffix)
            for suffix in importlib.machinery.EXTENSION_SUFFIXES
        )
    return status


def compiled_available(root: Optional[str] = None) -> bool:
    """True when *every* hot module has a compiled extension installed.

    All-or-nothing on purpose: a partial build would mix native and
    interpreted frames across one call chain, which is a performance
    trap and makes provenance (`_env.engine`) ambiguous.
    """
    return all(compiled_status(root).values())


def resolve_engine(
    requested: Optional[str] = None, available: Optional[bool] = None
) -> str:
    """Resolve the engine choice to ``"compiled"`` or ``"interpreted"``.

    ``requested`` defaults to ``$REPRO_ENGINE`` (then ``"auto"``);
    ``available`` defaults to :func:`compiled_available`.  Both are
    injectable so the decision table is unit-testable without builds.
    """
    if requested is None:
        requested = os.environ.get("REPRO_ENGINE", "auto") or "auto"
    if requested not in ENGINES:
        raise ValueError(
            f"REPRO_ENGINE={requested!r} is not a valid engine; "
            f"expected one of {', '.join(ENGINES)}"
        )
    if available is None:
        available = compiled_available()
    if requested == "compiled" and not available:
        warnings.warn(
            "REPRO_ENGINE=compiled requested but no compiled modules are "
            "installed (build them with: pip install '.[compiled]' && "
            "REPRO_COMPILED=1 python setup.py build_ext --inplace); "
            "falling back to the interpreted engine",
            EngineFallbackWarning,
            stacklevel=2,
        )
        return "interpreted"
    if requested == "auto":
        return "compiled" if available else "interpreted"
    return requested


class _SourceOnlyFinder:
    """Meta-path finder forcing ``.py`` loads for the hot modules.

    An extension module shadows a same-named source file in the same
    directory (``ExtensionFileLoader`` precedes ``SourceFileLoader`` on
    ``FileFinder``'s hook list), so ``REPRO_ENGINE=interpreted`` with a
    compiled build installed needs this finder ahead of the default
    path-based machinery.  Only the listed modules are intercepted.
    """

    def __init__(self, root: str, modules: Sequence[str] = COMPILED_MODULES):
        self._root = root
        self._modules = frozenset(modules)

    def find_spec(
        self,
        fullname: str,
        path: Optional[Sequence[str]] = None,
        target: Optional[object] = None,
    ) -> Optional[importlib.machinery.ModuleSpec]:
        if fullname not in self._modules:
            return None
        source = _module_base(fullname, self._root) + ".py"
        if not os.path.isfile(source):
            return None
        loader = importlib.machinery.SourceFileLoader(fullname, source)
        return importlib.util.spec_from_file_location(
            fullname, source, loader=loader
        )


def _bootstrap() -> str:
    """Pick the engine for this process (runs once, at ``import repro``)."""
    root = _package_root()
    engine = resolve_engine()
    if engine == "interpreted" and any(compiled_status(root).values()):
        if not any(isinstance(f, _SourceOnlyFinder) for f in sys.meta_path):
            sys.meta_path.insert(0, _SourceOnlyFinder(root))
    return engine


#: The engine this process runs on: ``"compiled"`` or ``"interpreted"``.
#: Fixed at ``import repro`` time; benchmark artifacts stamp it into
#: their ``_env`` provenance section.
ACTIVE_ENGINE: str = _bootstrap()


def active_engine() -> str:
    """The engine selected for this process."""
    return ACTIVE_ENGINE


def engine_env() -> Dict[str, object]:
    """Provenance of the current execution environment.

    Stamped as the ``_env`` section of ``BENCH_throughput.json`` (and
    thus into every ``BENCH_history.jsonl`` record), so throughput
    trajectories are only ever compared within one environment.  The
    ``fingerprint`` hashes the fields that determine comparability —
    engine, python/numpy major.minor, platform — and deliberately
    excludes the git sha (the whole point is comparing across commits)
    and the CPU count (benchmarks here are single-point serial).
    """
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except ImportError:
        numpy_version = None
    import platform

    python_version = platform.python_version()
    comparable = {
        "engine": ACTIVE_ENGINE,
        "python": ".".join(python_version.split(".")[:2]),
        "numpy": (
            ".".join(numpy_version.split(".")[:2]) if numpy_version else None
        ),
        "platform": f"{platform.system().lower()}-{platform.machine()}",
    }
    digest = hashlib.sha256(
        json.dumps(comparable, sort_keys=True).encode()
    ).hexdigest()
    return {
        "engine": ACTIVE_ENGINE,
        "python": python_version,
        "numpy": numpy_version,
        "platform": comparable["platform"],
        "cpus": os.cpu_count(),
        "fingerprint": digest[:16],
    }
