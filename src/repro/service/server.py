"""Minimal asyncio HTTP/1.1 front end for the sweep service.

Stdlib only — ``asyncio.start_server`` plus hand-rolled request
parsing, which the tiny API surface keeps honest:

* ``POST /sweeps`` — submit a sweep spec (JSON body); responds with
  the job status (content-addressed ``job_id``, triage counters);
* ``GET /sweeps/<job_id>`` — job status/progress;
* ``GET /sweeps/<job_id>/rows`` — completed job's rows in grid order;
* ``GET /sweeps/<job_id>/events`` — ``text/event-stream`` of
  completed points, replay-then-follow, ending with a ``done`` event;
* ``GET /results/<digest>`` — one cached point row;
* ``GET /stats`` / ``GET /healthz`` — observability.

Connections are ``Connection: close`` (one request each) except the
SSE stream, which stays open until the job finishes.  The server
binds ``port=0`` by default and exposes the kernel-chosen port via
:attr:`ServiceServer.port` (and optionally a ``port_file``), so tests
and CI never race for a fixed port.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
from typing import Any, Dict, Optional, Tuple

from repro.service.jobs import JobManager

_MAX_BODY = 8 << 20  # 8 MB: far beyond any plausible sweep spec


def _json_bytes(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True).encode()


class ServiceServer:
    """One :class:`JobManager` behind an asyncio socket server."""

    def __init__(
        self,
        manager: JobManager,
        host: str = "127.0.0.1",
        port: int = 0,
        port_file: Optional[str] = None,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self.port_file = port_file
        self._server: Optional["asyncio.base_events.Server"] = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the manager and begin accepting connections."""
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        if self.port_file is not None:
            # Atomic write: a watcher never reads a torn port number.
            parent = os.path.dirname(self.port_file) or "."
            fd, tmp = tempfile.mkstemp(dir=parent)
            with os.fdopen(fd, "w") as handle:
                handle.write(str(self.port))
            os.replace(tmp, self.port_file)

    async def serve_forever(self) -> None:
        """Accept connections until cancelled (starting if needed)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, drain the socket server, close the manager."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.close()

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        try:
            method, path, body = await self._read_request(reader)
        except (ValueError, asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        try:
            await self._route(method, path, body, writer)
        except ConnectionError:
            pass
        except Exception as exc:  # noqa: BLE001 - 500 instead of a hang
            try:
                await self._respond(writer, 500, {"error": str(exc)})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: "asyncio.StreamReader"
    ) -> Tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise ValueError(f"malformed request line {request_line!r}")
        method, path, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.lower() == "content-length":
                content_length = int(value.strip())
        if content_length > _MAX_BODY:
            raise ValueError("request body too large")
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, body

    # ------------------------------------------------------------------
    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        writer: "asyncio.StreamWriter",
    ) -> None:
        if method == "POST" and path == "/sweeps":
            try:
                payload = json.loads(body.decode() or "{}")
                status = await self.manager.submit(payload)
            except (ValueError, json.JSONDecodeError) as exc:
                await self._respond(writer, 400, {"error": str(exc)})
                return
            await self._respond(writer, 200, status.to_json())
            return
        if method == "GET" and path == "/healthz":
            await self._respond(writer, 200, {"ok": True})
            return
        if method == "GET" and path == "/stats":
            await self._respond(writer, 200, self.manager.stats())
            return
        if method == "GET" and path.startswith("/results/"):
            digest = path[len("/results/") :]
            try:
                row = self.manager.result(digest)
            except ValueError as exc:
                await self._respond(writer, 400, {"error": str(exc)})
                return
            if row is None:
                await self._respond(writer, 404, {"error": "unknown digest"})
            else:
                await self._respond(writer, 200, row)
            return
        if method == "GET" and path.startswith("/sweeps/"):
            rest = path[len("/sweeps/") :]
            job_id, _, tail = rest.partition("/")
            status = self.manager.status(job_id)
            if status is None:
                await self._respond(writer, 404, {"error": "unknown job"})
                return
            if tail == "":
                await self._respond(writer, 200, status.to_json())
                return
            if tail == "rows":
                rows = self.manager.rows(job_id)
                if rows is None:
                    await self._respond(
                        writer, 409, {"error": "job not complete", "state": status.state}
                    )
                else:
                    await self._respond(writer, 200, rows)
                return
            if tail == "events":
                await self._stream_events(writer, job_id)
                return
        await self._respond(writer, 404, {"error": f"no route for {method} {path}"})

    # ------------------------------------------------------------------
    async def _respond(
        self, writer: "asyncio.StreamWriter", status: int, payload: Any
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found", 409: "Conflict"}.get(
            status, "Error"
        )
        body = _json_bytes(payload)
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()

    async def _stream_events(
        self, writer: "asyncio.StreamWriter", job_id: str
    ) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode())
        await writer.drain()
        async for event in self.manager.events(job_id):
            enriched: Dict[str, Any] = dict(event)
            if event.get("kind") == "point":
                enriched["row"] = self.manager.result(event["digest"])
            writer.write(b"data: " + _json_bytes(enriched) + b"\n\n")
            await writer.drain()


async def run_service(
    root: str,
    host: str = "127.0.0.1",
    port: int = 0,
    pools: int = 2,
    workers_per_pool: int = 1,
    max_inflight: int = 2,
    port_file: Optional[str] = None,
) -> None:
    """Build and run a service until cancelled (the CLI entry point)."""
    manager = JobManager(root, pools=pools, workers_per_pool=workers_per_pool,
                         max_inflight=max_inflight)
    server = ServiceServer(manager, host=host, port=port, port_file=port_file)
    await server.start()
    try:
        await server.serve_forever()
    finally:
        await server.close()
