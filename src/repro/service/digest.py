"""Canonical sweep specs and content-addressed point digests.

Identity is the foundation of the service's caching: two clients that
describe the same grid point must produce the same digest, or the
shared store computes the point twice; two *different* points must
never collide, or one client silently gets the other's results.  Both
properties come from canonicalization:

* a **sweep spec** is normalized (defaults resolved, axes keyed by
  name) and serialized as canonical JSON — ``sort_keys=True``,
  compact separators, no floats introduced — so the job id
  (:func:`spec_job_id`) is independent of client-side key order;
* a **point digest** (:func:`point_digest`) hashes the canonical JSON
  of everything the simulation result depends on: the run length,
  seed, warmup, cache geometry, the point's axis values, and the warm
  fingerprint (:func:`repro.sim.snapshot.resolve_fingerprint`) of the
  exact configuration the point runs under.  The fingerprint folds in
  the workload's trace profiles, so renaming a workload without
  changing its behavior keeps the digest stable, while changing its
  access pattern invalidates it.

Digests use SHA-256 hex, never Python's builtin ``hash()`` (which is
salted per process) and never wallclock — the digest of a point is
the same on every host, in every process, on every day.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.snapshot import fingerprint_digest, resolve_fingerprint
from repro.sim.sweep import _KNOWN_AXES, SweepContext, _apply_point
from repro.workloads.mixes import workload as lookup_workload

#: Spec/point canonical-format markers; bump to invalidate stale
#: stores whenever result-affecting semantics change.
SPEC_FORMAT = "sweep-spec-v1"
POINT_FORMAT = "sweep-point-v1"


def canonical_json(payload: Any) -> str:
    """Canonical JSON text: sorted keys, compact, ASCII-safe."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _positive_int(value: Any, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer")
    if value < 1:
        raise ValueError(f"{name} must be positive")
    return value


@dataclass(frozen=True)
class SweepSpec:
    """A normalized, validated sweep request.

    ``axes`` preserves the submitted value order (it defines grid/row
    order) but is keyed canonically; :meth:`points` enumerates the
    grid in :data:`repro.sim.sweep._KNOWN_AXES` axis order, so two
    spec dicts that differ only in JSON key order yield identical
    point sequences — and therefore identical job ids.
    """

    events_per_core: int
    seed: int
    warmup_events_per_core: Optional[int]
    llc_bytes: Optional[int]
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...]

    # ------------------------------------------------------------------
    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        """Validate and normalize a client-submitted spec dict."""
        if not isinstance(payload, Mapping):
            raise ValueError("sweep spec must be a JSON object")
        # Canonical forms round-trip (the journal replays them); a
        # mismatched marker means a store from other semantics.
        marker = payload.get("format", SPEC_FORMAT)
        if marker != SPEC_FORMAT:
            raise ValueError(
                f"spec format {marker!r} not supported (want {SPEC_FORMAT!r})"
            )
        known = {"format", "events_per_core", "seed",
                 "warmup_events_per_core", "llc_bytes", "axes"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        events = _positive_int(payload.get("events_per_core", 4000), "events_per_core")
        seed = payload.get("seed", 1)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ValueError("seed must be an integer")
        warmup = payload.get("warmup_events_per_core")
        if warmup is not None:
            warmup = _positive_int(warmup, "warmup_events_per_core")
        llc = payload.get("llc_bytes")
        if llc is not None:
            llc = _positive_int(llc, "llc_bytes")
        raw_axes = payload.get("axes")
        if not isinstance(raw_axes, Mapping) or not raw_axes:
            raise ValueError("spec needs a non-empty 'axes' object")
        axes: List[Tuple[str, Tuple[Any, ...]]] = []
        for name in _KNOWN_AXES:  # canonical axis order
            if name not in raw_axes:
                continue
            values = raw_axes[name]
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(f"axis {name!r} needs a non-empty list")
            if len(set(map(repr, values))) != len(values):
                raise ValueError(f"axis {name!r} has duplicate values")
            axes.append((name, tuple(values)))
        unknown_axes = set(raw_axes) - set(_KNOWN_AXES)
        if unknown_axes:
            raise ValueError(
                f"unknown axes {sorted(unknown_axes)}; known: {_KNOWN_AXES}"
            )
        if "workload" not in dict(axes):
            raise ValueError("a 'workload' axis is required")
        spec = cls(
            events_per_core=events,
            seed=seed,
            warmup_events_per_core=warmup,
            llc_bytes=llc,
            axes=tuple(axes),
        )
        spec.validate_axis_values()
        return spec

    def validate_axis_values(self) -> None:
        """Resolve every axis value eagerly so bad specs fail at submit."""
        for point in self.points():
            try:
                _apply_point(self.base_config(), point)
                lookup_workload(point["workload"])
            except (KeyError, ValueError) as exc:
                raise ValueError(f"invalid grid point {point}: {exc}") from exc

    # ------------------------------------------------------------------
    def canonical(self) -> Dict[str, Any]:
        """The normalized spec as a plain JSON-able dict."""
        return {
            "format": SPEC_FORMAT,
            "events_per_core": self.events_per_core,
            "seed": self.seed,
            "warmup_events_per_core": self.warmup_events_per_core,
            "llc_bytes": self.llc_bytes,
            "axes": {name: list(values) for name, values in self.axes},
        }

    def job_id(self) -> str:
        """Content-addressed job id: resubmitting the same spec (from
        any client, in any key order) lands on the same job."""
        return _sha256(canonical_json(self.canonical()))

    # ------------------------------------------------------------------
    def base_config(self) -> SystemConfig:
        if self.llc_bytes is None:
            return SystemConfig()
        return SystemConfig(cache=CacheConfig(llc_bytes=self.llc_bytes))

    def context(self, snapshot_dir: Optional[str] = None) -> SweepContext:
        """The grid-wide invariants, as the sweep/pool layers expect."""
        return (
            self.base_config(),
            self.events_per_core,
            self.seed,
            self.warmup_events_per_core,
            snapshot_dir,
        )

    def points(self) -> List[Dict[str, Any]]:
        """The grid as point dicts, in canonical grid order."""
        names = [name for name, _ in self.axes]
        value_lists = [values for _, values in self.axes]
        return [
            dict(zip(names, combo)) for combo in itertools.product(*value_lists)
        ]

    def group_key(self, point: Dict[str, Any]) -> tuple:
        """Warm fingerprint of one point (pool-affinity grouping)."""
        config = _apply_point(self.base_config(), point)
        workload = lookup_workload(point["workload"])
        return resolve_fingerprint(
            config, workload, self.seed, self.warmup_events_per_core
        )

    def point_digest(self, point: Dict[str, Any]) -> str:
        """Content digest of one grid point under this spec."""
        return point_digest(
            events_per_core=self.events_per_core,
            seed=self.seed,
            warmup_events_per_core=self.warmup_events_per_core,
            llc_bytes=self.llc_bytes,
            point=point,
            fingerprint=self.group_key(point),
        )


def point_digest(
    events_per_core: int,
    seed: int,
    warmup_events_per_core: Optional[int],
    llc_bytes: Optional[int],
    point: Mapping[str, Any],
    fingerprint: tuple,
) -> str:
    """SHA-256 digest of everything a point's result depends on.

    The fingerprint digest (stable across processes — see
    :func:`repro.sim.snapshot.fingerprint_digest`) folds in the
    workload's trace profiles and cache geometry, so behavioral
    changes invalidate cached results even under an unchanged name.
    """
    payload = {
        "format": POINT_FORMAT,
        "events_per_core": events_per_core,
        "seed": seed,
        "warmup_events_per_core": warmup_events_per_core,
        "llc_bytes": llc_bytes,
        "point": dict(sorted(point.items())),
        "warm_fingerprint": fingerprint_digest(fingerprint),
    }
    return _sha256(canonical_json(payload))


def spec_job_id(payload: Mapping[str, Any]) -> str:
    """Job id of a raw spec dict (parse + canonicalize + hash)."""
    return SweepSpec.from_payload(payload).job_id()
