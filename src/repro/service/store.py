"""Content-addressed result store: one atomic JSON file per point.

The store is the service's source of truth for completed work.  Keys
are point digests (:mod:`repro.service.digest`); values are the
flattened result rows :func:`repro.sim.sweep._run_point` produces.
Writes go through a temp file + ``os.replace`` so a reader (or a
service restarted after SIGKILL) never observes a half-written row —
a row either exists completely or not at all, which is what lets the
journal treat "result file present" as "point done" during resume.

Concurrent writers of the same digest are harmless by construction:
both compute the same deterministic row and the last rename wins with
identical bytes.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional

_SUFFIX = ".json"


def _is_digest(digest: str) -> bool:
    return (
        len(digest) == 64
        and all(c in "0123456789abcdef" for c in digest)
    )


class ResultStore:
    """Directory of ``<digest>.json`` result rows with atomic writes."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------------
    def _path(self, digest: str) -> str:
        if not _is_digest(digest):
            raise ValueError(f"malformed digest {digest!r}")
        return os.path.join(self.root, digest + _SUFFIX)

    def has(self, digest: str) -> bool:
        return os.path.exists(self._path(digest))

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The stored row, or ``None`` when the point is not cached."""
        try:
            with open(self._path(digest)) as handle:
                row: Dict[str, Any] = json.load(handle)
        except FileNotFoundError:
            return None
        return row

    def put(self, digest: str, row: Dict[str, Any]) -> None:
        """Atomically persist one result row under its digest."""
        path = self._path(digest)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(row, handle, sort_keys=True, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def digests(self) -> List[str]:
        """All stored digests, sorted (stable for status reporting)."""
        return sorted(
            name[: -len(_SUFFIX)]
            for name in os.listdir(self.root)
            if name.endswith(_SUFFIX) and _is_digest(name[: -len(_SUFFIX)])
        )

    def __len__(self) -> int:
        return len(self.digests())
