"""Long-running sweep service: job API, result cache, checkpoint/resume.

The paper's evaluation is a grid of (scheme, workload, policy, ...)
simulations, and real experiment campaigns submit many *overlapping*
grids: fig12/fig13/fig15 share most of their points, and every client
exploring a new scheme re-runs the same baselines.  This package turns
the in-process sweep machinery (:mod:`repro.sim.sweep`,
:class:`repro.sim.pool.SimPool`) into a shared, restartable service:

* :mod:`repro.service.digest` — canonical sweep specs and
  content-addressed per-point digests (the cache key);
* :mod:`repro.service.store` — atomic on-disk result store keyed by
  point digest;
* :mod:`repro.service.journal` — append-only JSONL job journal for
  kill/resume;
* :mod:`repro.service.scheduler` — warm-affinity sharding of
  fingerprint groups across several :class:`~repro.sim.pool.SimPool`
  instances;
* :mod:`repro.service.jobs` — the job manager tying the above
  together (cross-job dedup of stored *and* in-flight points);
* :mod:`repro.service.server` — stdlib-``asyncio`` HTTP/JSON API with
  server-sent streaming of completed points;
* :mod:`repro.service.client` — stdlib client for the API
  (``repro submit`` / ``repro results``).

No dependencies beyond the standard library, by design.
"""

from repro.service.digest import SweepSpec, point_digest, spec_job_id
from repro.service.jobs import JobManager, JobStatus
from repro.service.journal import Journal
from repro.service.scheduler import PoolScheduler
from repro.service.store import ResultStore

__all__ = [
    "SweepSpec",
    "point_digest",
    "spec_job_id",
    "JobManager",
    "JobStatus",
    "Journal",
    "PoolScheduler",
    "ResultStore",
]
