"""Stdlib client for the sweep service (``repro submit`` / tests).

Wraps ``http.client`` — no third-party HTTP stack — with the three
things a client of the service actually does: submit a spec, wait for
the job, and pull results.  Waiting polls the status endpoint with a
bounded number of fixed sleeps rather than reading a clock: the
deadline is expressed in polls, so client code stays free of
wallclock reads (the repo's determinism lint) while remaining
interruptible and bounded.

The SSE feed is exposed as a plain generator over decoded event
payloads (:meth:`ServiceClient.events`), which is also the cheapest
way to consume results as they complete: each ``point`` event carries
its result row, so a streaming client needs no follow-up fetches.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Mapping, Optional


class ServiceError(RuntimeError):
    """Non-2xx response from the service."""

    def __init__(self, status: int, payload: Any) -> None:
        super().__init__(f"service returned {status}: {payload}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """One service endpoint; connections are per-request."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8032,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
        expect: int = 200,
    ) -> Any:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body).encode()
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read().decode() or "null")
            if response.status != expect:
                raise ServiceError(response.status, data)
            return data
        finally:
            conn.close()

    # ------------------------------------------------------------------
    def submit(self, spec: Mapping[str, Any]) -> Dict[str, Any]:
        """POST the sweep spec; returns the job status dict."""
        result: Dict[str, Any] = self._request("POST", "/sweeps", body=spec)
        return result

    def status(self, job_id: str) -> Dict[str, Any]:
        result: Dict[str, Any] = self._request("GET", f"/sweeps/{job_id}")
        return result

    def rows(self, job_id: str) -> List[Dict[str, Any]]:
        result: List[Dict[str, Any]] = self._request("GET", f"/sweeps/{job_id}/rows")
        return result

    def result(self, digest: str) -> Dict[str, Any]:
        row: Dict[str, Any] = self._request("GET", f"/results/{digest}")
        return row

    def stats(self) -> Dict[str, Any]:
        result: Dict[str, Any] = self._request("GET", "/stats")
        return result

    def healthy(self) -> bool:
        """True if the service answers ``/healthz`` (False on any error)."""
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (OSError, ServiceError):
            return False

    # ------------------------------------------------------------------
    def wait(
        self, job_id: str, poll_interval: float = 0.05, max_polls: int = 12000
    ) -> Dict[str, Any]:
        """Poll until the job leaves ``running``; returns final status.

        The deadline is ``max_polls * poll_interval`` seconds (the
        default allows ten minutes), counted in polls instead of read
        from a clock.
        """
        for _ in range(max_polls):
            status = self.status(job_id)
            if status["state"] != "running":
                return status
            time.sleep(poll_interval)
        raise TimeoutError(f"job {job_id} still running after {max_polls} polls")

    # ------------------------------------------------------------------
    def events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream the job's SSE feed as decoded event dicts.

        Yields each completed point (with its result row inlined) and
        finally the ``done`` event, then returns.
        """
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/sweeps/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                raise ServiceError(response.status, response.read().decode())
            while True:
                line = response.fp.readline()
                if not line:
                    return
                line = line.strip()
                if not line.startswith(b"data: "):
                    continue
                event: Dict[str, Any] = json.loads(line[len(b"data: ") :].decode())
                yield event
                if event.get("kind") == "done":
                    return
        finally:
            conn.close()
