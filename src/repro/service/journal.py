"""Append-only JSONL job journal: what was asked, what finished.

The journal makes the service killable: every accepted job and every
completed point appends one line, flushed immediately, so a service
SIGKILLed mid-sweep can replay the file on startup and resume each
incomplete job from exactly the points that remain.  Three line kinds:

* ``{"kind": "job", "job_id": ..., "spec": {...}}`` — a job was
  accepted (spec is the canonical form, so replay re-derives the same
  point digests);
* ``{"kind": "point", "digest": ...}`` — a point's result row was
  durably written to the store (the store write happens *first*, so a
  journaled point always has its result file);
* ``{"kind": "done", "job_id": ...}`` — every point of the job was
  complete at write time.

Lines carry no timestamps or host identity: replaying a journal is a
pure function of its contents, and journals produced by identical
request sequences are byte-identical (modulo OS write interleaving of
concurrent jobs).  Truncated final lines (the SIGKILL case) are
skipped on replay — the worst outcome is recomputing one point whose
store write completed but whose journal line did not.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, TextIO


@dataclass
class JournalState:
    """Replayed journal contents."""

    #: job_id -> canonical spec dict, in first-seen order.
    jobs: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Digests of points whose results were durably stored.
    completed: Set[str] = field(default_factory=set)
    #: Jobs that reached their "done" line.
    done_jobs: Set[str] = field(default_factory=set)


class Journal:
    """One append-only JSONL file; safe to replay after SIGKILL."""

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle: Optional[TextIO] = None

    # ------------------------------------------------------------------
    def replay(self) -> JournalState:
        """Parse the journal; tolerant of a torn final line."""
        state = JournalState()
        try:
            with open(self.path) as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return state
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a kill mid-append
            kind = entry.get("kind")
            if kind == "job":
                state.jobs[entry["job_id"]] = entry["spec"]
            elif kind == "point":
                state.completed.add(entry["digest"])
            elif kind == "done":
                state.done_jobs.add(entry["job_id"])
        return state

    # ------------------------------------------------------------------
    def _append(self, entry: Dict[str, Any]) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a")
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()

    def record_job(self, job_id: str, spec: Dict[str, Any]) -> None:
        self._append({"kind": "job", "job_id": job_id, "spec": spec})

    def record_point(self, digest: str) -> None:
        self._append({"kind": "point", "digest": digest})

    def record_done(self, job_id: str) -> None:
        self._append({"kind": "done", "job_id": job_id})

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
