"""Job manager: content-addressed dedup, journaling, kill/resume.

One :class:`JobManager` owns the service's state: the result store,
the journal, the pool scheduler, and the live job table.  Every grid
point a job needs goes through a three-way triage at submit time:

* **stored** — the point's digest already has a result file: served
  from cache, zero compute;
* **in flight** — another job is computing the digest right now: this
  job subscribes to the same completion instead of scheduling a
  duplicate (cross-job coalescing);
* **novel** — scheduled on the warm-affinity scheduler; on completion
  the row is written to the store *first*, then journaled, then every
  subscribed job is notified.

Jobs are content-addressed too (:meth:`SweepSpec.job_id`), so
re-submitting a spec — same client retrying, different client asking
the same question, or a client resuming after the service was
SIGKILLed and restarted — always lands on the one canonical job.  On
startup the manager replays the journal: finished jobs come back
queryable, unfinished jobs resume computing exactly the points whose
results are not yet on disk.

Per-job counters (``cached`` / ``coalesced`` / ``computed``) make the
dedup behavior observable — the benchmarks and the kill/resume test
assert on them rather than on timing alone.
"""

from __future__ import annotations

import asyncio
import os
from dataclasses import dataclass, field
from typing import (
    Any,
    AsyncIterator,
    Dict,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.service.digest import SweepSpec
from repro.service.journal import Journal
from repro.service.scheduler import PoolScheduler
from repro.service.store import ResultStore

# Oracle-parity declaration enforced by reprolint: rows served by the
# service (computed via pools, cached, coalesced or resumed) must be
# bit-identical to running the same points serially in-process.
REPRO_FAST_PATH = True
ORACLE_TWIN = "repro.sim.sweep._run_point"
ORACLE_TESTS = ("tests/test_service.py", "tests/test_service_resume.py")


@dataclass
class JobStatus:
    """Snapshot of one job, JSON-able for the HTTP API."""

    job_id: str
    state: str  # "running" | "done" | "failed"
    total: int
    completed: int
    cached: int
    coalesced: int
    computed: int
    points: List[str]
    error: Optional[str] = None

    def to_json(self) -> Dict[str, Any]:
        """Plain-dict form for HTTP responses and test assertions."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "total": self.total,
            "completed": self.completed,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "computed": self.computed,
            "points": self.points,
            "error": self.error,
        }


@dataclass
class _Job:
    """Internal live-job record."""

    job_id: str
    spec: SweepSpec
    digests: List[str]  # grid order
    pending: Set[str] = field(default_factory=set)
    cached: int = 0
    coalesced: int = 0
    computed: int = 0
    error: Optional[str] = None
    done: "asyncio.Event" = field(default_factory=asyncio.Event)
    #: Append-only event log for SSE subscribers: each entry is one
    #: completed point ({"digest", "index"}) or the terminal marker.
    events: List[Dict[str, Any]] = field(default_factory=list)
    changed: "asyncio.Condition" = field(default_factory=asyncio.Condition)

    @property
    def state(self) -> str:
        if self.error is not None:
            return "failed"
        return "done" if not self.pending else "running"

    def status(self) -> JobStatus:
        return JobStatus(
            job_id=self.job_id,
            state=self.state,
            total=len(self.digests),
            completed=len(self.digests) - len(self.pending),
            cached=self.cached,
            coalesced=self.coalesced,
            computed=self.computed,
            points=list(self.digests),
            error=self.error,
        )


class JobManager:
    """The service core: submit sweeps, dedup points, survive kills."""

    def __init__(
        self,
        root: str,
        pools: int = 2,
        workers_per_pool: int = 1,
        max_inflight: int = 2,
        start_method: Optional[str] = None,
    ) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.store = ResultStore(os.path.join(root, "results"))
        self.journal = Journal(os.path.join(root, "journal.jsonl"))
        self.scheduler = PoolScheduler(
            pools=pools,
            workers_per_pool=workers_per_pool,
            max_inflight=max_inflight,
            start_method=start_method,
            snapshot_dir=os.path.join(root, "snapshots"),
        )
        self._jobs: Dict[str, _Job] = {}
        #: digest -> subscribers awaiting the in-flight computation:
        #: (job, index-within-job) pairs notified on completion.
        self._inflight: Dict[str, List[Tuple[_Job, int]]] = {}
        self._tasks: Set["asyncio.Task[None]"] = set()
        self._started = False

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the scheduler and resume unfinished journaled jobs."""
        if self._started:
            return
        self._started = True
        await self.scheduler.start()
        state = self.journal.replay()
        for spec_payload in state.jobs.values():
            # Resubmitting through the normal path re-derives digests,
            # serves journaled/stored points from cache, and schedules
            # only what is genuinely missing — resume *is* dedup.
            await self.submit(spec_payload)

    async def close(self) -> None:
        """Cancel in-flight computations and shut the scheduler down."""
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        await self.scheduler.close()
        self.journal.close()
        self._started = False

    # ------------------------------------------------------------------
    async def submit(
        self, payload: Union[Mapping[str, Any], SweepSpec]
    ) -> JobStatus:
        """Accept (or re-attach to) a sweep; returns its status."""
        if not self._started:
            raise RuntimeError("manager not started")
        spec = (
            payload
            if isinstance(payload, SweepSpec)
            else SweepSpec.from_payload(payload)
        )
        job_id = spec.job_id()
        existing = self._jobs.get(job_id)
        if existing is not None:
            return existing.status()
        points = spec.points()
        digests = [spec.point_digest(point) for point in points]
        job = _Job(job_id=job_id, spec=spec, digests=digests, pending=set(digests))
        self._jobs[job_id] = job
        self.journal.record_job(job_id, spec.canonical())
        for index, (point, digest) in enumerate(zip(points, digests)):
            if self.store.has(digest):
                job.cached += 1
                await self._complete_point(job, index, digest)
            elif digest in self._inflight:
                job.coalesced += 1
                self._inflight[digest].append((job, index))
            else:
                job.computed += 1
                self._inflight[digest] = [(job, index)]
                task = asyncio.create_task(self._compute(spec, point, digest))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        if not job.pending:
            await self._finish(job)
        return job.status()

    # ------------------------------------------------------------------
    async def _compute(
        self, spec: SweepSpec, point: Dict[str, Any], digest: str
    ) -> None:
        """Compute one novel point and fan its completion out."""
        try:
            row = await self.scheduler.submit(spec, point)
            self.store.put(digest, row)
            self.journal.record_point(digest)
        except asyncio.CancelledError:
            self._inflight.pop(digest, None)
            raise
        except Exception as exc:  # noqa: BLE001 - fail the waiting jobs
            subscribers = self._inflight.pop(digest, [])
            for job, _index in subscribers:
                job.error = f"point {digest[:12]}: {exc}"
                await self._finish(job)
            return
        subscribers = self._inflight.pop(digest, [])
        for job, index in subscribers:
            await self._complete_point(job, index, digest)
            if not job.pending:
                await self._finish(job)

    async def _complete_point(self, job: _Job, index: int, digest: str) -> None:
        job.pending.discard(digest)
        async with job.changed:
            job.events.append({"kind": "point", "index": index, "digest": digest})
            job.changed.notify_all()

    async def _finish(self, job: _Job) -> None:
        if job.done.is_set():
            return
        job.done.set()
        if job.error is None:
            self.journal.record_done(job.job_id)
        async with job.changed:
            job.events.append(
                {"kind": "done", "job_id": job.job_id, "state": job.state}
            )
            job.changed.notify_all()

    # ------------------------------------------------------------------
    def status(self, job_id: str) -> Optional[JobStatus]:
        job = self._jobs.get(job_id)
        return None if job is None else job.status()

    def result(self, digest: str) -> Optional[Dict[str, Any]]:
        return self.store.get(digest)

    def rows(self, job_id: str) -> Optional[List[Dict[str, Any]]]:
        """The job's result rows in grid order (``None`` if unknown or
        not yet complete)."""
        job = self._jobs.get(job_id)
        if job is None or job.pending or job.error is not None:
            return None
        rows = [self.store.get(digest) for digest in job.digests]
        if any(row is None for row in rows):
            return None
        return [row for row in rows if row is not None]

    async def wait(self, job_id: str) -> JobStatus:
        """Block until the job finishes (or fails); returns final status."""
        job = self._jobs[job_id]
        await job.done.wait()
        return job.status()

    async def events(
        self, job_id: str, start: int = 0
    ) -> AsyncIterator[Dict[str, Any]]:
        """Async iterator over a job's completion events.

        Replays buffered events from ``start``, then live-follows until
        the terminal ``done`` event — the feed behind the SSE endpoint.
        """
        job = self._jobs[job_id]
        cursor = start
        while True:
            async with job.changed:
                while cursor >= len(job.events):
                    await job.changed.wait()
                batch = job.events[cursor:]
                cursor = len(job.events)
            for event in batch:
                yield event
                if event.get("kind") == "done":
                    return

    def stats(self) -> Dict[str, Any]:
        """Service-wide counters for ``/stats`` (jobs, store, dedup)."""
        return {
            "jobs": len(self._jobs),
            "stored": len(self.store),
            "inflight": len(self._inflight),
            "scheduler": self.scheduler.stats(),
        }
