"""Warm-affinity scheduling of grid points across several SimPools.

The single-host stand-in for multi-host sharding: the service owns
``pools`` independent :class:`~repro.sim.pool.SimPool` instances and
routes every grid point by its warm fingerprint
(:func:`~repro.sim.snapshot.resolve_fingerprint`).  Placement is
**sticky**: the first point of a fingerprint picks the least-loaded
pool, and every later point of that fingerprint — from any job, any
client, any day of the service's life — lands on the same pool, so
each fingerprint's warm snapshot is built (and kept hot) in exactly
one pool's workers instead of being duplicated across all of them.

Each pool is drained by one ``asyncio`` worker task: it collects
whatever points are queued, groups them by sweep context (points of
different jobs can share a batch only if their grid-wide invariants
match), and runs each batch in a thread via
:meth:`SimPool.stream` — results resolve per-point futures as they
stream back, so a big job's early points unblock subscribers while
later points still compute.

A pool that breaks (task error tears it down, or its restart budget
is exhausted) is recreated lazily on its next batch; the affinity map
is kept, so the replacement pool re-warms the same fingerprints.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.sim.pool import SimPool
from repro.sim.snapshot import fingerprint_digest
from repro.sim.sweep import _run_point
from repro.service.digest import SweepSpec

#: Batch-invariant identity: points whose key matches may share one
#: pool batch (and therefore one shipped SweepContext).
_CtxKey = Tuple[int, int, Optional[int], Optional[int]]


@dataclass
class _Item:
    """One queued grid point awaiting computation."""

    ctx_key: _CtxKey
    spec: SweepSpec
    point: Dict[str, Any]
    fp_key: tuple
    future: "asyncio.Future[Dict[str, Any]]" = field(repr=False)


class PoolScheduler:
    """Shards fingerprint groups across pools; sticky warm affinity."""

    def __init__(
        self,
        pools: int = 2,
        workers_per_pool: int = 1,
        max_inflight: int = 2,
        start_method: Optional[str] = None,
        snapshot_dir: Optional[str] = None,
    ) -> None:
        if pools < 1:
            raise ValueError("pools must be a positive integer")
        self.pool_count = pools
        self.workers_per_pool = workers_per_pool
        self.max_inflight = max_inflight
        self.start_method = start_method
        self.snapshot_dir = snapshot_dir
        self._pools: List[Optional[SimPool]] = [None] * pools
        self._queues: List["asyncio.Queue[_Item]"] = []
        self._workers: List["asyncio.Task[None]"] = []
        #: fingerprint digest -> pool index (sticky placement).
        self.affinity: Dict[str, int] = {}
        #: Lifetime points routed to each pool (placement load proxy).
        self.assigned: List[int] = [0] * pools
        #: Points actually simulated by this scheduler (not cache hits).
        self.computed = 0
        #: Broken pools replaced over the scheduler's lifetime.
        self.pool_rebuilds = 0
        self._started = False

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Create the per-pool queues and drain tasks (idempotent)."""
        if self._started:
            return
        self._started = True
        for idx in range(self.pool_count):
            self._queues.append(asyncio.Queue())
            self._workers.append(
                asyncio.create_task(self._drain(idx), name=f"pool-{idx}")
            )

    async def close(self) -> None:
        """Cancel drain tasks and tear down the pools."""
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._workers = []
        pools = [pool for pool in self._pools if pool is not None]
        self._pools = [None] * self.pool_count
        for pool in pools:
            if not pool.closed:
                await asyncio.to_thread(pool.close)
        self._started = False
        self._queues = []

    # ------------------------------------------------------------------
    def _place(self, fp_digest: str) -> int:
        """Sticky pool index for a fingerprint; least-loaded for new."""
        idx = self.affinity.get(fp_digest)
        if idx is None:
            idx = min(range(self.pool_count), key=lambda i: (self.assigned[i], i))
            self.affinity[fp_digest] = idx
        return idx

    def _ensure_pool(self, idx: int) -> SimPool:
        pool = self._pools[idx]
        if pool is None or pool.closed:
            if pool is not None:
                self.pool_rebuilds += 1
            pool = SimPool(
                workers=self.workers_per_pool,
                max_inflight=self.max_inflight,
                start_method=self.start_method,
            )
            self._pools[idx] = pool
        return pool

    # ------------------------------------------------------------------
    async def submit(
        self, spec: SweepSpec, point: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Compute one grid point on its affinity pool; returns the row."""
        if not self._started:
            raise RuntimeError("scheduler not started")
        fp_key = spec.group_key(point)
        idx = self._place(fingerprint_digest(fp_key))
        self.assigned[idx] += 1
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        ctx_key: _CtxKey = (
            spec.events_per_core,
            spec.seed,
            spec.warmup_events_per_core,
            spec.llc_bytes,
        )
        await self._queues[idx].put(_Item(ctx_key, spec, point, fp_key, future))
        return await future

    # ------------------------------------------------------------------
    async def _drain(self, idx: int) -> None:
        """Per-pool loop: batch queued points, run, resolve futures."""
        queue = self._queues[idx]
        while True:
            items = [await queue.get()]
            while not queue.empty():
                items.append(queue.get_nowait())
            batches: "OrderedDict[_CtxKey, List[_Item]]" = OrderedDict()
            for item in items:
                batches.setdefault(item.ctx_key, []).append(item)
            for batch in batches.values():
                await self._run_batch(idx, batch)

    async def _run_batch(self, idx: int, batch: List[_Item]) -> None:
        """One SimPool batch in a thread; per-row future resolution."""
        pool = self._ensure_pool(idx)
        loop = asyncio.get_running_loop()
        ctx = batch[0].spec.context(self.snapshot_dir)
        points = [item.point for item in batch]
        group_keys: List[Hashable] = [item.fp_key for item in batch]

        def resolve(item: _Item, row: Dict[str, Any]) -> None:
            # Counted here (on the loop thread, before any waiter can
            # observe the row) so stats never lag behind job completion.
            self.computed += 1
            if not item.future.done():
                item.future.set_result(row)

        def reject(item: _Item, exc: BaseException) -> None:
            if not item.future.done():
                item.future.set_exception(exc)

        def run() -> None:
            offset = 0
            try:
                for row in pool.stream(
                    _run_point, points, shared=ctx, group_keys=group_keys
                ):
                    loop.call_soon_threadsafe(resolve, batch[offset], row)
                    offset += 1
            except BaseException as exc:
                for item in batch[offset:]:
                    loop.call_soon_threadsafe(reject, item, exc)

        await asyncio.to_thread(run)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Placement and liveness counters for /stats and tests."""
        live = [pool for pool in self._pools if pool is not None and not pool.closed]
        return {
            "pools": self.pool_count,
            "workers_per_pool": self.workers_per_pool,
            "live_pools": len(live),
            "assigned": list(self.assigned),
            "fingerprints": len(self.affinity),
            "computed": self.computed,
            "pool_rebuilds": self.pool_rebuilds,
            "worker_restarts": sum(pool.worker_restarts for pool in live),
        }
