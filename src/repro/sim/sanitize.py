"""Opt-in runtime sanitizer: differential checking on real runs.

The static layer (:mod:`repro.analysis`) proves properties of the
*source*; this module checks properties of a *run*.  Enabled by the
``REPRO_SANITIZE=1`` environment variable or
``SystemConfig(sanitize=True)``, it makes three additions to an
otherwise unmodified simulation:

* every :class:`~repro.controller.memctrl.ChannelController` gets a
  :class:`~repro.dram.protocol.ProtocolChecker` attached, so each
  issued DRAM command is replayed through the independent DDR3 rule
  set (a :class:`~repro.dram.protocol.ProtocolViolation` aborts the
  run at the offending command);
* a warm-snapshot restore is verified against the capture-time state
  digest (:func:`verify_restore`) — restore-by-copy must be
  bit-identical to the warmup it replaces;
* at finalize time, cheap cross-subsystem invariants are asserted
  (:func:`check_finalize`): the power accountant's event counters must
  agree exactly with the controllers' served/activation/refresh
  counters (energy conservation — every burst and ACT accounted once),
  per-category energies must be finite and non-negative, and the
  timing-core arrays must be self-consistent (valid PRA masks,
  ``open_bits`` mirroring ``open_row``).

Everything here is *off* the hot path unless sanitizing: with the
sanitizer disabled no checker is attached and no digest is computed,
so the throughput floor is untouched.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Optional

from repro.dram.geometry import FULL_MASK
from repro.dram.protocol import ProtocolChecker

if TYPE_CHECKING:
    from repro.cache.hierarchy import CacheHierarchy
    from repro.controller.stats import ControllerStats
    from repro.sim.config import SystemConfig
    from repro.sim.snapshot import WarmSnapshot
    from repro.sim.system import System


class SanitizerError(Exception):
    """A runtime invariant failed under ``REPRO_SANITIZE=1``.

    A plain ``Exception`` subclass (not ``AssertionError``) so failures
    survive ``python -O``.
    """


_FALSY = frozenset({"", "0", "false", "False", "no"})


def sanitize_enabled(config: "Optional[SystemConfig]" = None) -> bool:
    """Resolve the sanitizer switch: config field or environment."""
    if config is not None and getattr(config, "sanitize", False):
        return True
    return os.environ.get("REPRO_SANITIZE", "") not in _FALSY


def attach_checkers(system: "System") -> None:
    """Give every controller of ``system`` a protocol checker."""
    scheme = system.config.scheme
    for ctrl in system.controllers:
        if ctrl.protocol_checker is None:
            ctrl.protocol_checker = ProtocolChecker(
                system.config.timing,
                relax_act_constraints=scheme.relax_act_constraints,
            )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SanitizerError(message)


def verify_restore(hierarchy: "CacheHierarchy", snapshot: "WarmSnapshot") -> None:
    """Check a restored hierarchy against the snapshot's state digest.

    Snapshots captured without the sanitizer carry no digest; those
    restores are skipped rather than failed (the equivalence tests pin
    restore fidelity independently).
    """
    from repro.sim.snapshot import state_digest

    expected = getattr(snapshot, "digest", None)
    if expected is None:
        return
    actual = state_digest(hierarchy)
    _require(
        actual == expected,
        f"snapshot restore diverged from captured warm state "
        f"(digest {actual[:12]} != {expected[:12]})",
    )


def check_finalize(system: "System", merged: "ControllerStats") -> None:
    """Assert end-of-run invariants between accountant, stats and DRAM.

    ``merged`` is the already-merged
    :class:`~repro.controller.stats.ControllerStats` of every channel.
    """
    acc = system.accountant

    # Energy conservation: each served burst / ACT / REF was accounted
    # exactly once — the streak-batched accounting paths must agree
    # with the per-request statistics paths.
    _require(
        acc.read_bursts == merged.reads.served,
        f"accountant saw {acc.read_bursts} read bursts but controllers "
        f"served {merged.reads.served} reads",
    )
    _require(
        acc.write_bursts == merged.writes.served,
        f"accountant saw {acc.write_bursts} write bursts but controllers "
        f"served {merged.writes.served} writes",
    )
    _require(
        acc.refreshes == merged.refreshes,
        f"accountant saw {acc.refreshes} refreshes but controllers "
        f"issued {merged.refreshes}",
    )
    histogram_total = sum(acc.activations_by_granularity.values())
    _require(
        histogram_total == merged.total_activations,
        f"activation histogram holds {histogram_total} ACTs but "
        f"controllers recorded {merged.total_activations}",
    )
    for category in sorted(acc.energy_pj):
        pj = acc.energy_pj[category]
        _require(
            math.isfinite(pj) and pj >= 0.0,
            f"energy category {category!r} is {pj!r} (must be finite "
            f"and non-negative)",
        )

    # Timing-core self-consistency: masks in range, open_bits exact.
    for channel_idx, channel in enumerate(system.channels):
        core = channel.core
        for rank in range(core.num_ranks):
            bits = 0
            for bank in range(core.num_banks):
                g = rank * core.num_banks + bank
                mask = core.open_mask[g]
                _require(
                    0 < mask <= FULL_MASK,
                    f"channel {channel_idx} rank {rank} bank {bank}: "
                    f"mask {mask:#x} out of range",
                )
                if core.open_row[g] >= 0:
                    bits |= 1 << bank
            _require(
                bits == core.open_bits[rank],
                f"channel {channel_idx} rank {rank}: open_bits "
                f"{core.open_bits[rank]:#x} disagrees with open_row "
                f"({bits:#x})",
            )
