"""Simulation results: everything the paper's figures are derived from."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cache.set_assoc import CacheStats
from repro.controller.stats import ControllerStats
from repro.power.accounting import PowerBreakdown


@dataclass
class CoreResult:
    """Per-core outcome of a run."""

    core_id: int
    app_name: str
    retired_instructions: int
    finish_cycle: int
    ipc: float


@dataclass
class SimResult:
    """Outcome of one full-system simulation."""

    scheme_name: str
    policy_name: str
    workload_name: str
    runtime_cycles: int
    cores: List[CoreResult]
    controller: ControllerStats
    power: PowerBreakdown
    #: Activations by granularity in eighths (Fig. 11 numerator).
    activation_histogram: Dict[int, int]
    llc: CacheStats
    #: Figure 3: dirty-word distribution of evicted LLC lines.
    dirty_word_fractions: Dict[int, float] = field(default_factory=dict)
    #: DBI bookkeeping (proactive writebacks / triggers), when enabled.
    dbi_proactive_writebacks: int = 0

    # ------------------------------------------------------------------
    @property
    def ipcs(self) -> List[float]:
        return [c.ipc for c in self.cores]

    @property
    def total_energy_mj(self) -> float:
        return self.power.total_mj

    @property
    def avg_power_mw(self) -> float:
        return self.power.total_power_mw

    @property
    def runtime_ns(self) -> float:
        return self.power.runtime_ns

    @property
    def edp(self) -> float:
        """Energy-delay product (mJ x ns); compared normalized."""
        return self.total_energy_mj * self.runtime_ns

    # ------------------------------------------------------------------
    def granularity_fractions(self) -> Dict[int, float]:
        """Proportion of activations per granularity (Figure 11)."""
        total = sum(self.activation_histogram.values())
        if not total:
            return {g: 0.0 for g in range(1, 9)}
        return {g: n / total for g, n in self.activation_histogram.items()}

    def mean_activation_granularity(self) -> float:
        """Average activated fraction of a row across all activations."""
        total = sum(self.activation_histogram.values())
        if not total:
            return 1.0
        weighted = sum(g * n for g, n in self.activation_histogram.items())
        return weighted / (8.0 * total)

    def summary(self) -> Dict[str, float]:
        """Flat summary used by examples and the benchmark harness."""
        return {
            "runtime_cycles": float(self.runtime_cycles),
            "total_power_mw": self.avg_power_mw,
            "act_pre_mw": self.power.power_mw("act_pre"),
            "rd_io_mw": self.power.power_mw("rd_io"),
            "wr_io_mw": self.power.power_mw("wr_io"),
            "energy_mj": self.total_energy_mj,
            "edp": self.edp,
            "read_hit_rate": self.controller.reads.hit_rate,
            "write_hit_rate": self.controller.writes.hit_rate,
            "total_hit_rate": self.controller.total_hit_rate,
            "read_false_hit_rate": self.controller.reads.false_hit_rate,
            "write_false_hit_rate": self.controller.writes.false_hit_rate,
            "mean_granularity": self.mean_activation_granularity(),
        }


    def to_dict(self) -> Dict:
        """JSON-serializable snapshot of the run (for archival/plots)."""
        return {
            "scheme": self.scheme_name,
            "policy": self.policy_name,
            "workload": self.workload_name,
            "runtime_cycles": self.runtime_cycles,
            "cores": [
                {
                    "core_id": c.core_id,
                    "app": c.app_name,
                    "retired": c.retired_instructions,
                    "finish_cycle": c.finish_cycle,
                    "ipc": c.ipc,
                }
                for c in self.cores
            ],
            "power_mw": self.power.as_dict_mw(),
            "total_power_mw": self.avg_power_mw,
            "energy_mj": self.total_energy_mj,
            "edp": self.edp,
            "activation_histogram": dict(self.activation_histogram),
            "row_buffer": {
                "read_hit_rate": self.controller.reads.hit_rate,
                "write_hit_rate": self.controller.writes.hit_rate,
                "read_false_hit_rate": self.controller.reads.false_hit_rate,
                "write_false_hit_rate": self.controller.writes.false_hit_rate,
            },
            "traffic": self.controller.traffic_split(),
            "activations": self.controller.activation_split(),
            "dirty_word_fractions": dict(self.dirty_word_fractions),
            "dbi_proactive_writebacks": self.dbi_proactive_writebacks,
        }

    def save_json(self, path: str) -> None:
        """Write :meth:`to_dict` to ``path`` as pretty-printed JSON."""
        import json

        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)


def normalized(value: float, baseline: float) -> float:
    """Safe normalization helper for figure reproduction."""
    if baseline == 0:
        raise ZeroDivisionError("baseline metric is zero")
    return value / baseline
