"""Post-run invariant validation for :class:`SimResult`.

A cheap, independent audit of a finished simulation: counter
consistency, probability-vector sanity, physical bounds on power.
Used by integration tests and available to users (e.g. after modifying
schemes or policies) to catch broken bookkeeping early.
"""

from __future__ import annotations

from typing import List

from repro.power.accounting import CATEGORIES
from repro.sim.results import SimResult


class ValidationError(Exception):
    """A finished run failed a consistency check.

    A real ``Exception`` (not ``AssertionError``) so the audit still
    fires under ``python -O``.
    """


def validate_result(result: SimResult, chips: int = 32) -> List[str]:
    """Run all checks; returns the list of check names that passed.

    Raises :class:`ValidationError` on the first failure.
    """
    passed: List[str] = []

    def check(name: str, condition: bool, detail: str = "") -> None:
        if not condition:
            raise ValidationError(f"{name} failed for {result.workload_name}"
                                  f"/{result.scheme_name}: {detail}")
        passed.append(name)

    ctrl = result.controller

    check("runtime-positive", result.runtime_cycles > 0)
    check(
        "cores-finished",
        all(c.finish_cycle > 0 and c.retired_instructions > 0 for c in result.cores),
    )
    check("ipc-bounds", all(0 < c.ipc <= 8.0 for c in result.cores),
          f"ipcs={result.ipcs}")

    # Row-buffer counters partition services.
    for kind in (ctrl.reads, ctrl.writes):
        check("hits-bounded", kind.row_hits <= kind.served,
              f"{kind.row_hits} hits > {kind.served} served")
        check("false-hits-bounded", kind.false_hits <= kind.served)
    check(
        "activation-histogram-consistent",
        sum(result.activation_histogram.values()) == ctrl.total_activations,
        f"{sum(result.activation_histogram.values())} != {ctrl.total_activations}",
    )
    served_misses = ctrl.total_served - ctrl.total_hits
    check(
        "activations-cover-misses",
        ctrl.total_activations >= served_misses,
        f"{ctrl.total_activations} activations < {served_misses} misses",
    )

    # Energy: every category non-negative, fractions sum to one.
    for cat in CATEGORIES:
        check("energy-nonnegative", result.power.energy_pj[cat] >= 0, cat)
    if result.power.total_pj > 0:
        check(
            "fractions-normalized",
            abs(sum(result.power.fractions().values()) - 1.0) < 1e-9,
        )

    # Physical power bounds: background alone cannot exceed total, and
    # total power should be within plausible chip budgets.
    total_mw = result.avg_power_mw
    check("power-positive", total_mw > 0)
    check("power-plausible", total_mw < 400 * chips,
          f"{total_mw:.0f} mW for {chips} chips")

    # Dirty-word distribution is a probability vector (when present).
    if result.dirty_word_fractions:
        total = sum(result.dirty_word_fractions.values())
        check("dirty-words-normalized", total == 0 or abs(total - 1.0) < 1e-6,
              f"sum={total}")

    # Scheme-specific: unmasked schemes never record false hits and
    # never open partial rows.
    if result.scheme_name in ("Baseline", "FGA", "Half-DRAM", "DBI"):
        check("no-false-hits-without-masking",
              ctrl.reads.false_hits == 0 and ctrl.writes.false_hits == 0)
    if result.scheme_name == "Baseline":
        partial = sum(result.activation_histogram[g] for g in range(1, 8))
        check("baseline-full-rows-only", partial == 0)

    return passed
