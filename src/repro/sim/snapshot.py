"""Warm-state snapshot cache: warm the hierarchy once, restore by copy.

Every :class:`~repro.sim.system.System` replays roughly 4x the LLC
line count through the cache hierarchy before timing even starts, and
a sweep builds one System per grid point — so the second and every
later scheme of the same (workload, seed, cache geometry) repeats a
warmup whose outcome is already known.  This module snapshots the
post-warmup state into a compact picklable form and restores it by
copy:

* **fingerprint** — :func:`warm_fingerprint` hashes exactly the
  configuration bits warmup depends on: the workload's profiles, the
  resolved seed, the warmup length, the cache geometry, and (only for
  DBI schemes) the address-mapping bits that shape the DBI's row keys.
  Everything else — scheme timing flags, policy, ECC chips — cannot
  influence warm state, so Baseline/PRA/SDS/... of one grid column all
  share a single snapshot;
* **payload** — :class:`WarmSnapshot` holds the array-backed caches'
  exported state (tag dicts + flat int arrays), plus the DBI registry.
  Restoring is a plain copy, bit-identical to re-running warmup
  because dict insertion order is part of the copy;
* **layers** — an in-process LRU (:data:`SNAPSHOTS`) serves repeated
  Systems in one process; an opt-in disk layer (``snapshot_dir=`` or
  the ``REPRO_SNAPSHOT_DIR`` environment variable) lets sweep/runner
  worker processes and repeated benchmark invocations reuse warm state
  across process boundaries.  Disk writes are atomic (temp file +
  rename), so racing workers at worst both compute the same snapshot.

Trace position needs no snapshotting on the fast path: the precompiled
trace blocks (:mod:`repro.workloads.synthetic`) are indexable, so the
timed run simply starts at index ``warmup_events_per_core``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.cache.hierarchy import CacheHierarchy
    from repro.sim.config import SystemConfig
    from repro.workloads.mixes import Workload

#: Exported DBI registry: row key -> sorted dirty line tuple.
DbiRows = Optional[Dict[Hashable, Tuple[int, ...]]]

#: Snapshot format marker; bump to invalidate stale disk snapshots
#: whenever the cache state layout or warmup semantics change.
#: v2: snapshots may carry a capture-time state digest (sanitizer).
_FORMAT = "warm-v2"

# Oracle-parity declaration enforced by reprolint: restoring a warm
# snapshot is the fast path; a cold warmup through the hierarchy
# (``System._warm_caches`` / ``CacheHierarchy.warm_block``) is the
# oracle it must match bit-for-bit.
REPRO_FAST_PATH = True
ORACLE_TWIN = "repro.sim.system.System._warm_caches"
ORACLE_TESTS = ("tests/test_engine_equivalence.py",)


class WarmSnapshot:
    """Post-warmup hierarchy state in compact picklable form."""

    __slots__ = ("l2", "l1s", "dbi_rows", "digest")

    def __init__(
        self,
        l2: tuple,
        l1s: Optional[List[tuple]],
        dbi_rows: DbiRows,
        digest: Optional[str] = None,
    ) -> None:
        """Bundle exported cache states plus the DBI registry.

        ``digest`` is the optional capture-time state hash the runtime
        sanitizer (:mod:`repro.sim.sanitize`) verifies restores
        against; plain runs skip computing it.
        """
        self.l2 = l2
        self.l1s = l1s
        self.dbi_rows = dbi_rows
        self.digest = digest


def _export(hierarchy: "CacheHierarchy") -> tuple:
    """(l2, l1s, dbi_rows) export of a hierarchy's warm state."""
    l1s = None
    if hierarchy.l1s is not None:
        l1s = [l1.export_state() for l1 in hierarchy.l1s]
    dbi_rows = None
    if hierarchy.dbi is not None:
        dbi_rows = hierarchy.dbi.export_rows()
    return hierarchy.l2.export_state(), l1s, dbi_rows


def state_digest(hierarchy: "CacheHierarchy") -> str:
    """SHA-256 over a hierarchy's exported warm state.

    Pickle of the export is deterministic for identical state
    (insertion order of the tag dicts is part of the export), so equal
    digests mean bit-identical cache contents.
    """
    exported = _export(hierarchy)
    return hashlib.sha256(
        pickle.dumps(exported, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()


def default_warmup(config: "SystemConfig", workload: "Workload") -> int:
    """Warmup length :class:`~repro.sim.system.System` uses by default.

    4x the LLC line count, split across the cores: random placement
    needs the extra margin to fill (nearly) every set to steady state.
    Centralized here so the sweep scheduler's fingerprint grouping
    resolves the same warmup length the System will.
    """
    llc_lines = config.cache.llc_bytes // 64
    return (4 * llc_lines) // max(1, workload.num_cores)


def warm_fingerprint(
    config: "SystemConfig",
    workload: "Workload",
    seed: int,
    warmup_events_per_core: int,
) -> tuple:
    """Hashable identity of everything that shapes warm cache state.

    Deliberately *excludes* scheme timing/power flags, row policy and
    ECC: warmup only exercises the cache hierarchy and the trace
    generators, so schemes differing only in DRAM behaviour share one
    snapshot.  The DBI is the exception — its row keys come from the
    address mapper — so DBI schemes key on geometry + interleaving too.
    """
    cache = config.cache
    cache_key = (
        cache.llc_bytes,
        cache.llc_ways,
        cache.use_l1,
        cache.l1_bytes if cache.use_l1 else 0,
        cache.l1_ways if cache.use_l1 else 0,
    )
    dbi_key = None
    if config.scheme.dbi:
        dbi_key = (
            cache.dbi_max_writebacks,
            config.geometry,
            config.effective_interleaving,
        )
    return (
        _FORMAT,
        workload.name,
        tuple(workload.apps),
        seed,
        warmup_events_per_core,
        cache_key,
        dbi_key,
    )


def resolve_fingerprint(
    config: "SystemConfig",
    workload: "Workload",
    seed: int,
    warmup_events_per_core: Optional[int] = None,
) -> tuple:
    """:func:`warm_fingerprint` with the default warmup resolved.

    The sweep scheduler, the experiment runner and the sweep service
    all group work by warm fingerprint before a :class:`System` exists;
    this helper resolves ``warmup_events_per_core=None`` to the same
    default the System will use, so every layer lands on the identical
    grouping key.
    """
    if warmup_events_per_core is None:
        warmup_events_per_core = default_warmup(config, workload)
    return warm_fingerprint(config, workload, seed, warmup_events_per_core)


def fingerprint_digest(key: tuple) -> str:
    """Stable hex digest of a fingerprint key, identical across processes.

    ``repr`` of the key is deterministic (plain ints/strings/floats/
    frozen dataclasses; never ``hash()``, which varies per process under
    hash randomization), so the digest is a valid cross-process cache
    address.  Used for the snapshot disk layer's file names and as the
    warm-affinity component of the sweep service's point digests.
    """
    return hashlib.sha256(repr(key).encode()).hexdigest()


def capture_warm_state(
    hierarchy: "CacheHierarchy", with_digest: bool = False
) -> WarmSnapshot:
    """Export a just-warmed hierarchy into a :class:`WarmSnapshot`.

    ``with_digest`` also stamps the state hash that sanitized runs
    verify restores against (skipped by default: hashing the whole LLC
    export is pure overhead when nothing will check it).
    """
    l2, l1s, dbi_rows = _export(hierarchy)
    digest = None
    if with_digest:
        digest = hashlib.sha256(
            pickle.dumps((l2, l1s, dbi_rows), protocol=pickle.HIGHEST_PROTOCOL)
        ).hexdigest()
    return WarmSnapshot(l2, l1s, dbi_rows, digest)


def restore_warm_state(
    hierarchy: "CacheHierarchy", snapshot: WarmSnapshot, cow: bool = False
) -> None:
    """Copy a snapshot into a freshly built (cold) hierarchy.

    Restore is copy-in, so the snapshot stays pristine in the cache
    while the restored System mutates its own state.  ``cow=True``
    selects the copy-on-write restore used by the batch kernel
    (:mod:`repro.sim.batch`): per-set tag dicts / DBI rows stay shared
    with the snapshot until first mutation, so N lanes restoring from
    one snapshot pay the expensive per-set copies only for the sets
    they actually touch.  Observable state evolution is identical; the
    eager default remains the oracle path.
    """
    hierarchy.l2.restore_state(snapshot.l2, cow=cow)
    if snapshot.l1s is not None:
        if hierarchy.l1s is None or len(hierarchy.l1s) != len(snapshot.l1s):
            raise ValueError("snapshot L1 layout does not match this hierarchy")
        for l1, state in zip(hierarchy.l1s, snapshot.l1s):
            l1.restore_state(state, cow=cow)
    if snapshot.dbi_rows is not None:
        if hierarchy.dbi is None:
            raise ValueError("snapshot carries DBI state but hierarchy has none")
        hierarchy.dbi.restore_rows(snapshot.dbi_rows, cow=cow)


class SnapshotCache:
    """Two-layer snapshot store: in-process LRU plus optional disk.

    The memory layer serves repeated Systems inside one process (the
    common sweep/runner/benchmark case).  The disk layer — enabled per
    call by passing ``disk_dir`` — extends reuse across worker
    processes and interpreter invocations.
    """

    def __init__(self, capacity: int = 8) -> None:
        """Bound the memory layer at ``capacity`` snapshots."""
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._mem: "OrderedDict[tuple, WarmSnapshot]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _disk_path(disk_dir: str, key: tuple) -> str:
        """Stable per-fingerprint file path under ``disk_dir``.

        ``repr`` of the key is deterministic across processes (plain
        ints/strings/floats/frozen dataclasses), unlike ``hash()``.
        """
        return os.path.join(disk_dir, f"{fingerprint_digest(key)}.warmsnap")

    # ------------------------------------------------------------------
    def lookup(
        self, key: tuple, disk_dir: Optional[str] = None
    ) -> Optional[WarmSnapshot]:
        """Fetch a snapshot from memory, falling back to disk."""
        snapshot = self._mem.get(key)
        if snapshot is not None:
            self._mem.move_to_end(key)
            self.hits += 1
            return snapshot
        if disk_dir:
            path = self._disk_path(disk_dir, key)
            try:
                with open(path, "rb") as handle:
                    snapshot = pickle.load(handle)
            except (OSError, pickle.PickleError, EOFError, AttributeError):
                snapshot = None
            if isinstance(snapshot, WarmSnapshot):
                self._insert(key, snapshot)
                self.hits += 1
                return snapshot
        self.misses += 1
        return None

    def store(
        self, key: tuple, snapshot: WarmSnapshot, disk_dir: Optional[str] = None
    ) -> None:
        """Insert a snapshot into memory and (optionally) onto disk."""
        self._insert(key, snapshot)
        if disk_dir:
            try:
                os.makedirs(disk_dir, exist_ok=True)
                fd, tmp = tempfile.mkstemp(dir=disk_dir, suffix=".tmp")
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(snapshot, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._disk_path(disk_dir, key))
            except OSError:
                # Disk layer is best-effort; warm state stays in memory.
                pass

    def _insert(self, key: tuple, snapshot: WarmSnapshot) -> None:
        """LRU insert into the memory layer."""
        self._mem[key] = snapshot
        self._mem.move_to_end(key)
        while len(self._mem) > self.capacity:
            self._mem.popitem(last=False)

    def clear(self) -> None:
        """Drop the memory layer (tests; disk files are left alone)."""
        self._mem.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        """Snapshots currently held in memory."""
        return len(self._mem)


#: Process-wide snapshot cache used by :class:`~repro.sim.system.System`.
SNAPSHOTS = SnapshotCache()


def snapshot_disk_dir(explicit: Optional[str]) -> Optional[str]:
    """Resolve the disk layer: explicit argument, else environment."""
    if explicit:
        return explicit
    return os.environ.get("REPRO_SNAPSHOT_DIR") or None
