"""System configuration (Table 3 of the paper).

Bundles every knob of the CPU + cache + DRAM platform.  Defaults
reproduce the paper's baseline: 4-core 3.2 GHz CMP, 32 kB L1s, 4 MB
shared L2, 8 GB DDR3-1600 over 2 channels x 2 ranks, FR-FCFS with
64/64-entry queues and 48/16 write watermarks, relaxed close-page with
precharge power-down and row-interleaved mapping (line-interleaved for
the restricted close-page studies).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.controller.policies import ROW_HIT_CAP, RowPolicy
from repro.core.schemes import BASELINE, Scheme
from repro.dram.geometry import SystemGeometry
from repro.dram.mapping import Interleaving
from repro.dram.timing import DDR3_1600, TimingParams
from repro.power.params import DDR3_1600_POWER, PowerParams


@dataclass(frozen=True)
class CoreConfig:
    """Core-model parameters (Table 3, processor section)."""

    cpu_per_mem_clock: float = 4.0
    nonmem_cpi: float = 0.5
    max_outstanding_misses: int = 8
    rob_instructions: int = 192


@dataclass(frozen=True)
class CacheConfig:
    """Cache hierarchy parameters (Table 3)."""

    llc_bytes: int = 4 * 1024 * 1024
    llc_ways: int = 8
    l1_bytes: int = 32 * 1024
    l1_ways: int = 4
    #: Use per-core L1s in front of the LLC.  The calibrated workload
    #: profiles are LLC-level, so the big experiments run LLC-only.
    use_l1: bool = False
    dbi_max_writebacks: int = 16


@dataclass(frozen=True)
class ControllerConfig:
    """Memory-controller parameters (Table 3)."""

    read_queue_size: int = 64
    write_queue_size: int = 64
    drain_high_watermark: int = 48
    drain_low_watermark: int = 16
    row_hit_cap: int = ROW_HIT_CAP
    scan_depth: int = 12
    #: "frfcfs" (paper) or "fcfs" (ablation without the hit-first pass).
    scheduler: str = "frfcfs"


@dataclass(frozen=True)
class SystemConfig:
    """Full platform configuration."""

    scheme: Scheme = BASELINE
    policy: RowPolicy = RowPolicy.RELAXED_CLOSE
    geometry: SystemGeometry = SystemGeometry()
    timing: TimingParams = DDR3_1600
    power: PowerParams = DDR3_1600_POWER
    #: None picks the paper's pairing: row-interleaved for relaxed /
    #: open-page, line-interleaved for restricted close-page.
    interleaving: Optional[Interleaving] = None
    core: CoreConfig = CoreConfig()
    cache: CacheConfig = CacheConfig()
    controller: ControllerConfig = ControllerConfig()
    #: Extra ECC chips per rank (x72 DIMM).  Section 4.2: the ECC
    #: chip's PRA pin is tied high, so it always activates full rows
    #: and transfers full bursts; PRA savings apply to data chips only.
    ecc_chips: int = 0
    seed: int = 1
    #: Run under the runtime sanitizer (:mod:`repro.sim.sanitize`):
    #: protocol checkers on every controller, snapshot-restore digest
    #: verification and finalize-time invariant checks.  The
    #: ``REPRO_SANITIZE`` environment variable enables the same thing
    #: without touching configs.
    sanitize: bool = False

    @property
    def effective_interleaving(self) -> Interleaving:
        """Resolved address interleaving (explicit or policy default)."""
        if self.interleaving is not None:
            return self.interleaving
        if self.policy is RowPolicy.RESTRICTED_CLOSE:
            return Interleaving.LINE
        return Interleaving.ROW

    def with_scheme(self, scheme: Scheme) -> "SystemConfig":
        return replace(self, scheme=scheme)

    def with_policy(self, policy: RowPolicy) -> "SystemConfig":
        return replace(self, policy=policy)


#: Short alias: ``SimConfig(sanitize=True)`` reads naturally at call
#: sites that only care about the run-mode switches.
SimConfig = SystemConfig
