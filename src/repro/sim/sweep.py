"""Parameter sweeps: run a grid of configurations, export CSV/JSON.

Lightweight harness used by the sensitivity benches and available to
users exploring the design space::

    from repro.sim.sweep import Sweep
    sweep = Sweep(events_per_core=4000)
    sweep.add_axis("scheme", ["Baseline", "PRA", "Half-DRAM"])
    sweep.add_axis("workload", ["GUPS", "MIX1"])
    rows = sweep.run()
    sweep.to_csv("results.csv")

Axes:

* ``scheme`` — scheme name (see :data:`repro.core.schemes.ALL_SCHEMES`),
* ``workload`` — any of the 14 evaluation workloads,
* ``policy`` — ``relaxed`` / ``restricted`` / ``open``,
* ``ecc_chips`` — 0 or 1.

Each grid point yields one flattened result row (the ``summary`` of
the run plus identification columns).

Execution backends, all bit-identical row for row:

* serial in-process (the oracle the others must match),
* ``run(workers=N)`` — a throwaway ``multiprocessing`` pool; the
  grid-wide invariants (base config, run length, seed, snapshot dir)
  are shipped once per worker via the pool initializer, so each task
  payload is just its point dict (the config *delta*), not a full
  pickled :class:`SystemConfig` per point;
* ``run(pool=...)`` — a persistent :class:`repro.sim.pool.SimPool`
  whose warm workers carry snapshot/trace caches across points *and*
  across sweeps; points are grouped by warm fingerprint so each
  fingerprint warms exactly one worker;
* ``run(batch=N)`` — the lane-parallel batch kernel
  (:mod:`repro.sim.batch`): up to N points advance together through
  one shared event loop, sharing warm snapshots (copy-on-write) and
  compiled trace blocks; combines with ``pool`` to ship whole lane
  groups per task.  ``batch="auto"`` sizes the lane count from the
  grid and available memory (:func:`auto_batch_lanes`).
"""

from __future__ import annotations

import csv
import itertools
import json
import multiprocessing
import os
from collections import OrderedDict
from dataclasses import replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:
    from repro.sim.pool import SimPool

from repro.controller.policies import RowPolicy
from repro.core.schemes import by_name
from repro.sim.config import SystemConfig
from repro.sim.snapshot import resolve_fingerprint
from repro.sim.system import simulate
from repro.workloads.mixes import workload as lookup_workload

_POLICIES = {
    "relaxed": RowPolicy.RELAXED_CLOSE,
    "restricted": RowPolicy.RESTRICTED_CLOSE,
    "open": RowPolicy.OPEN_PAGE,
}

_KNOWN_AXES = ("scheme", "workload", "policy", "ecc_chips")

#: Grid-wide run invariants shipped to workers once per batch:
#: (base_config, events_per_core, seed, warmup, snapshot_dir).
SweepContext = Tuple[SystemConfig, int, int, Optional[int], Optional[str]]


def _apply_point(base_config: SystemConfig, point: Dict) -> SystemConfig:
    """Specialize ``base_config`` for one grid point."""
    config = base_config
    if "scheme" in point:
        config = config.with_scheme(by_name(point["scheme"]))
    if "policy" in point:
        config = config.with_policy(_POLICIES[point["policy"]])
    if "ecc_chips" in point:
        config = replace(config, ecc_chips=int(point["ecc_chips"]))
    return config


def _run_point(ctx: SweepContext, point: Dict) -> Dict:
    """Simulate one grid point; module-level so worker processes can
    unpickle it.  ``ctx`` carries the grid-wide invariants (shipped
    once per worker); ``point`` is only the config delta.  Returns the
    flattened result row (small and picklable; the heavy ``System``
    never crosses the process boundary)."""
    base_config, events, seed, warmup, snapshot_dir = ctx
    config = _apply_point(base_config, point)
    result = simulate(
        config,
        lookup_workload(point["workload"]),
        events,
        seed=seed,
        warmup_events_per_core=warmup,
        snapshot_dir=snapshot_dir,
    )
    row = {**point}
    row.update(result.summary())
    return row


#: Per-process sweep context for throwaway ``multiprocessing`` pools;
#: assigned by :func:`_init_worker` before any task runs.
_WORKER_CTX: List[Optional[SweepContext]] = [None]


def _init_worker(ctx: SweepContext) -> None:
    """Pool initializer: receive the grid-wide invariants once."""
    _WORKER_CTX[0] = ctx


def _run_point_in_worker(point: Dict) -> Dict:
    """Worker-side task body for ``Pool.map`` (context from initializer)."""
    ctx = _WORKER_CTX[0]
    if ctx is None:
        raise RuntimeError("sweep worker used before initialization")
    return _run_point(ctx, point)


def _available_memory_bytes() -> Optional[int]:
    """Currently available physical memory, or ``None`` if unknowable.

    Monkeypatchable in tests; uses the POSIX ``sysconf`` keys, which
    the supported platforms expose.
    """
    try:
        page = os.sysconf("SC_PAGE_SIZE")
        pages = os.sysconf("SC_AVPHYS_PAGES")
    except (AttributeError, OSError, ValueError):  # pragma: no cover
        return None
    if page <= 0 or pages <= 0:  # pragma: no cover - degenerate sysconf
        return None
    return page * pages


def auto_batch_lanes(num_points: int, base_config: SystemConfig) -> int:
    """Lane count for ``batch="auto"``: the whole grid, memory permitting.

    The batch kernel's sweet spot is one lane group for the entire
    grid (maximum construction/event-loop sharing), so that is the
    default answer.  Each lane's dominant resident cost is its private
    LLC tag state (three flat 8-byte arrays per slot, plus privatized
    per-set dicts as it diverges from the shared snapshot); the
    estimate below envelopes that at one byte of lane state per two
    bytes of modelled LLC capacity, floored at 4 MB to cover queues,
    cores and controller state.  Lanes are capped so their combined
    envelope stays within half of currently-available memory —
    conservative, because an overcommitted batch run swaps and loses
    far more than extra groups cost.  When available memory cannot be
    determined the grid size is used unchanged.
    """
    if num_points < 1:
        raise ValueError("auto batch sizing needs at least one grid point")
    avail = _available_memory_bytes()
    if avail is None:
        return num_points
    per_lane = max(4 << 20, base_config.cache.llc_bytes // 2)
    budget = max(1, (avail // 2) // per_lane)
    return min(num_points, budget)


class Sweep:
    """Cartesian-product sweep over named configuration axes."""

    def __init__(
        self,
        events_per_core: int = 4000,
        base_config: Optional[SystemConfig] = None,
        seed: int = 1,
        warmup_events_per_core: Optional[int] = None,
        snapshot_dir: Optional[str] = None,
    ) -> None:
        """Configure grid-wide run parameters.

        ``snapshot_dir`` opts the grid into the on-disk warm-state
        snapshot layer: every scheme/policy point of the same
        (workload, seed) restores one shared post-warmup state instead
        of replaying warmup — including across ``run(workers=N)``
        worker processes, which share no in-process cache.
        """
        self.events_per_core = events_per_core
        self.base_config = base_config if base_config is not None else SystemConfig()
        self.seed = seed
        self.warmup = warmup_events_per_core
        self.snapshot_dir = snapshot_dir
        self._axes: Dict[str, Sequence] = {}
        self.rows: List[Dict] = []

    def add_axis(self, name: str, values: Sequence) -> "Sweep":
        """Add one grid axis; returns self for chaining."""
        if name not in _KNOWN_AXES:
            raise ValueError(f"unknown axis {name!r}; known: {_KNOWN_AXES}")
        if not values:
            raise ValueError(f"axis {name!r} needs at least one value")
        self._axes[name] = list(values)
        return self

    # ------------------------------------------------------------------
    def _config_for(self, point: Dict) -> SystemConfig:
        return _apply_point(self.base_config, point)

    def _context(self) -> SweepContext:
        """The grid-wide invariants every execution backend shares."""
        return (
            self.base_config,
            self.events_per_core,
            self.seed,
            self.warmup,
            self.snapshot_dir,
        )

    def _tasks(self) -> List[Dict]:
        """Materialize the grid as per-point payloads, in grid order.

        Each payload is only the point dict (the config *delta*); the
        grid-wide invariants travel separately via :meth:`_context`,
        once per worker instead of once per point.
        """
        if not self._axes:
            raise ValueError("add at least one axis before running")
        if "workload" not in self._axes:
            raise ValueError("a 'workload' axis is required")
        names = list(self._axes)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self._axes[n] for n in names))
        ]

    def _group_key(self, point: Dict) -> tuple:
        """Warm fingerprint of a point, for pool cache-affinity grouping.

        Resolves the same default warmup length the ``System`` will, so
        points that share post-warmup state (every non-DBI scheme of one
        (workload, seed) column) land on one warm worker back to back.
        """
        config = _apply_point(self.base_config, point)
        workload = lookup_workload(point["workload"])
        return resolve_fingerprint(config, workload, self.seed, self.warmup)

    def run(
        self,
        workers: Optional[int] = None,
        pool: "Optional[SimPool]" = None,
        mp_start: Optional[str] = None,
        batch: "Optional[Union[int, str]]" = None,
    ) -> List[Dict]:
        """Execute the grid; returns (and stores) one row per point.

        ``pool`` runs the grid on a persistent
        :class:`repro.sim.pool.SimPool` (warm workers, fingerprint-
        grouped scheduling).  ``workers`` > 1 fans the points out over
        a throwaway process pool instead; ``mp_start`` selects its
        multiprocessing start method (``"spawn"`` models the fully
        cold worker cost, ``None`` uses the platform default).

        ``batch=N`` selects the lane-parallel batch kernel
        (:mod:`repro.sim.batch`): points are chunked into lane groups
        of up to N and each group advances through one shared
        :class:`~repro.sim.batch.BatchSystem` event loop.  Groups are
        cut along warm-fingerprint order so lanes in a group share
        snapshots and trace blocks.  Combines with ``pool``: each lane
        group then ships whole to a warm worker
        (:meth:`~repro.sim.pool.SimPool.map_groups`), amortizing the
        per-point IPC as well.

        ``batch="auto"`` picks the lane count itself: the whole grid
        as one lane group, capped by available physical memory
        (:func:`auto_batch_lanes`).

        Every point carries the same deterministic seed on every
        backend and the rows are merged back in grid order, so
        parallel, pooled and batched sweeps are row-for-row identical
        to a serial one.
        """
        tasks = self._tasks()
        if workers is not None and workers < 1:
            raise ValueError("workers must be a positive integer")
        if isinstance(batch, str):
            if batch != "auto":
                raise ValueError(
                    f"batch={batch!r}: expected a positive integer or 'auto'"
                )
            batch = auto_batch_lanes(max(1, len(tasks)), self.base_config)
        elif batch is not None and batch < 1:
            raise ValueError("batch must be a positive integer or 'auto'")
        ctx = self._context()
        if batch is not None and batch > 1 and len(tasks) > 1:
            self.rows = self._run_batched(tasks, ctx, batch, pool)
            return self.rows
        if pool is not None:
            self.rows = pool.map(
                _run_point,
                tasks,
                shared=ctx,
                group_keys=[self._group_key(point) for point in tasks],
            )
        elif workers is not None and workers > 1 and len(tasks) > 1:
            mp_ctx = multiprocessing.get_context(mp_start)
            with mp_ctx.Pool(
                processes=min(workers, len(tasks)),
                initializer=_init_worker,
                initargs=(ctx,),
            ) as mp_pool:
                self.rows = mp_pool.map(_run_point_in_worker, tasks)
        else:
            self.rows = [_run_point(ctx, task) for task in tasks]
        return self.rows

    def _run_batched(
        self,
        tasks: List[Dict],
        ctx: SweepContext,
        batch: int,
        pool: "Optional[SimPool]",
    ) -> List[Dict]:
        """Run the grid through the batch kernel in lane groups.

        Points are reordered so same-fingerprint points sit adjacent,
        then cut into groups of up to ``batch`` lanes: a group whose
        lanes share a fingerprint restores from one warm snapshot
        (copy-on-write) and shares one compiled trace-block set, and a
        group spanning fingerprints still amortizes the event-loop
        interpreter overhead.  Rows come back in grid order regardless.
        """
        # Imported here: repro.sim.batch imports this module at top
        # level (for SweepContext/_apply_point), so the lazy import
        # breaks the cycle.
        from repro.sim.batch import _run_lane_group

        order: "OrderedDict[tuple, List[int]]" = OrderedDict()
        for index, point in enumerate(tasks):
            order.setdefault(self._group_key(point), []).append(index)
        ordered = [index for members in order.values() for index in members]
        chunks = [ordered[i : i + batch] for i in range(0, len(ordered), batch)]
        payloads = [[tasks[index] for index in chunk] for chunk in chunks]
        if pool is not None:
            flat = pool.map_groups(
                _run_lane_group,
                payloads,
                shared=ctx,
                group_keys=[self._group_key(group[0]) for group in payloads],
            )
        else:
            flat = [
                row for group in payloads for row in _run_lane_group(ctx, group)
            ]
        rows: List[Optional[Dict]] = [None] * len(tasks)
        for index, row in zip(ordered, flat):
            rows[index] = row
        return [row for row in rows if row is not None]

    # ------------------------------------------------------------------
    def to_csv(self, path: str) -> None:
        """Export the grid rows as CSV."""
        if not self.rows:
            raise ValueError("run() the sweep before exporting")
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(self.rows[0]))
            writer.writeheader()
            writer.writerows(self.rows)

    def to_json(self, path: str) -> None:
        """Export the grid rows as pretty-printed JSON."""
        if not self.rows:
            raise ValueError("run() the sweep before exporting")
        with open(path, "w") as handle:
            json.dump(self.rows, handle, indent=2)
