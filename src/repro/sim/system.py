"""Full-system simulator: cores + caches + controllers + DRAM + power.

This is the reproduction's equivalent of the paper's integrated
gem5 + DRAMSim2 platform.  The event loop ticks in DRAM command-clock
cycles and skips idle spans using hints from the controllers, the
cores and the pending read completions.

Flow of one memory instruction:

1. a core retires its instruction gap and issues the access,
2. the cache hierarchy filters it; LLC misses produce DRAM reads
   (fills) and dirty LLC victims produce DRAM writes carrying their
   FGD masks,
3. the address mapper routes each request to a channel controller,
4. the controller schedules DRAM commands (FR-FCFS with burst-streak
   commits over the array-backed timing core, PRA masking, refresh...),
5. completed demand fills unblock the issuing core.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from itertools import islice
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

if TYPE_CHECKING:
    from repro.dram.soa import TimingCore
    from repro.sim.sampling import EpochSampler

from repro.cache.dbi import DirtyBlockIndex
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.set_assoc import SetAssociativeCache
from repro.controller.memctrl import ChannelController
from repro.controller.stats import ControllerStats
from repro.cpu.core_model import NEVER, Core
from repro.cpu.trace import TraceEvent
from repro.dram.channel import Channel
from repro.dram.commands import ReqKind, Request
from repro.dram.mapping import AddressMapper
from repro.power.accounting import PowerAccountant
from repro.sim.config import SystemConfig
from repro.sim.results import CoreResult, SimResult
from repro.sim.sanitize import (
    attach_checkers,
    check_finalize,
    sanitize_enabled,
    verify_restore,
)
from repro.sim.snapshot import (
    SNAPSHOTS,
    capture_warm_state,
    default_warmup,
    restore_warm_state,
    snapshot_disk_dir,
    warm_fingerprint,
)
from repro.workloads.mixes import Workload
from repro.workloads.synthetic import TraceGenerator, compiled_trace

#: Total overflow-buffer entries beyond which cores are held back.
OVERFLOW_STALL_THRESHOLD = 128

# Oracle-parity declaration enforced by reprolint: the event-driven
# ``System.run`` is the fast path; ``System._run_polling`` is the
# scan-everything oracle both engines must agree with bit-for-bit.
REPRO_FAST_PATH = True
ORACLE_TWIN = "repro.sim.system.System._run_polling"
ORACLE_TESTS = ("tests/test_engine_equivalence.py",)


class System:
    """One simulatable platform instance."""

    def __init__(
        self,
        config: SystemConfig,
        workload: Workload,
        events_per_core: int,
        seed: Optional[int] = None,
        warmup_events_per_core: Optional[int] = None,
        sampler: "Optional[EpochSampler]" = None,
        trace_overrides: Optional[List] = None,
        *,
        precompiled_traces: bool = True,
        use_snapshots: bool = True,
        snapshot_dir: Optional[str] = None,
        cow_restore: bool = False,
        channel_cores: Optional[List["TimingCore"]] = None,
    ) -> None:
        """Build the platform.

        ``warmup_events_per_core`` events are first played through the
        cache hierarchy only (no timing), so the LLC reaches steady
        state — without warmup a short run would see almost no dirty
        evictions and therefore almost no DRAM write traffic.  The
        default sizes the warmup to roughly twice the LLC capacity.

        ``sampler`` may be an :class:`repro.sim.sampling.EpochSampler`
        to record power/queue time series during the run.

        ``trace_overrides`` replaces the synthetic generators with one
        event iterable per core (e.g. traces loaded from disk via
        :mod:`repro.workloads.trace_io`); the workload then only
        provides core names.

        The front-end fast path is on by default for synthetic traces:

        * ``precompiled_traces`` feeds warmup and cores from shared
          :class:`~repro.workloads.synthetic.TraceBlocks` arrays
          (``False`` restores the per-event ``TraceGenerator``
          reference path, which also disables snapshots);
        * ``use_snapshots`` reuses post-warmup cache state across
          Systems with the same warm fingerprint — bit-identical to a
          cold warmup, just restored by copy
          (:attr:`snapshot_restored` reports whether it happened);
        * ``snapshot_dir`` opts into the on-disk snapshot layer (the
          ``REPRO_SNAPSHOT_DIR`` environment variable does the same).

        The batch kernel (:mod:`repro.sim.batch`) passes two extra
        hooks: ``cow_restore`` restores warm snapshots copy-on-write
        (bit-identical, just lazier — see
        :func:`repro.sim.snapshot.restore_warm_state`), and
        ``channel_cores`` injects one externally allocated
        :class:`~repro.dram.soa.TimingCore` per channel (a lane row of
        a :class:`~repro.dram.soa_batch.BatchTimingCore`).
        """
        if events_per_core <= 0:
            raise ValueError("events_per_core must be positive")
        self.config = config
        self.workload = workload
        self.events_per_core = events_per_core
        seed = config.seed if seed is None else seed

        scheme = config.scheme
        geo = config.geometry
        self.mapper = AddressMapper(geo, config.effective_interleaving)
        self.accountant = PowerAccountant(
            config.power,
            config.timing,
            chips_per_rank=geo.chips_per_rank,
            ecc_chips=config.ecc_chips,
        )
        if channel_cores is not None and len(channel_cores) != geo.channels:
            raise ValueError("need one injected TimingCore per channel")
        self.channels: List[Channel] = [
            Channel(
                config.timing,
                num_ranks=geo.ranks_per_channel,
                num_banks=geo.chip.banks,
                relax_act_constraints=scheme.relax_act_constraints,
                burst_cycles_multiplier=scheme.burst_multiplier,
                core=None if channel_cores is None else channel_cores[idx],
            )
            for idx in range(geo.channels)
        ]
        ctrl_cfg = config.controller
        self.controllers: List[ChannelController] = [
            ChannelController(
                channel=channel,
                scheme=scheme,
                timing=config.timing,
                policy=config.policy,
                accountant=self.accountant,
                read_queue_size=ctrl_cfg.read_queue_size,
                write_queue_size=ctrl_cfg.write_queue_size,
                drain_high_watermark=ctrl_cfg.drain_high_watermark,
                drain_low_watermark=ctrl_cfg.drain_low_watermark,
                scan_depth=ctrl_cfg.scan_depth,
                row_hit_cap=ctrl_cfg.row_hit_cap,
                scheduler=ctrl_cfg.scheduler,
            )
            for channel in self.channels
        ]
        #: Runtime sanitizer (REPRO_SANITIZE=1 or config.sanitize):
        #: protocol checkers on every controller plus restore/finalize
        #: invariant verification.  Off by default — no checker is
        #: attached, so the scheduling hot path is unchanged.
        self._sanitize = sanitize_enabled(config)
        if self._sanitize:
            attach_checkers(self)

        if warmup_events_per_core is None:
            warmup_events_per_core = default_warmup(config, workload)
        self.warmup_events_per_core = warmup_events_per_core

        if trace_overrides is not None and len(trace_overrides) != workload.num_cores:
            raise ValueError("need one trace override per core")

        # Probe the snapshot cache *before* building the hierarchy: with
        # a warm snapshot in hand, the caches skip allocating their
        # per-set containers (restore replaces them wholesale), which is
        # the dominant construction cost on large LLCs.
        fast_path = trace_overrides is None and precompiled_traces
        disk_dir = None
        key = None
        snapshot = None
        if fast_path and use_snapshots:
            disk_dir = snapshot_disk_dir(snapshot_dir)
            key = warm_fingerprint(config, workload, seed, warmup_events_per_core)
            snapshot = SNAPSHOTS.lookup(key, disk_dir)
        lazy_sets = snapshot is not None

        cache_cfg = config.cache
        l2 = SetAssociativeCache(
            cache_cfg.llc_bytes, cache_cfg.llc_ways, name="L2", lazy_sets=lazy_sets
        )
        l1s = None
        if cache_cfg.use_l1:
            l1s = [
                SetAssociativeCache(
                    cache_cfg.l1_bytes,
                    cache_cfg.l1_ways,
                    name=f"L1-{i}",
                    lazy_sets=lazy_sets,
                )
                for i in range(workload.num_cores)
            ]
        dbi = None
        if scheme.dbi:
            dbi = DirtyBlockIndex(
                row_of=lambda la: self.mapper.row_key(self.mapper.decode_line(la)),
                max_writebacks=cache_cfg.dbi_max_writebacks,
            )
        self.hierarchy = CacheHierarchy(l2, l1s=l1s, dbi=dbi)

        #: Whether this System skipped warmup via a snapshot restore.
        self.snapshot_restored = False
        core_cfg = config.core
        self.cores: List[Core] = []

        def _make_core(core_id: int, trace: Iterator[TraceEvent]) -> Core:
            return Core(
                core_id=core_id,
                trace=trace,
                cpu_per_mem_clock=core_cfg.cpu_per_mem_clock,
                nonmem_cpi=core_cfg.nonmem_cpi,
                max_outstanding_misses=core_cfg.max_outstanding_misses,
                rob_instructions=core_cfg.rob_instructions,
            )

        if fast_path:
            # Fast path: shared trace blocks + warm-state snapshots
            # (the snapshot itself was already looked up above).
            blocks_per_core = [
                compiled_trace(profile, seed=seed, core_id=core_id)
                for core_id, profile in enumerate(workload.apps)
            ]
            if snapshot is not None:
                restore_warm_state(self.hierarchy, snapshot, cow=cow_restore)
                self.snapshot_restored = True
                if self._sanitize:
                    verify_restore(self.hierarchy, snapshot)
            if not self.snapshot_restored:
                for core_id, blocks in enumerate(blocks_per_core):
                    blocks.ensure(warmup_events_per_core)
                    self.hierarchy.warm_block(
                        core_id,
                        blocks.addrs,
                        blocks.masks,
                        0,
                        warmup_events_per_core,
                    )
                if use_snapshots:
                    SNAPSHOTS.store(
                        key,
                        capture_warm_state(
                            self.hierarchy, with_digest=self._sanitize
                        ),
                        disk_dir,
                    )
            for core_id, blocks in enumerate(blocks_per_core):
                self.cores.append(
                    _make_core(
                        core_id,
                        blocks.events(warmup_events_per_core, events_per_core),
                    )
                )
        else:
            # Reference path: per-event iterators, cold warmup.
            for core_id, profile in enumerate(workload.apps):
                if trace_overrides is not None:
                    stream = iter(trace_overrides[core_id])
                else:
                    stream = iter(
                        TraceGenerator(profile, seed=seed, core_id=core_id)
                    )
                self._warm_caches(core_id, stream, warmup_events_per_core)
                self.cores.append(
                    _make_core(core_id, islice(stream, events_per_core))
                )
        self._reset_cache_stats()

        self._demand_map: Dict[int, Core] = {}
        self._dirty_channels: int = 0
        self.sampler = sampler

    # ------------------------------------------------------------------
    def _warm_caches(
        self, core_id: int, stream: Iterator[TraceEvent], events: int
    ) -> None:
        """Play ``events`` through the hierarchy without timing."""
        access = self.hierarchy.access
        for _ in range(events):
            event = next(stream, None)
            if event is None:
                break
            access(
                core_id,
                event.line_addr,
                write_mask=event.write_mask,
                fill_on_miss=not event.no_fill,
            )

    def _reset_cache_stats(self) -> None:
        """Forget warmup statistics (content is kept)."""
        from repro.cache.set_assoc import CacheStats

        self.hierarchy.l2.stats = CacheStats()
        if self.hierarchy.l1s:
            for l1 in self.hierarchy.l1s:
                l1.stats = CacheStats()
        dbi = self.hierarchy.dbi
        if dbi is not None:
            dbi.proactive_writebacks = 0
            dbi.triggers = 0

    # ------------------------------------------------------------------
    def _submit(self, req: Request) -> None:
        channel = req.addr.channel
        self.controllers[channel].submit(req)
        self._dirty_channels |= 1 << channel

    def _process_access(self, core: Core, event: TraceEvent, cycle: int) -> None:
        traffic = self.hierarchy.access(
            core.core_id,
            event.line_addr,
            write_mask=event.write_mask,
            fill_on_miss=not event.no_fill,
        )
        demand_miss = (not event.is_store) and not traffic.demand_hit
        for fill_addr in traffic.fills:
            req = Request(
                kind=ReqKind.READ,
                addr=self.mapper.decode_line(fill_addr),
                arrive_cycle=cycle,
                core_id=core.core_id,
            )
            if demand_miss and fill_addr == event.line_addr:
                core.note_demand_miss(req.req_id)
                self._demand_map[req.req_id] = core
                core.misses_issued += 1
            self._submit(req)
        for wb_addr, mask in traffic.writebacks:
            self._submit(
                Request(
                    kind=ReqKind.WRITE,
                    addr=self.mapper.decode_line(wb_addr),
                    arrive_cycle=cycle,
                    dirty_mask=mask,
                    core_id=core.core_id,
                )
            )

    # ------------------------------------------------------------------
    def run(
        self,
        max_cycles: Optional[int] = None,
        *,
        strict_polling: bool = False,
    ) -> SimResult:
        """Simulate to completion (or ``max_cycles``) and summarize.

        The loop is event-driven: each controller reports an exact
        next-wake cycle (the ``step`` hint contract), controllers sit in
        a min-heap keyed by that cycle, and the loop jumps straight to
        the earliest of {controller wake, read completion, core action}.
        A controller is stepped only when its wake cycle arrives or a
        new request dirties it, so the per-cycle Python overhead is paid
        only on cycles where something can actually change.

        ``strict_polling=True`` selects the reference scan-everything
        loop (:meth:`_run_polling`), kept as a debug oracle: both paths
        must produce bit-identical results (see
        ``tests/test_engine_equivalence.py``).
        """
        if strict_polling:
            return self._run_polling(max_cycles)
        cycle = 0
        cores = self.cores
        controllers = self.controllers
        demand_map = self._demand_map
        #: Authoritative next-wake cycle per controller; heap entries
        #: that disagree with it are stale and skipped on pop.
        wake = [0] * len(controllers)
        heap = [(0, idx) for idx in range(len(controllers))]
        heapify(heap)
        #: Lower bound on each core's next action cycle.  A core's
        #: timing only changes through ``try_advance`` (below) and
        #: ``on_fill_complete`` (which resets the bound), so the cached
        #: value stays valid between those points and saves two
        #: ``next_action_cycle`` calls per core per iteration.
        core_next = [0] * len(cores)
        sampler = self.sampler
        while True:
            if sampler is not None:
                sampler.maybe_sample(cycle, self)
            # 1. Deliver completed demand fills due by now.  Bursts
            # serialize on each channel's data bus, so completed_reads
            # is already sorted by done_cycle: pop a due prefix instead
            # of rebuilding the list while fills are in flight.
            next_completion = NEVER
            for ctrl in controllers:
                cr = ctrl.completed_reads
                if not cr:
                    continue
                if cr[0][0] <= cycle:
                    i = 0
                    n = len(cr)
                    while i < n and cr[i][0] <= cycle:
                        done_cycle, req = cr[i]
                        core = demand_map.pop(req.req_id, None)
                        if core is not None:
                            core.on_fill_complete(req.req_id, done_cycle)
                            core_next[core.core_id] = 0
                        i += 1
                    del cr[:i]
                    if not cr:
                        continue
                if cr[0][0] < next_completion:
                    next_completion = cr[0][0]

            # 2. Advance cores (held back under heavy backpressure).
            stalled = False
            for ctrl in controllers:
                if ctrl.overflow:
                    total_overflow = sum(len(c.overflow) for c in controllers)
                    stalled = total_overflow > OVERFLOW_STALL_THRESHOLD
                    break
            if not stalled:
                for idx, core in enumerate(cores):
                    if core_next[idx] > cycle:
                        continue
                    while True:
                        event = core.try_advance(cycle)
                        if event is None:
                            break
                        self._process_access(core, event, cycle)
                    core_next[idx] = core.next_action_cycle(cycle)

            # 3. External-event horizon for controller batching.
            core_min = NEVER
            for action in core_next:
                if action < core_min:
                    core_min = action
            limit = next_completion if next_completion < core_min else core_min
            if limit <= cycle:
                limit = cycle + 1

            # 4. Batch-run due (heap) and dirtied channels to the horizon.
            dirty = self._dirty_channels
            self._dirty_channels = 0
            while heap and heap[0][0] <= cycle:
                w, idx = heappop(heap)
                if w != wake[idx]:
                    continue  # stale entry superseded by a dirty re-run
                dirty &= ~(1 << idx)
                w = controllers[idx].run_until(cycle, limit)
                wake[idx] = w
                heappush(heap, (w, idx))
            while dirty:
                idx = (dirty & -dirty).bit_length() - 1
                dirty &= dirty - 1
                w = controllers[idx].run_until(cycle, limit)
                wake[idx] = w
                heappush(heap, (w, idx))

            # 5. Termination check — same ``core.done`` predicate the
            # polling oracle reads, so the two loops can never disagree
            # about when a core is finished.
            for core in cores:
                if not core.done:
                    break
            else:
                if not any(ctrl.pending for ctrl in controllers) and not any(
                    ctrl.completed_reads for ctrl in controllers
                ):
                    break
            if max_cycles is not None and cycle >= max_cycles:
                break

            # 6. Jump to the earliest future event.  core_next is still
            # exact here (fills land only in step 1, issue only in
            # step 2); completed_reads is sorted, so its head is the
            # earliest completion.
            while heap and heap[0][0] != wake[heap[0][1]]:
                heappop(heap)  # shed stale entries so the top is live
            nxt = heap[0][0] if heap else NEVER
            if core_min < nxt:
                nxt = core_min
            for ctrl in controllers:
                cr = ctrl.completed_reads
                if cr and cr[0][0] < nxt:
                    nxt = cr[0][0]
            cycle = nxt if nxt > cycle else cycle + 1

        end_cycle = max([cycle] + [ctrl.local_clock for ctrl in controllers])
        if sampler is not None:
            sampler.finalize(end_cycle, self)
        return self._finalize(end_cycle)

    # ------------------------------------------------------------------
    def _run_polling(self, max_cycles: Optional[int] = None) -> SimResult:
        """Reference event loop: re-scan every channel each iteration.

        Functionally identical to :meth:`run` (same ``run_until``
        batching, same horizons) but tracks wake cycles in a plain array
        scanned linearly instead of the min-heap.  Kept as the oracle
        for the engine-equivalence regression test; not used on the
        performance path.
        """
        cycle = 0
        cores = self.cores
        controllers = self.controllers
        wake = [0] * len(controllers)
        sampler = self.sampler
        while True:
            if sampler is not None:
                sampler.maybe_sample(cycle, self)
            # 1. Deliver completed demand fills due by now.
            next_completion = NEVER
            for ctrl in controllers:
                if not ctrl.completed_reads:
                    continue
                remaining = []
                for done_cycle, req in ctrl.completed_reads:
                    if done_cycle <= cycle:
                        core = self._demand_map.pop(req.req_id, None)
                        if core is not None:
                            core.on_fill_complete(req.req_id, done_cycle)
                    else:
                        remaining.append((done_cycle, req))
                        if done_cycle < next_completion:
                            next_completion = done_cycle
                ctrl.completed_reads = remaining

            # 2. Advance cores (held back under heavy backpressure).
            total_overflow = sum(len(c.overflow) for c in controllers)
            if total_overflow <= OVERFLOW_STALL_THRESHOLD:
                for core in cores:
                    while True:
                        event = core.try_advance(cycle)
                        if event is None:
                            break
                        self._process_access(core, event, cycle)

            # 3. External-event horizon for controller batching.
            limit = next_completion
            for core in cores:
                action = core.next_action_cycle(cycle)
                if action < limit:
                    limit = action
            if limit <= cycle:
                limit = cycle + 1

            # 4. Batch-run each due channel up to the horizon.
            dirty = self._dirty_channels
            self._dirty_channels = 0
            for idx, ctrl in enumerate(controllers):
                if wake[idx] <= cycle or dirty >> idx & 1:
                    wake[idx] = ctrl.run_until(cycle, limit)

            # 5. Termination check.
            if all(core.done for core in cores):
                if not any(ctrl.pending for ctrl in controllers) and not any(
                    ctrl.completed_reads for ctrl in controllers
                ):
                    break
            if max_cycles is not None and cycle >= max_cycles:
                break

            # 6. Advance to the next event.
            nxt = NEVER
            for w in wake:
                if w < nxt:
                    nxt = w
            for ctrl in controllers:
                for done_cycle, _ in ctrl.completed_reads:
                    if done_cycle < nxt:
                        nxt = done_cycle
            for core in cores:
                action = core.next_action_cycle(cycle)
                if action < nxt:
                    nxt = action
            cycle = nxt if nxt > cycle else cycle + 1

        end_cycle = max([cycle] + [ctrl.local_clock for ctrl in controllers])
        if sampler is not None:
            sampler.finalize(end_cycle, self)
        return self._finalize(end_cycle)

    # ------------------------------------------------------------------
    def _finalize(self, end_cycle: int) -> SimResult:
        for ctrl in self.controllers:
            ctrl.flush_background(end_cycle)
        merged = ControllerStats()
        for ctrl in self.controllers:
            merged.merge(ctrl.stats)
        if self._sanitize:
            check_finalize(self, merged)
        core_results = []
        for core, profile in zip(self.cores, self.workload.apps):
            finish = core.finish_cycle if core.finish_cycle is not None else end_cycle
            core_results.append(
                CoreResult(
                    core_id=core.core_id,
                    app_name=profile.name,
                    retired_instructions=core.retired,
                    finish_cycle=finish,
                    ipc=core.ipc(finish),
                )
            )
        dbi = self.hierarchy.dbi
        return SimResult(
            scheme_name=self.config.scheme.name,
            policy_name=self.config.policy.value,
            workload_name=self.workload.name,
            runtime_cycles=end_cycle,
            cores=core_results,
            controller=merged,
            power=self.accountant.breakdown(end_cycle),
            activation_histogram=dict(self.accountant.activations_by_granularity),
            llc=self.hierarchy.l2.stats,
            dirty_word_fractions=self.hierarchy.dirty_word_fractions(),
            dbi_proactive_writebacks=(
                dbi.proactive_writebacks if dbi is not None else 0
            ),
        )


def simulate(
    config: SystemConfig,
    workload: Workload,
    events_per_core: int,
    seed: Optional[int] = None,
    max_cycles: Optional[int] = None,
    warmup_events_per_core: Optional[int] = None,
    snapshot_dir: Optional[str] = None,
) -> SimResult:
    """Convenience one-shot: build a :class:`System` and run it."""
    system = System(
        config,
        workload,
        events_per_core,
        seed=seed,
        warmup_events_per_core=warmup_events_per_core,
        snapshot_dir=snapshot_dir,
    )
    return system.run(max_cycles)
