"""Epoch sampling: power, queue and progress time series.

Attach an :class:`EpochSampler` to a :class:`repro.sim.system.System`
to record how DRAM power, queue occupancy and instruction progress
evolve over a run — e.g. to see write-drain bursts as spikes of
activation power, or PRA flattening the write-I/O component.

The simulator is event-driven, so samples land on the first processed
cycle at or after each epoch boundary; every sample carries its actual
cycle, and energies are cumulative counters, so per-epoch power is
exact regardless of jitter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:
    from repro.sim.system import System

from repro.power.accounting import CATEGORIES


@dataclass
class EpochSample:
    """Cumulative counters observed at one sample point."""

    cycle: int
    energy_pj: Dict[str, float]
    read_queue: int
    write_queue: int
    retired_instructions: int

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_pj.values())


@dataclass
class EpochSeries:
    """Derived per-epoch metrics between two consecutive samples."""

    start_cycle: int
    end_cycle: int
    power_mw: Dict[str, float]
    avg_read_queue: float
    avg_write_queue: float
    ipc_contribution: float

    @property
    def total_power_mw(self) -> float:
        return sum(self.power_mw.values())


class EpochSampler:
    """Collects samples every ``epoch_cycles`` memory-clock cycles."""

    def __init__(self, epoch_cycles: int = 2000) -> None:
        if epoch_cycles <= 0:
            raise ValueError("epoch length must be positive")
        self.epoch_cycles = epoch_cycles
        self.samples: List[EpochSample] = []
        self._next_boundary = 0

    def maybe_sample(self, cycle: int, system: "System") -> None:
        """Record a sample if ``cycle`` crossed the next boundary."""
        if cycle < self._next_boundary:
            return
        self._next_boundary = (cycle // self.epoch_cycles + 1) * self.epoch_cycles
        self.samples.append(
            EpochSample(
                cycle=cycle,
                energy_pj=dict(system.accountant.energy_pj),
                read_queue=sum(len(c.read_q) for c in system.controllers),
                write_queue=sum(len(c.write_q) for c in system.controllers),
                retired_instructions=sum(c.retired for c in system.cores),
            )
        )

    def finalize(self, cycle: int, system: "System") -> None:
        """Force a final sample at the end of the run."""
        self._next_boundary = 0
        self.maybe_sample(cycle, system)

    # ------------------------------------------------------------------
    def series(self, tck_ns: float, cpu_per_mem_clock: float = 4.0) -> List[EpochSeries]:
        """Convert cumulative samples into per-epoch metrics."""
        out: List[EpochSeries] = []
        for prev, curr in zip(self.samples, self.samples[1:]):
            span_cycles = curr.cycle - prev.cycle
            if span_cycles <= 0:
                continue
            span_ns = span_cycles * tck_ns
            power = {
                cat: (curr.energy_pj[cat] - prev.energy_pj[cat]) / span_ns
                for cat in CATEGORIES
            }
            retired = curr.retired_instructions - prev.retired_instructions
            out.append(
                EpochSeries(
                    start_cycle=prev.cycle,
                    end_cycle=curr.cycle,
                    power_mw=power,
                    avg_read_queue=(prev.read_queue + curr.read_queue) / 2,
                    avg_write_queue=(prev.write_queue + curr.write_queue) / 2,
                    ipc_contribution=retired / (span_cycles * cpu_per_mem_clock),
                )
            )
        return out
