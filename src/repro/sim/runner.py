"""Experiment runner: cached simulations and paper-style derived metrics.

The evaluation figures need many (workload, scheme, policy) runs plus
single-application "alone" runs for weighted speedup.  The runner
caches results so that e.g. the Figure 12 and Figure 13 benches share
the same simulations.

Run length is controlled by ``events_per_core`` (memory instructions
per core).  The ``REPRO_EVENTS`` environment variable overrides the
default, so benchmark fidelity can be scaled up without code changes.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.sim.pool import SimPool

from repro.controller.policies import RowPolicy
from repro.core.schemes import BASELINE, Scheme, by_name
from repro.cpu.metrics import weighted_speedup
from repro.sim.config import SystemConfig
from repro.sim.results import SimResult
from repro.sim.snapshot import resolve_fingerprint
from repro.sim.system import System
from repro.workloads.mixes import Workload, workload as lookup_workload

#: Default memory instructions per core per run.
DEFAULT_EVENTS_PER_CORE = 20_000


def default_events_per_core() -> int:
    """Run length, overridable via the ``REPRO_EVENTS`` env variable."""
    value = os.environ.get("REPRO_EVENTS")
    if value is None:
        return DEFAULT_EVENTS_PER_CORE
    events = int(value)
    if events <= 0:
        raise ValueError("REPRO_EVENTS must be positive")
    return events


#: Runner-wide invariants shipped to workers once per batch:
#: (base_config, seed, warmup, snapshot_dir).
RunnerContext = Tuple[SystemConfig, int, Optional[int], Optional[str]]

#: One run: (workload, scheme_name, policy_value, events_per_core).
#: The workload object travels whole (``alone`` runs use ad-hoc
#: single-app workloads that no registry lookup could resolve); the
#: scheme and policy travel as their names — the config delta.
RunSpec = Tuple[Workload, str, str, int]


def _simulate_task(ctx: RunnerContext, spec: RunSpec) -> SimResult:
    """One simulation; module-level so worker processes can unpickle
    it.  ``ctx`` carries the runner-wide invariants (shipped once per
    worker); :class:`SimResult` is a plain dataclass tree and crosses
    the process boundary intact.
    """
    base_config, seed, warmup, snapshot_dir = ctx
    wl, scheme_name, policy_value, events = spec
    config = base_config.with_scheme(by_name(scheme_name)).with_policy(
        RowPolicy(policy_value)
    )
    system = System(
        config,
        wl,
        events,
        seed=seed,
        warmup_events_per_core=warmup,
        snapshot_dir=snapshot_dir,
    )
    return system.run()


#: Per-process runner context for throwaway ``multiprocessing`` pools;
#: assigned by :func:`_init_runner_worker` before any task runs.
_WORKER_CTX: List[Optional[RunnerContext]] = [None]


def _init_runner_worker(ctx: RunnerContext) -> None:
    """Pool initializer: receive the runner-wide invariants once."""
    _WORKER_CTX[0] = ctx


def _simulate_in_worker(spec: RunSpec) -> SimResult:
    """Worker-side task body for ``Pool.map`` (context from initializer)."""
    ctx = _WORKER_CTX[0]
    if ctx is None:
        raise RuntimeError("runner worker used before initialization")
    return _simulate_task(ctx, spec)


class ExperimentRunner:
    """Runs and caches full-system simulations."""

    def __init__(
        self,
        events_per_core: Optional[int] = None,
        base_config: Optional[SystemConfig] = None,
        seed: int = 1,
        warmup_events_per_core: Optional[int] = None,
        snapshot_dir: Optional[str] = None,
        pool: "Optional[SimPool]" = None,
    ) -> None:
        """Configure shared run parameters for all cached simulations.

        ``snapshot_dir`` opts the runner into the on-disk warm-state
        snapshot layer, extending warm-state reuse across
        :meth:`run_many` worker processes (which share no in-process
        cache) and across interpreter invocations.

        ``pool`` routes every uncached simulation through a persistent
        :class:`repro.sim.pool.SimPool`: one set of warm workers
        (snapshot + trace caches intact) serves :meth:`run`,
        :meth:`run_many` and every later batch, with results cached in
        this runner as usual.  Bit-identical to in-process execution.
        """
        self.events_per_core = (
            default_events_per_core() if events_per_core is None else events_per_core
        )
        self.base_config = base_config if base_config is not None else SystemConfig()
        self.seed = seed
        self.warmup_events_per_core = warmup_events_per_core
        self.snapshot_dir = snapshot_dir
        self.pool = pool
        self._results: Dict[Tuple, SimResult] = {}

    # ------------------------------------------------------------------
    def _context(self) -> RunnerContext:
        """The runner-wide invariants every execution backend shares."""
        return (
            self.base_config,
            self.seed,
            self.warmup_events_per_core,
            self.snapshot_dir,
        )

    def _spec_group_key(self, spec: RunSpec) -> tuple:
        """Warm fingerprint of a spec, for pool cache-affinity grouping."""
        wl, scheme_name, policy_value, _events = spec
        config = self.base_config.with_scheme(by_name(scheme_name)).with_policy(
            RowPolicy(policy_value)
        )
        return resolve_fingerprint(config, wl, self.seed, self.warmup_events_per_core)

    # ------------------------------------------------------------------
    def run(
        self,
        workload: "Workload | str",
        scheme: Scheme = BASELINE,
        policy: RowPolicy = RowPolicy.RELAXED_CLOSE,
        events_per_core: Optional[int] = None,
    ) -> SimResult:
        """Run (or fetch from cache) one simulation."""
        wl = lookup_workload(workload) if isinstance(workload, str) else workload
        events = self.events_per_core if events_per_core is None else events_per_core
        key = (wl.name, tuple(wl.app_names), scheme.name, policy.value, events)
        result = self._results.get(key)
        if result is None:
            spec: RunSpec = (wl, scheme.name, policy.value, events)
            if self.pool is not None:
                result = self.pool.map(
                    _simulate_task, [spec], shared=self._context()
                )[0]
            else:
                result = _simulate_task(self._context(), spec)
            self._results[key] = result
        return result

    # ------------------------------------------------------------------
    def run_many(
        self,
        specs: Sequence[Tuple],
        workers: Optional[int] = None,
        events_per_core: Optional[int] = None,
    ) -> List[SimResult]:
        """Run a batch of ``(workload, scheme, policy)`` specs.

        Uncached specs run on the runner's persistent pool when one is
        attached (warm workers, fingerprint-grouped scheduling), else
        on a throwaway process pool with ``workers`` > 1, else
        serially in-process — all three bit-identical (the same
        deterministic seed governs every backend).  Everything lands
        in the shared cache and the results come back in spec order.
        Duplicate specs are simulated once.
        """
        if workers is not None and workers < 1:
            raise ValueError("workers must be a positive integer")
        events = self.events_per_core if events_per_core is None else events_per_core
        keys: List[Tuple] = []
        todo: Dict[Tuple, RunSpec] = {}
        for spec in specs:
            wl, scheme, policy = spec
            wl = lookup_workload(wl) if isinstance(wl, str) else wl
            key = (wl.name, tuple(wl.app_names), scheme.name, policy.value, events)
            keys.append(key)
            if key not in self._results and key not in todo:
                todo[key] = (wl, scheme.name, policy.value, events)
        if todo:
            tasks = list(todo.values())
            ctx = self._context()
            if self.pool is not None:
                results = self.pool.map(
                    _simulate_task,
                    tasks,
                    shared=ctx,
                    group_keys=[self._spec_group_key(task) for task in tasks],
                )
            elif workers is not None and workers > 1 and len(tasks) > 1:
                with multiprocessing.Pool(
                    processes=min(workers, len(tasks)),
                    initializer=_init_runner_worker,
                    initargs=(ctx,),
                ) as mp_pool:
                    results = mp_pool.map(_simulate_in_worker, tasks)
            else:
                results = [_simulate_task(ctx, task) for task in tasks]
            for key, result in zip(todo, results):
                self._results[key] = result
        return [self._results[key] for key in keys]

    # ------------------------------------------------------------------
    def alone_ipcs(
        self,
        workload: "Workload | str",
        policy: RowPolicy = RowPolicy.RELAXED_CLOSE,
    ) -> List[float]:
        """Baseline-alone IPC of each app in the workload (Eq. 3 denominators)."""
        wl = lookup_workload(workload) if isinstance(workload, str) else workload
        ipcs = []
        for app in wl.apps:
            solo = Workload(name=f"{app.name}-alone", apps=(app,))
            result = self.run(solo, BASELINE, policy)
            ipcs.append(result.cores[0].ipc)
        return ipcs

    def weighted_speedup(
        self,
        workload: "Workload | str",
        scheme: Scheme,
        policy: RowPolicy = RowPolicy.RELAXED_CLOSE,
    ) -> float:
        """Equation 3 over baseline-alone IPCs."""
        wl = lookup_workload(workload) if isinstance(workload, str) else workload
        shared = self.run(wl, scheme, policy).ipcs
        alone = self.alone_ipcs(wl, policy)
        return weighted_speedup(shared, alone)

    def normalized_performance(
        self,
        workload: "Workload | str",
        scheme: Scheme,
        policy: RowPolicy = RowPolicy.RELAXED_CLOSE,
    ) -> float:
        """Weighted speedup of ``scheme`` over the baseline (Fig. 13a)."""
        ws = self.weighted_speedup(workload, scheme, policy)
        ws_base = self.weighted_speedup(workload, BASELINE, policy)
        return ws / ws_base

    # ------------------------------------------------------------------
    def normalized_power(
        self,
        workload: "Workload | str",
        scheme: Scheme,
        policy: RowPolicy = RowPolicy.RELAXED_CLOSE,
        category: Optional[str] = None,
    ) -> float:
        """Scheme/baseline DRAM power ratio (Fig. 12), optionally per category."""
        result = self.run(workload, scheme, policy)
        base = self.run(workload, BASELINE, policy)
        if category is None:
            return result.avg_power_mw / base.avg_power_mw
        base_mw = base.power.power_mw(category)
        if base_mw == 0:
            return 0.0
        return result.power.power_mw(category) / base_mw

    def normalized_energy(
        self,
        workload: "Workload | str",
        scheme: Scheme,
        policy: RowPolicy = RowPolicy.RELAXED_CLOSE,
    ) -> float:
        """Scheme/baseline DRAM-energy ratio (Fig. 13b)."""
        result = self.run(workload, scheme, policy)
        base = self.run(workload, BASELINE, policy)
        return result.total_energy_mj / base.total_energy_mj

    def normalized_edp(
        self,
        workload: "Workload | str",
        scheme: Scheme,
        policy: RowPolicy = RowPolicy.RELAXED_CLOSE,
    ) -> float:
        """Scheme/baseline energy-delay-product ratio (Fig. 13c)."""
        result = self.run(workload, scheme, policy)
        base = self.run(workload, BASELINE, policy)
        return result.edp / base.edp


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("need at least one value")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geometric mean needs positive values")
        product *= v
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    """Arithmetic mean (the averaging the paper uses for its bars)."""
    if not values:
        raise ValueError("need at least one value")
    return sum(values) / len(values)
