"""System assembly, configuration, experiment running and results."""

from repro.sim.config import (
    CacheConfig,
    ControllerConfig,
    CoreConfig,
    SystemConfig,
)
from repro.sim.results import CoreResult, SimResult, normalized
from repro.sim.runner import (
    DEFAULT_EVENTS_PER_CORE,
    ExperimentRunner,
    arithmetic_mean,
    default_events_per_core,
    geometric_mean,
)
from repro.sim.sampling import EpochSample, EpochSampler, EpochSeries
from repro.sim.snapshot import SNAPSHOTS, SnapshotCache, WarmSnapshot
from repro.sim.sweep import Sweep
from repro.sim.system import OVERFLOW_STALL_THRESHOLD, System, simulate
from repro.sim.validate import ValidationError, validate_result

__all__ = [
    "arithmetic_mean",
    "CacheConfig",
    "ControllerConfig",
    "CoreConfig",
    "CoreResult",
    "DEFAULT_EVENTS_PER_CORE",
    "default_events_per_core",
    "EpochSample",
    "EpochSampler",
    "EpochSeries",
    "ExperimentRunner",
    "geometric_mean",
    "normalized",
    "OVERFLOW_STALL_THRESHOLD",
    "simulate",
    "SimResult",
    "SNAPSHOTS",
    "SnapshotCache",
    "Sweep",
    "WarmSnapshot",
    "System",
    "SystemConfig",
    "ValidationError",
    "validate_result",
]
