"""Persistent sweep service: a warm pool of long-lived sim workers.

Every broad evaluation in this repo — the figure/sensitivity benchmark
suites, ``Sweep.run`` grids, ``ExperimentRunner.run_many`` batches —
fans simulations out over processes.  A throwaway
``multiprocessing.Pool`` per sweep makes each worker pay the full cold
start again: interpreter boot and package import (under the spawn
start method), trace-block compilation per workload, and a cache
warmup per warm fingerprint.  :class:`SimPool` keeps the workers
alive instead:

* **warm workers** — each worker process owns the ordinary in-process
  caches (:data:`repro.sim.snapshot.SNAPSHOTS`, the compiled
  trace-block LRU) and keeps them across tasks, batches and sweeps, so
  only the first task of a (workload, seed, warmup, cache-geometry)
  fingerprint ever replays warmup;
* **fingerprint-batched scheduling** — :meth:`SimPool.map` accepts one
  group key per task (the sweep layer passes
  :func:`repro.sim.snapshot.warm_fingerprint`); tasks of one group are
  assigned to one worker back to back, so consecutive tasks hit the
  worker's warm snapshot and block caches instead of spreading each
  fingerprint over every worker;
* **streaming, deterministic results** — workers stream results back
  as they finish; the parent restores submission order at the merge
  (:meth:`SimPool.stream` yields them in order as soon as the next
  index is available), so pooled output is row-for-row identical to a
  serial run no matter the worker count or completion order;
* **chunked submission with backpressure** — at most
  ``max_inflight`` tasks are enqueued per worker; further tasks are
  fed as results return, so a million-point grid never materializes in
  the task queues;
* **shared context per batch** — the per-batch invariants (base
  config, run length, seed, snapshot dir) cross the process boundary
  once per worker per batch, not once per task;
* **clean shutdown and reuse** — one pool serves any number of
  batches (the benchmark conftest shares one across all figure
  suites); ``close()`` / the context manager tears the workers down,
  and a worker death surfaces as :class:`SimPoolBrokenError` naming
  the worker instead of a hang.

The serial in-process path (``SimPool(...)`` not involved at all) is
the oracle twin: pooled results must be bit-identical to it, which
``tests/test_pool.py`` pins across schemes, including DBI schemes and
the on-disk snapshot layer.
"""

from __future__ import annotations

import atexit
import multiprocessing
import traceback
from multiprocessing import connection as mp_connection
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

# Oracle-parity declaration enforced by reprolint: running a batch
# through the pool is the fast path; mapping the same task function
# over the same payloads serially in-process is the oracle it must
# match bit-for-bit (see e.g. ``repro.sim.sweep.Sweep.run`` with
# ``workers=None``).
REPRO_FAST_PATH = True
ORACLE_TWIN = "repro.sim.sweep._run_point"
ORACLE_TESTS = ("tests/test_pool.py",)

#: A pool task function: ``fn(shared, payload) -> result``.  Must be a
#: module-level callable (pickled by reference into the workers).
TaskFn = Callable[[Any, Any], Any]


class SimPoolError(RuntimeError):
    """Base class for pool failures."""


class SimPoolBrokenError(SimPoolError):
    """A worker died and its restart budget is exhausted."""


class SimPoolTaskError(SimPoolError):
    """A task raised inside a worker; carries the remote traceback."""

    def __init__(self, index: int, remote_traceback: str) -> None:
        super().__init__(
            f"task {index} failed in a pool worker:\n{remote_traceback}"
        )
        self.index = index
        self.remote_traceback = remote_traceback


def _worker_main(
    worker_id: int,
    task_q: "multiprocessing.Queue",
    result_conn: "mp_connection.Connection",
) -> None:
    """Worker loop: execute tasks until the ``None`` sentinel arrives.

    The process-wide caches (warm snapshots, compiled trace blocks)
    live in ordinary module globals, so simply *staying alive* between
    tasks is what makes the worker warm.  Batch headers carry the task
    function and the batch-shared context once; task messages then
    reference the batch by id.

    Results go back over a **per-worker pipe**, sent synchronously from
    this thread.  A shared ``multiprocessing.Queue`` would ship them
    through a background feeder thread holding a process-shared write
    lock — a worker crashing between tasks can then die mid-send *while
    holding that lock*, wedging every other worker's results forever.
    With one single-writer pipe per worker, a crash can corrupt only
    the crasher's own channel, which the parent simply replaces.
    """
    batches: Dict[int, Tuple[TaskFn, Any]] = {}
    while True:
        msg = task_q.get()
        if msg is None:
            break
        kind = msg[0]
        if kind == "shared":
            _, batch_id, fn, shared = msg
            batches[batch_id] = (fn, shared)
            continue
        if kind == "forget":
            batches.pop(msg[1], None)
            continue
        _, batch_id, index, payload = msg
        fn, shared = batches[batch_id]
        try:
            result = fn(shared, payload)
        except BaseException:
            result_conn.send(
                (batch_id, worker_id, index, False, traceback.format_exc())
            )
        else:
            result_conn.send((batch_id, worker_id, index, True, result))


class SimPool:
    """Persistent pool of warm simulation workers.

    ``start_method`` selects the multiprocessing start method for the
    workers (``None`` uses the platform default).  ``max_inflight``
    bounds how many tasks sit in each worker's queue at once; the rest
    are fed as results stream back (backpressure).

    ``max_restarts`` bounds self-healing: a worker that dies is
    replaced by a fresh process (its batch context re-shipped and its
    uncompleted tasks resubmitted) up to ``max_restarts`` times *per
    worker slot* before the pool declares itself broken with
    :class:`SimPoolBrokenError`.  A task that deterministically kills
    its worker therefore fails after a bounded number of retries
    instead of looping.  ``worker_restarts`` (also in :meth:`stats`)
    counts replacements over the pool's lifetime.
    """

    def __init__(
        self,
        workers: int = 2,
        max_inflight: int = 2,
        start_method: Optional[str] = None,
        max_restarts: int = 2,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be a positive integer")
        if max_inflight < 1:
            raise ValueError("max_inflight must be a positive integer")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        self.workers = workers
        self.max_inflight = max_inflight
        self.max_restarts = max_restarts
        self._ctx = multiprocessing.get_context(start_method)
        self._task_qs: List["multiprocessing.Queue"] = []
        self._result_readers: List["mp_connection.Connection"] = []
        self._procs: List["multiprocessing.process.BaseProcess"] = []
        for wid in range(workers):
            task_q = self._ctx.Queue()
            self._task_qs.append(task_q)
            self._result_readers.append(None)  # type: ignore[arg-type]
            self._procs.append(self._spawn(wid, task_q))
        self._closed = False
        self._next_batch_id = 0
        #: Tasks completed over the pool's lifetime (observability).
        self.tasks_done = 0
        #: Dead workers replaced over the pool's lifetime.
        self.worker_restarts = 0
        self._restarts_by_worker = [0] * workers

    def _spawn(
        self, wid: int, task_q: "multiprocessing.Queue"
    ) -> "multiprocessing.process.BaseProcess":
        """Start one worker reading ``task_q``, with a fresh result pipe."""
        reader, writer = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, task_q, writer),
            daemon=True,
        )
        proc.start()
        # Drop the parent's copy of the write end so only the worker
        # (and workers forked later, which inherit open fds) holds it.
        writer.close()
        self._result_readers[wid] = reader
        return proc

    def stats(self) -> Dict[str, int]:
        """Lifetime observability counters (cheap, side-effect free)."""
        return {
            "workers": self.workers,
            "tasks_done": self.tasks_done,
            "worker_restarts": self.worker_restarts,
            "max_restarts": self.max_restarts,
        }

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has torn the workers down."""
        return self._closed

    def __enter__(self) -> "SimPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut the workers down; idempotent."""
        if self._closed:
            return
        self._closed = True
        for task_q in self._task_qs:
            try:
                task_q.put(None)
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for task_q in self._task_qs:
            task_q.close()
        for reader in self._result_readers:
            try:
                reader.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    def _assign(
        self,
        count: int,
        group_keys: Optional[Sequence[Hashable]],
    ) -> List[List[int]]:
        """Deterministic task-index plan, one ordered list per worker.

        With group keys, indices sharing a key form one group; groups
        go whole to the currently least-loaded worker (largest group
        first, ties broken by first appearance), so every fingerprint
        warms exactly one worker.  Without keys, indices are split into
        contiguous runs, preserving grid locality.
        """
        if count == 0:
            return [[] for _ in range(self.workers)]
        if group_keys is None:
            per = -(-count // self.workers)  # ceil division
            runs: List[List[int]] = [[] for _ in range(self.workers)]
            for wid in range(self.workers):
                start = wid * per
                if start >= count:
                    break
                runs[wid] = list(range(start, min(start + per, count)))
            return runs
        if len(group_keys) != count:
            raise ValueError("need exactly one group key per payload")
        groups: Dict[Hashable, List[int]] = {}
        for index, key in enumerate(group_keys):
            groups.setdefault(key, []).append(index)
        ordered = sorted(
            groups.values(), key=lambda members: (-len(members), members[0])
        )
        plan: List[List[int]] = [[] for _ in range(self.workers)]
        loads = [0] * self.workers
        for members in ordered:
            target = min(range(self.workers), key=lambda w: (loads[w], w))
            plan[target].extend(members)
            loads[target] += len(members)
        # Within one worker, run groups in first-appearance order so a
        # multi-group worker still sweeps each fingerprint contiguously.
        return plan

    # ------------------------------------------------------------------
    def _execute(
        self,
        fn: TaskFn,
        payloads: Sequence[Any],
        shared: Any,
        group_keys: Optional[Sequence[Hashable]],
    ) -> Iterator[Tuple[int, Any]]:
        """Yield ``(index, result)`` pairs in completion order."""
        if self._closed:
            raise SimPoolError("pool is closed")
        count = len(payloads)
        if count == 0:
            return
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        plan = self._assign(count, group_keys)
        cursors = [0] * self.workers  # next plan position per worker
        #: Submitted-but-uncompleted indices per worker, submission
        #: order; ``len`` is the worker's inflight count, and it is the
        #: exact resubmission list when the worker has to be replaced.
        pending: List[List[int]] = [[] for _ in range(self.workers)]
        done = [False] * count
        outstanding = 0
        for wid in range(self.workers):
            if not plan[wid]:
                continue
            self._task_qs[wid].put(("shared", batch_id, fn, shared))
            while len(pending[wid]) < self.max_inflight and cursors[wid] < len(
                plan[wid]
            ):
                index = plan[wid][cursors[wid]]
                self._task_qs[wid].put(("task", batch_id, index, payloads[index]))
                cursors[wid] += 1
                pending[wid].append(index)
                outstanding += 1
        try:
            while outstanding:
                ready = mp_connection.wait(list(self._result_readers), timeout=1.0)
                if not ready:
                    self._heal_dead_workers(batch_id, fn, shared, payloads, pending)
                    continue
                for reader in ready:
                    try:
                        bid, wid, index, ok, result = reader.recv()
                    except (EOFError, OSError):
                        # The writer died with its pipe drained; the
                        # budget check replaces it (or raises).
                        self._heal_dead_workers(
                            batch_id, fn, shared, payloads, pending
                        )
                        continue
                    if bid != batch_id:
                        # Straggler from an abandoned earlier batch.
                        continue
                    if done[index]:
                        # Duplicate: a worker delivered this result just
                        # before dying and the replacement recomputed
                        # it.  Deterministic tasks make both copies
                        # identical; keep the first, drop this one.
                        continue
                    done[index] = True
                    if index in pending[wid]:
                        pending[wid].remove(index)
                    outstanding -= 1
                    self.tasks_done += 1
                    if cursors[wid] < len(plan[wid]):
                        nxt = plan[wid][cursors[wid]]
                        self._task_qs[wid].put(("task", batch_id, nxt, payloads[nxt]))
                        cursors[wid] += 1
                        pending[wid].append(nxt)
                        outstanding += 1
                    if not ok:
                        raise SimPoolTaskError(index, result)
                    yield index, result
        except SimPoolError:
            # Broken pool or failed task: the batch cannot complete
            # deterministically; tear the workers down so callers
            # cannot accidentally reuse half-poisoned queues.
            self.close()
            raise
        finally:
            if not self._closed:
                for wid in range(self.workers):
                    if plan[wid]:
                        self._task_qs[wid].put(("forget", batch_id))

    def _heal_dead_workers(
        self,
        batch_id: int,
        fn: TaskFn,
        shared: Any,
        payloads: Sequence[Any],
        pending: List[List[int]],
    ) -> None:
        """Replace dead workers within budget, else raise.

        A replacement gets a *fresh* task queue (the dead process may
        have half-consumed the old one, so its state is ambiguous), the
        current batch's context header, and every task the dead worker
        had been handed but never finished — in the original
        submission order, so fingerprint runs stay contiguous and the
        batch completes with the exact same result set.
        """
        for wid, proc in enumerate(self._procs):
            if proc.is_alive():
                continue
            if self._restarts_by_worker[wid] >= self.max_restarts:
                raise SimPoolBrokenError(
                    f"pool worker {wid} died (exit code {proc.exitcode}) "
                    f"with its restart budget exhausted "
                    f"({self.max_restarts} restarts); batch cannot complete"
                )
            self._restarts_by_worker[wid] += 1
            self.worker_restarts += 1
            old_q = self._task_qs[wid]
            try:
                old_q.close()
                old_q.cancel_join_thread()
            except (OSError, ValueError):
                pass
            try:
                self._result_readers[wid].close()
            except OSError:
                pass
            task_q = self._ctx.Queue()
            self._task_qs[wid] = task_q
            self._procs[wid] = self._spawn(wid, task_q)
            # Re-ship the batch context, then the unfinished tasks.  A
            # task the dead worker completed-but-delivered races as a
            # duplicate; _execute drops duplicates by index.
            task_q.put(("shared", batch_id, fn, shared))
            for index in pending[wid]:
                task_q.put(("task", batch_id, index, payloads[index]))

    # ------------------------------------------------------------------
    def stream(
        self,
        fn: TaskFn,
        payloads: Sequence[Any],
        shared: Any = None,
        group_keys: Optional[Sequence[Hashable]] = None,
    ) -> Iterator[Any]:
        """Yield results *in submission order* as they become ready.

        Workers stream completions back in arbitrary order; this
        buffers only the out-of-order prefix and releases each result
        the moment every earlier index has arrived — a deterministic
        merge with bounded latency, not a tail barrier.
        """
        ready: Dict[int, Any] = {}
        emit = 0
        for index, result in self._execute(fn, payloads, shared, group_keys):
            ready[index] = result
            while emit in ready:
                yield ready.pop(emit)
                emit += 1

    def map(
        self,
        fn: TaskFn,
        payloads: Sequence[Any],
        shared: Any = None,
        group_keys: Optional[Sequence[Hashable]] = None,
    ) -> List[Any]:
        """Run a batch and return all results in submission order."""
        results: List[Any] = [None] * len(payloads)
        for index, result in self._execute(fn, payloads, shared, group_keys):
            results[index] = result
        return results

    def map_groups(
        self,
        fn: TaskFn,
        groups: Sequence[Sequence[Any]],
        shared: Any = None,
        group_keys: Optional[Sequence[Hashable]] = None,
    ) -> List[Any]:
        """Lane-group task mode: one task per *group* of items.

        Each payload is a whole group (e.g. a batch-kernel lane group —
        see :func:`repro.sim.batch._run_lane_group`), so a single task
        message ships N grid points to one warm worker and the worker
        amortizes construction and event-loop overhead across the whole
        group instead of paying per-point IPC.  ``fn(shared, group)``
        must return one result per group item, in group order; the
        flattened per-item results come back in submission order, so
        callers see exactly the rows ``map`` over the flattened items
        would have produced.
        """
        per_group = self.map(fn, groups, shared=shared, group_keys=group_keys)
        flat: List[Any] = []
        for group, result in zip(groups, per_group):
            if not isinstance(result, (list, tuple)) or len(result) != len(group):
                raise SimPoolError(
                    "map_groups task must return one result per group item "
                    f"(got {type(result).__name__} for a group of {len(group)})"
                )
            flat.extend(result)
        return flat


# ----------------------------------------------------------------------
#: Process-wide shared pool (CLI and ad-hoc callers); created lazily.
_SHARED_POOL: Optional[SimPool] = None


def shared_pool(workers: int = 2) -> SimPool:
    """Return the process-wide :class:`SimPool`, creating it on demand.

    A live shared pool is reused even if ``workers`` differs (the pool
    is a service, not a per-call resource); close it first to resize.
    """
    global _SHARED_POOL
    if _SHARED_POOL is None or _SHARED_POOL.closed:
        _SHARED_POOL = SimPool(workers=workers)
    return _SHARED_POOL


def close_shared_pool() -> None:
    """Tear down the process-wide pool (idempotent; atexit-registered)."""
    global _SHARED_POOL
    if _SHARED_POOL is not None:
        _SHARED_POOL.close()
        _SHARED_POOL = None


atexit.register(close_shared_pool)
