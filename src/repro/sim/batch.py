"""Lane-parallel batch kernel: advance N grid points through one loop.

A sweep grid point is one (config, workload) simulation.  The scalar
path builds a :class:`~repro.sim.system.System` per point and runs its
event loop to completion before touching the next point; at screening
fidelity (small event counts) most of the wall time is construction and
interpreter overhead, not scheduling work.  This module changes the
*unit of work*: a :class:`BatchSystem` holds N points as *lanes* and
drives them all through one shared event loop.

* **Lane-major timing state.**  Each channel index gets one
  :class:`~repro.dram.soa_batch.BatchTimingCore` slab — ``TimingCore``'s
  flat vectors with a leading lane dimension, bulk-allocated as
  whole-array ops (numpy via the ``.[fast]`` extra, pure-list fallback
  with identical semantics; :data:`HAVE_NUMPY` is the loud-skip shim).
  Every lane's controllers run against lane-sliced views (real
  ``TimingCore`` objects aliasing the slab rows), so the scheduler hot
  path is byte-for-byte the scalar one and bit-identity holds by
  construction.
* **Shared wake heap keyed ``(cycle, lane)``.**  Popping the heap
  advances the earliest-due lane by exactly one pass of the scalar
  engine's six-phase loop body (:meth:`_Lane.advance` transcribes
  ``System.run``), then re-keys it at its next event cycle.  Each
  lane's pass sequence is identical to its solo run; the heap only
  interleaves lanes, it never reorders one lane's events.
* **Cohort stepping.**  All lanes waking at the same cycle pop
  together as a *cohort*.  Lanes whose pass would provably do nothing
  but probe idle controllers are screened out column-wise: the slab
  ingredients of the controller pre-issue screen
  (:meth:`~repro.controller.memctrl.ChannelController.issue_screen`)
  — open-bank bits, power-down residency, refresh horizons — are
  evaluated for the whole cohort with one array op each
  (:func:`~repro.dram.soa_batch.open_row_hits` /
  :func:`~repro.dram.soa_batch.power_down_resident` /
  :func:`~repro.dram.soa_batch.refresh_due`), and screened lanes are
  re-keyed at the exact wake hint the scalar probe would have
  computed, without entering ``step()`` at all.  Only lanes with real
  work (or unscreenable shapes) drop into the scalar engine.
* **Shared construction.**  Lanes are built in warm-fingerprint groups:
  the first lane of a fingerprint builds (or disk-loads) the warm
  snapshot, the rest restore from the in-process cache — copy-on-write
  (``System(cow_restore=True)``), so N lanes share one snapshot's
  per-set state until they actually diverge.  Compiled
  :class:`~repro.workloads.synthetic.TraceBlocks` are shared through
  the existing block cache.

The scalar engine remains the oracle: every lane's
:class:`~repro.sim.results.SimResult` must equal its serial run
bit-for-bit (``tests/test_batch.py`` pins this across schemes,
backends, and mixed snapshot-restored/cold batches).

Entry points: :class:`BatchSystem` directly, :func:`simulate_batch`
for one-shot use, ``Sweep.run(batch=N)`` for grids, and
:func:`_run_lane_group` as the :class:`~repro.sim.pool.SimPool` task
body that ships whole lane-groups to warm workers.
"""

from __future__ import annotations

import gc
from collections import OrderedDict
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.cpu.core_model import NEVER
from repro.dram.soa import TimingCore
from repro.dram.soa_batch import (
    HAVE_NUMPY,
    BatchTimingCore,
    decay_timers,
    next_wake_min,
    open_row_hits,
    power_down_resident,
    refresh_due,
)
from repro.sim.config import SystemConfig
from repro.sim.results import SimResult
from repro.sim.snapshot import default_warmup, warm_fingerprint
from repro.sim.sweep import SweepContext, _apply_point
from repro.sim.system import OVERFLOW_STALL_THRESHOLD, System
from repro.workloads.mixes import Workload
from repro.workloads.mixes import workload as lookup_workload

__all__ = ["HAVE_NUMPY", "BatchSystem", "simulate_batch"]

# Oracle-parity declaration enforced by reprolint: the batch event loop
# is a fast path; the scalar ``System.run`` is the oracle every lane
# must match bit-for-bit.
REPRO_FAST_PATH = True
ORACLE_TWIN = "repro.sim.system.System.run"
ORACLE_TESTS = ("tests/test_batch.py",)

# COW contract for the aliasing pass (repro.analysis.cowcheck): the
# TimingCore views slab.lane() returns alias slab rows — this module
# may read through them freely but must never mutate one in place
# (mutation belongs to the controller that owns the lane's channel).
REPRO_COW_PROTOCOL = {
    "shared_roots": (),
    "shared_calls": ("lane",),
    "privatizers": (),
}

#: One lane: a specialized config plus its workload (or workload name).
LaneSpec = Tuple[SystemConfig, Union[Workload, str]]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.memctrl import ChannelController


def _screened_wake(
    ctrl: "ChannelController",
    local: int,
    hit: int,
    horizon: int,
    pd_all: Optional[bool],
) -> Optional[Tuple[int, bool]]:
    """Column-fed twin of ``ChannelController.issue_screen``.

    Same predicate, same check order; the slab-backed ingredients
    (open-bank union ``hit``, refresh ``horizon``, power-down
    residency ``pd_all``) arrive precomputed by the cohort column ops
    instead of being re-read per controller.  Returns ``(wake,
    is_idle_shape)`` — the exact hint a ``step`` at ``local`` would
    return plus which screenable shape matched (busy bus vs empty
    idle) — or ``None`` when a real step is needed.  Any edit here
    must mirror ``issue_screen`` (and vice versa); the cohort identity
    suite pins the two together end to end.
    """
    if ctrl.overflow:
        return None
    bus_free = ctrl.channel.cmd_bus_free
    if local < bus_free:
        return bus_free, False
    if ctrl.read_q._count or ctrl.write_q._count:
        return None
    if ctrl.draining:
        return None
    if hit:
        return None
    if ctrl._uses_power_down and not pd_all:
        return None
    if local >= horizon:
        return None
    return horizon, True


class _Lane:
    """One grid point's System plus its private event-loop state."""

    __slots__ = ("index", "system", "cycle", "wake", "heap", "core_next", "result")

    def __init__(self, index: int, system: System) -> None:
        self.index = index
        self.system = system
        self.cycle = 0
        controllers = system.controllers
        #: Authoritative next-wake cycle per controller (heap entries
        #: that disagree are stale) — same contract as ``System.run``.
        self.wake = [0] * len(controllers)
        self.heap = [(0, idx) for idx in range(len(controllers))]
        heapify(self.heap)
        #: Lower bound on each core's next action cycle.
        self.core_next = [0] * len(system.cores)
        self.result: Optional[SimResult] = None

    # ------------------------------------------------------------------
    def advance(self) -> Optional[int]:
        """One pass of the scalar engine's loop body at ``self.cycle``.

        Transcribes the six phases of :meth:`System.run` (deliver
        completions, advance cores, compute the external-event horizon,
        batch-run due/dirtied controllers, check termination, pick the
        next event cycle).  Returns the lane's next event cycle, or
        ``None`` when the lane finished (then :meth:`finalize`).
        """
        system = self.system
        cycle = self.cycle
        cores = system.cores
        controllers = system.controllers
        demand_map = system._demand_map
        wake = self.wake
        heap = self.heap
        core_next = self.core_next

        # 1. Deliver completed demand fills due by now.
        next_completion = NEVER
        for ctrl in controllers:
            cr = ctrl.completed_reads
            if not cr:
                continue
            if cr[0][0] <= cycle:
                i = 0
                n = len(cr)
                while i < n and cr[i][0] <= cycle:
                    done_cycle, req = cr[i]
                    core = demand_map.pop(req.req_id, None)
                    if core is not None:
                        core.on_fill_complete(req.req_id, done_cycle)
                        core_next[core.core_id] = 0
                    i += 1
                del cr[:i]
                if not cr:
                    continue
            if cr[0][0] < next_completion:
                next_completion = cr[0][0]

        # 2. Advance cores (held back under heavy backpressure).
        stalled = False
        for ctrl in controllers:
            if ctrl.overflow:
                total_overflow = sum(len(c.overflow) for c in controllers)
                stalled = total_overflow > OVERFLOW_STALL_THRESHOLD
                break
        if not stalled:
            for idx, core in enumerate(cores):
                if core_next[idx] > cycle:
                    continue
                while True:
                    event = core.try_advance(cycle)
                    if event is None:
                        break
                    system._process_access(core, event, cycle)
                core_next[idx] = core.next_action_cycle(cycle)

        # 3. External-event horizon for controller batching.
        core_min = NEVER
        for action in core_next:
            if action < core_min:
                core_min = action
        limit = next_completion if next_completion < core_min else core_min
        if limit <= cycle:
            limit = cycle + 1

        # 4. Batch-run due (heap) and dirtied channels to the horizon.
        dirty = system._dirty_channels
        system._dirty_channels = 0
        while heap and heap[0][0] <= cycle:
            w, idx = heappop(heap)
            if w != wake[idx]:
                continue  # stale entry superseded by a dirty re-run
            dirty &= ~(1 << idx)
            w = controllers[idx].run_until(cycle, limit)
            wake[idx] = w
            heappush(heap, (w, idx))
        while dirty:
            idx = (dirty & -dirty).bit_length() - 1
            dirty &= dirty - 1
            w = controllers[idx].run_until(cycle, limit)
            wake[idx] = w
            heappush(heap, (w, idx))

        # 5. Termination check — same predicate as the scalar loop.
        for core in cores:
            if not core.done:
                break
        else:
            if not any(ctrl.pending for ctrl in controllers) and not any(
                ctrl.completed_reads for ctrl in controllers
            ):
                return None

        # 6. Jump to the lane's earliest future event.
        while heap and heap[0][0] != wake[heap[0][1]]:
            heappop(heap)  # shed stale entries so the top is live
        nxt = heap[0][0] if heap else NEVER
        if core_min < nxt:
            nxt = core_min
        for ctrl in controllers:
            cr = ctrl.completed_reads
            if cr and cr[0][0] < nxt:
                nxt = cr[0][0]
        self.cycle = nxt if nxt > cycle else cycle + 1
        return self.cycle

    def finalize(self) -> SimResult:
        """Flush background state and summarize, as the scalar loop does."""
        system = self.system
        end_cycle = self.cycle
        for ctrl in system.controllers:
            if ctrl.local_clock > end_cycle:
                end_cycle = ctrl.local_clock
        self.result = system._finalize(end_cycle)
        return self.result


class BatchSystem:
    """N grid points advanced together through one shared event loop."""

    def __init__(
        self,
        lanes: Sequence[LaneSpec],
        events_per_core: int,
        seed: Optional[int] = None,
        warmup_events_per_core: Optional[int] = None,
        snapshot_dir: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> None:
        """Build all lanes (shared slabs, snapshots, trace blocks).

        ``lanes`` is one ``(config, workload)`` pair per grid point
        (workloads may be names).  ``events_per_core`` / ``seed`` /
        ``warmup_events_per_core`` / ``snapshot_dir`` are grid-wide
        invariants, exactly as in :class:`~repro.sim.sweep.Sweep`.
        ``backend`` forces the slab allocation backend (tests); the
        default follows :func:`repro.dram.soa_batch.default_backend`.

        Construction runs with the cyclic GC paused: building N lanes
        allocates hundreds of thousands of container objects that are
        all provably live, and generational collections triggered by
        that allocation burst dominated batch wall time.  The guard
        restores the collector's prior state on every exit path.
        """
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._build(
                lanes,
                events_per_core,
                seed,
                warmup_events_per_core,
                snapshot_dir,
                backend,
            )
        finally:
            if gc_was_enabled:
                gc.enable()

    def _build(
        self,
        lanes: Sequence[LaneSpec],
        events_per_core: int,
        seed: Optional[int],
        warmup_events_per_core: Optional[int],
        snapshot_dir: Optional[str],
        backend: Optional[str],
    ) -> None:
        specs: List[Tuple[SystemConfig, Workload]] = []
        for config, wl in lanes:
            workload = lookup_workload(wl) if isinstance(wl, str) else wl
            specs.append((config, workload))
        if not specs:
            raise ValueError("BatchSystem needs at least one lane")

        # Slab allocation: one BatchTimingCore per channel index per
        # geometry group (grids normally share one geometry; mixed
        # geometries each get their own lane-major slabs).
        geo_groups: "OrderedDict[tuple, List[int]]" = OrderedDict()
        for i, (config, _) in enumerate(specs):
            geo = config.geometry
            geo_key = (geo.channels, geo.ranks_per_channel, geo.chip.banks)
            geo_groups.setdefault(geo_key, []).append(i)
        #: Slab sets per geometry group (introspection/tests).
        self.slabs: List[List[BatchTimingCore]] = []
        #: Lane index -> (geometry-group index, slab slot); the cohort
        #: screen uses this to address each lane's slab rows.
        self._lane_slot: Dict[int, Tuple[int, int]] = {}
        lane_cores: Dict[int, List[TimingCore]] = {}
        for group, ((channels, ranks, banks), members) in enumerate(
            geo_groups.items()
        ):
            slabs = [
                BatchTimingCore(len(members), ranks, banks, backend=backend)
                for _ in range(channels)
            ]
            self.slabs.append(slabs)
            for slot, i in enumerate(members):
                self._lane_slot[i] = (group, slot)
                lane_cores[i] = [slab.lane(slot) for slab in slabs]

        # Construction in warm-fingerprint groups: the first lane of a
        # group builds/loads the snapshot, the rest restore from the
        # in-process cache (copy-on-write) before another fingerprint
        # can age it out of the LRU.
        fp_groups: "OrderedDict[tuple, List[int]]" = OrderedDict()
        for i, (config, workload) in enumerate(specs):
            warmup = warmup_events_per_core
            if warmup is None:
                warmup = default_warmup(config, workload)
            resolved_seed = config.seed if seed is None else seed
            fp = warm_fingerprint(config, workload, resolved_seed, warmup)
            fp_groups.setdefault(fp, []).append(i)

        systems: List[Optional[System]] = [None] * len(specs)
        for members in fp_groups.values():
            for i in members:
                config, workload = specs[i]
                systems[i] = System(
                    config,
                    workload,
                    events_per_core,
                    seed=seed,
                    warmup_events_per_core=warmup_events_per_core,
                    snapshot_dir=snapshot_dir,
                    cow_restore=True,
                    channel_cores=lane_cores[i],
                )
        self.lanes: List[_Lane] = [
            _Lane(i, system) for i, system in enumerate(systems) if system is not None
        ]
        self._ran = False

    # ------------------------------------------------------------------
    @property
    def num_lanes(self) -> int:
        return len(self.lanes)

    def run(self, *, _cohort: bool = True) -> List[SimResult]:
        """Drive every lane to completion; results in lane order.

        The shared heap holds ``(cycle, lane_index)``; every lane at the
        heap's front cycle pops together as a **cohort**.  The cohort
        first runs the column-wise idle screen (:meth:`_cohort_step`):
        lanes whose whole pass would provably issue nothing are re-keyed
        at their exact scalar wake hints without entering the scheduler;
        the rest advance one pass of the scalar loop body each, in lane
        order — the same order the PR-6 one-pop-per-lane loop produced,
        since heap ties break on lane index.  Lanes never share mutable
        state (slab rows are disjoint, snapshot sharing is
        copy-on-write), so the split cannot affect per-lane results; a
        lane that terminates finalizes immediately (stats flush +
        summary) and leaves the heap.

        ``_cohort=False`` forces the PR-6 one-lane-per-pop loop —
        a test hook so the identity suite can pin cohort stepping
        against the un-screened interleaving on the same inputs.
        """
        if self._ran:
            raise RuntimeError("BatchSystem.run() may only be called once")
        self._ran = True
        results: List[Optional[SimResult]] = [None] * len(self.lanes)
        heap: List[Tuple[int, int]] = [(0, lane.index) for lane in self.lanes]
        heapify(heap)
        lanes = self.lanes
        while heap:
            cycle = heap[0][0]
            if _cohort and len(heap) > 1:
                cohort: List[int] = []
                while heap and heap[0][0] == cycle:
                    _, index = heappop(heap)
                    cohort.append(index)
                scalar = (
                    self._cohort_step(cycle, cohort, heap)
                    if len(cohort) > 1
                    else cohort
                )
            else:
                _, index = heappop(heap)
                scalar = [index]
            for index in scalar:
                lane = lanes[index]
                nxt = lane.advance()
                if nxt is None:
                    results[index] = lane.finalize()
                else:
                    heappush(heap, (nxt, index))
        final = [result for result in results if result is not None]
        if len(final) != len(self.lanes):  # pragma: no cover - defensive
            raise RuntimeError("batch run finished with unfinalized lanes")
        return final

    # ------------------------------------------------------------------
    def _cohort_step(
        self, cycle: int, cohort: List[int], heap: List[Tuple[int, int]]
    ) -> List[int]:
        """Screen a same-cycle cohort; return the lanes needing scalar work.

        A lane can skip its scalar pass entirely when the pass would
        provably only *probe*: no demand completions due, no cores due,
        no dirtied channels, and every due controller's
        :meth:`~repro.controller.memctrl.ChannelController.issue_screen`
        proves its ``run_until`` would return a wake hint without
        issuing or mutating anything.  For those lanes this method
        replicates the pass's only observable effects — the new per-
        controller wake hints and the lane's next event cycle — and
        re-keys the lane on ``heap`` directly.  Termination checks may
        be skipped for screened lanes: a screened pass mutates nothing
        the termination predicate reads, and the previous scalar pass
        already evaluated that predicate on identical state.

        The slab-backed screen ingredients (open-bank bits, power-down
        residency, refresh horizons) are gathered per (geometry group,
        channel) with one column op each across the cohort's slots;
        :func:`~repro.dram.soa_batch.decay_timers` then normalizes the
        per-rank timer columns of fully-idle screened lanes so slab
        columns stay monotone, and
        :func:`~repro.dram.soa_batch.next_wake_min` folds each screened
        lane's wake candidates into its next event cycle.
        """
        lanes = self.lanes
        scalar: List[int] = []
        fast: List[Tuple[int, int, int]] = []  # (lane index, core_min, limit)
        for index in cohort:
            lane = lanes[index]
            system = lane.system
            if system._dirty_channels:
                scalar.append(index)
                continue
            next_completion = NEVER
            due_now = False
            for ctrl in system.controllers:
                cr = ctrl.completed_reads
                if cr:
                    c0 = cr[0][0]
                    if c0 <= cycle:
                        due_now = True
                        break
                    if c0 < next_completion:
                        next_completion = c0
            if due_now:
                scalar.append(index)
                continue
            core_min = NEVER
            for action in lane.core_next:
                if action < core_min:
                    core_min = action
            if core_min <= cycle:
                scalar.append(index)
                continue
            limit = next_completion if next_completion < core_min else core_min
            if limit <= cycle:
                limit = cycle + 1
            fast.append((index, core_min, limit))
        if not fast:
            return scalar

        # Column phase: gather the slab screen ingredients for every
        # due (lane, channel) pair, one whole-column op per slab.
        lane_due: Dict[int, List[int]] = {}
        buckets: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for index, _, _ in fast:
            lane = lanes[index]
            wake = lane.wake
            due = [idx for idx in range(len(wake)) if wake[idx] <= cycle]
            lane_due[index] = due
            group, slot = self._lane_slot[index]
            for ctrl_idx in due:
                buckets.setdefault((group, ctrl_idx), []).append((index, slot))
        cols: Dict[Tuple[int, int], Tuple[int, int, Optional[bool]]] = {}
        for (group, ctrl_idx), members in buckets.items():
            slab = self.slabs[group][ctrl_idx]
            slots = [slot for _, slot in members]
            hits = open_row_hits(slab, slots)
            horizons = refresh_due(slab, slots)
            pd_all: Optional[List[bool]] = None
            if any(
                lanes[index].system.controllers[ctrl_idx]._uses_power_down
                for index, _ in members
            ):
                pd_all = power_down_resident(slab, slots)
            for pos, (index, _) in enumerate(members):
                cols[(index, ctrl_idx)] = (
                    hits[pos],
                    horizons[pos],
                    None if pd_all is None else pd_all[pos],
                )

        # Scalar residue: compose the per-queue checks with the column
        # values; any unscreenable controller sends its lane scalar.
        screened: List[Tuple[int, int]] = []  # (lane index, group)
        wake_rows: List[List[int]] = []
        idle_pairs: Dict[Tuple[int, int], List[int]] = {}
        for index, core_min, limit in fast:
            lane = lanes[index]
            controllers = lane.system.controllers
            new_wakes: Dict[int, int] = {}
            all_idle = True
            ok = True
            for ctrl_idx in lane_due[index]:
                ctrl = controllers[ctrl_idx]
                clock = ctrl.local_clock
                local = cycle if clock <= cycle else clock
                if local >= limit:
                    # run_until bails before stepping; no screen ran.
                    new_wakes[ctrl_idx] = local
                    all_idle = False
                    continue
                hit, horizon, pd_all_lane = cols[(index, ctrl_idx)]
                res = _screened_wake(ctrl, local, hit, horizon, pd_all_lane)
                if res is None:
                    ok = False
                    break
                w, idle_shape = res
                if not idle_shape:
                    all_idle = False
                    # Busy-bus shape with pending work: run_until only
                    # stops here if the bus outlasts the horizon.
                    if (
                        ctrl.read_q._count or ctrl.write_q._count
                    ) and w < limit:
                        ok = False
                        break
                new_wakes[ctrl_idx] = w
            if not ok:
                scalar.append(index)
                continue
            # Commit: replicate the pass's heap bookkeeping (pop every
            # due-or-stale entry, re-key the due controllers).
            lheap = lane.heap
            wake = lane.wake
            while lheap and lheap[0][0] <= cycle:
                heappop(lheap)
            for ctrl_idx, w in new_wakes.items():
                wake[ctrl_idx] = w
                heappush(lheap, (w, ctrl_idx))
            group, slot = self._lane_slot[index]
            if all_idle:
                for ctrl_idx in new_wakes:
                    idle_pairs.setdefault((group, ctrl_idx), []).append(slot)
            screened.append((index, group))
            # Phase-6 fold: min over live controller wakes and the
            # external horizon (core_min; completions are folded into
            # limit only when earlier, but the true completion horizon
            # is >= limit >= every candidate we keep, so folding
            # min(wake) with core_min and limit is exact).
            row = list(wake)
            row.append(core_min)
            row.append(limit)
            wake_rows.append(row)
        if not screened:
            return scalar

        for (group, ctrl_idx), slots in idle_pairs.items():
            decay_timers(self.slabs[group][ctrl_idx], slots, cycle)

        backend = self.slabs[0][0].backend if self.slabs else "list"
        nxts = next_wake_min(wake_rows, backend)
        for (index, _), nxt in zip(screened, nxts):
            lane = lanes[index]
            lane.cycle = nxt if nxt > cycle else cycle + 1
            heappush(heap, (lane.cycle, index))
        return scalar


def simulate_batch(
    lanes: Sequence[LaneSpec],
    events_per_core: int,
    seed: Optional[int] = None,
    warmup_events_per_core: Optional[int] = None,
    snapshot_dir: Optional[str] = None,
    backend: Optional[str] = None,
) -> List[SimResult]:
    """Convenience one-shot: build a :class:`BatchSystem` and run it."""
    return BatchSystem(
        lanes,
        events_per_core,
        seed=seed,
        warmup_events_per_core=warmup_events_per_core,
        snapshot_dir=snapshot_dir,
        backend=backend,
    ).run()


def _run_lane_group(ctx: SweepContext, points: List[Dict]) -> List[Dict]:
    """Sweep/pool task body: one whole lane-group per task.

    ``ctx`` is the grid-wide :data:`~repro.sim.sweep.SweepContext`;
    ``points`` are the group's point dicts (config deltas).  Runs the
    group as one :class:`BatchSystem` and returns the flattened result
    rows in group order.  Module-level so :class:`~repro.sim.pool
    .SimPool` workers can unpickle it by reference.
    """
    base_config, events, seed, warmup, snapshot_dir = ctx
    specs: List[LaneSpec] = [
        (_apply_point(base_config, point), point["workload"]) for point in points
    ]
    results = simulate_batch(
        specs,
        events,
        seed=seed,
        warmup_events_per_core=warmup,
        snapshot_dir=snapshot_dir,
    )
    rows: List[Dict] = []
    for point, result in zip(points, results):
        row = {**point}
        row.update(result.summary())
        rows.append(row)
    return rows
