"""DDR3 timing parameters and derived quantities.

All parameters are expressed in DRAM *clock cycles* of the command clock
(800 MHz for DDR3-1600, i.e. tCK = 1.25 ns).  The defaults reproduce the
values of Table 3 in the paper; parameters the paper does not list
(tWTR, tRTP, refresh, power-down exit) use standard DDR3-1600 datasheet
values and are documented inline.

The paper's PRA scheme adds one extra cycle to tRCD for *write* (partial)
activations, because the PRA mask is transferred over the address bus in
the cycle following the ACT command (Figure 7a).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import NamedTuple


@dataclass(frozen=True, slots=True)
class TimingParams:
    """DRAM timing parameters in command-clock cycles."""

    #: Clock period in nanoseconds (1.25 ns for DDR3-1600).
    tck_ns: float = 1.25

    #: ACT to internal read/write delay.
    trcd: int = 11
    #: Precharge period.
    trp: int = 11
    #: CAS (read) latency.
    tcas: int = 11
    #: CAS write latency (DDR3-1600 CWL).
    tcwl: int = 8
    #: ACT to PRE minimum.
    tras: int = 28
    #: Write recovery: end of write burst to PRE.
    twr: int = 12
    #: Column command to column command.
    tccd: int = 4
    #: ACT to ACT, different banks, same rank.
    trrd: int = 5
    #: Four-activation window.
    tfaw: int = 24
    #: ACT to ACT, same bank (= tRAS + tRP).
    trc: int = 39
    #: Data burst duration (BL8 on a DDR bus = 4 clock cycles).
    tburst: int = 4
    #: Write-to-read turnaround (end of write burst to read command).
    twtr: int = 6
    #: Read to precharge.
    trtp: int = 6
    #: Rank-to-rank bus switching penalty.
    trtrs: int = 2
    #: Refresh cycle time (160 ns for a 2Gb part).
    trfc: int = 128
    #: Average refresh interval (7.8 us).
    trefi: int = 6240
    #: Precharge power-down exit latency.
    txp: int = 5
    #: Extra ACT-to-column delay for a PRA (masked) activation: the PRA
    #: mask occupies the address bus in the cycle after ACT (Fig. 7a).
    pra_extra: int = 1

    def cycles_to_ns(self, cycles: float) -> float:
        """Convert a duration in clock cycles to nanoseconds."""
        return cycles * self.tck_ns

    def ns_to_cycles(self, ns: float) -> float:
        return ns / self.tck_ns

    @property
    def read_latency(self) -> int:
        """ACT-to-first-data latency for a read on a closed bank."""
        return self.trcd + self.tcas

    @property
    def row_cycle_ns(self) -> float:
        """tRC expressed in nanoseconds (used by the power model)."""
        return self.cycles_to_ns(self.trc)

    def with_overrides(self, **kwargs: int) -> "TimingParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


class DerivedTiming(NamedTuple):
    """Precomputed timing sums used on the simulator's hottest paths.

    Deriving these once per :class:`TimingParams` instance (they are
    frozen, so per-scheme/per-config lookups hit the cache) saves two
    attribute loads and an add per column command in the bank state
    machine and the controller's burst bookkeeping.
    """

    #: Command-to-burst-end span of a read (tCAS + tBURST).
    read_burst: int
    #: Command-to-burst-end span of a write (tCWL + tBURST).
    write_burst: int
    #: ACT-to-first-data latency on a closed bank (tRCD + tCAS).
    act_to_data: int
    #: ACT-to-column delay of a masked (PRA) activation.
    trcd_masked: int
    #: Minimum spacing of back-to-back same-rank column commands whose
    #: bursts must not overlap: max(tCCD, tBURST).  Burst-streak
    #: scheduling multiplies the tBURST term by the scheme's data-bus
    #: multiplier (2 under FGA), so streak command *i* issues exactly at
    #: ``t0 + i * max(col_spacing, tburst * multiplier)``.
    col_spacing: int


@lru_cache(maxsize=None)
def derived_timing(timing: TimingParams) -> DerivedTiming:
    """Cached derived quantities for one (frozen, hashable) timing set."""
    return DerivedTiming(
        read_burst=timing.tcas + timing.tburst,
        write_burst=timing.tcwl + timing.tburst,
        act_to_data=timing.trcd + timing.tcas,
        trcd_masked=timing.trcd + timing.pra_extra,
        col_spacing=max(timing.tccd, timing.tburst),
    )


#: Timing of the baseline 2Gb x8 DDR3-1600 part (Table 3).
DDR3_1600 = TimingParams()

#: DDR4-2400 preset (JEDEC-typical 17-17-17): an extension beyond the
#: paper's DDR3 baseline for studying PRA on a faster interface.  The
#: command clock is 1200 MHz, so absolute nanosecond latencies are
#: comparable while bandwidth is 1.5x.  tFAW/tRRD follow the 2KB-page
#: x8 speed bin; tREFI/tRFC are for a 4Gb part.
DDR4_2400 = TimingParams(
    tck_ns=1 / 1.2,
    trcd=17,
    trp=17,
    tcas=17,
    tcwl=12,
    tras=39,
    twr=18,
    tccd=6,
    trrd=6,
    tfaw=26,
    trc=56,
    tburst=4,
    twtr=9,
    trtp=9,
    trtrs=3,
    trfc=312,
    trefi=9360,
    txp=8,
)
