"""Physical geometry of the DRAM system.

The baseline device throughout the paper (and this reproduction) is a
2Gb x8 DDR3-1600 chip (Samsung K4B2G0846E class):

* 8 banks per chip,
* 32k rows x 1k columns per bank,
* each bank tiled into 64 sub-arrays of 16 MATs,
* each MAT a 512 x 512 cell matrix.

Eight such chips form a 64-bit rank; two ranks share a channel; the
baseline system has two channels (8 GB total, Table 3 of the paper).

A 64 B cache line is striped so that each chip receives one byte of every
8 B word, and inside a chip each byte splits into two nibbles, one per
MAT.  Two adjacent MATs therefore hold one *word lane* of the cache line,
which is exactly the minimum activation granularity of PRA (one bit of
the 8-bit PRA mask controls a group of two MATs).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Number of 8-byte words in a cache line; also the width of a PRA mask.
WORDS_PER_LINE = 8

#: Bytes in a cache line (fixed at 64 B throughout the paper).
LINE_BYTES = 64

#: Bytes per word (the data-bus width of a rank).
WORD_BYTES = 8

#: A PRA mask with every MAT group selected (full-row activation).
FULL_MASK = (1 << WORDS_PER_LINE) - 1


@dataclass(frozen=True, slots=True)
class ChipGeometry:
    """Geometry of a single DRAM chip.

    Attributes mirror Section 2.1.1 of the paper.  ``device_width`` is the
    chip I/O width in bits (x8 for the baseline part) and
    ``burst_length`` the number of beats per column access (8 for DDR3).
    """

    banks: int = 8
    rows: int = 32768
    columns: int = 1024
    device_width: int = 8
    burst_length: int = 8
    subarrays_per_bank: int = 64
    mats_per_subarray: int = 16
    mat_rows: int = 512
    mat_cols: int = 512

    @property
    def capacity_bits(self) -> int:
        """Total chip capacity in bits."""
        return self.banks * self.rows * self.columns * self.device_width

    @property
    def row_bits(self) -> int:
        """Bits in one chip row (the unit the row buffer senses)."""
        return self.columns * self.device_width

    @property
    def rows_per_subarray(self) -> int:
        return self.rows // self.subarrays_per_bank

    @property
    def mat_groups(self) -> int:
        """Number of independently-maskable MAT groups (2 MATs each)."""
        return self.mats_per_subarray // 2


@dataclass(frozen=True, slots=True)
class SystemGeometry:
    """Geometry of the whole DRAM system (channels/ranks/chips).

    The default values reproduce the baseline of Table 3: 8 GB over
    2 channels x 2 ranks x 8 chips with a 64-bit data bus per channel.
    """

    channels: int = 2
    ranks_per_channel: int = 2
    chips_per_rank: int = 8
    chip: ChipGeometry = ChipGeometry()

    @property
    def bus_bytes(self) -> int:
        """Data-bus width of a channel in bytes."""
        return self.chips_per_rank * self.chip.device_width // 8

    @property
    def capacity_bytes(self) -> int:
        """Total system capacity in bytes."""
        total_bits = (
            self.channels
            * self.ranks_per_channel
            * self.chips_per_rank
            * self.chip.capacity_bits
        )
        return total_bits // 8

    @property
    def row_buffer_bytes(self) -> int:
        """Rank-level row size in bytes (8 KB for the baseline)."""
        return self.chips_per_rank * self.chip.row_bits // 8

    @property
    def lines_per_row(self) -> int:
        """Number of 64 B cache lines held by one rank-level row."""
        return self.row_buffer_bytes // LINE_BYTES

    @property
    def banks(self) -> int:
        return self.chip.banks

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.chip.banks


#: Baseline geometry used throughout the paper's evaluation.
BASELINE_GEOMETRY = SystemGeometry()
