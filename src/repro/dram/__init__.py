"""DRAM device substrate: geometry, timing, commands, banks, ranks, channels.

This package is the reproduction's stand-in for DRAMSim2: a cycle-level
model of a DDR3-1600 memory system with the additional device behaviour
introduced by the paper (the PRA command, masked activations, relaxed
tRRD/tFAW for partial activations).
"""

from repro.dram.bank import ActivationWindow, Bank, BankStateError
from repro.dram.channel import Channel
from repro.dram.commands import Address, Command, ReqKind, Request
from repro.dram.geometry import (
    BASELINE_GEOMETRY,
    FULL_MASK,
    LINE_BYTES,
    WORD_BYTES,
    WORDS_PER_LINE,
    ChipGeometry,
    SystemGeometry,
)
from repro.dram.mapping import (
    AddressMapper,
    Interleaving,
    dirty_words_to_mask,
    mats_activated,
    word_index_to_mat_group,
)
from repro.dram.rank import Rank
from repro.dram.timing import DDR3_1600, DDR4_2400, TimingParams

__all__ = [
    "ActivationWindow",
    "Address",
    "AddressMapper",
    "Bank",
    "BankStateError",
    "BASELINE_GEOMETRY",
    "Channel",
    "ChipGeometry",
    "Command",
    "DDR3_1600",
    "DDR4_2400",
    "dirty_words_to_mask",
    "FULL_MASK",
    "Interleaving",
    "LINE_BYTES",
    "mats_activated",
    "Rank",
    "ReqKind",
    "Request",
    "SystemGeometry",
    "TimingParams",
    "WORD_BYTES",
    "word_index_to_mat_group",
    "WORDS_PER_LINE",
]
