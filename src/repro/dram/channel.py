"""Channel model: shared command/address and data buses across ranks.

The channel enforces:

* one command per cycle on the command bus (a PRA activation occupies
  the address bus for one extra cycle to carry the mask, Fig. 7a),
* exclusive use of the data bus, with a rank-to-rank switching penalty
  (tRTRS) when consecutive bursts come from different ranks,
* FGA's halved effective bus width: under fine-grained activation a
  64 B line needs 16 half-width bursts (8 bus cycles) instead of 8
  full-width bursts (4 bus cycles), which is the root of FGA's
  performance loss (Section 2.1.2 / Figure 12 discussion).
"""

from __future__ import annotations

from typing import List

from repro.dram.rank import Rank
from repro.dram.soa import TimingCore
from repro.dram.timing import TimingParams


class Channel:
    """One memory channel and its ranks."""

    def __init__(
        self,
        timing: TimingParams,
        num_ranks: int = 2,
        num_banks: int = 8,
        relax_act_constraints: bool = False,
        burst_cycles_multiplier: int = 1,
        core: TimingCore | None = None,
    ) -> None:
        self.timing = timing
        #: Flat per-(rank, bank) timing-state arrays shared by every
        #: rank/bank of this channel; the controller's scheduling loops
        #: index them directly (the objects below are views).  ``core``
        #: injects externally allocated state — the batch kernel passes
        #: one lane row of a :class:`~repro.dram.soa_batch.BatchTimingCore`
        #: so N lanes' channel state shares one lane-major allocation.
        if core is None:
            core = TimingCore(num_ranks, num_banks)
        elif core.num_ranks != num_ranks or core.num_banks != num_banks:
            raise ValueError(
                f"injected TimingCore is {core.num_ranks}x{core.num_banks}, "
                f"channel needs {num_ranks}x{num_banks}"
            )
        self.core = core
        self.ranks: List[Rank] = [
            Rank(timing, num_banks, relax_act_constraints, core=self.core, rank_index=r)
            for r in range(num_ranks)
        ]
        #: Data-bus multiplier: 1 for full-width schemes, 2 for FGA
        #: (half-width transfer doubles burst occupancy).
        self.burst_cycles_multiplier = burst_cycles_multiplier
        #: Cycle at which the data bus becomes free.
        self.data_bus_free: int = 0
        #: Rank that performed the most recent data burst.
        self.last_burst_rank: int = -1
        #: Cycle at which the command bus becomes free.
        self.cmd_bus_free: int = 0
        # Statistics.
        self.data_bus_busy_cycles: int = 0

    @property
    def burst_cycles(self) -> int:
        """Data-bus occupancy of one cache-line transfer, in cycles."""
        return self.timing.tburst * self.burst_cycles_multiplier

    def cmd_bus_ready(self, cycle: int) -> bool:
        return cycle >= self.cmd_bus_free

    def occupy_cmd_bus(self, cycle: int, cycles: int = 1) -> None:
        self.cmd_bus_free = cycle + cycles

    def earliest_burst_start(self, cycle: int, rank: int) -> int:
        """Earliest cycle a data burst from ``rank`` may start."""
        start = max(cycle, self.data_bus_free)
        if self.last_burst_rank not in (-1, rank):
            start = max(start, self.data_bus_free + self.timing.trtrs)
        return start

    def burst_fits(self, start_cycle: int, rank: int) -> bool:
        return start_cycle >= self.earliest_burst_start(start_cycle, rank)

    def occupy_data_bus(self, start_cycle: int, rank: int) -> int:
        """Reserve the data bus for one line transfer; returns end cycle."""
        end = start_cycle + self.burst_cycles
        self.data_bus_free = end
        self.last_burst_rank = rank
        self.data_bus_busy_cycles += self.burst_cycles
        return end

    def accrue_background(self, cycle: int) -> None:
        for rank in self.ranks:
            rank.accrue_background(cycle)
