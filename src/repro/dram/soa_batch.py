"""Lane-major timing state for the batch kernel: N lanes x (ranks*banks).

:class:`BatchTimingCore` is :class:`~repro.dram.soa.TimingCore` with a
leading *lane* dimension: every flat per-(rank,bank) and per-rank
integer vector becomes a matrix whose row ``lane`` is one grid point's
channel state.  The batch event loop (:mod:`repro.sim.batch`) allocates
one slab per channel index and hands each lane its row set via
:meth:`lane` — a real :class:`TimingCore` whose slots *are* the slab
rows, so the controller's scheduling passes (which bind the arrays as
locals and mutate them in place) run unchanged against lane-sliced
views, and bit-identity with the scalar engine holds by construction.

Bulk operations — allocating and resetting whole slabs — go through a
backend selected at import: numpy (installed via the ``.[fast]`` extra)
builds each matrix in one vectorized call, the pure-list fallback uses
per-lane list ops.  Both produce *identical* structures (nested plain
lists of Python ints/bools: ``ndarray.tolist()`` converts element
types), so the backend can never change simulation results — only how
fast lane state is materialized.  ``REPRO_BATCH_BACKEND=list|numpy``
forces a backend; :data:`HAVE_NUMPY` is the loud-skip shim tests and
callers consult.

Why the *hot path* stays scalar per lane: the FR-FCFS scheduler is
deeply data-dependent (burst-streak commits, useless-row masks) and
lanes sit at different cycles, so cross-lane SIMD of ``step()`` cannot
be bit-identical.  CPython also indexes plain lists faster than numpy
scalars.  The lane dimension instead amortizes allocation, snapshot
restore and event-loop interpreter overhead — see DESIGN.md §7.

What *is* vectorized across lanes are the **cohort kernel ops** at the
bottom of this module (:func:`decay_timers`, :func:`open_row_hits`,
:func:`mask_compatible`, :func:`refresh_due`, :func:`next_wake_min`,
:func:`power_down_resident`): column-wise reductions and updates over
the lane-major matrices for every lane sharing a wake cycle.  The
cohort-stepping loop (:meth:`repro.sim.batch.BatchSystem.run`) uses
them to evaluate the controller pre-issue screen
(:meth:`repro.controller.memctrl.ChannelController.issue_screen`) and
recompute wake hints for whole cohorts without entering per-lane
scheduler code.  Both backends return identical plain Python values.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from repro.dram.geometry import FULL_MASK
from repro.dram.soa import TimingCore

try:  # the `.[fast]` optional extra; tier-1 must run without it
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _numpy = None  # type: ignore[assignment]

#: Loud-skip shim: ``False`` means the pure-list fallback backend is in
#: use (identical semantics, slower bulk ops).  Re-exported as
#: ``repro.sim.batch.HAVE_NUMPY``.
HAVE_NUMPY = _numpy is not None

#: Backends a :class:`BatchTimingCore` can allocate with.
BACKENDS = ("numpy", "list")


def default_backend() -> str:
    """Backend selected at import: env override, else numpy if present.

    ``REPRO_BATCH_BACKEND=list`` forces the fallback (e.g. to compare
    backends on one install); ``=numpy`` fails loudly when the extra is
    missing instead of silently degrading.
    """
    forced = os.environ.get("REPRO_BATCH_BACKEND", "").strip().lower()
    if forced:
        if forced not in BACKENDS:
            raise ValueError(
                f"REPRO_BATCH_BACKEND={forced!r}: expected one of {BACKENDS}"
            )
        if forced == "numpy" and not HAVE_NUMPY:
            raise ImportError(
                "REPRO_BATCH_BACKEND=numpy but numpy is not installed; "
                "install the extra: pip install 'repro[fast]'"
            )
        return forced
    return "numpy" if HAVE_NUMPY else "list"


def full_rows(lanes: int, width: int, fill: int, backend: str) -> List[List[int]]:
    """``lanes`` rows of ``width`` ints, every element ``fill``.

    The numpy backend materializes the whole matrix in one array op
    (``tolist()`` yields plain Python ints, bit-identical to the
    fallback's per-lane list repeats).
    """
    if backend == "numpy":
        assert _numpy is not None
        matrix: List[List[int]] = _numpy.full(
            (lanes, width), fill, dtype=_numpy.int64
        ).tolist()
        return matrix
    return [[fill] * width for _ in range(lanes)]


def false_rows(lanes: int, width: int, backend: str) -> List[List[bool]]:
    """``lanes`` rows of ``width`` ``False`` flags (same contract)."""
    if backend == "numpy":
        assert _numpy is not None
        matrix: List[List[bool]] = _numpy.zeros(
            (lanes, width), dtype=bool
        ).tolist()
        return matrix
    return [[False] * width for _ in range(lanes)]


def none_rows(lanes: int, width: int) -> List[List[Optional[int]]]:
    """``lanes`` rows of ``width`` ``None`` slots (no numpy analogue:
    object matrices gain nothing from vectorization)."""
    return [[None] * width for _ in range(lanes)]


# Oracle-parity declaration enforced by reprolint: the lane-major slab
# is the batch fast path; the scalar per-channel TimingCore it hands
# out rows of is the oracle.
REPRO_FAST_PATH = True
ORACLE_TWIN = "repro.dram.soa"
ORACLE_TESTS = ("tests/test_batch.py",)

# COW contract for the aliasing pass (repro.analysis.cowcheck): every
# slab matrix row is aliased by the TimingCore views lane() hands out,
# so any in-place write through a row is visible to a live lane.  The
# administrative ops below that mutate rows on purpose (reset_lane,
# decay_timers) carry explicit shares[...] pragmas.
REPRO_COW_PROTOCOL = {
    "shared_roots": (
        "open_row", "open_mask", "act_ready", "col_ready", "pre_ready",
        "last_act", "accesses", "autopre", "reserved", "next_act_ok",
        "next_col_ok", "next_read_ok", "next_write_ok", "gate",
        "open_bits", "pd", "next_refresh",
    ),
    "shared_calls": ("lane",),
    "privatizers": (),
}


class BatchTimingCore:
    """Lane-major DRAM timing state: one slab for N lanes of a channel.

    Field names and encodings match :class:`~repro.dram.soa.TimingCore`
    exactly; every field just gains a leading lane dimension.  Row
    ``lane`` of each matrix is the lane's live state — :meth:`lane`
    returns a ``TimingCore`` whose slots alias those rows, so there is
    exactly one copy of the state and no synchronization step.
    """

    __slots__ = (
        "num_lanes",
        "num_ranks",
        "num_banks",
        "backend",
        # -- lane-major per-bank matrices: [lane][rank*num_banks+bank] --
        "open_row",
        "open_mask",
        "act_ready",
        "col_ready",
        "pre_ready",
        "last_act",
        "accesses",
        "autopre",
        "reserved",
        # -- lane-major per-rank matrices: [lane][rank] --
        "next_act_ok",
        "next_col_ok",
        "next_read_ok",
        "next_write_ok",
        "gate",
        "open_bits",
        "pd",
        "next_refresh",
    )

    def __init__(
        self,
        num_lanes: int,
        num_ranks: int,
        num_banks: int,
        backend: Optional[str] = None,
    ) -> None:
        if num_lanes <= 0:
            raise ValueError("BatchTimingCore needs at least one lane")
        if num_ranks <= 0 or num_banks <= 0:
            raise ValueError("BatchTimingCore needs at least one rank and bank")
        if backend is None:
            backend = default_backend()
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected {BACKENDS}")
        if backend == "numpy" and not HAVE_NUMPY:
            raise ImportError(
                "numpy backend requested but numpy is not installed; "
                "install the extra: pip install 'repro[fast]'"
            )
        self.num_lanes = num_lanes
        self.num_ranks = num_ranks
        self.num_banks = num_banks
        self.backend = backend
        n = num_ranks * num_banks
        self.open_row = full_rows(num_lanes, n, -1, backend)
        self.open_mask = full_rows(num_lanes, n, FULL_MASK, backend)
        self.act_ready = full_rows(num_lanes, n, 0, backend)
        self.col_ready = full_rows(num_lanes, n, 0, backend)
        self.pre_ready = full_rows(num_lanes, n, 0, backend)
        self.last_act = full_rows(num_lanes, n, -1, backend)
        self.accesses = full_rows(num_lanes, n, 0, backend)
        self.autopre = false_rows(num_lanes, n, backend)
        self.reserved = none_rows(num_lanes, n)
        self.next_act_ok = full_rows(num_lanes, num_ranks, 0, backend)
        self.next_col_ok = full_rows(num_lanes, num_ranks, 0, backend)
        self.next_read_ok = full_rows(num_lanes, num_ranks, 0, backend)
        self.next_write_ok = full_rows(num_lanes, num_ranks, 0, backend)
        self.gate = full_rows(num_lanes, num_ranks, 0, backend)
        self.open_bits = full_rows(num_lanes, num_ranks, 0, backend)
        self.pd = full_rows(num_lanes, num_ranks, 0, backend)
        self.next_refresh = full_rows(num_lanes, num_ranks, 0, backend)

    # ------------------------------------------------------------------
    def lane(self, lane: int) -> TimingCore:
        """A :class:`TimingCore` whose arrays *are* this slab's rows.

        The returned core is the lane's only state copy: controller
        mutations through the view are mutations of the slab rows, and
        whole-slab operations observe them immediately.
        """
        if not 0 <= lane < self.num_lanes:
            raise IndexError(f"lane {lane} out of range 0..{self.num_lanes - 1}")
        core = TimingCore(self.num_ranks, self.num_banks)
        core.open_row = self.open_row[lane]
        core.open_mask = self.open_mask[lane]
        core.act_ready = self.act_ready[lane]
        core.col_ready = self.col_ready[lane]
        core.pre_ready = self.pre_ready[lane]
        core.last_act = self.last_act[lane]
        core.accesses = self.accesses[lane]
        core.autopre = self.autopre[lane]
        core.reserved = self.reserved[lane]
        core.next_act_ok = self.next_act_ok[lane]
        core.next_col_ok = self.next_col_ok[lane]
        core.next_read_ok = self.next_read_ok[lane]
        core.next_write_ok = self.next_write_ok[lane]
        core.gate = self.gate[lane]
        core.open_bits = self.open_bits[lane]
        core.pd = self.pd[lane]
        core.next_refresh = self.next_refresh[lane]
        return core

    def lanes(self) -> List[TimingCore]:
        """All lane views, in lane order."""
        return [self.lane(i) for i in range(self.num_lanes)]

    # ------------------------------------------------------------------
    def open_banks_per_lane(self) -> List[int]:
        """Open-bank count per lane, as one cross-lane reduction.

        Diagnostic/verification helper: with numpy the popcount over
        the lane-major ``open_row`` matrix is a single whole-array op;
        the fallback reduces per lane.  Both count ``open_row != -1``.
        """
        if self.backend == "numpy":
            assert _numpy is not None
            arr = _numpy.array(self.open_row, dtype=_numpy.int64)
            counts: List[int] = (arr != -1).sum(axis=1).tolist()
            return counts
        return [
            sum(1 for row in lane_rows if row != -1) for lane_rows in self.open_row
        ]

    def reset_lane(self, lane: int) -> None:
        """Re-initialize one lane's rows in place (views stay valid).

        In-place slice assignment preserves the row object identity the
        lane views and any bound controller locals alias.
        """
        n = self.num_ranks * self.num_banks
        self.open_row[lane][:] = [-1] * n  # reprolint: shares[resetting through the shared row is the point: lane views must see the fresh state]
        self.open_mask[lane][:] = [FULL_MASK] * n  # reprolint: shares[in-place reset aliased by lane views]
        self.act_ready[lane][:] = [0] * n  # reprolint: shares[in-place reset aliased by lane views]
        self.col_ready[lane][:] = [0] * n  # reprolint: shares[in-place reset aliased by lane views]
        self.pre_ready[lane][:] = [0] * n  # reprolint: shares[in-place reset aliased by lane views]
        self.last_act[lane][:] = [-1] * n  # reprolint: shares[in-place reset aliased by lane views]
        self.accesses[lane][:] = [0] * n  # reprolint: shares[in-place reset aliased by lane views]
        self.autopre[lane][:] = [False] * n  # reprolint: shares[in-place reset aliased by lane views]
        self.reserved[lane][:] = [None] * n  # reprolint: shares[in-place reset aliased by lane views]
        for field in (
            self.next_act_ok,
            self.next_col_ok,
            self.next_read_ok,
            self.next_write_ok,
            self.gate,
            self.open_bits,
            self.pd,
            self.next_refresh,
        ):
            field[lane][:] = [0] * self.num_ranks  # reprolint: shares[in-place reset aliased by lane views]


# ----------------------------------------------------------------------
# Cohort kernel ops: column-wise reductions/updates over lane subsets.
#
# Each op takes the slab plus the *slots* (lane indices) of a cohort —
# the lanes whose event loops woke at the same cycle — and evaluates one
# screen ingredient for all of them at once.  The numpy path gathers the
# cohort's rows into a single array op; the list path reduces per lane.
# Both return plain Python ints/bools so results are backend-invariant,
# and neither mutates anything except where documented (decay_timers).
# ----------------------------------------------------------------------


def open_row_hits(slab: BatchTimingCore, slots: Sequence[int]) -> List[int]:
    """Per-lane union of rank open-bank bitmasks, one per cohort slot.

    A lane with result ``0`` has no open row anywhere on the channel —
    no row hit is possible and no precharge/close housekeeping is
    pending, one leg of the idle screen.  A nonzero result is the
    OR-fold of ``open_bits`` across the lane's ranks (which banks could
    still serve hits).
    """
    if slab.backend == "numpy":
        assert _numpy is not None
        rows = _numpy.array(
            [slab.open_bits[s] for s in slots], dtype=_numpy.int64
        )
        out: List[int] = _numpy.bitwise_or.reduce(rows, axis=1).tolist()
        return out
    result = []
    for s in slots:
        bits = 0
        for b in slab.open_bits[s]:
            bits |= b
        result.append(bits)
    return result


def refresh_due(slab: BatchTimingCore, slots: Sequence[int]) -> List[int]:
    """Earliest refresh deadline per cohort lane (min over ranks).

    A lane whose result is ``<= cycle`` has a refresh due *now* and
    must take the scalar path; otherwise the value is exactly the idle
    wake hint the scalar controller would return for an empty channel
    (``min(next_refresh)``), which lets the cohort loop re-arm screened
    lanes without calling ``step()``.
    """
    if slab.backend == "numpy":
        assert _numpy is not None
        rows = _numpy.array(
            [slab.next_refresh[s] for s in slots], dtype=_numpy.int64
        )
        out: List[int] = rows.min(axis=1).tolist()
        return out
    return [min(slab.next_refresh[s]) for s in slots]


def power_down_resident(
    slab: BatchTimingCore, slots: Sequence[int]
) -> List[bool]:
    """Whether *every* rank of each cohort lane sits in power-down.

    Only meaningful for power-down schemes: an idle lane with a rank
    still out of power-down owes a PD-entry command and cannot be
    screened.  Non-PD schemes skip this op entirely.
    """
    if slab.backend == "numpy":
        assert _numpy is not None
        rows = _numpy.array([slab.pd[s] for s in slots], dtype=_numpy.int64)
        out: List[bool] = rows.all(axis=1).tolist()
        return out
    return [all(slab.pd[s]) for s in slots]


def mask_compatible(
    slab: BatchTimingCore, slots: Sequence[int], g: int, needed: int
) -> List[bool]:
    """Whether bank ``g``'s open partial row covers ``needed`` per lane.

    Column read across the cohort of the PRA coverage test the scalar
    scheduler applies per request (``needed & ~open_mask == 0``): True
    means the lane's open activation already spans every segment the
    access touches, so a row hit would not need a re-activation.
    """
    if slab.backend == "numpy":
        assert _numpy is not None
        col = _numpy.array(
            [slab.open_mask[s][g] for s in slots], dtype=_numpy.int64
        )
        out: List[bool] = ((needed & ~col) == 0).tolist()
        return out
    return [(needed & ~slab.open_mask[s][g]) == 0 for s in slots]


def decay_timers(
    slab: BatchTimingCore, slots: Sequence[int], cycle: int
) -> None:
    """Clamp stale per-rank readiness timers up to ``cycle``, in place.

    Elementwise ``max(timer, cycle)`` over the cohort's per-rank timer
    rows (tRRD/tCCD/turnaround/hold/gate).  Behavior-preserving for
    lanes at ``cycle``: the controller only ever consults these values
    via ``cycle >= t`` comparisons or max-folds against cycles ``>=
    cycle``, so a timer that already expired (``< cycle``) is
    indistinguishable from one clamped to ``cycle``.  Normalizing keeps
    the slab columns monotone — every live timer ``>= cycle`` — which
    is the invariant :func:`next_wake_min` relies on to skip per-element
    clamping when folding wake candidates.
    """
    columns = (
        slab.next_act_ok,
        slab.next_col_ok,
        slab.next_read_ok,
        slab.next_write_ok,
        slab.gate,
    )
    if slab.backend == "numpy":
        assert _numpy is not None
        for matrix in columns:
            rows = _numpy.array(
                [matrix[s] for s in slots], dtype=_numpy.int64
            )
            clamped = _numpy.maximum(rows, cycle).tolist()
            for s, row in zip(slots, clamped):
                matrix[s][:] = row  # reprolint: shares[clamping timers in place is behavior-preserving and must reach live lane views]
        return
    for matrix in columns:
        for s in slots:
            row = matrix[s]
            for i, v in enumerate(row):
                if v < cycle:
                    row[i] = cycle  # reprolint: shares[clamping timers in place is behavior-preserving and must reach live lane views]


def next_wake_min(
    candidates: Sequence[Sequence[int]], backend: str
) -> List[int]:
    """Row-wise min over per-lane wake-candidate rows.

    Each row collects one lane's wake candidates (screen hint, pending
    completion, core event horizon); the result is the lane's next
    event cycle.  Rows must be non-empty and, per the
    :func:`decay_timers` invariant, already ``>= `` the current cycle —
    the fold does no clamping.
    """
    if backend == "numpy" and HAVE_NUMPY:
        assert _numpy is not None
        widths = {len(row) for row in candidates}
        if len(widths) == 1:
            arr = _numpy.array(candidates, dtype=_numpy.int64)
            out: List[int] = arr.min(axis=1).tolist()
            return out
    return [min(row) for row in candidates]
