"""Lane-major timing state for the batch kernel: N lanes x (ranks*banks).

:class:`BatchTimingCore` is :class:`~repro.dram.soa.TimingCore` with a
leading *lane* dimension: every flat per-(rank,bank) and per-rank
integer vector becomes a matrix whose row ``lane`` is one grid point's
channel state.  The batch event loop (:mod:`repro.sim.batch`) allocates
one slab per channel index and hands each lane its row set via
:meth:`lane` — a real :class:`TimingCore` whose slots *are* the slab
rows, so the controller's scheduling passes (which bind the arrays as
locals and mutate them in place) run unchanged against lane-sliced
views, and bit-identity with the scalar engine holds by construction.

Bulk operations — allocating and resetting whole slabs — go through a
backend selected at import: numpy (installed via the ``.[fast]`` extra)
builds each matrix in one vectorized call, the pure-list fallback uses
per-lane list ops.  Both produce *identical* structures (nested plain
lists of Python ints/bools: ``ndarray.tolist()`` converts element
types), so the backend can never change simulation results — only how
fast lane state is materialized.  ``REPRO_BATCH_BACKEND=list|numpy``
forces a backend; :data:`HAVE_NUMPY` is the loud-skip shim tests and
callers consult.

Why the *hot path* stays scalar per lane: the FR-FCFS scheduler is
deeply data-dependent (burst-streak commits, useless-row masks) and
lanes sit at different cycles, so cross-lane SIMD of ``step()`` cannot
be bit-identical.  CPython also indexes plain lists faster than numpy
scalars.  The lane dimension instead amortizes allocation, snapshot
restore and event-loop interpreter overhead — see DESIGN.md §7.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.dram.geometry import FULL_MASK
from repro.dram.soa import TimingCore

try:  # the `.[fast]` optional extra; tier-1 must run without it
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _numpy = None  # type: ignore[assignment]

#: Loud-skip shim: ``False`` means the pure-list fallback backend is in
#: use (identical semantics, slower bulk ops).  Re-exported as
#: ``repro.sim.batch.HAVE_NUMPY``.
HAVE_NUMPY = _numpy is not None

#: Backends a :class:`BatchTimingCore` can allocate with.
BACKENDS = ("numpy", "list")


def default_backend() -> str:
    """Backend selected at import: env override, else numpy if present.

    ``REPRO_BATCH_BACKEND=list`` forces the fallback (e.g. to compare
    backends on one install); ``=numpy`` fails loudly when the extra is
    missing instead of silently degrading.
    """
    forced = os.environ.get("REPRO_BATCH_BACKEND", "").strip().lower()
    if forced:
        if forced not in BACKENDS:
            raise ValueError(
                f"REPRO_BATCH_BACKEND={forced!r}: expected one of {BACKENDS}"
            )
        if forced == "numpy" and not HAVE_NUMPY:
            raise ImportError(
                "REPRO_BATCH_BACKEND=numpy but numpy is not installed; "
                "install the extra: pip install 'repro[fast]'"
            )
        return forced
    return "numpy" if HAVE_NUMPY else "list"


def full_rows(lanes: int, width: int, fill: int, backend: str) -> List[List[int]]:
    """``lanes`` rows of ``width`` ints, every element ``fill``.

    The numpy backend materializes the whole matrix in one array op
    (``tolist()`` yields plain Python ints, bit-identical to the
    fallback's per-lane list repeats).
    """
    if backend == "numpy":
        assert _numpy is not None
        matrix: List[List[int]] = _numpy.full(
            (lanes, width), fill, dtype=_numpy.int64
        ).tolist()
        return matrix
    return [[fill] * width for _ in range(lanes)]


def false_rows(lanes: int, width: int, backend: str) -> List[List[bool]]:
    """``lanes`` rows of ``width`` ``False`` flags (same contract)."""
    if backend == "numpy":
        assert _numpy is not None
        matrix: List[List[bool]] = _numpy.zeros(
            (lanes, width), dtype=bool
        ).tolist()
        return matrix
    return [[False] * width for _ in range(lanes)]


def none_rows(lanes: int, width: int) -> List[List[Optional[int]]]:
    """``lanes`` rows of ``width`` ``None`` slots (no numpy analogue:
    object matrices gain nothing from vectorization)."""
    return [[None] * width for _ in range(lanes)]


# Oracle-parity declaration enforced by reprolint: the lane-major slab
# is the batch fast path; the scalar per-channel TimingCore it hands
# out rows of is the oracle.
REPRO_FAST_PATH = True
ORACLE_TWIN = "repro.dram.soa"
ORACLE_TESTS = ("tests/test_batch.py",)


class BatchTimingCore:
    """Lane-major DRAM timing state: one slab for N lanes of a channel.

    Field names and encodings match :class:`~repro.dram.soa.TimingCore`
    exactly; every field just gains a leading lane dimension.  Row
    ``lane`` of each matrix is the lane's live state — :meth:`lane`
    returns a ``TimingCore`` whose slots alias those rows, so there is
    exactly one copy of the state and no synchronization step.
    """

    __slots__ = (
        "num_lanes",
        "num_ranks",
        "num_banks",
        "backend",
        # -- lane-major per-bank matrices: [lane][rank*num_banks+bank] --
        "open_row",
        "open_mask",
        "act_ready",
        "col_ready",
        "pre_ready",
        "last_act",
        "accesses",
        "autopre",
        "reserved",
        # -- lane-major per-rank matrices: [lane][rank] --
        "next_act_ok",
        "next_col_ok",
        "next_read_ok",
        "next_write_ok",
        "gate",
        "open_bits",
    )

    def __init__(
        self,
        num_lanes: int,
        num_ranks: int,
        num_banks: int,
        backend: Optional[str] = None,
    ) -> None:
        if num_lanes <= 0:
            raise ValueError("BatchTimingCore needs at least one lane")
        if num_ranks <= 0 or num_banks <= 0:
            raise ValueError("BatchTimingCore needs at least one rank and bank")
        if backend is None:
            backend = default_backend()
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected {BACKENDS}")
        if backend == "numpy" and not HAVE_NUMPY:
            raise ImportError(
                "numpy backend requested but numpy is not installed; "
                "install the extra: pip install 'repro[fast]'"
            )
        self.num_lanes = num_lanes
        self.num_ranks = num_ranks
        self.num_banks = num_banks
        self.backend = backend
        n = num_ranks * num_banks
        self.open_row = full_rows(num_lanes, n, -1, backend)
        self.open_mask = full_rows(num_lanes, n, FULL_MASK, backend)
        self.act_ready = full_rows(num_lanes, n, 0, backend)
        self.col_ready = full_rows(num_lanes, n, 0, backend)
        self.pre_ready = full_rows(num_lanes, n, 0, backend)
        self.last_act = full_rows(num_lanes, n, -1, backend)
        self.accesses = full_rows(num_lanes, n, 0, backend)
        self.autopre = false_rows(num_lanes, n, backend)
        self.reserved = none_rows(num_lanes, n)
        self.next_act_ok = full_rows(num_lanes, num_ranks, 0, backend)
        self.next_col_ok = full_rows(num_lanes, num_ranks, 0, backend)
        self.next_read_ok = full_rows(num_lanes, num_ranks, 0, backend)
        self.next_write_ok = full_rows(num_lanes, num_ranks, 0, backend)
        self.gate = full_rows(num_lanes, num_ranks, 0, backend)
        self.open_bits = full_rows(num_lanes, num_ranks, 0, backend)

    # ------------------------------------------------------------------
    def lane(self, lane: int) -> TimingCore:
        """A :class:`TimingCore` whose arrays *are* this slab's rows.

        The returned core is the lane's only state copy: controller
        mutations through the view are mutations of the slab rows, and
        whole-slab operations observe them immediately.
        """
        if not 0 <= lane < self.num_lanes:
            raise IndexError(f"lane {lane} out of range 0..{self.num_lanes - 1}")
        core = TimingCore(self.num_ranks, self.num_banks)
        core.open_row = self.open_row[lane]
        core.open_mask = self.open_mask[lane]
        core.act_ready = self.act_ready[lane]
        core.col_ready = self.col_ready[lane]
        core.pre_ready = self.pre_ready[lane]
        core.last_act = self.last_act[lane]
        core.accesses = self.accesses[lane]
        core.autopre = self.autopre[lane]
        core.reserved = self.reserved[lane]
        core.next_act_ok = self.next_act_ok[lane]
        core.next_col_ok = self.next_col_ok[lane]
        core.next_read_ok = self.next_read_ok[lane]
        core.next_write_ok = self.next_write_ok[lane]
        core.gate = self.gate[lane]
        core.open_bits = self.open_bits[lane]
        return core

    def lanes(self) -> List[TimingCore]:
        """All lane views, in lane order."""
        return [self.lane(i) for i in range(self.num_lanes)]

    # ------------------------------------------------------------------
    def open_banks_per_lane(self) -> List[int]:
        """Open-bank count per lane, as one cross-lane reduction.

        Diagnostic/verification helper: with numpy the popcount over
        the lane-major ``open_row`` matrix is a single whole-array op;
        the fallback reduces per lane.  Both count ``open_row != -1``.
        """
        if self.backend == "numpy":
            assert _numpy is not None
            arr = _numpy.array(self.open_row, dtype=_numpy.int64)
            counts: List[int] = (arr != -1).sum(axis=1).tolist()
            return counts
        return [
            sum(1 for row in lane_rows if row != -1) for lane_rows in self.open_row
        ]

    def reset_lane(self, lane: int) -> None:
        """Re-initialize one lane's rows in place (views stay valid).

        In-place slice assignment preserves the row object identity the
        lane views and any bound controller locals alias.
        """
        n = self.num_ranks * self.num_banks
        self.open_row[lane][:] = [-1] * n
        self.open_mask[lane][:] = [FULL_MASK] * n
        self.act_ready[lane][:] = [0] * n
        self.col_ready[lane][:] = [0] * n
        self.pre_ready[lane][:] = [0] * n
        self.last_act[lane][:] = [-1] * n
        self.accesses[lane][:] = [0] * n
        self.autopre[lane][:] = [False] * n
        self.reserved[lane][:] = [None] * n
        for field in (
            self.next_act_ok,
            self.next_col_ok,
            self.next_read_ok,
            self.next_write_ok,
            self.gate,
            self.open_bits,
        ):
            field[lane][:] = [0] * self.num_ranks
