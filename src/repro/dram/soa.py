"""Structure-of-arrays timing state shared by a channel's ranks/banks.

The scheduler's hot loops (housekeeping walk, FR-FCFS passes, burst
streak commits) read and write per-bank and per-rank timing state tens
of times per issued command.  Scattering that state across ``Bank`` /
``Rank`` objects costs an attribute load per touch; flattening it into
plain integer lists indexed by ``g = rank_index * num_banks +
bank_index`` turns readiness checks and wake-hint computation into flat
array min/compare loops.

One :class:`TimingCore` is created per channel and adopted by that
channel's :class:`~repro.controller.memctrl.ChannelController`, which
binds the arrays as locals in its scheduling passes.  The ``Bank`` and
``Rank`` classes remain the public API: they are thin views whose
properties read and write these arrays, so unit tests, the protocol
checker and the ``strict_polling`` oracle keep working unchanged.

Encoding conventions:

* ``open_row[g]`` is ``-1`` for a precharged bank (``Bank.open_row``
  translates to/from ``None``),
* ``autopre[g]`` / ``reserved[g]`` mirror ``Bank.pending_autopre`` /
  ``Bank.reserved_req``,
* ``open_bits[r]`` is the rank's open-bank bitmask,
* ``gate[r]`` caches ``max(pd_exit_ready, refresh_until)`` — the
  earliest cycle any command may issue on the rank,
* ``pd[r]`` is 1 while the rank sits in precharge power-down
  (``Rank.powered_down`` translates to/from ``bool``),
* ``next_refresh[r]`` is the rank's next refresh deadline.

The last two moved here from plain ``Rank`` attributes so the batch
kernel's lane-major slabs (:mod:`repro.dram.soa_batch`) carry the full
idle-screen state: whether a lane's channel can possibly issue anything
(open banks, pending refresh, power-down residency) is then answerable
column-wise across lanes without touching the ``Rank`` objects.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dram.geometry import FULL_MASK

# Oracle-parity declaration enforced by reprolint: this module is the
# array-backed fast path; the Bank/Rank object views are the oracle.
# It is also on the compiled-engine list (repro.engine.COMPILED_MODULES):
# the mypyc build must stay bit-identical to this source, pinned by the
# golden digests in tests/test_engine_identity.py.
REPRO_FAST_PATH = True
ORACLE_TWIN = ("repro.dram.bank", "repro.dram.rank")
ORACLE_TESTS = (
    "tests/test_engine_equivalence.py",
    "tests/test_engine_identity.py",
)


class TimingCore:
    """Flat per-(rank, bank) and per-rank timing state for one channel."""

    __slots__ = (
        "num_ranks",
        "num_banks",
        # -- per-bank arrays, indexed by g = rank * num_banks + bank --
        "open_row",
        "open_mask",
        "act_ready",
        "col_ready",
        "pre_ready",
        "last_act",
        "accesses",
        "autopre",
        "reserved",
        # -- per-rank arrays, indexed by rank --
        "next_act_ok",
        "next_col_ok",
        "next_read_ok",
        "next_write_ok",
        "gate",
        "open_bits",
        "pd",
        "next_refresh",
    )

    def __init__(self, num_ranks: int, num_banks: int) -> None:
        if num_ranks <= 0 or num_banks <= 0:
            raise ValueError("TimingCore needs at least one rank and bank")
        self.num_ranks = num_ranks
        self.num_banks = num_banks
        n = num_ranks * num_banks
        # Element types are annotated explicitly (not inferred from the
        # literals) so the mypyc build of this module gives every array
        # an exact native attribute type.
        #: Open row per bank; -1 when precharged.
        self.open_row: List[int] = [-1] * n
        #: PRA mask the open row was activated under.
        self.open_mask: List[int] = [FULL_MASK] * n
        #: Earliest cycle an ACT may be issued to the bank.
        self.act_ready: List[int] = [0] * n
        #: Earliest cycle a column (RD/WR) command may be issued.
        self.col_ready: List[int] = [0] * n
        #: Earliest cycle a PRE may be issued.
        self.pre_ready: List[int] = [0] * n
        #: Cycle of the most recent activation (stats/debug).
        self.last_act: List[int] = [-1] * n
        #: Column accesses served by the open row (row-hit cap).
        self.accesses: List[int] = [0] * n
        #: Pending auto-precharge flag (restricted close-page).
        self.autopre: List[bool] = [False] * n
        #: Request id the activation was reserved for, or None.
        self.reserved: List[Optional[int]] = [None] * n
        #: Earliest next-ACT cycle per rank (tRRD).
        self.next_act_ok: List[int] = [0] * num_ranks
        #: Earliest next column command per rank (tCCD).
        self.next_col_ok: List[int] = [0] * num_ranks
        #: Earliest READ per rank (write-to-read turnaround).
        self.next_read_ok: List[int] = [0] * num_ranks
        #: Earliest WRITE per rank (DM-pin write-buffer hold).
        self.next_write_ok: List[int] = [0] * num_ranks
        #: max(pd_exit_ready, refresh_until) per rank.
        self.gate: List[int] = [0] * num_ranks
        #: Bitmask of banks with an open row, per rank.
        self.open_bits: List[int] = [0] * num_ranks
        #: 1 while the rank is in precharge power-down, else 0.
        self.pd: List[int] = [0] * num_ranks
        #: Next refresh deadline per rank (``Rank.__init__`` seeds tREFI).
        self.next_refresh: List[int] = [0] * num_ranks
