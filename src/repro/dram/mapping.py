"""Physical-address to DRAM-coordinate mapping, and line data mapping.

Two interleaving schemes from the paper's methodology (Section 5.1.2):

* **row-interleaved** — consecutive cache lines fill a DRAM row before
  moving to the next channel/bank.  Used with the relaxed close-page
  policy; preserves row-buffer locality of streaming accesses.
* **line-interleaved** — consecutive cache lines are spread over
  channels, then banks, then ranks.  Used with the restricted
  close-page policy; maximizes bank/channel parallelism.

Also implements the intra-line data mapping of Figure 1: word *i* of a
cache line is distributed one byte per chip, and within each chip the
byte's two nibbles occupy the two MATs of MAT group *i*.  This is what
lets one bit of the PRA mask gate exactly one word lane.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dram.commands import Address
from repro.dram.geometry import LINE_BYTES, WORD_BYTES, SystemGeometry


class Interleaving(enum.Enum):
    ROW = "row-interleaved"
    LINE = "line-interleaved"


def _bits(value: int) -> int:
    """Number of address bits needed for ``value`` distinct items."""
    if value <= 0:
        raise ValueError("need a positive item count")
    return (value - 1).bit_length()


# Derived bit-slice attributes are attached in __post_init__ via
# object.__setattr__, which __slots__ would reject; one mapper exists
# per System, so the per-instance __dict__ is not a hot-path cost.
@dataclass(frozen=True)
class AddressMapper:  # reprolint: allow[hygiene-slots]
    """Decodes byte addresses into (channel, rank, bank, row, column).

    ``column`` in the produced :class:`Address` is the *line-level*
    column index (0 .. lines_per_row - 1); the device moves a whole
    64 B line per column access burst.
    """

    geometry: SystemGeometry = SystemGeometry()
    interleaving: Interleaving = Interleaving.ROW
    #: XOR-permute the bank index with low row bits.  Spreads strided
    #: streams that would otherwise camp on one bank (an extension,
    #: not a paper configuration; self-inverse, so encode/decode stay
    #: exact round trips).
    xor_bank_hash: bool = False

    def __post_init__(self) -> None:
        geo = self.geometry
        object.__setattr__(self, "_ch_bits", _bits(geo.channels))
        object.__setattr__(self, "_rk_bits", _bits(geo.ranks_per_channel))
        object.__setattr__(self, "_ba_bits", _bits(geo.chip.banks))
        object.__setattr__(self, "_co_bits", _bits(geo.lines_per_row))
        object.__setattr__(self, "_ro_bits", _bits(geo.chip.rows))
        # decode_line runs once per DRAM request; cache every divisor as
        # a plain attribute so the hot path does no property calls and
        # no nested geometry lookups.
        object.__setattr__(self, "_channels", geo.channels)
        object.__setattr__(self, "_ranks", geo.ranks_per_channel)
        object.__setattr__(self, "_banks", geo.chip.banks)
        object.__setattr__(self, "_rows", geo.chip.rows)
        object.__setattr__(self, "_cols", geo.lines_per_row)
        object.__setattr__(self, "_capacity", geo.capacity_bytes // LINE_BYTES)

    @property
    def line_capacity(self) -> int:
        """Total number of cache lines the system can hold."""
        return self._capacity

    def decode_line(self, line_index: int) -> Address:
        """Decode a cache-line index into DRAM coordinates."""
        if line_index < 0:
            raise ValueError("line index must be non-negative")
        v = line_index % self._capacity
        if self.interleaving is Interleaving.ROW:
            # offset | column | channel | bank | rank | row
            v, column = divmod(v, self._cols)
            v, channel = divmod(v, self._channels)
            v, bank = divmod(v, self._banks)
            v, rank = divmod(v, self._ranks)
            row = v % self._rows
        else:
            # offset | channel | bank | rank | column | row
            v, channel = divmod(v, self._channels)
            v, bank = divmod(v, self._banks)
            v, rank = divmod(v, self._ranks)
            v, column = divmod(v, self._cols)
            row = v % self._rows
        if self.xor_bank_hash:
            bank ^= row % self._banks
        return Address(channel=channel, rank=rank, bank=bank, row=row, column=column)

    def decode(self, byte_addr: int) -> Address:
        """Decode a physical byte address."""
        return self.decode_line(byte_addr // LINE_BYTES)

    def encode_line(self, addr: Address) -> int:
        """Inverse of :meth:`decode_line` (used by tests and DBI)."""
        geo = self.geometry
        bank = addr.bank
        if self.xor_bank_hash:
            bank ^= addr.row % geo.chip.banks
        addr = Address(channel=addr.channel, rank=addr.rank, bank=bank,
                       row=addr.row, column=addr.column)
        if self.interleaving is Interleaving.ROW:
            v = addr.row
            v = v * geo.ranks_per_channel + addr.rank
            v = v * geo.chip.banks + addr.bank
            v = v * geo.channels + addr.channel
            v = v * geo.lines_per_row + addr.column
        else:
            v = addr.row
            v = v * geo.lines_per_row + addr.column
            v = v * geo.ranks_per_channel + addr.rank
            v = v * geo.chip.banks + addr.bank
            v = v * geo.channels + addr.channel
        return v

    def row_key(self, addr: Address) -> tuple:
        """Hashable identity of the DRAM row an address falls in."""
        return (addr.channel, addr.rank, addr.bank, addr.row)


def word_index_to_mat_group(word: int) -> int:
    """MAT group (within every chip of the rank) that stores ``word``.

    Per Figure 1, word *i* of a cache line maps to MAT group *i*: the
    identity map.  Kept as a function so alternative intra-line
    mappings can be studied.
    """
    if not 0 <= word < LINE_BYTES // WORD_BYTES:
        raise ValueError(f"word index out of range: {word}")
    return word


def dirty_words_to_mask(dirty_words: "list[int] | tuple[int, ...]") -> int:
    """Build a PRA mask from a collection of dirty word indices."""
    mask = 0
    for word in dirty_words:
        mask |= 1 << word_index_to_mat_group(word)
    return mask


def mats_activated(mask: int, mats_per_group: int = 2) -> int:
    """Number of MATs opened by an activation with ``mask``."""
    return bin(mask).count("1") * mats_per_group
