"""Bank state machine with partial-row (PRA) support.

Each bank tracks its open row, the PRA mask under which the row was
opened (``FULL_MASK`` for a conventional activation) and the earliest
cycles at which the next ACT / column / PRE command may be issued, per
the DDR3 timing rules of :class:`repro.dram.timing.TimingParams`.

A PRA activation behaves exactly like a normal activation except that

* only the masked MAT groups are opened (so only matching accesses hit),
* the column command is delayed one extra cycle (mask transfer,
  Fig. 7a), and
* the activation energy recorded is the per-granularity value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core import mask as mask_ops
from repro.dram.geometry import FULL_MASK
from repro.dram.timing import TimingParams


class BankStateError(RuntimeError):
    """A command was applied in a state or at a time that violates DDR3 rules."""


@dataclass
class Bank:
    """One DRAM bank (replicated across the chips of a rank)."""

    timing: TimingParams
    #: Currently open row, or None when precharged.
    open_row: Optional[int] = None
    #: PRA mask under which the open row was activated.
    open_mask: int = FULL_MASK
    #: Earliest cycle an ACT may be issued to this bank.
    act_ready: int = 0
    #: Earliest cycle a column (RD/WR) command may be issued.
    col_ready: int = 0
    #: Earliest cycle a PRE may be issued.
    pre_ready: int = 0
    #: Cycle of the most recent activation (stats/debug).
    last_act_cycle: int = -1
    #: Number of column accesses served by the open row (row-hit cap).
    open_row_accesses: int = 0
    #: Set by the controller when the open row must auto-precharge
    #: (restricted close-page policy).
    pending_autopre: bool = False
    #: Under restricted close-page, the request id the current
    #: activation was issued for; only that request may use the row
    #: (ACT + column + PRE are atomic in that policy).
    reserved_req: Optional[int] = None

    @property
    def is_open(self) -> bool:
        return self.open_row is not None

    def can_activate(self, cycle: int) -> bool:
        return self.open_row is None and cycle >= self.act_ready

    def can_column(self, cycle: int) -> bool:
        return self.open_row is not None and cycle >= self.col_ready

    def can_precharge(self, cycle: int) -> bool:
        return self.open_row is not None and cycle >= self.pre_ready

    def hit_kind(self, row: int, needed_mask: int) -> str:
        """Classify an access against the bank's current row state.

        Returns one of:

        * ``"hit"``    — row open and every needed MAT group open,
        * ``"false"``  — row open but a needed MAT group closed
          (the paper's *false row buffer hit*; requires PRE + ACT),
        * ``"miss"``   — a different row is open (row conflict),
        * ``"closed"`` — bank precharged.
        """
        if self.open_row is None:
            return "closed"
        if self.open_row != row:
            return "miss"
        if mask_ops.covers(self.open_mask, needed_mask):
            return "hit"
        return "false"

    def activate(
        self,
        cycle: int,
        row: int,
        mask: int = FULL_MASK,
        mask_transfer_cycle: "bool | None" = None,
    ) -> None:
        """Open ``row`` with ``mask`` (partial if mask != FULL_MASK).

        ``mask_transfer_cycle`` controls the +1 tRCD penalty for the
        PRA-mask transfer; ``None`` (default) applies it exactly when
        the mask is partial (address-bus delivery, Fig. 7a).  The
        DM-pin delivery alternative passes ``False``.
        """
        if not self.can_activate(cycle):
            raise BankStateError(
                f"ACT at {cycle} illegal (open_row={self.open_row}, "
                f"act_ready={self.act_ready})"
            )
        if not 0 < mask <= FULL_MASK:
            raise BankStateError(f"activation mask out of range: {mask:#x}")
        t = self.timing
        if mask_transfer_cycle is None:
            mask_transfer_cycle = mask != FULL_MASK
        extra = t.pra_extra if mask_transfer_cycle else 0
        self.open_row = row
        self.open_mask = mask
        self.col_ready = cycle + t.trcd + extra
        self.pre_ready = max(self.pre_ready, cycle + t.tras)
        self.act_ready = cycle + t.trc
        self.last_act_cycle = cycle
        self.open_row_accesses = 0

    def widen(self, cycle: int, extra_mask: int) -> None:
        """OR additional groups into the open mask.

        Not a device operation in the paper (a false hit always closes
        the row first); provided for scheme ablations that model an
        incremental-activation variant.
        """
        if self.open_row is None:
            raise BankStateError("cannot widen a precharged bank")
        self.open_mask = mask_ops.merge(self.open_mask, extra_mask)
        self.col_ready = max(self.col_ready, cycle + self.timing.trcd)

    def read(self, cycle: int) -> int:
        """Issue a column read; returns the cycle the data burst ends."""
        if not self.can_column(cycle):
            raise BankStateError(f"READ at {cycle} illegal (col_ready={self.col_ready})")
        t = self.timing
        burst_end = cycle + t.tcas + t.tburst
        self.col_ready = max(self.col_ready, cycle + t.tccd)
        self.pre_ready = max(self.pre_ready, cycle + t.trtp)
        self.open_row_accesses += 1
        return burst_end

    def write(self, cycle: int) -> int:
        """Issue a column write; returns the cycle the data burst ends."""
        if not self.can_column(cycle):
            raise BankStateError(f"WRITE at {cycle} illegal (col_ready={self.col_ready})")
        t = self.timing
        burst_end = cycle + t.tcwl + t.tburst
        self.col_ready = max(self.col_ready, cycle + t.tccd)
        self.pre_ready = max(self.pre_ready, burst_end + t.twr)
        self.open_row_accesses += 1
        return burst_end

    def precharge(self, cycle: int) -> None:
        """Close the open row; the next ACT waits tRP."""
        if not self.can_precharge(cycle):
            raise BankStateError(
                f"PRE at {cycle} illegal (open={self.open_row}, pre_ready={self.pre_ready})"
            )
        self.open_row = None
        self.open_mask = FULL_MASK
        self.act_ready = max(self.act_ready, cycle + self.timing.trp)

    def block_for_refresh(self, cycle: int) -> None:
        """Push out the next ACT to after a refresh that starts now."""
        if self.open_row is not None:
            raise BankStateError("refresh requires all banks precharged")
        self.act_ready = max(self.act_ready, cycle + self.timing.trfc)


@dataclass
class ActivationWindow:
    """Sliding-window tracker for tFAW with fractional (PRA) weights.

    A full-row activation has weight 1.0; a partial activation of g/8
    granularity weighs g/8, reflecting its proportionally smaller
    contribution to the peak-power budget that tFAW protects
    (Section 4.1.3: relaxed tRRD/tFAW).
    """

    tfaw: int
    budget: float = 4.0
    history: list = field(default_factory=list)

    def weight_in_window(self, cycle: int) -> float:
        """ACT weight inside the window ending at ``cycle`` (pure query).

        Queries must not prune the history: hint computations probe
        *future* cycles, and pruning on those probes would drop entries
        still live for queries at earlier cycles (a real tFAW-violation
        bug caught by the protocol checker).
        """
        window_start = cycle - self.tfaw
        return sum(w for c, w in self.history if c > window_start)

    def can_activate(self, cycle: int, weight: float) -> bool:
        return self.weight_in_window(cycle) + weight <= self.budget + 1e-9

    def next_allowed(self, cycle: int, weight: float) -> int:
        """Earliest cycle at which an ACT of ``weight`` fits the window."""
        window_start = cycle - self.tfaw
        live = [(c, w) for c, w in self.history if c > window_start]
        total = sum(w for _, w in live)
        candidate = cycle
        idx = 0
        while total + weight > self.budget + 1e-9 and idx < len(live):
            candidate = live[idx][0] + self.tfaw + 1
            total -= live[idx][1]
            idx += 1
        return candidate

    def record(self, cycle: int, weight: float) -> None:
        """Record an issued ACT; prunes entries the window outgrew.

        Issue times are monotonic per rank, so pruning here is safe.
        """
        hist = self.history
        window_start = cycle - self.tfaw
        while hist and hist[0][0] <= window_start:
            hist.pop(0)
        hist.append((cycle, weight))
