"""Bank state machine with partial-row (PRA) support.

Each bank tracks its open row, the PRA mask under which the row was
opened (``FULL_MASK`` for a conventional activation) and the earliest
cycles at which the next ACT / column / PRE command may be issued, per
the DDR3 timing rules of :class:`repro.dram.timing.TimingParams`.

A PRA activation behaves exactly like a normal activation except that

* only the masked MAT groups are opened (so only matching accesses hit),
* the column command is delayed one extra cycle (mask transfer,
  Fig. 7a), and
* the activation energy recorded is the per-granularity value.
"""

from __future__ import annotations

from typing import Optional

from repro.core import mask as mask_ops
from repro.dram.geometry import FULL_MASK
from repro.dram.timing import TimingParams, derived_timing


class BankStateError(RuntimeError):
    """A command was applied in a state or at a time that violates DDR3 rules."""


class Bank:
    """One DRAM bank (replicated across the chips of a rank).

    ``__slots__``-based: banks are the most frequently touched objects
    in the simulator's hot loop, and the per-scheme timing values the
    state machine needs are cached as plain attributes at construction
    (see :func:`repro.dram.timing.derived_timing`).
    """

    __slots__ = (
        "timing",
        "open_row",
        "open_mask",
        "act_ready",
        "col_ready",
        "pre_ready",
        "last_act_cycle",
        "open_row_accesses",
        "pending_autopre",
        "reserved_req",
        "_rank_ref",
        "_bit",
        "_trcd",
        "_tras",
        "_trc",
        "_trp",
        "_tccd",
        "_trtp",
        "_twr",
        "_trfc",
        "_pra_extra",
        "_read_burst",
        "_write_burst",
    )

    def __init__(
        self,
        timing: TimingParams,
        open_row: Optional[int] = None,
        open_mask: int = FULL_MASK,
        act_ready: int = 0,
        col_ready: int = 0,
        pre_ready: int = 0,
        last_act_cycle: int = -1,
        open_row_accesses: int = 0,
        pending_autopre: bool = False,
        reserved_req: Optional[int] = None,
        *,
        rank=None,
        bank_index: int = 0,
    ) -> None:
        self.timing = timing
        #: Owning rank (optional): lets the bank keep the rank's
        #: ``open_bits`` bitmask exact on every activate/precharge, so
        #: the controller's hot loop iterates only open banks.
        self._rank_ref = rank
        self._bit = 1 << bank_index
        if rank is not None and open_row is not None:
            rank.open_bits |= self._bit
        #: Currently open row, or None when precharged.
        self.open_row = open_row
        #: PRA mask under which the open row was activated.
        self.open_mask = open_mask
        #: Earliest cycle an ACT may be issued to this bank.
        self.act_ready = act_ready
        #: Earliest cycle a column (RD/WR) command may be issued.
        self.col_ready = col_ready
        #: Earliest cycle a PRE may be issued.
        self.pre_ready = pre_ready
        #: Cycle of the most recent activation (stats/debug).
        self.last_act_cycle = last_act_cycle
        #: Number of column accesses served by the open row (row-hit cap).
        self.open_row_accesses = open_row_accesses
        #: Set by the controller when the open row must auto-precharge
        #: (restricted close-page policy).
        self.pending_autopre = pending_autopre
        #: Under restricted close-page, the request id the current
        #: activation was issued for; only that request may use the row
        #: (ACT + column + PRE are atomic in that policy).
        self.reserved_req = reserved_req
        d = derived_timing(timing)
        self._trcd = timing.trcd
        self._tras = timing.tras
        self._trc = timing.trc
        self._trp = timing.trp
        self._tccd = timing.tccd
        self._trtp = timing.trtp
        self._twr = timing.twr
        self._trfc = timing.trfc
        self._pra_extra = timing.pra_extra
        self._read_burst = d.read_burst
        self._write_burst = d.write_burst

    @property
    def is_open(self) -> bool:
        return self.open_row is not None

    def can_activate(self, cycle: int) -> bool:
        return self.open_row is None and cycle >= self.act_ready

    def can_column(self, cycle: int) -> bool:
        return self.open_row is not None and cycle >= self.col_ready

    def can_precharge(self, cycle: int) -> bool:
        return self.open_row is not None and cycle >= self.pre_ready

    def hit_kind(self, row: int, needed_mask: int) -> str:
        """Classify an access against the bank's current row state.

        Returns one of:

        * ``"hit"``    — row open and every needed MAT group open,
        * ``"false"``  — row open but a needed MAT group closed
          (the paper's *false row buffer hit*; requires PRE + ACT),
        * ``"miss"``   — a different row is open (row conflict),
        * ``"closed"`` — bank precharged.
        """
        if self.open_row is None:
            return "closed"
        if self.open_row != row:
            return "miss"
        if mask_ops.covers(self.open_mask, needed_mask):
            return "hit"
        return "false"

    def activate(
        self,
        cycle: int,
        row: int,
        mask: int = FULL_MASK,
        mask_transfer_cycle: "bool | None" = None,
    ) -> None:
        """Open ``row`` with ``mask`` (partial if mask != FULL_MASK).

        ``mask_transfer_cycle`` controls the +1 tRCD penalty for the
        PRA-mask transfer; ``None`` (default) applies it exactly when
        the mask is partial (address-bus delivery, Fig. 7a).  The
        DM-pin delivery alternative passes ``False``.
        """
        if not self.can_activate(cycle):
            raise BankStateError(
                f"ACT at {cycle} illegal (open_row={self.open_row}, "
                f"act_ready={self.act_ready})"
            )
        if not 0 < mask <= FULL_MASK:
            raise BankStateError(f"activation mask out of range: {mask:#x}")
        if mask_transfer_cycle is None:
            mask_transfer_cycle = mask != FULL_MASK
        extra = self._pra_extra if mask_transfer_cycle else 0
        if self._rank_ref is not None:
            self._rank_ref.open_bits |= self._bit
        self.open_row = row
        self.open_mask = mask
        self.col_ready = cycle + self._trcd + extra
        pre = cycle + self._tras
        if pre > self.pre_ready:
            self.pre_ready = pre
        self.act_ready = cycle + self._trc
        self.last_act_cycle = cycle
        self.open_row_accesses = 0

    def widen(self, cycle: int, extra_mask: int) -> None:
        """OR additional groups into the open mask.

        Not a device operation in the paper (a false hit always closes
        the row first); provided for scheme ablations that model an
        incremental-activation variant.
        """
        if self.open_row is None:
            raise BankStateError("cannot widen a precharged bank")
        self.open_mask = mask_ops.merge(self.open_mask, extra_mask)
        self.col_ready = max(self.col_ready, cycle + self.timing.trcd)

    def read(self, cycle: int) -> int:
        """Issue a column read; returns the cycle the data burst ends."""
        if not self.can_column(cycle):
            raise BankStateError(f"READ at {cycle} illegal (col_ready={self.col_ready})")
        burst_end = cycle + self._read_burst
        col = cycle + self._tccd
        if col > self.col_ready:
            self.col_ready = col
        pre = cycle + self._trtp
        if pre > self.pre_ready:
            self.pre_ready = pre
        self.open_row_accesses += 1
        return burst_end

    def write(self, cycle: int) -> int:
        """Issue a column write; returns the cycle the data burst ends."""
        if not self.can_column(cycle):
            raise BankStateError(f"WRITE at {cycle} illegal (col_ready={self.col_ready})")
        burst_end = cycle + self._write_burst
        col = cycle + self._tccd
        if col > self.col_ready:
            self.col_ready = col
        pre = burst_end + self._twr
        if pre > self.pre_ready:
            self.pre_ready = pre
        self.open_row_accesses += 1
        return burst_end

    def precharge(self, cycle: int) -> None:
        """Close the open row; the next ACT waits tRP."""
        if not self.can_precharge(cycle):
            raise BankStateError(
                f"PRE at {cycle} illegal (open={self.open_row}, pre_ready={self.pre_ready})"
            )
        if self._rank_ref is not None:
            self._rank_ref.open_bits &= ~self._bit
        self.open_row = None
        self.open_mask = FULL_MASK
        act = cycle + self._trp
        if act > self.act_ready:
            self.act_ready = act

    def block_for_refresh(self, cycle: int) -> None:
        """Push out the next ACT to after a refresh that starts now."""
        if self.open_row is not None:
            raise BankStateError("refresh requires all banks precharged")
        act = cycle + self._trfc
        if act > self.act_ready:
            self.act_ready = act


class ActivationWindow:
    """Sliding-window tracker for tFAW with fractional (PRA) weights.

    A full-row activation has weight 1.0; a partial activation of g/8
    granularity weighs g/8, reflecting its proportionally smaller
    contribution to the peak-power budget that tFAW protects
    (Section 4.1.3: relaxed tRRD/tFAW).
    """

    __slots__ = ("tfaw", "budget", "history")

    def __init__(self, tfaw: int, budget: float = 4.0, history: "list | None" = None):
        self.tfaw = tfaw
        self.budget = budget
        self.history = [] if history is None else history

    def weight_in_window(self, cycle: int) -> float:
        """ACT weight inside the window ending at ``cycle`` (pure query).

        Queries must not prune the history: hint computations probe
        *future* cycles, and pruning on those probes would drop entries
        still live for queries at earlier cycles (a real tFAW-violation
        bug caught by the protocol checker).
        """
        window_start = cycle - self.tfaw
        total = 0.0
        for c, w in self.history:
            if c > window_start:
                total += w
        return total

    def can_activate(self, cycle: int, weight: float) -> bool:
        return self.weight_in_window(cycle) + weight <= self.budget + 1e-9

    def next_allowed(self, cycle: int, weight: float) -> int:
        """Earliest cycle at which an ACT of ``weight`` fits the window."""
        window_start = cycle - self.tfaw
        budget = self.budget + 1e-9
        total = weight
        first_live = 0
        hist = self.history
        for c, w in hist:
            if c > window_start:
                total += w
            else:
                first_live += 1
        candidate = cycle
        idx = first_live
        while total > budget and idx < len(hist):
            candidate = hist[idx][0] + self.tfaw + 1
            total -= hist[idx][1]
            idx += 1
        return candidate

    def record(self, cycle: int, weight: float) -> None:
        """Record an issued ACT; prunes entries the window outgrew.

        Issue times are monotonic per rank, so pruning here is safe.
        """
        hist = self.history
        window_start = cycle - self.tfaw
        while hist and hist[0][0] <= window_start:
            hist.pop(0)
        hist.append((cycle, weight))
