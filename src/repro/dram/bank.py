"""Bank state machine with partial-row (PRA) support.

Each bank tracks its open row, the PRA mask under which the row was
opened (``FULL_MASK`` for a conventional activation) and the earliest
cycles at which the next ACT / column / PRE command may be issued, per
the DDR3 timing rules of :class:`repro.dram.timing.TimingParams`.

A PRA activation behaves exactly like a normal activation except that

* only the masked MAT groups are opened (so only matching accesses hit),
* the column command is delayed one extra cycle (mask transfer,
  Fig. 7a), and
* the activation energy recorded is the per-granularity value.

Since the array-backed timing core (:mod:`repro.dram.soa`) the bank no
longer stores its own state: every field is a *view* onto the flat
per-channel :class:`~repro.dram.soa.TimingCore` arrays at the bank's
global index, which the controller's scheduling passes read directly.
The class keeps the full legality-checked command API
(:meth:`activate` / :meth:`read` / :meth:`write` / :meth:`precharge`)
for unit tests, reference models and cold paths; a bank constructed
standalone (no owning rank/core) creates a private single-bank core so
the state machine remains self-contained.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core import mask as mask_ops
from repro.dram.geometry import FULL_MASK
from repro.dram.soa import TimingCore
from repro.dram.timing import TimingParams, derived_timing

if TYPE_CHECKING:
    from repro.dram.rank import Rank


class BankStateError(RuntimeError):
    """A command was applied in a state or at a time that violates DDR3 rules."""


class Bank:
    """One DRAM bank (replicated across the chips of a rank).

    ``__slots__``-based view over a :class:`TimingCore`: the per-scheme
    timing values the state machine needs are cached as plain attributes
    at construction (see :func:`repro.dram.timing.derived_timing`), and
    all mutable state lives in the core's arrays at ``self._g``.
    """

    __slots__ = (
        "timing",
        "core",
        "_g",
        "_ri",
        "_bit",
        "_trcd",
        "_tras",
        "_trc",
        "_trp",
        "_tccd",
        "_trtp",
        "_twr",
        "_trfc",
        "_pra_extra",
        "_read_burst",
        "_write_burst",
    )

    def __init__(
        self,
        timing: TimingParams,
        open_row: Optional[int] = None,
        open_mask: int = FULL_MASK,
        act_ready: int = 0,
        col_ready: int = 0,
        pre_ready: int = 0,
        last_act_cycle: int = -1,
        open_row_accesses: int = 0,
        pending_autopre: bool = False,
        reserved_req: Optional[int] = None,
        *,
        rank: "Optional[Rank]" = None,
        bank_index: int = 0,
        core: Optional[TimingCore] = None,
        rank_index: int = 0,
        adopt_state: bool = False,
    ) -> None:
        """``adopt_state=True`` attaches the view to ``core`` without
        writing the initial-state arguments into the arrays — for banks
        built lazily over live state (:attr:`repro.dram.rank.Rank.banks`).
        The explicit state arguments must be left at their defaults then.
        """
        self.timing = timing
        if core is None:
            if rank is not None:
                core = rank.core
                rank_index = rank.rank_index
            else:
                # Standalone bank (unit tests / reference models): own a
                # private core wide enough for this bank's index.
                core = TimingCore(1, bank_index + 1)
                rank_index = 0
        #: Shared per-channel timing-state arrays.
        self.core = core
        self._ri = rank_index
        self._g = rank_index * core.num_banks + bank_index
        self._bit = 1 << bank_index
        g = self._g
        if not adopt_state:
            if open_row is not None:
                core.open_bits[rank_index] |= self._bit
                core.open_row[g] = open_row
            else:
                core.open_row[g] = -1
            core.open_mask[g] = open_mask
            core.act_ready[g] = act_ready
            core.col_ready[g] = col_ready
            core.pre_ready[g] = pre_ready
            core.last_act[g] = last_act_cycle
            core.accesses[g] = open_row_accesses
            core.autopre[g] = pending_autopre
            core.reserved[g] = reserved_req
        d = derived_timing(timing)
        self._trcd = timing.trcd
        self._tras = timing.tras
        self._trc = timing.trc
        self._trp = timing.trp
        self._tccd = timing.tccd
        self._trtp = timing.trtp
        self._twr = timing.twr
        self._trfc = timing.trfc
        self._pra_extra = timing.pra_extra
        self._read_burst = d.read_burst
        self._write_burst = d.write_burst

    # ------------------------------------------------------------------
    # State views (arrays are authoritative; setters keep open_bits exact)
    # ------------------------------------------------------------------
    @property
    def open_row(self) -> Optional[int]:
        row = self.core.open_row[self._g]
        return None if row < 0 else row

    @open_row.setter
    def open_row(self, value: Optional[int]) -> None:
        core = self.core
        if value is None:
            core.open_row[self._g] = -1
            core.open_bits[self._ri] &= ~self._bit
        else:
            core.open_row[self._g] = value
            core.open_bits[self._ri] |= self._bit

    @property
    def open_mask(self) -> int:
        return self.core.open_mask[self._g]

    @open_mask.setter
    def open_mask(self, value: int) -> None:
        self.core.open_mask[self._g] = value

    @property
    def act_ready(self) -> int:
        return self.core.act_ready[self._g]

    @act_ready.setter
    def act_ready(self, value: int) -> None:
        self.core.act_ready[self._g] = value

    @property
    def col_ready(self) -> int:
        return self.core.col_ready[self._g]

    @col_ready.setter
    def col_ready(self, value: int) -> None:
        self.core.col_ready[self._g] = value

    @property
    def pre_ready(self) -> int:
        return self.core.pre_ready[self._g]

    @pre_ready.setter
    def pre_ready(self, value: int) -> None:
        self.core.pre_ready[self._g] = value

    @property
    def last_act_cycle(self) -> int:
        return self.core.last_act[self._g]

    @last_act_cycle.setter
    def last_act_cycle(self, value: int) -> None:
        self.core.last_act[self._g] = value

    @property
    def open_row_accesses(self) -> int:
        return self.core.accesses[self._g]

    @open_row_accesses.setter
    def open_row_accesses(self, value: int) -> None:
        self.core.accesses[self._g] = value

    @property
    def pending_autopre(self) -> bool:
        return self.core.autopre[self._g]

    @pending_autopre.setter
    def pending_autopre(self, value: bool) -> None:
        self.core.autopre[self._g] = value

    @property
    def reserved_req(self) -> Optional[int]:
        return self.core.reserved[self._g]

    @reserved_req.setter
    def reserved_req(self, value: Optional[int]) -> None:
        self.core.reserved[self._g] = value

    @property
    def is_open(self) -> bool:
        return self.core.open_row[self._g] >= 0

    # ------------------------------------------------------------------
    # Legality queries
    # ------------------------------------------------------------------
    def can_activate(self, cycle: int) -> bool:
        core, g = self.core, self._g
        return core.open_row[g] < 0 and cycle >= core.act_ready[g]

    def can_column(self, cycle: int) -> bool:
        core, g = self.core, self._g
        return core.open_row[g] >= 0 and cycle >= core.col_ready[g]

    def can_precharge(self, cycle: int) -> bool:
        core, g = self.core, self._g
        return core.open_row[g] >= 0 and cycle >= core.pre_ready[g]

    def hit_kind(self, row: int, needed_mask: int) -> str:
        """Classify an access against the bank's current row state.

        Returns one of:

        * ``"hit"``    — row open and every needed MAT group open,
        * ``"false"``  — row open but a needed MAT group closed
          (the paper's *false row buffer hit*; requires PRE + ACT),
        * ``"miss"``   — a different row is open (row conflict),
        * ``"closed"`` — bank precharged.
        """
        core, g = self.core, self._g
        open_row = core.open_row[g]
        if open_row < 0:
            return "closed"
        if open_row != row:
            return "miss"
        if mask_ops.covers(core.open_mask[g], needed_mask):
            return "hit"
        return "false"

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def activate(
        self,
        cycle: int,
        row: int,
        mask: int = FULL_MASK,
        mask_transfer_cycle: "bool | None" = None,
    ) -> None:
        """Open ``row`` with ``mask`` (partial if mask != FULL_MASK).

        ``mask_transfer_cycle`` controls the +1 tRCD penalty for the
        PRA-mask transfer; ``None`` (default) applies it exactly when
        the mask is partial (address-bus delivery, Fig. 7a).  The
        DM-pin delivery alternative passes ``False``.
        """
        core, g = self.core, self._g
        if not (core.open_row[g] < 0 and cycle >= core.act_ready[g]):
            raise BankStateError(
                f"ACT at {cycle} illegal (open_row={self.open_row}, "
                f"act_ready={core.act_ready[g]})"
            )
        if not 0 < mask <= FULL_MASK:
            raise BankStateError(f"activation mask out of range: {mask:#x}")
        if mask_transfer_cycle is None:
            mask_transfer_cycle = mask != FULL_MASK
        extra = self._pra_extra if mask_transfer_cycle else 0
        core.open_bits[self._ri] |= self._bit
        core.open_row[g] = row
        core.open_mask[g] = mask
        core.col_ready[g] = cycle + self._trcd + extra
        pre = cycle + self._tras
        if pre > core.pre_ready[g]:
            core.pre_ready[g] = pre
        core.act_ready[g] = cycle + self._trc
        core.last_act[g] = cycle
        core.accesses[g] = 0

    def widen(self, cycle: int, extra_mask: int) -> None:
        """OR additional groups into the open mask.

        Not a device operation in the paper (a false hit always closes
        the row first); provided for scheme ablations that model an
        incremental-activation variant.
        """
        core, g = self.core, self._g
        if core.open_row[g] < 0:
            raise BankStateError("cannot widen a precharged bank")
        core.open_mask[g] = mask_ops.merge(core.open_mask[g], extra_mask)
        col = cycle + self._trcd
        if col > core.col_ready[g]:
            core.col_ready[g] = col

    def read(self, cycle: int) -> int:
        """Issue a column read; returns the cycle the data burst ends."""
        core, g = self.core, self._g
        if not (core.open_row[g] >= 0 and cycle >= core.col_ready[g]):
            raise BankStateError(
                f"READ at {cycle} illegal (col_ready={core.col_ready[g]})"
            )
        burst_end = cycle + self._read_burst
        col = cycle + self._tccd
        if col > core.col_ready[g]:
            core.col_ready[g] = col
        pre = cycle + self._trtp
        if pre > core.pre_ready[g]:
            core.pre_ready[g] = pre
        core.accesses[g] += 1
        return burst_end

    def write(self, cycle: int) -> int:
        """Issue a column write; returns the cycle the data burst ends."""
        core, g = self.core, self._g
        if not (core.open_row[g] >= 0 and cycle >= core.col_ready[g]):
            raise BankStateError(
                f"WRITE at {cycle} illegal (col_ready={core.col_ready[g]})"
            )
        burst_end = cycle + self._write_burst
        col = cycle + self._tccd
        if col > core.col_ready[g]:
            core.col_ready[g] = col
        pre = burst_end + self._twr
        if pre > core.pre_ready[g]:
            core.pre_ready[g] = pre
        core.accesses[g] += 1
        return burst_end

    def precharge(self, cycle: int) -> None:
        """Close the open row; the next ACT waits tRP."""
        core, g = self.core, self._g
        if not (core.open_row[g] >= 0 and cycle >= core.pre_ready[g]):
            raise BankStateError(
                f"PRE at {cycle} illegal (open={self.open_row}, "
                f"pre_ready={core.pre_ready[g]})"
            )
        core.open_bits[self._ri] &= ~self._bit
        core.open_row[g] = -1
        core.open_mask[g] = FULL_MASK
        act = cycle + self._trp
        if act > core.act_ready[g]:
            core.act_ready[g] = act

    def block_for_refresh(self, cycle: int) -> None:
        """Push out the next ACT to after a refresh that starts now."""
        core, g = self.core, self._g
        if core.open_row[g] >= 0:
            raise BankStateError("refresh requires all banks precharged")
        act = cycle + self._trfc
        if act > core.act_ready[g]:
            core.act_ready[g] = act


class ActivationWindow:
    """Sliding-window tracker for tFAW with fractional (PRA) weights.

    A full-row activation has weight 1.0; a partial activation of g/8
    granularity weighs g/8, reflecting its proportionally smaller
    contribution to the peak-power budget that tFAW protects
    (Section 4.1.3: relaxed tRRD/tFAW).
    """

    __slots__ = ("tfaw", "budget", "history")

    def __init__(self, tfaw: int, budget: float = 4.0, history: "list | None" = None):
        self.tfaw = tfaw
        self.budget = budget
        self.history = [] if history is None else history

    def weight_in_window(self, cycle: int) -> float:
        """ACT weight inside the window ending at ``cycle`` (pure query).

        Queries must not prune the history: hint computations probe
        *future* cycles, and pruning on those probes would drop entries
        still live for queries at earlier cycles (a real tFAW-violation
        bug caught by the protocol checker).
        """
        window_start = cycle - self.tfaw
        total = 0.0
        for c, w in self.history:
            if c > window_start:
                total += w
        return total

    def can_activate(self, cycle: int, weight: float) -> bool:
        return self.weight_in_window(cycle) + weight <= self.budget + 1e-9

    def next_allowed(self, cycle: int, weight: float) -> int:
        """Earliest cycle at which an ACT of ``weight`` fits the window."""
        window_start = cycle - self.tfaw
        budget = self.budget + 1e-9
        total = weight
        first_live = 0
        hist = self.history
        for c, w in hist:
            if c > window_start:
                total += w
            else:
                first_live += 1
        candidate = cycle
        idx = first_live
        while total > budget and idx < len(hist):
            candidate = hist[idx][0] + self.tfaw + 1
            total -= hist[idx][1]
            idx += 1
        return candidate

    def record(self, cycle: int, weight: float) -> None:
        """Record an issued ACT; prunes entries the window outgrew.

        Issue times are monotonic per rank, so pruning here is safe.
        """
        hist = self.history
        window_start = cycle - self.tfaw
        while hist and hist[0][0] <= window_start:
            hist.pop(0)
        hist.append((cycle, weight))
