"""Rank model: banks in lockstep, inter-bank timing, power-down, refresh.

A rank is eight x8 chips operating in lockstep, so one :class:`Bank`
object here stands for the same bank across all chips.  The rank owns
the constraints that span banks:

* tRRD between activations (weight-relaxed for partial activations),
* the tFAW four-activation window (fractionally weighted under PRA),
* tCCD between column commands and the write-to-read turnaround,
* precharge power-down entry/exit,
* periodic refresh.

The rank also integrates background-state residency (active standby /
precharge standby / precharge power-down) for the power model.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.dram.bank import ActivationWindow, Bank, BankStateError
from repro.dram.timing import TimingParams


class Rank:
    """One rank of DRAM chips and its inter-bank constraints."""

    def __init__(
        self,
        timing: TimingParams,
        num_banks: int = 8,
        relax_act_constraints: bool = False,
    ) -> None:
        self.timing = timing
        self.banks: List[Bank] = [Bank(timing) for _ in range(num_banks)]
        self.faw = ActivationWindow(tfaw=timing.tfaw)
        #: Whether partial/half activations relax tRRD and tFAW.
        self.relax_act_constraints = relax_act_constraints
        #: Earliest cycle the next ACT (any bank) may issue (tRRD).
        self.next_act_ok: int = 0
        #: Earliest cycle the next column command (any bank) may issue.
        self.next_col_ok: int = 0
        #: Earliest cycle a READ may issue (write-to-read turnaround).
        self.next_read_ok: int = 0
        #: Earliest cycle a WRITE may issue (DM-pin mask delivery holds
        #: the chip write buffers until the activation completes).
        self.next_write_ok: int = 0
        #: True while the rank sits in precharge power-down.
        self.powered_down: bool = False
        #: Earliest cycle a command may issue after power-down exit.
        self.pd_exit_ready: int = 0
        #: Deadline of the next refresh.
        self.next_refresh: int = timing.trefi
        #: Cycle until which an in-flight refresh blocks the rank.
        self.refresh_until: int = 0
        # Background residency integration.
        self._bg_last_cycle: int = 0
        self.bg_residency: Dict[str, int] = {
            "act_stby": 0,
            "pre_stby": 0,
            "pre_pdn": 0,
        }

    # ------------------------------------------------------------------
    # Background state accounting
    # ------------------------------------------------------------------
    def _bg_state(self) -> str:
        if any(bank.is_open for bank in self.banks):
            return "act_stby"
        if self.powered_down:
            return "pre_pdn"
        return "pre_stby"

    def accrue_background(self, cycle: int) -> None:
        """Charge elapsed cycles to the current background state.

        Must be called *before* any state-changing operation and once at
        the end of simulation.
        """
        delta = cycle - self._bg_last_cycle
        if delta > 0:
            self.bg_residency[self._bg_state()] += delta
            self._bg_last_cycle = cycle

    # ------------------------------------------------------------------
    # Power-down
    # ------------------------------------------------------------------
    @property
    def all_precharged(self) -> bool:
        return not any(bank.is_open for bank in self.banks)

    def enter_power_down(self, cycle: int) -> None:
        """Enter precharge power-down (all banks must be closed)."""
        if not self.all_precharged:
            raise BankStateError("precharge power-down requires all banks closed")
        if not self.powered_down:
            self.accrue_background(cycle)
            self.powered_down = True

    def exit_power_down(self, cycle: int) -> int:
        """Leave power-down; returns the cycle commands become legal."""
        if self.powered_down:
            self.accrue_background(cycle)
            self.powered_down = False
            self.pd_exit_ready = cycle + self.timing.txp
        return self.pd_exit_ready

    def command_gate(self, cycle: int) -> int:
        """Earliest cycle any command may issue (PD exit / refresh)."""
        gate = max(self.pd_exit_ready, self.refresh_until)
        return max(gate, cycle)

    # ------------------------------------------------------------------
    # Activation constraints
    # ------------------------------------------------------------------
    def _act_weight(self, granularity_eighths: int) -> float:
        if not self.relax_act_constraints:
            return 1.0
        return granularity_eighths / 8.0

    def can_activate(self, cycle: int, bank: int, granularity_eighths: int = 8) -> bool:
        """True when an ACT of the given granularity is legal now."""
        if self.powered_down or cycle < self.command_gate(cycle):
            return False
        weight = self._act_weight(granularity_eighths)
        return (
            cycle >= self.next_act_ok
            and self.banks[bank].can_activate(cycle)
            and self.faw.can_activate(cycle, weight)
        )

    def earliest_activate(self, cycle: int, bank: int, granularity_eighths: int = 8) -> int:
        """Lower bound on the cycle the ACT could issue (for skip-ahead)."""
        weight = self._act_weight(granularity_eighths)
        t = max(
            cycle,
            self.next_act_ok,
            self.banks[bank].act_ready,
            self.command_gate(cycle),
        )
        return max(t, self.faw.next_allowed(t, weight))

    def record_activate(self, cycle: int, granularity_eighths: int) -> None:
        """Update tRRD/tFAW bookkeeping after an ACT was issued."""
        weight = self._act_weight(granularity_eighths)
        trrd = self.timing.trrd
        if self.relax_act_constraints:
            trrd = max(2, math.ceil(trrd * weight))
        self.next_act_ok = cycle + trrd
        self.faw.record(cycle, weight)

    # ------------------------------------------------------------------
    # Column constraints
    # ------------------------------------------------------------------
    def can_read(self, cycle: int, bank: int) -> bool:
        """True when a column READ to the bank is legal now."""
        return (
            not self.powered_down
            and cycle >= self.command_gate(cycle)
            and cycle >= self.next_col_ok
            and cycle >= self.next_read_ok
            and self.banks[bank].can_column(cycle)
        )

    def can_write(self, cycle: int, bank: int) -> bool:
        """True when a column WRITE to the bank is legal now."""
        return (
            not self.powered_down
            and cycle >= self.command_gate(cycle)
            and cycle >= self.next_col_ok
            and cycle >= self.next_write_ok
            and self.banks[bank].can_column(cycle)
        )

    def earliest_read(self, cycle: int, bank: int) -> int:
        """Lower bound on the next legal READ cycle (skip-ahead hint)."""
        return max(
            cycle,
            self.next_col_ok,
            self.next_read_ok,
            self.banks[bank].col_ready,
            self.command_gate(cycle),
        )

    def earliest_write(self, cycle: int, bank: int) -> int:
        """Lower bound on the next legal WRITE cycle (skip-ahead hint)."""
        return max(
            cycle,
            self.next_col_ok,
            self.next_write_ok,
            self.banks[bank].col_ready,
            self.command_gate(cycle),
        )

    def record_read(self, cycle: int) -> None:
        self.next_col_ok = cycle + self.timing.tccd

    def record_write(self, cycle: int, burst_end: int) -> None:
        self.next_col_ok = cycle + self.timing.tccd
        self.next_read_ok = max(self.next_read_ok, burst_end + self.timing.twtr)

    def hold_write_buffer(self, until_cycle: int) -> None:
        """Block further writes until ``until_cycle`` (DM-pin delivery)."""
        self.next_write_ok = max(self.next_write_ok, until_cycle)

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def refresh_due(self, cycle: int) -> bool:
        return cycle >= self.next_refresh

    def do_refresh(self, cycle: int) -> None:
        """Issue an all-bank refresh; rank must be fully precharged."""
        if not self.all_precharged:
            raise BankStateError("refresh with open banks")
        self.accrue_background(cycle)
        for bank in self.banks:
            bank.block_for_refresh(cycle)
        self.refresh_until = cycle + self.timing.trfc
        self.next_refresh += self.timing.trefi
        # Bound catch-up after long idle skips: DDR3 allows deferring at
        # most 8 refreshes, so don't bunch more than that.
        lag_floor = cycle - 8 * self.timing.trefi
        if self.next_refresh < lag_floor:
            self.next_refresh = lag_floor
