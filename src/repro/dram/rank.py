"""Rank model: banks in lockstep, inter-bank timing, power-down, refresh.

A rank is eight x8 chips operating in lockstep, so one :class:`Bank`
object here stands for the same bank across all chips.  The rank owns
the constraints that span banks:

* tRRD between activations (weight-relaxed for partial activations),
* the tFAW four-activation window (fractionally weighted under PRA),
* tCCD between column commands and the write-to-read turnaround,
* precharge power-down entry/exit,
* periodic refresh.

The rank also integrates background-state residency (active standby /
precharge standby / precharge power-down) for the power model.

Inter-bank timing state (``next_act_ok`` / ``next_col_ok`` /
``next_read_ok`` / ``next_write_ok``, the open-bank bitmask, the
command gate, the power-down flag and the refresh deadline) lives in
the channel's shared :class:`~repro.dram.soa.TimingCore` arrays at
``rank_index`` — the attributes here are views, so the controller's
flat-array hot loops, the batch kernel's lane-major slabs and this
object API always agree.  Only the tFAW window, power-down exit timing
and background-residency integration stay plain attributes: they are
touched on cold paths and never screened column-wise.

The per-bank :class:`Bank` views are built lazily on first access:
they carry no state of their own (everything lives in the core
arrays), and the batch kernel constructs hundreds of ranks per lane
group whose banks are often never touched before the run ends.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.dram.bank import ActivationWindow, Bank, BankStateError
from repro.dram.soa import TimingCore
from repro.dram.timing import TimingParams

# Oracle-parity declaration enforced by reprolint: the TimingCore-backed
# property views are the fast path; the Bank object model is the oracle.
# Also on the compiled-engine list (repro.engine.COMPILED_MODULES),
# pinned bit-identical by the golden digests in
# tests/test_engine_identity.py.
REPRO_FAST_PATH = True
ORACLE_TWIN = ("repro.dram.bank",)
ORACLE_TESTS = (
    "tests/test_engine_equivalence.py",
    "tests/test_engine_identity.py",
)


class Rank:
    """One rank of DRAM chips and its inter-bank constraints."""

    __slots__ = (
        "timing",
        "_banks",
        "core",
        "rank_index",
        "num_banks",
        "faw",
        "relax_act_constraints",
        "pd_exit_ready",
        "refresh_until",
        "_bg_last_cycle",
        "bg_residency",
        "_trrd",
        "_tccd",
        "_twtr",
        "_txp",
        "_trefi",
        "_trfc",
    )

    def __init__(
        self,
        timing: TimingParams,
        num_banks: int = 8,
        relax_act_constraints: bool = False,
        *,
        core: Optional[TimingCore] = None,
        rank_index: int = 0,
    ) -> None:
        self.timing = timing
        if core is None:
            # Standalone rank (unit tests): own a private core.
            core = TimingCore(rank_index + 1, num_banks)
        #: Shared per-channel timing-state arrays.
        self.core = core
        self.rank_index = rank_index
        self.num_banks = num_banks
        #: Lazily built :class:`Bank` views (state lives in ``core``).
        self._banks: Optional[List[Bank]] = None
        self.faw = ActivationWindow(tfaw=timing.tfaw)
        #: Whether partial/half activations relax tRRD and tFAW.
        self.relax_act_constraints = relax_act_constraints
        # Power-down flag and refresh deadline live in the core arrays
        # (written through the properties below).
        self.powered_down = False
        self.next_refresh = timing.trefi
        #: Earliest cycle a command may issue after power-down exit.
        self.pd_exit_ready: int = 0
        #: Cycle until which an in-flight refresh blocks the rank.
        self.refresh_until: int = 0
        # Background residency integration.
        self._bg_last_cycle: int = 0
        self.bg_residency: Dict[str, int] = {
            "act_stby": 0,
            "pre_stby": 0,
            "pre_pdn": 0,
        }
        self._trrd = timing.trrd
        self._tccd = timing.tccd
        self._twtr = timing.twtr
        self._txp = timing.txp
        self._trefi = timing.trefi
        self._trfc = timing.trfc

    # ------------------------------------------------------------------
    # Array-backed state views
    # ------------------------------------------------------------------
    @property
    def banks(self) -> List[Bank]:
        """Per-bank views, built on first access.

        Banks hold no state (everything lives in ``core``), so deferred
        construction (``adopt_state=True``: the view adopts whatever the
        arrays say instead of resetting them) is observationally
        identical to eager construction on a fresh core — and skips
        hundreds of never-touched Bank objects per batch lane group.
        """
        banks = self._banks
        if banks is None:
            banks = self._banks = [
                Bank(
                    self.timing,
                    core=self.core,
                    rank_index=self.rank_index,
                    bank_index=i,
                    adopt_state=True,
                )
                for i in range(self.num_banks)
            ]
        return banks

    @property
    def powered_down(self) -> bool:
        """True while the rank sits in precharge power-down."""
        return bool(self.core.pd[self.rank_index])

    @powered_down.setter
    def powered_down(self, value: bool) -> None:
        self.core.pd[self.rank_index] = 1 if value else 0

    @property
    def next_refresh(self) -> int:
        """Deadline of the next refresh."""
        return self.core.next_refresh[self.rank_index]

    @next_refresh.setter
    def next_refresh(self, value: int) -> None:
        self.core.next_refresh[self.rank_index] = value

    @property
    def open_bits(self) -> int:
        """Bitmask of banks with an open row (exact by construction)."""
        return self.core.open_bits[self.rank_index]

    @open_bits.setter
    def open_bits(self, value: int) -> None:
        self.core.open_bits[self.rank_index] = value

    @property
    def next_act_ok(self) -> int:
        """Earliest cycle the next ACT (any bank) may issue (tRRD)."""
        return self.core.next_act_ok[self.rank_index]

    @next_act_ok.setter
    def next_act_ok(self, value: int) -> None:
        self.core.next_act_ok[self.rank_index] = value

    @property
    def next_col_ok(self) -> int:
        """Earliest cycle the next column command (any bank) may issue."""
        return self.core.next_col_ok[self.rank_index]

    @next_col_ok.setter
    def next_col_ok(self, value: int) -> None:
        self.core.next_col_ok[self.rank_index] = value

    @property
    def next_read_ok(self) -> int:
        """Earliest cycle a READ may issue (write-to-read turnaround)."""
        return self.core.next_read_ok[self.rank_index]

    @next_read_ok.setter
    def next_read_ok(self, value: int) -> None:
        self.core.next_read_ok[self.rank_index] = value

    @property
    def next_write_ok(self) -> int:
        """Earliest cycle a WRITE may issue (DM-pin mask delivery holds
        the chip write buffers until the activation completes)."""
        return self.core.next_write_ok[self.rank_index]

    @next_write_ok.setter
    def next_write_ok(self, value: int) -> None:
        self.core.next_write_ok[self.rank_index] = value

    @property
    def _gate(self) -> int:
        """Cached max(pd_exit_ready, refresh_until); kept in sync by the
        two mutators so ``command_gate`` is a single comparison on the
        hot path instead of a recomputed max every probe."""
        return self.core.gate[self.rank_index]

    @_gate.setter
    def _gate(self, value: int) -> None:
        self.core.gate[self.rank_index] = value

    # ------------------------------------------------------------------
    # Background state accounting
    # ------------------------------------------------------------------
    def _bg_state(self) -> str:
        if self.core.open_bits[self.rank_index]:
            return "act_stby"
        if self.powered_down:
            return "pre_pdn"
        return "pre_stby"

    def accrue_background(self, cycle: int) -> None:
        """Charge elapsed cycles to the current background state.

        Must be called *before* any state-changing operation and once at
        the end of simulation.
        """
        delta = cycle - self._bg_last_cycle
        if delta > 0:
            self.bg_residency[self._bg_state()] += delta
            self._bg_last_cycle = cycle

    # ------------------------------------------------------------------
    # Power-down
    # ------------------------------------------------------------------
    @property
    def all_precharged(self) -> bool:
        return not self.core.open_bits[self.rank_index]

    def enter_power_down(self, cycle: int) -> None:
        """Enter precharge power-down (all banks must be closed)."""
        if not self.all_precharged:
            raise BankStateError("precharge power-down requires all banks closed")
        if not self.powered_down:
            self.accrue_background(cycle)
            self.powered_down = True

    def exit_power_down(self, cycle: int) -> int:
        """Leave power-down; returns the cycle commands become legal."""
        if self.powered_down:
            self.accrue_background(cycle)
            self.powered_down = False
            self.pd_exit_ready = cycle + self._txp
            ri = self.rank_index
            if self.pd_exit_ready > self.core.gate[ri]:
                self.core.gate[ri] = self.pd_exit_ready
        return self.pd_exit_ready

    def command_gate(self, cycle: int) -> int:
        """Earliest cycle any command may issue (PD exit / refresh)."""
        gate = self.core.gate[self.rank_index]
        return gate if gate > cycle else cycle

    # ------------------------------------------------------------------
    # Activation constraints
    # ------------------------------------------------------------------
    def _act_weight(self, granularity_eighths: int) -> float:
        if not self.relax_act_constraints:
            return 1.0
        return granularity_eighths / 8.0

    def can_activate(self, cycle: int, bank: int, granularity_eighths: int = 8) -> bool:
        """True when an ACT of the given granularity is legal now."""
        if self.powered_down or cycle < self.command_gate(cycle):
            return False
        weight = self._act_weight(granularity_eighths)
        return (
            cycle >= self.core.next_act_ok[self.rank_index]
            and self.banks[bank].can_activate(cycle)
            and self.faw.can_activate(cycle, weight)
        )

    def earliest_activate(self, cycle: int, bank: int, granularity_eighths: int = 8) -> int:
        """Lower bound on the cycle the ACT could issue (for skip-ahead)."""
        weight = self._act_weight(granularity_eighths)
        core = self.core
        ri = self.rank_index
        t = cycle
        if core.next_act_ok[ri] > t:
            t = core.next_act_ok[ri]
        act_ready = core.act_ready[ri * core.num_banks + bank]
        if act_ready > t:
            t = act_ready
        if core.gate[ri] > t:
            t = core.gate[ri]
        faw_t = self.faw.next_allowed(t, weight)
        return faw_t if faw_t > t else t

    def record_activate(self, cycle: int, granularity_eighths: int) -> None:
        """Update tRRD/tFAW bookkeeping after an ACT was issued."""
        weight = self._act_weight(granularity_eighths)
        trrd = self._trrd
        if self.relax_act_constraints:
            trrd = max(2, math.ceil(trrd * weight))
        self.core.next_act_ok[self.rank_index] = cycle + trrd
        self.faw.record(cycle, weight)

    # ------------------------------------------------------------------
    # Column constraints
    # ------------------------------------------------------------------
    def can_read(self, cycle: int, bank: int) -> bool:
        """True when a column READ to the bank is legal now."""
        ri = self.rank_index
        return (
            not self.powered_down
            and cycle >= self.command_gate(cycle)
            and cycle >= self.core.next_col_ok[ri]
            and cycle >= self.core.next_read_ok[ri]
            and self.banks[bank].can_column(cycle)
        )

    def can_write(self, cycle: int, bank: int) -> bool:
        """True when a column WRITE to the bank is legal now."""
        ri = self.rank_index
        return (
            not self.powered_down
            and cycle >= self.command_gate(cycle)
            and cycle >= self.core.next_col_ok[ri]
            and cycle >= self.core.next_write_ok[ri]
            and self.banks[bank].can_column(cycle)
        )

    def earliest_read(self, cycle: int, bank: int) -> int:
        """Lower bound on the next legal READ cycle (skip-ahead hint)."""
        core = self.core
        ri = self.rank_index
        t = cycle
        if core.next_col_ok[ri] > t:
            t = core.next_col_ok[ri]
        if core.next_read_ok[ri] > t:
            t = core.next_read_ok[ri]
        col_ready = core.col_ready[ri * core.num_banks + bank]
        if col_ready > t:
            t = col_ready
        if core.gate[ri] > t:
            t = core.gate[ri]
        return t

    def earliest_write(self, cycle: int, bank: int) -> int:
        """Lower bound on the next legal WRITE cycle (skip-ahead hint)."""
        core = self.core
        ri = self.rank_index
        t = cycle
        if core.next_col_ok[ri] > t:
            t = core.next_col_ok[ri]
        if core.next_write_ok[ri] > t:
            t = core.next_write_ok[ri]
        col_ready = core.col_ready[ri * core.num_banks + bank]
        if col_ready > t:
            t = col_ready
        if core.gate[ri] > t:
            t = core.gate[ri]
        return t

    def record_read(self, cycle: int) -> None:
        self.core.next_col_ok[self.rank_index] = cycle + self._tccd

    def record_write(self, cycle: int, burst_end: int) -> None:
        """Update tCCD and the write-to-read turnaround after a WRITE."""
        core = self.core
        ri = self.rank_index
        core.next_col_ok[ri] = cycle + self._tccd
        read_ok = burst_end + self._twtr
        if read_ok > core.next_read_ok[ri]:
            core.next_read_ok[ri] = read_ok

    def hold_write_buffer(self, until_cycle: int) -> None:
        """Block further writes until ``until_cycle`` (DM-pin delivery)."""
        core = self.core
        ri = self.rank_index
        if until_cycle > core.next_write_ok[ri]:
            core.next_write_ok[ri] = until_cycle

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def refresh_due(self, cycle: int) -> bool:
        return cycle >= self.next_refresh

    def do_refresh(self, cycle: int) -> None:
        """Issue an all-bank refresh; rank must be fully precharged."""
        if not self.all_precharged:
            raise BankStateError("refresh with open banks")
        self.accrue_background(cycle)
        for bank in self.banks:
            bank.block_for_refresh(cycle)
        self.refresh_until = cycle + self._trfc
        ri = self.rank_index
        if self.refresh_until > self.core.gate[ri]:
            self.core.gate[ri] = self.refresh_until
        self.next_refresh += self._trefi
        # Bound catch-up after long idle skips: DDR3 allows deferring at
        # most 8 refreshes, so don't bunch more than that.
        lag_floor = cycle - 8 * self._trefi
        if self.next_refresh < lag_floor:
            self.next_refresh = lag_floor
