"""Rank model: banks in lockstep, inter-bank timing, power-down, refresh.

A rank is eight x8 chips operating in lockstep, so one :class:`Bank`
object here stands for the same bank across all chips.  The rank owns
the constraints that span banks:

* tRRD between activations (weight-relaxed for partial activations),
* the tFAW four-activation window (fractionally weighted under PRA),
* tCCD between column commands and the write-to-read turnaround,
* precharge power-down entry/exit,
* periodic refresh.

The rank also integrates background-state residency (active standby /
precharge standby / precharge power-down) for the power model.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.dram.bank import ActivationWindow, Bank, BankStateError
from repro.dram.timing import TimingParams


class Rank:
    """One rank of DRAM chips and its inter-bank constraints."""

    __slots__ = (
        "timing",
        "banks",
        "open_bits",
        "faw",
        "relax_act_constraints",
        "next_act_ok",
        "next_col_ok",
        "next_read_ok",
        "next_write_ok",
        "powered_down",
        "pd_exit_ready",
        "next_refresh",
        "refresh_until",
        "_gate",
        "_bg_last_cycle",
        "bg_residency",
        "_trrd",
        "_tccd",
        "_twtr",
        "_txp",
        "_trefi",
        "_trfc",
    )

    def __init__(
        self,
        timing: TimingParams,
        num_banks: int = 8,
        relax_act_constraints: bool = False,
    ) -> None:
        self.timing = timing
        #: Bitmask of banks with an open row, maintained by the banks
        #: themselves on every activate/precharge (exact by
        #: construction: ACT requires closed, PRE requires open).
        self.open_bits: int = 0
        self.banks: List[Bank] = [
            Bank(timing, rank=self, bank_index=i) for i in range(num_banks)
        ]
        self.faw = ActivationWindow(tfaw=timing.tfaw)
        #: Whether partial/half activations relax tRRD and tFAW.
        self.relax_act_constraints = relax_act_constraints
        #: Earliest cycle the next ACT (any bank) may issue (tRRD).
        self.next_act_ok: int = 0
        #: Earliest cycle the next column command (any bank) may issue.
        self.next_col_ok: int = 0
        #: Earliest cycle a READ may issue (write-to-read turnaround).
        self.next_read_ok: int = 0
        #: Earliest cycle a WRITE may issue (DM-pin mask delivery holds
        #: the chip write buffers until the activation completes).
        self.next_write_ok: int = 0
        #: True while the rank sits in precharge power-down.
        self.powered_down: bool = False
        #: Earliest cycle a command may issue after power-down exit.
        self.pd_exit_ready: int = 0
        #: Deadline of the next refresh.
        self.next_refresh: int = timing.trefi
        #: Cycle until which an in-flight refresh blocks the rank.
        self.refresh_until: int = 0
        #: Cached max(pd_exit_ready, refresh_until); kept in sync by the
        #: two mutators so ``command_gate`` is a single comparison on
        #: the hot path instead of a recomputed max every probe.
        self._gate: int = 0
        # Background residency integration.
        self._bg_last_cycle: int = 0
        self.bg_residency: Dict[str, int] = {
            "act_stby": 0,
            "pre_stby": 0,
            "pre_pdn": 0,
        }
        self._trrd = timing.trrd
        self._tccd = timing.tccd
        self._twtr = timing.twtr
        self._txp = timing.txp
        self._trefi = timing.trefi
        self._trfc = timing.trfc

    # ------------------------------------------------------------------
    # Background state accounting
    # ------------------------------------------------------------------
    def _bg_state(self) -> str:
        if self.open_bits:
            return "act_stby"
        if self.powered_down:
            return "pre_pdn"
        return "pre_stby"

    def accrue_background(self, cycle: int) -> None:
        """Charge elapsed cycles to the current background state.

        Must be called *before* any state-changing operation and once at
        the end of simulation.
        """
        delta = cycle - self._bg_last_cycle
        if delta > 0:
            self.bg_residency[self._bg_state()] += delta
            self._bg_last_cycle = cycle

    # ------------------------------------------------------------------
    # Power-down
    # ------------------------------------------------------------------
    @property
    def all_precharged(self) -> bool:
        return not self.open_bits

    def enter_power_down(self, cycle: int) -> None:
        """Enter precharge power-down (all banks must be closed)."""
        if not self.all_precharged:
            raise BankStateError("precharge power-down requires all banks closed")
        if not self.powered_down:
            self.accrue_background(cycle)
            self.powered_down = True

    def exit_power_down(self, cycle: int) -> int:
        """Leave power-down; returns the cycle commands become legal."""
        if self.powered_down:
            self.accrue_background(cycle)
            self.powered_down = False
            self.pd_exit_ready = cycle + self._txp
            if self.pd_exit_ready > self._gate:
                self._gate = self.pd_exit_ready
        return self.pd_exit_ready

    def command_gate(self, cycle: int) -> int:
        """Earliest cycle any command may issue (PD exit / refresh)."""
        gate = self._gate
        return gate if gate > cycle else cycle

    # ------------------------------------------------------------------
    # Activation constraints
    # ------------------------------------------------------------------
    def _act_weight(self, granularity_eighths: int) -> float:
        if not self.relax_act_constraints:
            return 1.0
        return granularity_eighths / 8.0

    def can_activate(self, cycle: int, bank: int, granularity_eighths: int = 8) -> bool:
        """True when an ACT of the given granularity is legal now."""
        if self.powered_down or cycle < self.command_gate(cycle):
            return False
        weight = self._act_weight(granularity_eighths)
        return (
            cycle >= self.next_act_ok
            and self.banks[bank].can_activate(cycle)
            and self.faw.can_activate(cycle, weight)
        )

    def earliest_activate(self, cycle: int, bank: int, granularity_eighths: int = 8) -> int:
        """Lower bound on the cycle the ACT could issue (for skip-ahead)."""
        weight = self._act_weight(granularity_eighths)
        t = cycle
        if self.next_act_ok > t:
            t = self.next_act_ok
        act_ready = self.banks[bank].act_ready
        if act_ready > t:
            t = act_ready
        if self._gate > t:
            t = self._gate
        faw_t = self.faw.next_allowed(t, weight)
        return faw_t if faw_t > t else t

    def record_activate(self, cycle: int, granularity_eighths: int) -> None:
        """Update tRRD/tFAW bookkeeping after an ACT was issued."""
        weight = self._act_weight(granularity_eighths)
        trrd = self._trrd
        if self.relax_act_constraints:
            trrd = max(2, math.ceil(trrd * weight))
        self.next_act_ok = cycle + trrd
        self.faw.record(cycle, weight)

    # ------------------------------------------------------------------
    # Column constraints
    # ------------------------------------------------------------------
    def can_read(self, cycle: int, bank: int) -> bool:
        """True when a column READ to the bank is legal now."""
        return (
            not self.powered_down
            and cycle >= self.command_gate(cycle)
            and cycle >= self.next_col_ok
            and cycle >= self.next_read_ok
            and self.banks[bank].can_column(cycle)
        )

    def can_write(self, cycle: int, bank: int) -> bool:
        """True when a column WRITE to the bank is legal now."""
        return (
            not self.powered_down
            and cycle >= self.command_gate(cycle)
            and cycle >= self.next_col_ok
            and cycle >= self.next_write_ok
            and self.banks[bank].can_column(cycle)
        )

    def earliest_read(self, cycle: int, bank: int) -> int:
        """Lower bound on the next legal READ cycle (skip-ahead hint)."""
        t = cycle
        if self.next_col_ok > t:
            t = self.next_col_ok
        if self.next_read_ok > t:
            t = self.next_read_ok
        col_ready = self.banks[bank].col_ready
        if col_ready > t:
            t = col_ready
        if self._gate > t:
            t = self._gate
        return t

    def earliest_write(self, cycle: int, bank: int) -> int:
        """Lower bound on the next legal WRITE cycle (skip-ahead hint)."""
        t = cycle
        if self.next_col_ok > t:
            t = self.next_col_ok
        if self.next_write_ok > t:
            t = self.next_write_ok
        col_ready = self.banks[bank].col_ready
        if col_ready > t:
            t = col_ready
        if self._gate > t:
            t = self._gate
        return t

    def record_read(self, cycle: int) -> None:
        self.next_col_ok = cycle + self._tccd

    def record_write(self, cycle: int, burst_end: int) -> None:
        """Update tCCD and the write-to-read turnaround after a WRITE."""
        self.next_col_ok = cycle + self._tccd
        read_ok = burst_end + self._twtr
        if read_ok > self.next_read_ok:
            self.next_read_ok = read_ok

    def hold_write_buffer(self, until_cycle: int) -> None:
        """Block further writes until ``until_cycle`` (DM-pin delivery)."""
        self.next_write_ok = max(self.next_write_ok, until_cycle)

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def refresh_due(self, cycle: int) -> bool:
        return cycle >= self.next_refresh

    def do_refresh(self, cycle: int) -> None:
        """Issue an all-bank refresh; rank must be fully precharged."""
        if not self.all_precharged:
            raise BankStateError("refresh with open banks")
        self.accrue_background(cycle)
        for bank in self.banks:
            bank.block_for_refresh(cycle)
        self.refresh_until = cycle + self._trfc
        if self.refresh_until > self._gate:
            self._gate = self.refresh_until
        self.next_refresh += self._trefi
        # Bound catch-up after long idle skips: DDR3 allows deferring at
        # most 8 refreshes, so don't bunch more than that.
        lag_floor = cycle - 8 * self._trefi
        if self.next_refresh < lag_floor:
            self.next_refresh = lag_floor
