"""Independent DDR3 protocol checker (differential verification).

The scheduler in :mod:`repro.controller.memctrl` enforces timing through
the Bank/Rank ``can_*`` predicates.  This module re-implements the DDR3
rules *independently*, from the command stream alone, so tests can
attach a :class:`ProtocolChecker` to a controller and fail on any
violation the scheduler lets through — classic differential testing,
the same role DRAMSim2's internal checker plays for the original paper.

Checked rules (per the JEDEC DDR3 core set + the paper's PRA extension):

* ACT only to a precharged bank; one open row per bank,
* tRCD before a column command (+1 tCK after a masked PRA activation),
* tRAS before PRE; tRP before the next ACT; tRC between same-bank ACTs,
* tWR after the end of a write burst before PRE; tRTP after READ,
* tCCD between column commands anywhere in a rank,
* tWTR from end of write burst to the next READ command in the rank,
* tRRD between ACTs in a rank and the (optionally weighted) tFAW window,
* column commands only to MAT groups covered by the activation mask,
* exclusive data bus with tRTRS on rank switches,
* command bus: at most one command per cycle; a masked ACT also owns
  the following (mask-transfer) cycle,
* REFRESH only with all banks precharged; rank frozen for tRFC.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dram.geometry import FULL_MASK
from repro.dram.timing import TimingParams


#: Every rule name the checker can report (``ProtocolViolation.rule``).
#: One negative test per entry lives in ``tests/test_protocol_negative.py``.
RULES = (
    "ACT-to-open-bank",
    "tRCD",
    "tRAS",
    "tRP",
    "tRC",
    "tWR",
    "tRTP",
    "tCCD",
    "tWTR",
    "tRRD",
    "tFAW",
    "mask-coverage",
    "mask-validity",
    "mask-transfer-cycle",
    "PRE-to-precharged-bank",
    "column-to-precharged-bank",
    "command-bus",
    "data-bus",
    "burst-window",
    "REF-open-banks",
    "tRFC",
)


class ProtocolViolation(Exception):
    """A DDR3 timing or state rule was broken by the command stream.

    Deliberately *not* an ``AssertionError``: violations must survive
    ``python -O`` (which strips asserts) and must never be silenced by
    test helpers that tolerate assertion failures.

    ``rule`` carries the machine-readable rule name (one of
    :data:`RULES`); the message adds the offending command and cycle.
    """

    def __init__(self, rule: str, message: str) -> None:
        super().__init__(message)
        self.rule = rule


class Cmd(enum.Enum):
    ACT = "ACT"
    PRE = "PRE"
    RD = "RD"
    WR = "WR"
    REF = "REF"


@dataclass(frozen=True, slots=True)
class CommandRecord:
    """One command as observed on the channel."""

    cycle: int
    cmd: Cmd
    rank: int
    bank: int = 0
    row: Optional[int] = None
    mask: int = FULL_MASK
    #: Activated fraction in eighths (ACT only; weights tRRD/tFAW).
    granularity: int = 8
    #: True when the ACT carried a PRA mask (occupies 2 cmd cycles).
    masked: bool = False
    #: Data-burst window for column commands [start, end).
    burst_start: int = 0
    burst_end: int = 0
    #: Needed MAT-group coverage for a column command.
    needed_mask: int = FULL_MASK
    #: True for precharges the controller models as command-free
    #: (auto-precharge embedded in RDA/WRA, or the row-closure engine).
    #: Exempt from command-bus exclusivity, still timing-checked.
    implicit: bool = False


@dataclass(slots=True)
class _BankState:
    open_row: Optional[int] = None
    open_mask: int = FULL_MASK
    act_cycle: int = -(1 << 30)
    act_masked: bool = False
    # Precharge floors tracked per rule so a violation names the
    # constraint that actually binds (tRAS vs tWR vs tRTP).
    ras_floor: int = 0
    wr_floor: int = 0
    rtp_floor: int = 0
    # Next-ACT floors, likewise split (tRP after PRE vs same-bank tRC).
    trp_ready: int = 0
    trc_ready: int = 0


@dataclass(slots=True)
class _RankState:
    banks: Dict[int, _BankState] = field(default_factory=dict)
    act_history: List[Tuple[int, float]] = field(default_factory=list)
    last_act_cycle: int = -(1 << 30)
    last_act_weight: float = 1.0
    next_col_ok: int = 0
    next_read_ok: int = 0
    frozen_until: int = 0  # refresh

    def bank(self, idx: int) -> _BankState:
        return self.banks.setdefault(idx, _BankState())


class ProtocolChecker:
    """Validates a stream of :class:`CommandRecord` against DDR3 rules."""

    def __init__(
        self,
        timing: TimingParams,
        relax_act_constraints: bool = False,
        faw_budget: float = 4.0,
    ) -> None:
        self.timing = timing
        self.relax = relax_act_constraints
        self.faw_budget = faw_budget
        self._ranks: Dict[int, _RankState] = {}
        self._cmd_bus_free = 0
        self._cmd_bus_masked = False
        self._data_bus_free = 0
        self._data_bus_rank = -1
        self.commands_checked = 0
        self.log: List[CommandRecord] = []

    def _rank(self, idx: int) -> _RankState:
        return self._ranks.setdefault(idx, _RankState())

    def _fail(self, record: CommandRecord, rule: str, detail: str = "") -> None:
        raise ProtocolViolation(
            rule,
            f"{rule} violated by {record.cmd.value} at cycle {record.cycle} "
            f"(rank {record.rank}, bank {record.bank})"
            + (f": {detail}" if detail else ""),
        )

    # ------------------------------------------------------------------
    def observe(self, record: CommandRecord) -> None:
        """Check one command and update shadow state."""
        self.commands_checked += 1
        self.log.append(record)
        t = self.timing
        cycle = record.cycle
        rank = self._rank(record.rank)

        # Command bus: one command per cycle (2 for a masked ACT).
        if not record.implicit and cycle < self._cmd_bus_free:
            if self._cmd_bus_masked:
                self._fail(
                    record, "mask-transfer-cycle",
                    "a masked ACT also owns the following command cycle",
                )
            self._fail(record, "command-bus")

        if cycle < rank.frozen_until:
            self._fail(record, "tRFC", "rank frozen by refresh")

        handler = {
            Cmd.ACT: self._check_act,
            Cmd.PRE: self._check_pre,
            Cmd.RD: self._check_col,
            Cmd.WR: self._check_col,
            Cmd.REF: self._check_ref,
        }[record.cmd]
        handler(record, rank)

        if not record.implicit:
            masked_act = record.cmd is Cmd.ACT and record.masked
            self._cmd_bus_free = cycle + (2 if masked_act else 1)
            self._cmd_bus_masked = masked_act

    # ------------------------------------------------------------------
    def _act_weight(self, granularity: int) -> float:
        return granularity / 8.0 if self.relax else 1.0

    def _check_act(self, record: CommandRecord, rank: _RankState) -> None:
        t = self.timing
        cycle = record.cycle
        bank = rank.bank(record.bank)
        if bank.open_row is not None:
            self._fail(record, "ACT-to-open-bank")
        if cycle < bank.trp_ready or cycle < bank.trc_ready:
            # Name whichever floor binds; on a tie report the classic
            # same-bank cycle-time rule (tRC = tRAS + tRP on DDR3).
            rule = "tRC" if bank.trc_ready >= bank.trp_ready else "tRP"
            self._fail(record, rule)
        # tRRD against the previous ACT in this rank.
        trrd = t.trrd
        if self.relax:
            trrd = max(2, math.ceil(t.trrd * rank.last_act_weight))
        if cycle - rank.last_act_cycle < trrd:
            self._fail(record, "tRRD")
        # tFAW sliding window (weighted under PRA/Half-DRAM relaxation).
        weight = self._act_weight(record.granularity)
        window = [
            (c, w) for c, w in rank.act_history if c > cycle - t.tfaw
        ]
        if sum(w for _, w in window) + weight > self.faw_budget + 1e-9:
            self._fail(record, "tFAW")
        window.append((cycle, weight))
        rank.act_history = window
        rank.last_act_cycle = cycle
        rank.last_act_weight = weight

        if not 0 < record.mask <= FULL_MASK:
            self._fail(record, "mask-validity")
        bank.open_row = record.row
        bank.open_mask = record.mask
        bank.act_cycle = cycle
        bank.act_masked = record.masked
        bank.ras_floor = cycle + t.tras
        bank.trc_ready = cycle + t.trc

    def _check_pre(self, record: CommandRecord, rank: _RankState) -> None:
        t = self.timing
        bank = rank.bank(record.bank)
        if bank.open_row is None:
            self._fail(record, "PRE-to-precharged-bank")
        if record.cycle < max(bank.ras_floor, bank.wr_floor, bank.rtp_floor):
            # Report the binding precharge floor by name.
            floors = (
                ("tRAS", bank.ras_floor),
                ("tWR", bank.wr_floor),
                ("tRTP", bank.rtp_floor),
            )
            rule = max(floors, key=lambda item: item[1])[0]
            self._fail(record, rule, "precharge issued before its floor")
        bank.open_row = None
        bank.open_mask = FULL_MASK
        bank.trp_ready = max(bank.trp_ready, record.cycle + t.trp)

    def _check_col(self, record: CommandRecord, rank: _RankState) -> None:
        t = self.timing
        cycle = record.cycle
        bank = rank.bank(record.bank)
        if bank.open_row is None:
            self._fail(record, "column-to-precharged-bank")
        trcd = t.trcd + (t.pra_extra if bank.act_masked else 0)
        if cycle - bank.act_cycle < trcd:
            self._fail(record, "tRCD", "+1 tCK after a masked PRA activation")
        if cycle < rank.next_col_ok:
            self._fail(record, "tCCD")
        if record.needed_mask & ~bank.open_mask:
            self._fail(record, "mask-coverage", "false-hit service (needed MAT group closed)")
        # Data bus exclusivity and rank switch penalty.
        start, end = record.burst_start, record.burst_end
        if start < cycle or end <= start:
            self._fail(record, "burst-window", "burst window sanity")
        min_start = self._data_bus_free
        if self._data_bus_rank not in (-1, record.rank):
            min_start += t.trtrs
        if start < min_start:
            self._fail(record, "data-bus", "exclusivity / tRTRS")
        self._data_bus_free = end
        self._data_bus_rank = record.rank

        rank.next_col_ok = cycle + t.tccd
        if record.cmd is Cmd.RD:
            if cycle < rank.next_read_ok:
                self._fail(record, "tWTR")
            bank.rtp_floor = max(bank.rtp_floor, cycle + t.trtp)
        else:
            bank.wr_floor = max(bank.wr_floor, end + t.twr)
            rank.next_read_ok = max(rank.next_read_ok, end + t.twtr)

    def _check_ref(self, record: CommandRecord, rank: _RankState) -> None:
        for bank in rank.banks.values():
            if bank.open_row is not None:
                self._fail(record, "REF-open-banks", "REFRESH with open banks")
        rank.frozen_until = record.cycle + self.timing.trfc
        for bank in rank.banks.values():
            bank.trp_ready = max(bank.trp_ready, rank.frozen_until)
