"""DRAM commands and memory requests.

``Command`` enumerates the device commands the controller can issue.
``PRA_ACT`` is the paper's new command: a row activation accompanied by
an 8-bit PRA mask (delivered over the address bus in the following
cycle) that opens only the selected MAT groups of the row.

``Request`` is the unit of work entering the memory controller: a 64 B
cache-line read or write.  Write requests carry the fine-grained dirty
mask (one bit per 8 B word) produced by the FGD cache hierarchy; the
controller turns that mask into the PRA mask of the activation.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.dram.geometry import FULL_MASK


class Command(enum.Enum):
    """Device-level DRAM commands."""

    ACT = "ACT"
    PRA_ACT = "PRA_ACT"
    READ = "READ"
    WRITE = "WRITE"
    PRE = "PRE"
    REFRESH = "REFRESH"


class ReqKind(enum.Enum):
    """Kind of memory request seen by the controller."""

    READ = "read"
    WRITE = "write"


_req_ids = itertools.count()


@dataclass
class Address:
    """A fully decoded DRAM address."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int

    def same_row(self, other: "Address") -> bool:
        """True when both addresses fall in the same DRAM row."""
        return (
            self.channel == other.channel
            and self.rank == other.rank
            and self.bank == other.bank
            and self.row == other.row
        )

    @property
    def bank_key(self) -> tuple:
        """Hashable identity of the bank this address maps to."""
        return (self.channel, self.rank, self.bank)


@dataclass
class Request:
    """A cache-line-sized memory request.

    ``dirty_mask`` is meaningful for writes only: bit *i* set means word
    *i* of the line is dirty and must be written to DRAM.  A full mask
    (0xFF) means the entire line is dirty.  Reads always carry a full
    mask because a read must return the whole line.
    """

    kind: ReqKind
    addr: Address
    arrive_cycle: int
    dirty_mask: int = FULL_MASK
    core_id: int = 0
    req_id: int = field(default_factory=lambda: next(_req_ids))
    #: Cycle at which the request finished (data returned / written).
    complete_cycle: Optional[int] = None
    #: Maintained by the controller queues: True once the request has
    #: been serviced and lazily removed.
    served: bool = False

    def __post_init__(self) -> None:
        if self.kind is ReqKind.READ:
            self.dirty_mask = FULL_MASK
        if not 0 < self.dirty_mask <= FULL_MASK:
            raise ValueError(
                f"dirty_mask must be in (0, {FULL_MASK:#x}], got {self.dirty_mask:#x}"
            )

    @property
    def is_read(self) -> bool:
        return self.kind is ReqKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is ReqKind.WRITE
