"""DRAM commands and memory requests.

``Command`` enumerates the device commands the controller can issue.
``PRA_ACT`` is the paper's new command: a row activation accompanied by
an 8-bit PRA mask (delivered over the address bus in the following
cycle) that opens only the selected MAT groups of the row.

``Request`` is the unit of work entering the memory controller: a 64 B
cache-line read or write.  Write requests carry the fine-grained dirty
mask (one bit per 8 B word) produced by the FGD cache hierarchy; the
controller turns that mask into the PRA mask of the activation.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Optional

from repro.dram.geometry import FULL_MASK


class Command(enum.Enum):
    """Device-level DRAM commands."""

    ACT = "ACT"
    PRA_ACT = "PRA_ACT"
    READ = "READ"
    WRITE = "WRITE"
    PRE = "PRE"
    REFRESH = "REFRESH"


class ReqKind(enum.Enum):
    """Kind of memory request seen by the controller."""

    READ = "read"
    WRITE = "write"


_req_ids = itertools.count()


@dataclass(slots=True)
class Address:
    """A fully decoded DRAM address."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int

    def same_row(self, other: "Address") -> bool:
        """True when both addresses fall in the same DRAM row."""
        return (
            self.channel == other.channel
            and self.rank == other.rank
            and self.bank == other.bank
            and self.row == other.row
        )

    @property
    def bank_key(self) -> tuple:
        """Hashable identity of the bank this address maps to."""
        return (self.channel, self.rank, self.bank)


class Request:
    """A cache-line-sized memory request.

    ``dirty_mask`` is meaningful for writes only: bit *i* set means word
    *i* of the line is dirty and must be written to DRAM.  A full mask
    (0xFF) means the entire line is dirty.  Reads always carry a full
    mask because a read must return the whole line.

    The class is ``__slots__``-based with ``is_read`` / ``is_write``
    precomputed at construction: the scheduler touches these on every
    candidate scan, and attribute loads beat property calls by an order
    of magnitude on that path.
    """

    __slots__ = (
        "kind",
        "addr",
        "arrive_cycle",
        "dirty_mask",
        "core_id",
        "req_id",
        "complete_cycle",
        "served",
        "is_read",
        "is_write",
        "_missed",
        "_false",
        "_needed",
        "_rowkey",
    )

    def __init__(
        self,
        kind: ReqKind,
        addr: Address,
        arrive_cycle: int,
        dirty_mask: int = FULL_MASK,
        core_id: int = 0,
        req_id: Optional[int] = None,
        complete_cycle: Optional[int] = None,
        served: bool = False,
    ) -> None:
        self.kind = kind
        self.addr = addr
        self.arrive_cycle = arrive_cycle
        self.core_id = core_id
        self.req_id = next(_req_ids) if req_id is None else req_id
        #: Cycle at which the request finished (data returned / written).
        self.complete_cycle = complete_cycle
        #: Maintained by the controller queues: True once the request has
        #: been serviced and lazily removed.
        self.served = served
        self.is_read = kind is ReqKind.READ
        self.is_write = kind is ReqKind.WRITE
        if self.is_read:
            dirty_mask = FULL_MASK
        if not 0 < dirty_mask <= FULL_MASK:
            raise ValueError(
                f"dirty_mask must be in (0, {FULL_MASK:#x}], got {dirty_mask:#x}"
            )
        self.dirty_mask = dirty_mask
        # Scheduling scratch state, owned by the controller.
        self._missed = False
        self._false = False
        #: MAT-group coverage the request needs from an open row; set by
        #: the admitting controller (scheme-dependent for writes).
        self._needed = FULL_MASK
        #: Packed (rank, bank, row) identity within the channel; the
        #: controller's row index hashes this single int instead of a
        #: tuple on every queue/bucket probe (see controller.queues).
        self._rowkey = (addr.rank << 40) | (addr.bank << 32) | addr.row

    def __repr__(self) -> str:
        return (
            f"Request(kind={self.kind!r}, addr={self.addr!r}, "
            f"arrive_cycle={self.arrive_cycle}, dirty_mask={self.dirty_mask:#x}, "
            f"core_id={self.core_id}, req_id={self.req_id})"
        )
