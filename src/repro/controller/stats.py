"""Controller-side statistics: row-buffer behaviour, traffic, latency.

These counters feed Table 1 (traffic and activation splits, hit rates),
Figure 10 (hit rates and false row-buffer hits under PRA) and
Figure 11 (activation-granularity proportions, together with the power
accountant's histogram).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.stats.histogram import LatencyHistogram


@dataclass(slots=True)
class KindStats:
    """Per-request-kind (read/write) counters."""

    served: int = 0
    row_hits: int = 0
    false_hits: int = 0
    activations: int = 0
    latency_sum: int = 0
    latency_max: int = 0
    #: Log-bucketed latency distribution (percentile queries).
    latency_hist: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def hit_rate(self) -> float:
        return self.row_hits / self.served if self.served else 0.0

    @property
    def false_hit_rate(self) -> float:
        return self.false_hits / self.served if self.served else 0.0

    @property
    def avg_latency(self) -> float:
        return self.latency_sum / self.served if self.served else 0.0

    def record_service(self, was_hit: bool, was_false: bool, latency: int) -> None:
        """Account one served request and its latency sample."""
        self.served += 1
        if was_hit:
            self.row_hits += 1
        if was_false:
            self.false_hits += 1
        self.latency_sum += latency
        if latency > self.latency_max:
            self.latency_max = latency
        self.latency_hist.record(latency)

    def record_services(self, latencies: Sequence[int], hits: int, falses: int) -> None:
        """Account a batch of served requests (one burst streak).

        Equivalent to ``len(latencies)`` calls to :meth:`record_service`
        with ``hits`` of them row hits and ``falses`` false hits, but
        with the counter updates and histogram inserts amortized over
        the batch.
        """
        self.served += len(latencies)
        self.row_hits += hits
        self.false_hits += falses
        self.latency_sum += sum(latencies)
        m = max(latencies)
        if m > self.latency_max:
            self.latency_max = m
        self.latency_hist.record_many(latencies)


@dataclass(slots=True)
class ControllerStats:
    """All counters for one channel controller."""

    reads: KindStats = field(default_factory=KindStats)
    writes: KindStats = field(default_factory=KindStats)
    #: Activations triggered by refresh-forced precharges etc.
    refreshes: int = 0
    drain_entries: int = 0
    precharges: int = 0
    power_down_entries: int = 0
    #: Extra activations caused by false row-buffer hits.
    false_hit_reactivations: int = 0
    #: Burst streaks committed (multi-command column batches) and the
    #: total column commands they covered; ``streak_commands /
    #: streaks`` is the mean streak length.
    streaks: int = 0
    streak_commands: int = 0
    #: Scheduling passes that got past the command-bus gate (one per
    #: ``ChannelController.step`` call that unpacked the hot arrays).
    #: Profiling-only: feeds the ``--profile`` phase table and the
    #: engine-identity digests, not the result summaries.
    sched_passes: int = 0

    def merge(self, other: "ControllerStats") -> None:
        """Accumulate another channel's counters into this one."""
        for mine, theirs in ((self.reads, other.reads), (self.writes, other.writes)):
            mine.served += theirs.served
            mine.row_hits += theirs.row_hits
            mine.false_hits += theirs.false_hits
            mine.activations += theirs.activations
            mine.latency_sum += theirs.latency_sum
            mine.latency_max = max(mine.latency_max, theirs.latency_max)
            mine.latency_hist.merge(theirs.latency_hist)
        self.refreshes += other.refreshes
        self.drain_entries += other.drain_entries
        self.precharges += other.precharges
        self.power_down_entries += other.power_down_entries
        self.false_hit_reactivations += other.false_hit_reactivations
        self.streaks += other.streaks
        self.streak_commands += other.streak_commands
        self.sched_passes += other.sched_passes

    # ------------------------------------------------------------------
    # Derived metrics used by the experiment harness
    # ------------------------------------------------------------------
    @property
    def total_served(self) -> int:
        return self.reads.served + self.writes.served

    @property
    def total_hits(self) -> int:
        return self.reads.row_hits + self.writes.row_hits

    @property
    def total_hit_rate(self) -> float:
        total = self.total_served
        return self.total_hits / total if total else 0.0

    @property
    def total_activations(self) -> int:
        return self.reads.activations + self.writes.activations

    def traffic_split(self) -> Dict[str, float]:
        """Read/write shares of memory traffic (Table 1)."""
        total = self.total_served
        if not total:
            return {"read": 0.0, "write": 0.0}
        return {
            "read": self.reads.served / total,
            "write": self.writes.served / total,
        }

    def activation_split(self) -> Dict[str, float]:
        """Read/write shares of row activations (Table 1)."""
        total = self.total_activations
        if not total:
            return {"read": 0.0, "write": 0.0}
        return {
            "read": self.reads.activations / total,
            "write": self.writes.activations / total,
        }
