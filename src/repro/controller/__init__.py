"""Memory-controller substrate: queues, FR-FCFS scheduling, row policies."""

from repro.controller.memctrl import ChannelController
from repro.controller.policies import ROW_HIT_CAP, RowPolicy
from repro.controller.queues import RequestQueue, row_key
from repro.controller.stats import ControllerStats, KindStats

__all__ = [
    "ChannelController",
    "ControllerStats",
    "KindStats",
    "RequestQueue",
    "row_key",
    "ROW_HIT_CAP",
    "RowPolicy",
]
