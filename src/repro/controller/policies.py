"""Row-buffer management policies (Section 5.1.2).

* **relaxed close-page** — the paper's default: a row stays open while
  any queued request targets it, is closed otherwise, and idle ranks
  drop into precharge power-down.  Row reuse is additionally capped at
  four accesses per activation to avoid starvation (per the Minimalist
  Open-page argument the paper adopts).
* **restricted close-page** — every access is an atomic
  ACT + column + PRE (auto-precharge); used with line-interleaved
  mapping for the Figure 11(a)/Figure 14 studies.
* **open page** — classical open-row policy, kept as an extension for
  ablation studies (not a paper configuration).
"""

from __future__ import annotations

import enum


class RowPolicy(enum.Enum):
    RELAXED_CLOSE = "relaxed-close-page"
    RESTRICTED_CLOSE = "restricted-close-page"
    OPEN_PAGE = "open-page"

    @property
    def auto_precharge(self) -> bool:
        """Column accesses implicitly precharge (restricted policy)."""
        return self is RowPolicy.RESTRICTED_CLOSE

    @property
    def allows_row_hits(self) -> bool:
        return self is not RowPolicy.RESTRICTED_CLOSE

    @property
    def closes_idle_rows(self) -> bool:
        """Proactively close rows nothing in the queues can use."""
        return self is RowPolicy.RELAXED_CLOSE

    @property
    def uses_power_down(self) -> bool:
        """Idle, fully precharged ranks enter precharge power-down."""
        return self is not RowPolicy.OPEN_PAGE


#: Row-hit cap per activation under the relaxed policy (Section 5.1.2).
ROW_HIT_CAP = 4
