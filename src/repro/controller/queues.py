"""Request queues with per-row indexing for FR-FCFS and PRA mask merging.

The controller needs three fast operations the paper's scheduler relies
on:

* oldest request overall (FCFS order),
* oldest request targeting a given open row (the "first-ready" part of
  FR-FCFS),
* all queued writes to a row (to OR their PRA masks at activation,
  Section 5.2.1).

Removal is lazy: served requests are flagged and skipped/popped when
they reach the head of a deque, keeping every operation amortized O(1).

Each row bucket also keeps a flat ``[needed_or, live, stale]``
aggregate so the controller's two per-step probes — "what coverage
would an ACT for this row need?" and "does the open row still have a
coverable request?" — are O(1) while the aggregate is fresh.  Appends
keep ``needed_or`` exact; removals only mark it stale (the OR may then
*overstate* the live union, never understate it), and
:meth:`RequestQueue.merged_needed` recomputes exactly on demand.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.dram.commands import Request

RowKey = Tuple[int, int, int]

def row_key(req: Request) -> RowKey:
    """Row identity within a channel: (rank, bank, row)."""
    addr = req.addr
    return (addr.rank, addr.bank, addr.row)


def pack_row_key(key: RowKey) -> int:
    """Pack a (rank, bank, row) tuple into the int the row index uses.

    The internal ``_by_row`` dict is keyed by this packed form
    (``Request._rowkey``): hashing one int beats hashing a 3-tuple on
    the controller's per-step bucket probes.  Public tuple-keyed methods
    convert on entry so callers never see the encoding.
    """
    return (key[0] << 40) | (key[1] << 32) | key[2]


class RequestQueue:
    """FCFS queue with a row index and lazy removal."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self._fifo: Deque[Request] = deque()
        #: Row index keyed by the packed int form (``pack_row_key``).
        self._by_row: Dict[int, Deque[Request]] = {}
        #: Per-row ``[needed_or, live, stale]`` aggregate, same keys as
        #: ``_by_row`` but dropped eagerly when the last live member
        #: leaves — so ``get`` is also the live-emptiness test.  The OR
        #: covers live members exactly while ``stale`` is 0 and is a
        #: superset of them once removals set ``stale`` to 1.
        self._row_agg: Dict[int, List[int]] = {}
        self._per_rank: Dict[int, int] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def is_full(self) -> bool:
        return self._count >= self.capacity

    def append(self, req: Request) -> None:
        """Admit a request at the tail; raises OverflowError when full."""
        if self.is_full:
            raise OverflowError("queue full")
        req.served = False
        self._fifo.append(req)
        key = req._rowkey
        self._by_row.setdefault(key, deque()).append(req)
        agg = self._row_agg.get(key)
        if agg is None:
            self._row_agg[key] = [req._needed, 1, 0]
        else:
            agg[0] |= req._needed
            agg[1] += 1
        self._per_rank[req.addr.rank] = self._per_rank.get(req.addr.rank, 0) + 1
        self._count += 1

    def remove(self, req: Request) -> None:
        """Mark a request served; physically dropped lazily."""
        if req.served:
            raise KeyError(f"request {req.req_id} already removed")
        req.served = True
        self._count -= 1
        agg = self._row_agg[req._rowkey]
        if agg[1] == 1:
            del self._row_agg[req._rowkey]
        else:
            agg[1] -= 1
            agg[2] = 1
        rank = req.addr.rank
        self._per_rank[rank] -= 1
        if self._per_rank[rank] == 0:
            del self._per_rank[rank]

    @staticmethod
    def _compact(dq: Deque[Request]) -> None:
        while dq and dq[0].served:
            dq.popleft()

    def oldest(self) -> Optional[Request]:
        self._compact(self._fifo)
        return self._fifo[0] if self._fifo else None

    def iter_oldest(self, limit: int) -> Iterable[Request]:
        """Up to ``limit`` live requests in FCFS order."""
        self._compact(self._fifo)
        found = 0
        for req in self._fifo:
            if req.served:
                continue
            yield req
            found += 1
            if found >= limit:
                return

    def oldest_for_row(self, key: RowKey) -> Optional[Request]:
        """Oldest live request targeting the row, or None."""
        packed = pack_row_key(key)
        dq = self._by_row.get(packed)
        if dq is None:
            return None
        self._compact(dq)
        if not dq:
            del self._by_row[packed]
            return None
        return dq[0]

    def has_row(self, key: RowKey) -> bool:
        return self.oldest_for_row(key) is not None

    def merged_needed(self, packed: int) -> int:
        """Exact OR of ``_needed`` over live requests for a packed row.

        O(1) while the aggregate is fresh; a stale aggregate (some
        member removed since the last recompute) is rebuilt from the
        bucket and becomes fresh again.  Returns 0 for empty rows.
        """
        agg = self._row_agg.get(packed)
        if agg is None:
            return 0
        if agg[2]:
            merged = 0
            dq = self._by_row.get(packed)
            if dq is not None:
                for r in dq:
                    if not r.served:
                        merged |= r._needed
            agg[0] = merged
            agg[2] = 0
        return agg[0]

    def requests_for_row(self, key: RowKey) -> List[Request]:
        """All live requests targeting the row, oldest first."""
        dq = self._by_row.get(pack_row_key(key))
        if not dq:
            return []
        return [r for r in dq if not r.served]

    def pending_for_rank(self, rank: int) -> int:
        return self._per_rank.get(rank, 0)
