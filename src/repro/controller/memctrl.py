"""FR-FCFS memory controller with PRA support (one instance per channel).

Implements the paper's baseline controller (Section 5.1.2) plus the PRA
extensions (Section 4):

* FR-FCFS scheduling: ready row-buffer hits first, then oldest-first,
  with reads prioritized over writes;
* separate 64-entry read/write queues with 48/16 high/low watermarks
  driving write drains;
* relaxed close-page (close rows nothing can use; precharge power-down)
  or restricted close-page (auto-precharge after every access);
* a 4-access row-hit cap per activation to preserve fairness;
* PRA: masked write activations (mask = OR of queued same-row writes),
  +1 cycle mask transfer on the address bus, false-row-buffer-hit
  detection and recovery (PRE + re-ACT), relaxed tRRD/tFAW for partial
  activations, and partial write bursts (only dirty words driven);
* refresh every tREFI with open-bank force-precharge.

The controller is stepped by the system simulator; ``step`` issues at
most one *scheduling decision* and returns a *hint*: the next cycle at
which calling again could make progress (used for event skip-ahead).

Two structural optimizations define this controller's hot path:

**Array-backed timing state.**  All per-(rank, bank) and per-rank
timing state lives in the channel's :class:`repro.dram.soa.TimingCore`
flat integer arrays, indexed by ``g = rank * num_banks + bank``.  The
scheduling passes bind those arrays as locals and read/write them
directly; the ``Bank``/``Rank`` objects are views over the same arrays,
so the object API (unit tests, reference models) and the scheduler can
never disagree.

**Burst-streak scheduling.**  When a bank wins arbitration with N
queued column hits to its open row (mask-compatible under PRA), the
entire back-to-back streak is precomputed and committed in one pass:
issue cycles spaced ``max(tCCD, burst_cycles)`` apart (which by
construction also fits the data bus with no intra-streak tRTRS, since
all bursts come from one rank), completions, queue removals, stats and
power events recorded together, and the command bus reserved until the
last command.  This replaces N rounds of arbitration, timing checks
and wake-heap maintenance with one.  A streak is bounded by the
row-hit cap and never extends past any rank's refresh deadline.  Note
the streak is *atomic*: it is a deliberate scheduling-policy change
relative to per-command arbitration (other banks' ACT/PRE no longer
interleave between the hits), applied identically by the event engine
and the ``strict_polling`` oracle, which share this code.
"""

from __future__ import annotations

import math
from collections import deque
from typing import List, Optional, Tuple

from repro.controller.policies import ROW_HIT_CAP, RowPolicy
from repro.controller.queues import RequestQueue
from repro.controller.stats import ControllerStats
from repro.core import mask as mask_ops
from repro.core.schemes import Scheme
from repro.dram.channel import Channel
from repro.dram.geometry import FULL_MASK, WORDS_PER_LINE
from repro.dram.commands import Request
from repro.dram.protocol import Cmd, CommandRecord, ProtocolChecker
from repro.dram.timing import TimingParams, derived_timing
from repro.power.accounting import PowerAccountant

_NEVER = 1 << 62

# Oracle-parity declaration enforced by reprolint: the event-driven
# scheduler below is the fast path; ``repro.sim.system`` retains the
# ``strict_polling`` oracle that steps the very same controller cycle
# by cycle.  The module is also on the compiled-engine list
# (repro.engine.COMPILED_MODULES), pinned bit-identical to this source
# by the golden digests in tests/test_engine_identity.py.
REPRO_FAST_PATH = True
ORACLE_TWIN = ("repro.sim.system",)
ORACLE_TESTS = (
    "tests/test_engine_equivalence.py",
    "tests/test_engine_identity.py",
)


class ChannelController:
    """Memory controller for a single channel."""

    def __init__(
        self,
        channel: Channel,
        scheme: Scheme,
        timing: TimingParams,
        policy: RowPolicy,
        accountant: PowerAccountant,
        read_queue_size: int = 64,
        write_queue_size: int = 64,
        drain_high_watermark: int = 48,
        drain_low_watermark: int = 16,
        scan_depth: int = 8,
        row_hit_cap: int = ROW_HIT_CAP,
        scheduler: str = "frfcfs",
    ) -> None:
        if not 0 <= drain_low_watermark < drain_high_watermark <= write_queue_size:
            raise ValueError("watermarks must satisfy 0 <= low < high <= capacity")
        if scheduler not in ("frfcfs", "fcfs"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        self.channel = channel
        self.scheme = scheme
        self.timing = timing
        self.policy = policy
        self.accountant = accountant
        self.read_q = RequestQueue(read_queue_size)
        self.write_q = RequestQueue(write_queue_size)
        self.hi_mark = drain_high_watermark
        self.lo_mark = drain_low_watermark
        self.scan_depth = scan_depth
        #: "frfcfs" (paper baseline: ready row hits first) or "fcfs"
        #: (pure oldest-first; ablation of the hit-first pass).
        self.scheduler = scheduler
        self.row_hit_cap = row_hit_cap if policy.allows_row_hits else 0
        self.stats = ControllerStats()
        self.draining = False
        #: (complete_cycle, request) pairs for reads whose data returned.
        self.completed_reads: List[Tuple[int, Request]] = []
        #: Requests that found their queue full; drained FIFO as space
        #: frees (models an admission buffer in front of the controller).
        self.overflow: "deque[Request]" = deque()
        #: Highest cycle at which this controller has issued a command
        #: (the last command of a streak included), plus one; batched
        #: simulation never reprocesses earlier cycles.
        self.local_clock: int = 0
        self._other_ranks = len(channel.ranks) - 1
        #: Whether writes need full coverage from an open (partial) row.
        self._write_needs_mask = scheme.write_uses_mask
        #: Optional differential verifier (repro.dram.protocol); every
        #: issued command is replayed through it when attached.  The
        #: annotation is load-bearing under the compiled engine: mypyc
        #: enforces native attribute types at runtime, so attached
        #: checkers must subclass ProtocolChecker (duck types won't do).
        self.protocol_checker: Optional[ProtocolChecker] = None
        # Hot-path caches (invariant after construction).
        d = derived_timing(timing)
        self._tcas = timing.tcas
        self._tcwl = timing.tcwl
        self._twr = timing.twr
        self._tccd = timing.tccd
        self._trtp = timing.trtp
        self._trp = timing.trp
        self._tras = timing.tras
        self._trc = timing.trc
        self._trcd = timing.trcd
        self._trcd_masked = d.trcd_masked
        self._trrd = timing.trrd
        self._trtrs = timing.trtrs
        self._frfcfs = scheduler == "frfcfs"
        self._relax = scheme.relax_act_constraints
        self._num_banks = channel.core.num_banks
        self._close_idle = policy.closes_idle_rows
        self._allows_hits = policy.allows_row_hits
        self._auto_pre = policy.auto_precharge
        self._uses_power_down = policy.uses_power_down
        #: Shared flat timing-state arrays (see module docstring).
        self._core = channel.core
        #: Data-bus occupancy of one line transfer (FGA-doubled).
        self._burst_cycles = timing.tburst * channel.burst_cycles_multiplier
        #: Issue-to-issue spacing of streak column commands: tCCD and
        #: back-to-back data-bus occupancy, whichever binds.
        self._spacing = max(d.col_spacing, self._burst_cycles)
        #: Streaks need the hit-first pass and a row-hit budget; the
        #: fcfs ablation and restricted close-page stay per-command.
        self._streaks = self._frfcfs and self._allows_hits
        #: Per-global-bank-index packed row-key base: OR-ing the open
        #: row in gives the queues' ``_by_row`` int key directly.
        self._keybase = [
            (r << 40) | (b << 32)
            for r in range(channel.core.num_ranks)
            for b in range(self._num_banks)
        ]
        #: Per-rank bitmask of open banks whose row is known useless
        #: (no live request in either queue can use it, or the row-hit
        #: cap is exhausted).  Useless is *sticky* between arrivals:
        #: serving requests only removes candidates, so the flag stays
        #: valid until a new request for that bank arrives (cleared in
        #: :meth:`enqueue`) or a new row opens (cleared on ACT).
        self._useless: List[int] = [0] * len(channel.ranks)
        #: Per-rank lower bound on the earliest cycle any *useless* open
        #: bank becomes closable (min pre_ready over those banks).  A
        #: useless bank receives no column commands, so its pre_ready is
        #: frozen until it closes; the step walk therefore skips all
        #: useless banks with one compare until this cycle arrives
        #: (stale-early values merely waste a probe, never delay one,
        #: which keeps the hint contract intact).
        self._idle_close_at: List[int] = [_NEVER] * len(channel.ranks)
        #: Precomputed activation plan for reads (coverage, fraction,
        #: masked, granularity, tRRD/tFAW weight) - reads never merge
        #: masks, so the plan is a constant of the scheme.
        _read_gran = max(1, math.ceil(scheme.read_fraction * 8 - 1e-9))
        self._read_plan = (
            FULL_MASK,
            scheme.read_fraction,
            False,
            _read_gran,
            _read_gran / 8.0 if self._relax else 1.0,
        )
        #: Everything :meth:`step` binds as locals that is identity-
        #: stable after construction (the core arrays mutate in place
        #: but are never reallocated).  One attribute load and a tuple
        #: unpack replace ~25 per-call attribute lookups on the hottest
        #: call in the simulator.
        core = channel.core
        self._hot = (
            core.open_row, core.open_mask, core.act_ready,
            core.pre_ready, core.accesses, core.autopre, core.gate,
            core.open_bits, core.col_ready, core.reserved,
            core.next_act_ok, core.next_col_ok, core.next_read_ok,
            core.next_write_ok, self._keybase, self._useless,
            self._idle_close_at, self._num_banks, self._trp,
            self._tcas, self._tcwl, self._trtrs, self.row_hit_cap,
            self._close_idle, self._auto_pre, self.stats,
            core.pd, core.next_refresh,
        )

    # ------------------------------------------------------------------
    # Queue interface (used by the CPU/cache side)
    # ------------------------------------------------------------------
    def can_accept(self, req: Request) -> bool:
        queue = self.read_q if req.is_read else self.write_q
        return not queue.is_full

    def enqueue(self, req: Request) -> bool:
        """Admit a request; returns False when the queue is full."""
        queue = self.read_q if req.is_read else self.write_q
        if queue.is_full:
            return False
        req._missed = False
        req._false = False
        # Reads always carry a full dirty mask, so this collapses to
        # FULL_MASK for them either way.
        req._needed = req.dirty_mask if self._write_needs_mask else FULL_MASK
        queue.append(req)
        # A new arrival can make this bank's open row useful again.
        self._useless[req.addr.rank] &= ~(1 << req.addr.bank)
        return True

    def submit(self, req: Request) -> None:
        """Admit a request, spilling to the admission buffer if full."""
        if self.overflow or not self.enqueue(req):
            self.overflow.append(req)

    def _drain_overflow(self) -> None:
        buf = self.overflow
        while buf and self.enqueue(buf[0]):
            buf.popleft()

    @property
    def pending(self) -> int:
        return len(self.read_q) + len(self.write_q) + len(self.overflow)

    def _observe(self, record: CommandRecord) -> None:
        if self.protocol_checker is not None:
            self.protocol_checker.observe(record)

    def _needed_mask(self, req: Request) -> int:
        """MAT-group coverage the request needs from an open row."""
        return req._needed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def step(self, cycle: int) -> Tuple[bool, int]:
        """Try to issue one scheduling decision at ``cycle``.

        Returns ``(issued, hint)`` where ``hint`` is the next cycle at
        which progress may be possible (valid when nothing issued).  A
        decision is usually one command; a burst streak commits several
        column commands at once and reserves the command bus until its
        last one.

        The hint contract is load-bearing for the event engine in
        :meth:`repro.sim.system.System.run`: a returned hint must never
        be *later* than the true next cycle at which this controller
        could issue a command or fire a housekeeping action (stepping at
        the hint and finding nothing to do is merely wasted work;
        skipping past a ready cycle would change the schedule).  Every
        blocking condition below therefore contributes its exact ready
        cycle: command-bus free, per-bank ACT/column/PRE ready cycles,
        refresh deadlines and close-idle opportunities.
        """
        channel = self.channel
        if self.overflow:
            self._drain_overflow()
        if cycle < channel.cmd_bus_free:
            return (False, channel.cmd_bus_free)

        hint = _NEVER
        refresh_pending = 0  # bitmask of ranks due for refresh
        read_q, write_q = self.read_q, self.write_q
        no_checker = self.protocol_checker is None
        (open_row_a, open_mask_a, act_ready_a, pre_ready_a, accesses_a,
         autopre_a, gate_a, open_bits_a, col_ready_a, reserved_a,
         next_act_ok_a, next_col_ok_a, next_read_ok_a, next_write_ok_a,
         keybase, useless, idle_close_at, nb, trp, tcas, tcwl, trtrs,
         hit_cap, close_idle, auto_pre, stats, pd_a,
         next_refresh_a) = self._hot
        # One scheduling pass got past the command-bus gate (phase
        # profiling; deliberately excluded from result summaries so
        # engine/oracle equivalence checks stay step-count agnostic).
        stats.sched_passes += 1

        # --- Write drain hysteresis (48/16 watermarks) ---
        writes_pending = write_q._count
        if self.draining and writes_pending <= self.lo_mark:
            self.draining = False
        elif not self.draining and writes_pending >= self.hi_mark:
            self.draining = True
            stats.drain_entries += 1

        serve_writes = self.draining or (not read_q._count and writes_pending)
        primary = write_q if serve_writes else read_q
        primary_by_row = primary._by_row

        # --- Housekeeping + refresh + pass 1 candidate (one pass) ---
        # The FR-FCFS hit scan rides the same open-bank walk as
        # housekeeping so each bank's ``_by_row`` bucket is fetched at
        # most once per step.
        pass1 = hit_cap and self._frfcfs
        best = None
        best_rank = best_bank = best_g = 0
        for rank_idx, rank in enumerate(channel.ranks):
            refresh_due = cycle >= next_refresh_a[rank_idx]
            if refresh_due:
                refresh_pending |= 1 << rank_idx
                if pd_a[rank_idx]:
                    rank.exit_power_down(cycle)
                    if rank.pd_exit_ready < hint:
                        hint = rank.pd_exit_ready
                    continue
                gate = gate_a[rank_idx]
                if cycle < gate:
                    if gate < hint:
                        hint = gate
                    continue
            bits = open_bits_a[rank_idx]
            gbase = rank_idx * nb
            if close_idle and not refresh_due:
                # Known-useless open banks: frozen pre_ready, nothing to
                # probe.  Skip them all until the cached earliest-close
                # cycle, then close the due ones and re-derive the min.
                ubits = bits & useless[rank_idx]
                if ubits:
                    bits ^= ubits
                    ca = idle_close_at[rank_idx]
                    if cycle >= ca:
                        new_min = _NEVER
                        while ubits:
                            low = ubits & -ubits
                            ubits ^= low
                            g = gbase + low.bit_length() - 1
                            pr = pre_ready_a[g]
                            if cycle >= pr:
                                # Background state only changes when the
                                # rank's *last* open bank closes (or its
                                # first opens); spans between transitions
                                # accrue lazily at the next transition,
                                # charged to the same - unchanged - state.
                                if not (open_bits_a[rank_idx] & ~low):
                                    rank.accrue_background(cycle)
                                open_bits_a[rank_idx] &= ~low
                                open_row_a[g] = -1
                                open_mask_a[g] = FULL_MASK
                                act = cycle + trp
                                if act > act_ready_a[g]:
                                    act_ready_a[g] = act
                                stats.precharges += 1
                                if not no_checker:
                                    self._observe_pre(
                                        cycle, rank_idx,
                                        low.bit_length() - 1, implicit=True,
                                    )
                            elif pr < new_min:
                                new_min = pr
                        idle_close_at[rank_idx] = new_min
                        if new_min < hint:
                            hint = new_min
                    elif ca < hint:
                        hint = ca
            while bits:
                low = bits & -bits
                bits ^= low
                bank_idx = low.bit_length() - 1
                g = gbase + bank_idx
                # Auto-precharge (restricted policy) is command-free.
                if auto_pre and autopre_a[g]:
                    if cycle >= pre_ready_a[g]:
                        if not (open_bits_a[rank_idx] & ~low):
                            rank.accrue_background(cycle)
                        open_bits_a[rank_idx] &= ~low
                        open_row_a[g] = -1
                        open_mask_a[g] = FULL_MASK
                        act = cycle + trp
                        if act > act_ready_a[g]:
                            act_ready_a[g] = act
                        autopre_a[g] = False
                        stats.precharges += 1
                        if not no_checker:
                            self._observe_pre(cycle, rank_idx, bank_idx, implicit=True)
                    else:
                        if pre_ready_a[g] < hint:
                            hint = pre_ready_a[g]
                    continue
                if refresh_due:
                    # Force-close for refresh (consumes the command slot).
                    if cycle >= pre_ready_a[g]:
                        if not (open_bits_a[rank_idx] & ~low):
                            rank.accrue_background(cycle)
                        open_bits_a[rank_idx] &= ~low
                        open_row_a[g] = -1
                        open_mask_a[g] = FULL_MASK
                        act = cycle + trp
                        if act > act_ready_a[g]:
                            act_ready_a[g] = act
                        stats.precharges += 1
                        if not no_checker:
                            self._observe_pre(cycle, rank_idx, bank_idx)
                        channel.cmd_bus_free = cycle + 1
                        return (True, cycle + 1)
                    if pre_ready_a[g] < hint:
                        hint = pre_ready_a[g]
                    continue
                capped = hit_cap and accesses_a[g] >= hit_cap
                dq = None  # primary-queue bucket, if fetched below
                if close_idle:
                    # Banks already known useless were stripped from the
                    # walk above, so this bank needs a fresh probe.
                    useful = False
                    if not capped:
                        key = keybase[g] | open_row_a[g]
                        rdq = read_q._by_row.get(key)
                        if rdq is not None:
                            while rdq and rdq[0].served:
                                rdq.popleft()
                            if not rdq:
                                del read_q._by_row[key]
                        if rdq:
                            useful = True
                            if primary is read_q:
                                dq = rdq
                        else:
                            wdq = write_q._by_row.get(key)
                            if wdq is not None:
                                while wdq and wdq[0].served:
                                    wdq.popleft()
                                if not wdq:
                                    del write_q._by_row[key]
                            if wdq:
                                useful = True
                                if primary is write_q:
                                    dq = wdq
                    if not useful:
                        if cycle >= pre_ready_a[g]:
                            if not (open_bits_a[rank_idx] & ~low):
                                rank.accrue_background(cycle)
                            open_bits_a[rank_idx] &= ~low
                            open_row_a[g] = -1
                            open_mask_a[g] = FULL_MASK
                            act = cycle + trp
                            if act > act_ready_a[g]:
                                act_ready_a[g] = act
                            stats.precharges += 1
                            if not no_checker:
                                self._observe_pre(cycle, rank_idx, bank_idx, implicit=True)
                            continue
                        # Exact wake for the close-idle opportunity: the
                        # row is useless, it just cannot be closed
                        # before tRAS/tWR/tRTP expire.  Record it in the
                        # useless set and its pre_ready in the per-rank
                        # earliest-close cache.
                        useless[rank_idx] |= 1 << bank_idx
                        pr = pre_ready_a[g]
                        if pr < idle_close_at[rank_idx]:
                            idle_close_at[rank_idx] = pr
                        if pr < hint:
                            hint = pr
                        continue
                # Pass 1: oldest ready row-buffer hit (FR-FCFS).
                if pass1 and not capped:
                    if dq is None:
                        key = keybase[g] | open_row_a[g]
                        dq = primary_by_row.get(key)
                        if dq is not None:
                            while dq and dq[0].served:
                                dq.popleft()
                            if not dq:
                                del primary_by_row[key]
                    if dq:
                        cand = dq[0]
                        if not (cand._needed & ~open_mask_a[g]) and (
                            best is None
                            or cand.arrive_cycle < best.arrive_cycle
                            or (
                                cand.arrive_cycle == best.arrive_cycle
                                and cand.req_id < best.req_id
                            )
                        ):
                            best = cand
                            best_rank = rank_idx
                            best_bank = bank_idx
                            best_g = g
            if open_bits_a[rank_idx]:
                continue
            if refresh_due:
                if not pd_a[rank_idx] and cycle >= gate_a[rank_idx]:
                    rank.do_refresh(cycle)
                    self.accountant.on_refresh()
                    stats.refreshes += 1
                    if not no_checker:
                        self._observe(CommandRecord(cycle=cycle, cmd=Cmd.REF, rank=rank_idx))
                    channel.cmd_bus_free = cycle + 1
                    return (True, cycle + 1)
            elif (
                self._uses_power_down
                and not pd_a[rank_idx]
                and not read_q._per_rank.get(rank_idx)
                and not write_q._per_rank.get(rank_idx)
            ):
                rank.enter_power_down(cycle)
                stats.power_down_entries += 1

        # The data bus is only reserved by column issue, which ends the
        # step - so one read per step is safe.
        free = channel.data_bus_free
        last = channel.last_burst_rank

        # --- Pass 1 column attempt for the best ready hit ---
        skip_req = None
        skip_hint = 0
        if best is not None:
            ri = best_rank
            # Rank/bank column-readiness pre-check, including data-bus
            # fitting: the full attempt only matters once both the
            # command slot and the burst slot are legal.  Bus occupancy
            # never shrinks, so the bus-aware hint is never late.
            t = next_col_ok_a[ri]
            o = next_read_ok_a[ri] if best.is_read else next_write_ok_a[ri]
            if o > t:
                t = o
            cr = col_ready_a[best_g]
            if cr > t:
                t = cr
            if gate_a[ri] > t:
                t = gate_a[ri]
            if t < cycle:
                t = cycle
            dd = tcas if best.is_read else tcwl
            bs = t + dd
            if bs < free:
                bs = free
            if last != ri and last != -1:
                alt = free + trtrs
                if alt > bs:
                    bs = alt
            if bs > t + dd:
                t = bs - dd
            if t > cycle:
                h = t
            else:
                issued, h = self._try_column(cycle, best, best_rank, best_bank)
                if issued:
                    return (True, cycle + 1)
            if h < hint:
                hint = h
            # Pass 2 would retry the identical attempt for this
            # request; replay the outcome instead of recomputing it.
            skip_req = best
            skip_hint = h

        # --- Pass 2: oldest-first over the primary queue ---
        # Inlined into step() so both passes share one set of local
        # bindings; this scan is the hottest loop in the simulator.
        banks_seen = 0  # bitmask over (rank, bank) pairs
        ranks = channel.ranks
        allows_hits = self._allows_hits
        scan_left = self.scan_depth
        # Direct FIFO scan (hot path): equivalent to iter_oldest() but
        # without generator overhead.
        fifo = primary._fifo
        while fifo and fifo[0].served:
            fifo.popleft()
        for req in fifo:
            if req.served:
                continue
            addr = req.addr
            rank_idx = addr.rank
            if refresh_pending and refresh_pending >> rank_idx & 1:
                if scan_left <= 1:
                    break
                scan_left -= 1
                continue
            bank_idx = addr.bank
            g = rank_idx * nb + bank_idx
            bank_bit = 1 << g
            if banks_seen & bank_bit:
                # An older request to this bank already failed.
                if scan_left <= 1:
                    break
                scan_left -= 1
                continue
            banks_seen |= bank_bit
            rank = ranks[rank_idx]
            if pd_a[rank_idx]:
                rank.exit_power_down(cycle)
                if rank.pd_exit_ready < hint:
                    hint = rank.pd_exit_ready
                if scan_left <= 1:
                    break
                scan_left -= 1
                continue
            open_row = open_row_a[g]
            if open_row < 0:
                # Cheap ACT pre-check before the (mask-merging) full
                # attempt: the plan only matters once the slot is legal.
                t = next_act_ok_a[rank_idx]
                if act_ready_a[g] > t:
                    t = act_ready_a[g]
                if gate_a[rank_idx] > t:
                    t = gate_a[rank_idx]
                if t > cycle:
                    h = t
                else:
                    issued, h = self._try_activate(cycle, req, rank_idx, bank_idx)
                    if issued:
                        return (True, cycle + 1)
            elif open_row == addr.row and not (req._needed & ~open_mask_a[g]):
                # Restricted close-page permits exactly one column access
                # per activation: the one the ACT was issued for.
                may_access = (
                    accesses_a[g] < hit_cap
                    if allows_hits
                    else (accesses_a[g] == 0 and reserved_a[g] == req.req_id)
                )
                if may_access:
                    if req is skip_req:
                        # Pass 1 already made this exact attempt (same
                        # request, same cycle, no state change since);
                        # replay its failure instead of recomputing.
                        h = skip_hint
                    else:
                        t = next_col_ok_a[rank_idx]
                        o = (
                            next_read_ok_a[rank_idx]
                            if req.is_read
                            else next_write_ok_a[rank_idx]
                        )
                        if o > t:
                            t = o
                        cr = col_ready_a[g]
                        if cr > t:
                            t = cr
                        if gate_a[rank_idx] > t:
                            t = gate_a[rank_idx]
                        if t < cycle:
                            t = cycle
                        dd = tcas if req.is_read else tcwl
                        bs = t + dd
                        if bs < free:
                            bs = free
                        if last != rank_idx and last != -1:
                            alt = free + trtrs
                            if alt > bs:
                                bs = alt
                        if bs > t + dd:
                            t = bs - dd
                        if t > cycle:
                            h = t
                        else:
                            issued, h = self._try_column(cycle, req, rank_idx, bank_idx)
                            if issued:
                                return (True, cycle + 1)
                else:
                    # Row exhausted for this request: explicit PRE.
                    gate = gate_a[rank_idx]
                    pr = pre_ready_a[g]
                    if cycle < gate:
                        h = gate
                    elif cycle < pr:
                        h = pr
                    else:
                        bank_low = 1 << bank_idx
                        if not (open_bits_a[rank_idx] & ~bank_low):
                            rank.accrue_background(cycle)
                        open_bits_a[rank_idx] &= ~bank_low
                        open_row_a[g] = -1
                        open_mask_a[g] = FULL_MASK
                        act = cycle + trp
                        if act > act_ready_a[g]:
                            act_ready_a[g] = act
                        autopre_a[g] = False
                        stats.precharges += 1
                        if not no_checker:
                            self._observe_pre(cycle, rank_idx, bank_idx)
                        channel.cmd_bus_free = cycle + 1
                        return (True, cycle + 1)
            else:
                if open_row == addr.row and not req._false:
                    req._false = True
                    stats.false_hit_reactivations += 1
                if self._row_still_useful(rank_idx, bank_idx, g, primary):
                    if scan_left <= 1:
                        break
                    scan_left -= 1
                    continue  # let pending hits to the open row drain first
                # Conflicting row: explicit PRE.
                gate = gate_a[rank_idx]
                pr = pre_ready_a[g]
                if cycle < gate:
                    h = gate
                elif cycle < pr:
                    h = pr
                else:
                    bank_low = 1 << bank_idx
                    if not (open_bits_a[rank_idx] & ~bank_low):
                        rank.accrue_background(cycle)
                    open_bits_a[rank_idx] &= ~bank_low
                    open_row_a[g] = -1
                    open_mask_a[g] = FULL_MASK
                    act = cycle + trp
                    if act > act_ready_a[g]:
                        act_ready_a[g] = act
                    autopre_a[g] = False
                    stats.precharges += 1
                    if not no_checker:
                        self._observe_pre(cycle, rank_idx, bank_idx)
                    channel.cmd_bus_free = cycle + 1
                    return (True, cycle + 1)
            if h < hint:
                hint = h
            if scan_left <= 1:
                break
            scan_left -= 1

        # Idle: wake for the next refresh deadline.
        for nr in next_refresh_a:
            if nr < hint:
                hint = nr
        return (False, hint if hint > cycle else cycle + 1)

    def _observe_pre(
        self, cycle: int, rank_idx: int, bank_idx: int, implicit: bool = False
    ) -> None:
        if self.protocol_checker is not None:
            self.protocol_checker.observe(CommandRecord(
                cycle=cycle, cmd=Cmd.PRE, rank=rank_idx,
                bank=bank_idx, implicit=implicit))

    # ------------------------------------------------------------------
    def issue_screen(self, cycle: int) -> "int | None":
        """Pre-issue screen: can this controller possibly do anything?

        Returns the exact hint a :meth:`step` call at ``cycle`` would
        return — **proving** that call would issue nothing and mutate
        nothing — or ``None`` when a real step is (or may be) needed.
        The batch layer (:mod:`repro.sim.batch`) uses this to keep idle
        lanes out of the scalar hot path entirely; the conditions are a
        flat conjunction over state the lane-major slabs carry
        column-wise (``open_bits``, ``pd``, ``next_refresh``), so a
        cohort of lanes can evaluate the array-backed part in one
        whole-column operation and fall into this scalar predicate only
        for the per-queue checks.

        Exactly two step shapes are screenable:

        * **busy bus** — no overflow and ``cycle < cmd_bus_free``:
          ``step`` bails immediately with ``(False, cmd_bus_free)``;
        * **empty idle** — no overflow, both queues empty, no open
          banks, power-down (when the policy uses it) already entered
          on every rank, and every refresh deadline in the future:
          the rank walk and both passes fall through side-effect-free
          and ``step`` returns ``(False, min(next_refresh))``.

        Anything else (queued work, due refresh, open rows to close,
        a rank still awaiting power-down entry) can mutate state or
        issue, so the screen declines.
        """
        if self.overflow:
            return None
        bus_free = self.channel.cmd_bus_free
        if cycle < bus_free:
            return bus_free
        if self.read_q._count or self.write_q._count:
            return None
        if self.draining:
            # An idle step would still flip the drain-hysteresis flag
            # off (writes_pending <= lo_mark), and *when* that happens
            # is observable once new writes arrive — not screenable.
            return None
        core = self._core
        if any(core.open_bits):
            return None
        if self._uses_power_down and not all(core.pd):
            return None
        nr = min(core.next_refresh)
        if cycle >= nr:
            return None
        return nr

    # ------------------------------------------------------------------
    def run_until(self, cycle: int, limit: int) -> int:
        """Issue commands from ``cycle`` until (exclusive) ``limit``.

        ``limit`` must be the next cycle at which the outside world can
        change the controller's inputs (a new request arrival or an
        already-pending completion).  If a read completes *earlier*
        than ``limit``, the batch stops there so the waiting core can
        react on time.  Returns the next cycle at which calling the
        controller could make progress.
        """
        local = max(cycle, self.local_clock)
        if local >= limit:
            return local
        step = self.step
        completed = self.completed_reads
        completions_seen = len(completed)
        while local < limit:
            issued, hint = step(local)
            if issued:
                n = len(completed)
                if n > completions_seen:
                    while completions_seen < n:
                        done_cycle = completed[completions_seen][0]
                        if done_cycle < limit:
                            limit = done_cycle
                        completions_seen += 1
                # Nothing can issue while the command bus is busy (a
                # masked ACT owns two cycles, a streak owns it through
                # its last column command), and ``step`` bails on a busy
                # bus before any housekeeping - so jump straight past it
                # instead of probing just to learn that.
                nxt = local + 1
                bus_free = self.channel.cmd_bus_free
                if bus_free > nxt:
                    nxt = bus_free
                self.local_clock = nxt
                if nxt >= limit:
                    return nxt
                local = nxt
                continue
            if hint >= limit:
                return hint
            if not (self.read_q._count or self.write_q._count or self.overflow):
                # Only refreshes remain; let the outer loop pace them so
                # an unbounded horizon cannot trap the batch here.
                return hint
            local = hint
        return limit

    # ------------------------------------------------------------------
    def _row_still_useful(
        self, rank_idx: int, bank_idx: int, g: int, primary: RequestQueue
    ) -> bool:
        """True if the open row has coverable requests in ``primary``.

        Only the queue currently being served may keep a row open:
        otherwise a read conflicting with a row that only queued writes
        could use would wait for writes that are themselves waiting for
        the read queue to empty (priority livelock).
        """
        if not self._allows_hits:
            return False
        if not self._frfcfs:
            # Strict order: the oldest request always wins the bank.
            return False
        if self._useless[rank_idx] >> bank_idx & 1:
            # Known-useless (empty buckets in both queues, or capped):
            # skip the bucket walk entirely.
            return False
        core = self._core
        if core.accesses[g] >= self.row_hit_cap:
            return False
        packed = self._keybase[g] | core.open_row[g]
        agg = primary._row_agg.get(packed)
        if agg is None:
            # No live request for the row (aggregates drop at live==0,
            # so this also covers buckets full of served stragglers).
            return False
        closed_groups = ~core.open_mask[g]
        if not (agg[0] & closed_groups):
            # The aggregate OR never understates the live union, so a
            # fully-covered OR proves every live member is coverable.
            return True
        dq = primary._by_row.get(packed)
        if not dq:
            return False
        for cand in dq:
            if not cand.served and not (cand._needed & closed_groups):
                return True
        return False

    # ------------------------------------------------------------------
    # Command issue helpers
    # ------------------------------------------------------------------
    def _activation_plan(self, req: Request) -> Tuple[int, float, bool]:
        """Coverage mask, activated fraction and masked? for an ACT."""
        scheme = self.scheme
        if req.is_write and scheme.write_uses_mask:
            # Queued writes carry ``_needed == dirty_mask`` under mask
            # schemes, so the queue's per-row OR aggregate *is* the
            # Section 5.2.1 merge — O(1) when fresh instead of a bucket
            # walk per ACT.  ``req`` is still queued here, but OR its
            # own mask anyway so the plan never depends on that.
            merged = req.dirty_mask | self.write_q.merged_needed(req._rowkey)
            fraction = (
                mask_ops.popcount(merged) / WORDS_PER_LINE
            ) * scheme.mask_scale
            masked = merged != FULL_MASK
            return (merged, fraction, masked)
        if req.is_write:
            return (FULL_MASK, scheme.write_fraction, False)
        return (FULL_MASK, scheme.read_fraction, False)

    def _try_activate(
        self, cycle: int, req: Request, rank_idx: int, bank_idx: int
    ) -> Tuple[bool, int]:
        core = self._core
        g = rank_idx * self._num_banks + bank_idx
        rank = self.channel.ranks[rank_idx]
        relax = self._relax
        if req.is_read:
            # Reads always activate the scheme's fixed read fraction;
            # the whole plan (and its tRRD/tFAW weight) is precomputed.
            coverage, fraction, masked, granularity, weight = self._read_plan
        else:
            coverage, fraction, masked = self._activation_plan(req)
            # Ceil, not round: a 2.5/8 activation must weigh at least
            # 3/8 in the tRRD/tFAW budget (conservative for peak power).
            granularity = max(1, math.ceil(fraction * 8 - 1e-9))
            weight = granularity / 8.0 if relax else 1.0
        t = cycle
        v = core.next_act_ok[rank_idx]
        if v > t:
            t = v
        v = core.act_ready[g]
        if v > t:
            t = v
        v = core.gate[rank_idx]
        if v > t:
            t = v
        faw_t = rank.faw.next_allowed(t, weight)
        if faw_t > t:
            t = faw_t
        if t > cycle:
            return (False, t)
        if masked and self.scheme.mask_via_dm_pin:
            # Section 4.2 alternative: the mask rides the DM pin, so no
            # +1 tRCD and no second command-bus cycle - but the chip's
            # write buffer is occupied until the partial activation
            # completes, blocking further writes to this rank (the
            # rank/bank-parallelism cost the paper warns about).
            until = cycle + self._trcd
            if until > core.next_write_ok[rank_idx]:
                core.next_write_ok[rank_idx] = until
        if not core.open_bits[rank_idx]:
            # First open bank on this rank: background state flips from
            # precharged standby to active standby, so settle the span
            # accrued under the old state before mutating.
            rank.accrue_background(cycle)
        act_mask = coverage if masked else FULL_MASK
        pays_mask_cycle = masked and self.scheme.masked_act_extra_cycle
        row = req.addr.row
        core.open_bits[rank_idx] |= 1 << bank_idx
        core.open_row[g] = row
        core.open_mask[g] = act_mask
        core.col_ready[g] = cycle + (self._trcd_masked if pays_mask_cycle else self._trcd)
        pre = cycle + self._tras
        if pre > core.pre_ready[g]:
            core.pre_ready[g] = pre
        core.act_ready[g] = cycle + self._trc
        core.last_act[g] = cycle
        core.accesses[g] = 0
        trrd = self._trrd
        if relax:
            trrd = max(2, math.ceil(trrd * weight))
        core.next_act_ok[rank_idx] = cycle + trrd
        rank.faw.record(cycle, weight)
        self._useless[rank_idx] &= ~(1 << bank_idx)
        core.reserved[g] = req.req_id if self._auto_pre else None
        if self.protocol_checker is not None:
            self._observe(CommandRecord(
                cycle=cycle, cmd=Cmd.ACT, rank=rank_idx, bank=bank_idx,
                row=row, mask=act_mask, granularity=granularity,
                masked=pays_mask_cycle))
        self.accountant.on_activate_fraction(fraction)
        kind_stats = self.stats.reads if req.is_read else self.stats.writes
        kind_stats.activations += 1
        req._missed = True
        self.channel.cmd_bus_free = cycle + (2 if pays_mask_cycle else 1)
        return (True, cycle + 1)

    def _try_column(
        self, cycle: int, req: Request, rank_idx: int, bank_idx: int
    ) -> Tuple[bool, int]:
        """Issue the column command for ``req`` at ``cycle`` and extend
        it into a burst streak when more mask-compatible hits are queued.

        Callers have already verified rank/bank column readiness, the
        command gate and data-bus fitting for the *first* command, so
        this method commits unconditionally.  Streak command *i* issues
        at ``cycle + i * spacing`` with ``spacing = max(tCCD,
        burst_cycles)``: tCCD-legal by construction, and the data bus
        fits because consecutive bursts from one rank are contiguous or
        gapped (no tRTRS within a rank).  The streak is bounded by the
        remaining row-hit budget and by every rank's refresh deadline
        (it issues no ACTs, so tRRD/tFAW are untouched).
        """
        channel = self.channel
        core = self._core
        g = rank_idx * self._num_banks + bank_idx
        is_read = req.is_read
        if is_read:
            dd = self._tcas
            queue = self.read_q
        else:
            dd = self._tcwl
            queue = self.write_q
        burst_cycles = self._burst_cycles
        spacing = self._spacing

        members = None
        n = 1
        if self._streaks:
            budget = self.row_hit_cap - core.accesses[g] - 1
            if budget > 0:
                dq = queue._by_row.get(self._keybase[g] | core.open_row[g])
                if dq is not None and len(dq) > 1:
                    # A streak owns the command bus until its last
                    # command; never extend past any rank's refresh
                    # deadline so refresh service is not starved.
                    horizon = _NEVER
                    for nr in core.next_refresh:
                        if nr < horizon:
                            horizon = nr
                    cap = (horizon - 1 - cycle) // spacing
                    if cap < budget:
                        budget = cap
                    if budget > 0:
                        open_mask = core.open_mask[g]
                        for cand in dq:
                            if cand.served or cand is req:
                                continue
                            if cand._needed & ~open_mask:
                                continue
                            if members is None:
                                members = [req, cand]
                            else:
                                members.append(cand)
                            budget -= 1
                            if not budget:
                                break
                        if members is not None:
                            n = len(members)

        t_last = cycle + (n - 1) * spacing
        last_burst_end = t_last + dd + burst_cycles

        # Net device/bus state after n back-to-back column commands.
        core.col_ready[g] = t_last + self._tccd
        core.accesses[g] += n
        core.next_col_ok[rank_idx] = t_last + self._tccd
        if is_read:
            pre = t_last + self._trtp
            if pre > core.pre_ready[g]:
                core.pre_ready[g] = pre
        else:
            pre = last_burst_end + self._twr
            if pre > core.pre_ready[g]:
                core.pre_ready[g] = pre
            read_ok = last_burst_end + self.timing.twtr
            if read_ok > core.next_read_ok[rank_idx]:
                core.next_read_ok[rank_idx] = read_ok
        channel.data_bus_free = last_burst_end
        channel.last_burst_rank = rank_idx
        channel.data_bus_busy_cycles += n * burst_cycles
        if self._auto_pre:
            core.autopre[g] = True
        channel.cmd_bus_free = t_last + 1

        other_ranks = self._other_ranks
        accountant = self.accountant
        if n == 1:
            burst_start = cycle + dd
            burst_end = last_burst_end
            if self.protocol_checker is not None:
                self._observe(CommandRecord(
                    cycle=cycle, cmd=Cmd.RD if is_read else Cmd.WR,
                    rank=rank_idx, bank=bank_idx,
                    burst_start=burst_start, burst_end=burst_end,
                    needed_mask=req._needed))
            was_hit = not req._missed
            if is_read:
                req.complete_cycle = burst_end
                self.stats.reads.record_service(
                    was_hit, req._false, burst_end - req.arrive_cycle
                )
                queue.remove(req)
                self.completed_reads.append((burst_end, req))
                accountant.on_read_burst(other_ranks=other_ranks)
            else:
                req.complete_cycle = cycle
                self.stats.writes.record_service(
                    was_hit, req._false, cycle - req.arrive_cycle
                )
                queue.remove(req)
                if self.scheme.scale_write_io:
                    driven = mask_ops.popcount(req.dirty_mask) / WORDS_PER_LINE
                else:
                    driven = 1.0
                accountant.on_write_burst(
                    driven_fraction=driven, other_ranks=other_ranks
                )
            return (True, cycle + 1)

        # --- Streak commit: per-request bookkeeping in issue order ---
        kind_stats = self.stats.reads if is_read else self.stats.writes
        completed = self.completed_reads
        checker = self.protocol_checker
        scale_io = (not is_read) and self.scheme.scale_write_io
        drive_counts = {} if scale_io else None
        latencies = []
        hits = falses = 0
        t = cycle
        for r in members:
            burst_start = t + dd
            burst_end = burst_start + burst_cycles
            if checker is not None:
                self._observe(CommandRecord(
                    cycle=t, cmd=Cmd.RD if is_read else Cmd.WR,
                    rank=rank_idx, bank=bank_idx,
                    burst_start=burst_start, burst_end=burst_end,
                    needed_mask=r._needed))
            if not r._missed:
                hits += 1
            if r._false:
                falses += 1
            if is_read:
                r.complete_cycle = burst_end
                latencies.append(burst_end - r.arrive_cycle)
                completed.append((burst_end, r))
            else:
                r.complete_cycle = t
                latencies.append(t - r.arrive_cycle)
                if drive_counts is not None:
                    drv = mask_ops.popcount(r.dirty_mask)
                    drive_counts[drv] = drive_counts.get(drv, 0) + 1
            queue.remove(r)
            t += spacing
        kind_stats.record_services(latencies, hits, falses)
        if is_read:
            accountant.on_read_burst(other_ranks=other_ranks, count=n)
        elif drive_counts is not None:
            for drv, cnt in drive_counts.items():
                accountant.on_write_burst(
                    driven_fraction=drv / WORDS_PER_LINE,
                    other_ranks=other_ranks,
                    count=cnt,
                )
        else:
            accountant.on_write_burst(other_ranks=other_ranks, count=n)
        self.stats.streaks += 1
        self.stats.streak_commands += n
        return (True, cycle + 1)

    # ------------------------------------------------------------------
    def flush_background(self, cycle: int) -> None:
        """Accrue background residency up to ``cycle`` (end of run)."""
        for rank in self.channel.ranks:
            rank.accrue_background(cycle)
            self.accountant.add_background(rank.bg_residency)
            rank.bg_residency = {"act_stby": 0, "pre_stby": 0, "pre_pdn": 0}
