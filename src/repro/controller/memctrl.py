"""FR-FCFS memory controller with PRA support (one instance per channel).

Implements the paper's baseline controller (Section 5.1.2) plus the PRA
extensions (Section 4):

* FR-FCFS scheduling: ready row-buffer hits first, then oldest-first,
  with reads prioritized over writes;
* separate 64-entry read/write queues with 48/16 high/low watermarks
  driving write drains;
* relaxed close-page (close rows nothing can use; precharge power-down)
  or restricted close-page (auto-precharge after every access);
* a 4-access row-hit cap per activation to preserve fairness;
* PRA: masked write activations (mask = OR of queued same-row writes),
  +1 cycle mask transfer on the address bus, false-row-buffer-hit
  detection and recovery (PRE + re-ACT), relaxed tRRD/tFAW for partial
  activations, and partial write bursts (only dirty words driven);
* refresh every tREFI with open-bank force-precharge.

The controller is stepped by the system simulator; ``step`` issues at
most one command and returns a *hint*: the next cycle at which calling
again could make progress (used for event skip-ahead).

The scheduling passes are deliberately written with bank/rank pruning
and local-variable binding: this is the hottest code in the simulator.
"""

from __future__ import annotations

import math
from collections import deque
from typing import List, Optional, Tuple

from repro.controller.policies import ROW_HIT_CAP, RowPolicy
from repro.controller.queues import RequestQueue, row_key
from repro.controller.stats import ControllerStats
from repro.core import mask as mask_ops
from repro.core.schemes import Scheme
from repro.dram.channel import Channel
from repro.dram.geometry import FULL_MASK, WORDS_PER_LINE
from repro.dram.commands import Request
from repro.dram.protocol import Cmd, CommandRecord
from repro.dram.timing import TimingParams
from repro.power.accounting import PowerAccountant

_NEVER = 1 << 62


class ChannelController:
    """Memory controller for a single channel."""

    def __init__(
        self,
        channel: Channel,
        scheme: Scheme,
        timing: TimingParams,
        policy: RowPolicy,
        accountant: PowerAccountant,
        read_queue_size: int = 64,
        write_queue_size: int = 64,
        drain_high_watermark: int = 48,
        drain_low_watermark: int = 16,
        scan_depth: int = 8,
        row_hit_cap: int = ROW_HIT_CAP,
        scheduler: str = "frfcfs",
    ) -> None:
        if not 0 <= drain_low_watermark < drain_high_watermark <= write_queue_size:
            raise ValueError("watermarks must satisfy 0 <= low < high <= capacity")
        if scheduler not in ("frfcfs", "fcfs"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        self.channel = channel
        self.scheme = scheme
        self.timing = timing
        self.policy = policy
        self.accountant = accountant
        self.read_q = RequestQueue(read_queue_size)
        self.write_q = RequestQueue(write_queue_size)
        self.hi_mark = drain_high_watermark
        self.lo_mark = drain_low_watermark
        self.scan_depth = scan_depth
        #: "frfcfs" (paper baseline: ready row hits first) or "fcfs"
        #: (pure oldest-first; ablation of the hit-first pass).
        self.scheduler = scheduler
        self.row_hit_cap = row_hit_cap if policy.allows_row_hits else 0
        self.stats = ControllerStats()
        self.draining = False
        #: (complete_cycle, request) pairs for reads whose data returned.
        self.completed_reads: List[Tuple[int, Request]] = []
        #: Requests that found their queue full; drained FIFO as space
        #: frees (models an admission buffer in front of the controller).
        self.overflow: "deque[Request]" = deque()
        #: Highest cycle at which this controller has issued a command,
        #: plus one; batched simulation never reprocesses earlier cycles.
        self.local_clock: int = 0
        self._other_ranks = len(channel.ranks) - 1
        #: Whether writes need full coverage from an open (partial) row.
        self._write_needs_mask = scheme.write_uses_mask
        #: Optional differential verifier (repro.dram.protocol); every
        #: issued command is replayed through it when attached.
        self.protocol_checker = None
        # Hot-path caches (invariant after construction).
        self._tcas = timing.tcas
        self._tcwl = timing.tcwl
        self._twr = timing.twr
        self._frfcfs = scheduler == "frfcfs"
        self._num_banks = len(channel.ranks[0].banks) if channel.ranks else 0
        self._close_idle = policy.closes_idle_rows
        self._allows_hits = policy.allows_row_hits
        self._auto_pre = policy.auto_precharge
        self._uses_power_down = policy.uses_power_down
        #: Per-rank bitmask of open banks whose row is known useless
        #: (no live request in either queue can use it, or the row-hit
        #: cap is exhausted).  Useless is *sticky* between arrivals:
        #: serving requests only removes candidates, so the flag stays
        #: valid until a new request for that bank arrives (cleared in
        #: :meth:`enqueue`) or a new row opens (cleared on ACT).
        self._useless: List[int] = [0] * len(channel.ranks)

    # ------------------------------------------------------------------
    # Queue interface (used by the CPU/cache side)
    # ------------------------------------------------------------------
    def can_accept(self, req: Request) -> bool:
        queue = self.read_q if req.is_read else self.write_q
        return not queue.is_full

    def enqueue(self, req: Request) -> bool:
        """Admit a request; returns False when the queue is full."""
        queue = self.read_q if req.is_read else self.write_q
        if queue.is_full:
            return False
        req._missed = False
        req._false = False
        # Reads always carry a full dirty mask, so this collapses to
        # FULL_MASK for them either way.
        req._needed = req.dirty_mask if self._write_needs_mask else FULL_MASK
        queue.append(req)
        # A new arrival can make this bank's open row useful again.
        self._useless[req.addr.rank] &= ~(1 << req.addr.bank)
        return True

    def submit(self, req: Request) -> None:
        """Admit a request, spilling to the admission buffer if full."""
        if self.overflow or not self.enqueue(req):
            self.overflow.append(req)

    def _drain_overflow(self) -> None:
        buf = self.overflow
        while buf and self.enqueue(buf[0]):
            buf.popleft()

    @property
    def pending(self) -> int:
        return len(self.read_q) + len(self.write_q) + len(self.overflow)

    def _observe(self, record: CommandRecord) -> None:
        if self.protocol_checker is not None:
            self.protocol_checker.observe(record)

    def _needed_mask(self, req: Request) -> int:
        """MAT-group coverage the request needs from an open row."""
        return req._needed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def step(self, cycle: int) -> Tuple[bool, int]:
        """Try to issue one command at ``cycle``.

        Returns ``(issued, hint)`` where ``hint`` is the next cycle at
        which progress may be possible (valid when nothing issued).

        The hint contract is load-bearing for the event engine in
        :meth:`repro.sim.system.System.run`: a returned hint must never
        be *later* than the true next cycle at which this controller
        could issue a command or fire a housekeeping action (stepping at
        the hint and finding nothing to do is merely wasted work;
        skipping past a ready cycle would change the schedule).  Every
        blocking condition below therefore contributes its exact ready
        cycle: command-bus free, per-bank ACT/column/PRE ready cycles,
        refresh deadlines and close-idle opportunities.
        """
        channel = self.channel
        if self.overflow:
            self._drain_overflow()
        if cycle < channel.cmd_bus_free:
            return (False, channel.cmd_bus_free)

        hint = _NEVER
        refresh_pending = 0  # bitmask of ranks due for refresh
        read_q, write_q = self.read_q, self.write_q
        close_idle = self._close_idle
        hit_cap = self.row_hit_cap
        stats = self.stats
        useless = self._useless

        # --- Write drain hysteresis (48/16 watermarks) ---
        writes_pending = write_q._count
        if self.draining and writes_pending <= self.lo_mark:
            self.draining = False
        elif not self.draining and writes_pending >= self.hi_mark:
            self.draining = True
            stats.drain_entries += 1

        serve_writes = self.draining or (not read_q._count and writes_pending)
        primary = write_q if serve_writes else read_q
        primary_by_row = primary._by_row

        # --- Housekeeping + refresh + pass 1 candidate (one pass) ---
        # The FR-FCFS hit scan rides the same open-bank walk as
        # housekeeping so each bank's ``_by_row`` bucket is fetched at
        # most once per step.
        pass1 = hit_cap and self._frfcfs
        best = None
        best_rank = best_bank = 0
        for rank_idx, rank in enumerate(channel.ranks):
            refresh_due = cycle >= rank.next_refresh
            if refresh_due:
                refresh_pending |= 1 << rank_idx
                if rank.powered_down:
                    rank.exit_power_down(cycle)
                    if rank.pd_exit_ready < hint:
                        hint = rank.pd_exit_ready
                    continue
                gate = rank._gate
                if cycle < gate:
                    if gate < hint:
                        hint = gate
                    continue
            bits = rank.open_bits
            banks = rank.banks
            while bits:
                low = bits & -bits
                bits ^= low
                bank_idx = low.bit_length() - 1
                bank = banks[bank_idx]
                # Auto-precharge (restricted policy) is command-free.
                if bank.pending_autopre:
                    if cycle >= bank.pre_ready:
                        rank.accrue_background(cycle)
                        bank.precharge(cycle)
                        bank.pending_autopre = False
                        stats.precharges += 1
                        if self.protocol_checker is not None:
                            self._observe_pre(cycle, rank_idx, bank_idx, implicit=True)
                    else:
                        if bank.pre_ready < hint:
                            hint = bank.pre_ready
                    continue
                if refresh_due:
                    # Force-close for refresh (consumes the command slot).
                    if cycle >= bank.pre_ready:
                        rank.accrue_background(cycle)
                        bank.precharge(cycle)
                        stats.precharges += 1
                        if self.protocol_checker is not None:
                            self._observe_pre(cycle, rank_idx, bank_idx)
                        channel.cmd_bus_free = cycle + 1
                        return (True, cycle + 1)
                    if bank.pre_ready < hint:
                        hint = bank.pre_ready
                    continue
                capped = hit_cap and bank.open_row_accesses >= hit_cap
                dq = None  # primary-queue bucket, if fetched below
                if close_idle:
                    if useless[rank_idx] >> bank_idx & 1:
                        useful = False
                    else:
                        useful = False
                        if not capped:
                            key = (rank_idx, bank_idx, bank.open_row)
                            rdq = read_q._by_row.get(key)
                            if rdq is not None:
                                while rdq and rdq[0].served:
                                    rdq.popleft()
                                if not rdq:
                                    del read_q._by_row[key]
                            if rdq:
                                useful = True
                                if primary is read_q:
                                    dq = rdq
                            else:
                                wdq = write_q._by_row.get(key)
                                if wdq is not None:
                                    while wdq and wdq[0].served:
                                        wdq.popleft()
                                    if not wdq:
                                        del write_q._by_row[key]
                                if wdq:
                                    useful = True
                                    if primary is write_q:
                                        dq = wdq
                        if not useful:
                            useless[rank_idx] |= 1 << bank_idx
                    if not useful:
                        if cycle >= bank.pre_ready:
                            rank.accrue_background(cycle)
                            bank.precharge(cycle)
                            stats.precharges += 1
                            if self.protocol_checker is not None:
                                self._observe_pre(cycle, rank_idx, bank_idx, implicit=True)
                            continue
                        # Exact wake for the close-idle opportunity: the
                        # row is already useless, it just cannot be
                        # closed before tRAS/tWR/tRTP expire.
                        if bank.pre_ready < hint:
                            hint = bank.pre_ready
                        continue
                # Pass 1: oldest ready row-buffer hit (FR-FCFS).
                if pass1 and not capped:
                    if dq is None:
                        key = (rank_idx, bank_idx, bank.open_row)
                        dq = primary_by_row.get(key)
                        if dq is not None:
                            while dq and dq[0].served:
                                dq.popleft()
                            if not dq:
                                del primary_by_row[key]
                    if dq:
                        cand = dq[0]
                        if not (cand._needed & ~bank.open_mask) and (
                            best is None
                            or cand.arrive_cycle < best.arrive_cycle
                            or (
                                cand.arrive_cycle == best.arrive_cycle
                                and cand.req_id < best.req_id
                            )
                        ):
                            best = cand
                            best_rank = rank_idx
                            best_bank = bank_idx
            if rank.open_bits:
                continue
            if refresh_due:
                if not rank.powered_down and cycle >= rank._gate:
                    rank.do_refresh(cycle)
                    self.accountant.on_refresh()
                    stats.refreshes += 1
                    if self.protocol_checker is not None:
                        self._observe(CommandRecord(cycle=cycle, cmd=Cmd.REF, rank=rank_idx))
                    channel.cmd_bus_free = cycle + 1
                    return (True, cycle + 1)
            elif (
                self._uses_power_down
                and not rank.powered_down
                and not read_q._per_rank.get(rank_idx)
                and not write_q._per_rank.get(rank_idx)
            ):
                rank.enter_power_down(cycle)
                stats.power_down_entries += 1

        # --- Pass 1 column attempt for the best ready hit ---
        skip_req = None
        skip_hint = 0
        if best is not None:
            rank = channel.ranks[best_rank]
            # Rank/bank column-readiness pre-check, including data-bus
            # fitting: the full attempt only matters once both the
            # command slot and the burst slot are legal.  Bus occupancy
            # never shrinks, so the bus-aware hint is never late.
            t = rank.next_col_ok
            o = rank.next_read_ok if best.is_read else rank.next_write_ok
            if o > t:
                t = o
            cr = rank.banks[best_bank].col_ready
            if cr > t:
                t = cr
            if rank._gate > t:
                t = rank._gate
            if t < cycle:
                t = cycle
            dd = self._tcas if best.is_read else self._tcwl
            bus_start = channel.earliest_burst_start(t + dd, best_rank)
            if bus_start > t + dd:
                t = bus_start - dd
            if t > cycle:
                issued, h = False, t
            else:
                issued, h = self._try_column(cycle, best, best_rank, best_bank)
            if issued:
                return (True, cycle + 1)
            if h < hint:
                hint = h
            # Pass 2 would retry the identical attempt for this
            # request; replay the outcome instead of recomputing it.
            skip_req = best
            skip_hint = h

        # --- Pass 2: oldest-first over the primary queue ---
        issued, h = self._try_oldest(
            cycle, primary, refresh_pending, skip_req, skip_hint
        )
        if issued:
            return (True, cycle + 1)
        if h < hint:
            hint = h

        # Idle: wake for the next refresh deadline.
        for rank in channel.ranks:
            if rank.next_refresh < hint:
                hint = rank.next_refresh
        return (False, hint if hint > cycle else cycle + 1)

    def _observe_pre(self, cycle, rank_idx, bank_idx, implicit=False) -> None:
        if self.protocol_checker is not None:
            self.protocol_checker.observe(CommandRecord(
                cycle=cycle, cmd=Cmd.PRE, rank=rank_idx,
                bank=bank_idx, implicit=implicit))

    # ------------------------------------------------------------------
    def run_until(self, cycle: int, limit: int) -> int:
        """Issue commands from ``cycle`` until (exclusive) ``limit``.

        ``limit`` must be the next cycle at which the outside world can
        change the controller's inputs (a new request arrival or an
        already-pending completion).  If a read completes *earlier*
        than ``limit``, the batch stops there so the waiting core can
        react on time.  Returns the next cycle at which calling the
        controller could make progress.
        """
        local = max(cycle, self.local_clock)
        if local >= limit:
            return local
        step = self.step
        completed = self.completed_reads
        completions_seen = len(completed)
        while local < limit:
            issued, hint = step(local)
            if issued:
                self.local_clock = local + 1
                n = len(completed)
                if n > completions_seen:
                    while completions_seen < n:
                        done_cycle = completed[completions_seen][0]
                        if done_cycle < limit:
                            limit = done_cycle
                        completions_seen += 1
                # Nothing can issue while the command bus is busy (a
                # masked ACT owns two cycles), and ``step`` bails on a
                # busy bus before any housekeeping - so jump straight
                # past it instead of probing just to learn that.
                nxt = local + 1
                if nxt < limit:
                    bus_free = self.channel.cmd_bus_free
                    if bus_free > nxt:
                        if bus_free >= limit:
                            return bus_free
                        nxt = bus_free
                local = nxt
                continue
            if hint >= limit:
                return hint
            if not (self.read_q._count or self.write_q._count or self.overflow):
                # Only refreshes remain; let the outer loop pace them so
                # an unbounded horizon cannot trap the batch here.
                return hint
            local = hint
        return limit

    # ------------------------------------------------------------------
    def _try_oldest(
        self,
        cycle: int,
        primary: RequestQueue,
        refresh_pending: int,
        skip_req: Optional[Request] = None,
        skip_hint: int = 0,
    ) -> Tuple[bool, int]:
        hint = _NEVER
        banks_seen = 0  # bitmask over (rank, bank) pairs
        channel = self.channel
        ranks = channel.ranks
        num_banks = self._num_banks
        allows_hits = self._allows_hits
        hit_cap = self.row_hit_cap
        scan_left = self.scan_depth
        # Direct FIFO scan (hot path): equivalent to iter_oldest() but
        # without generator overhead.
        fifo = primary._fifo
        while fifo and fifo[0].served:
            fifo.popleft()
        for req in fifo:
            if req.served:
                continue
            addr = req.addr
            rank_idx = addr.rank
            if refresh_pending >> rank_idx & 1:
                if scan_left <= 1:
                    break
                scan_left -= 1
                continue
            bank_idx = addr.bank
            bank_bit = 1 << (rank_idx * num_banks + bank_idx)
            if banks_seen & bank_bit:
                # An older request to this bank already failed.
                if scan_left <= 1:
                    break
                scan_left -= 1
                continue
            banks_seen |= bank_bit
            rank = ranks[rank_idx]
            if rank.powered_down:
                rank.exit_power_down(cycle)
                if rank.pd_exit_ready < hint:
                    hint = rank.pd_exit_ready
                if scan_left <= 1:
                    break
                scan_left -= 1
                continue
            bank = rank.banks[bank_idx]
            open_row = bank.open_row
            if open_row is None:
                # Cheap ACT pre-check before the (mask-merging) full
                # attempt: the plan only matters once the slot is legal.
                t = rank.next_act_ok
                if bank.act_ready > t:
                    t = bank.act_ready
                if rank._gate > t:
                    t = rank._gate
                if t > cycle:
                    issued, h = False, t
                else:
                    issued, h = self._try_activate(cycle, req, rank_idx, bank_idx)
            elif open_row == addr.row and not (req._needed & ~bank.open_mask):
                # Restricted close-page permits exactly one column access
                # per activation: the one the ACT was issued for.
                may_access = (
                    bank.open_row_accesses < hit_cap
                    if allows_hits
                    else (
                        bank.open_row_accesses == 0
                        and bank.reserved_req == req.req_id
                    )
                )
                if may_access:
                    if req is skip_req:
                        # Pass 1 already made this exact attempt (same
                        # request, same cycle, no state change since);
                        # replay its failure instead of recomputing.
                        issued, h = False, skip_hint
                    else:
                        t = rank.next_col_ok
                        o = rank.next_read_ok if req.is_read else rank.next_write_ok
                        if o > t:
                            t = o
                        cr = bank.col_ready
                        if cr > t:
                            t = cr
                        if rank._gate > t:
                            t = rank._gate
                        if t < cycle:
                            t = cycle
                        dd = self._tcas if req.is_read else self._tcwl
                        bus_start = channel.earliest_burst_start(t + dd, rank_idx)
                        if bus_start > t + dd:
                            t = bus_start - dd
                        if t > cycle:
                            issued, h = False, t
                        else:
                            issued, h = self._try_column(cycle, req, rank_idx, bank_idx)
                else:
                    issued, h = self._try_precharge(cycle, rank, bank, rank_idx, bank_idx)
            else:
                if open_row == addr.row and not req._false:
                    req._false = True
                    self.stats.false_hit_reactivations += 1
                if self._row_still_useful(rank_idx, bank_idx, bank, primary):
                    if scan_left <= 1:
                        break
                    scan_left -= 1
                    continue  # let pending hits to the open row drain first
                issued, h = self._try_precharge(cycle, rank, bank, rank_idx, bank_idx)
            if issued:
                return (True, hint)
            if h < hint:
                hint = h
            if scan_left <= 1:
                break
            scan_left -= 1
        return (False, hint)

    def _row_still_useful(
        self, rank_idx: int, bank_idx: int, bank, primary: RequestQueue
    ) -> bool:
        """True if the open row has coverable requests in ``primary``.

        Only the queue currently being served may keep a row open:
        otherwise a read conflicting with a row that only queued writes
        could use would wait for writes that are themselves waiting for
        the read queue to empty (priority livelock).
        """
        if not self._allows_hits:
            return False
        if not self._frfcfs:
            # Strict order: the oldest request always wins the bank.
            return False
        if self._useless[rank_idx] >> bank_idx & 1:
            # Known-useless (empty buckets in both queues, or capped):
            # skip the bucket walk entirely.
            return False
        if bank.open_row_accesses >= self.row_hit_cap:
            return False
        dq = primary._by_row.get((rank_idx, bank_idx, bank.open_row))
        if not dq:
            return False
        closed_groups = ~bank.open_mask
        for cand in dq:
            if not cand.served and not (cand._needed & closed_groups):
                return True
        return False

    # ------------------------------------------------------------------
    # Command issue helpers
    # ------------------------------------------------------------------
    def _activation_plan(self, req: Request) -> Tuple[int, float, bool]:
        """Coverage mask, activated fraction and masked? for an ACT."""
        scheme = self.scheme
        if req.is_write and scheme.write_uses_mask:
            merged = req.dirty_mask
            dq = self.write_q._by_row.get(row_key(req))
            if dq:
                for w in dq:
                    if not w.served:
                        merged |= w.dirty_mask
            fraction = (
                mask_ops.popcount(merged) / WORDS_PER_LINE
            ) * scheme.mask_scale
            masked = merged != FULL_MASK
            return (merged, fraction, masked)
        if req.is_write:
            return (FULL_MASK, scheme.write_fraction, False)
        return (FULL_MASK, scheme.read_fraction, False)

    def _try_activate(
        self, cycle: int, req: Request, rank_idx: int, bank_idx: int
    ) -> Tuple[bool, int]:
        rank = self.channel.ranks[rank_idx]
        bank = rank.banks[bank_idx]
        coverage, fraction, masked = self._activation_plan(req)
        # Ceil, not round: a 2.5/8 activation must weigh at least 3/8
        # in the tRRD/tFAW budget (conservative for peak power).
        granularity = max(1, math.ceil(fraction * 8 - 1e-9))
        earliest = rank.earliest_activate(cycle, bank_idx, granularity)
        if earliest > cycle:
            return (False, earliest)
        if masked and self.scheme.mask_via_dm_pin:
            # Section 4.2 alternative: the mask rides the DM pin, so no
            # +1 tRCD and no second command-bus cycle - but the chip's
            # write buffer is occupied until the partial activation
            # completes, blocking further writes to this rank (the
            # rank/bank-parallelism cost the paper warns about).
            rank.hold_write_buffer(cycle + self.timing.trcd)
        rank.accrue_background(cycle)
        act_mask = coverage if masked else FULL_MASK
        pays_mask_cycle = masked and self.scheme.masked_act_extra_cycle
        bank.activate(
            cycle, req.addr.row, act_mask, mask_transfer_cycle=pays_mask_cycle
        )
        rank.record_activate(cycle, granularity)
        self._useless[rank_idx] &= ~(1 << bank_idx)
        bank.reserved_req = req.req_id if self._auto_pre else None
        if self.protocol_checker is not None:
            self._observe(CommandRecord(
                cycle=cycle, cmd=Cmd.ACT, rank=rank_idx, bank=bank_idx,
                row=req.addr.row, mask=act_mask, granularity=granularity,
                masked=pays_mask_cycle))
        self.accountant.on_activate_fraction(fraction)
        kind_stats = self.stats.reads if req.is_read else self.stats.writes
        kind_stats.activations += 1
        req._missed = True
        self.channel.cmd_bus_free = cycle + (2 if pays_mask_cycle else 1)
        return (True, cycle + 1)

    def _try_precharge(
        self, cycle, rank, bank, rank_idx=None, bank_idx=None
    ) -> Tuple[bool, int]:
        gate = rank._gate
        if cycle < gate:
            return (False, gate)
        if bank.open_row is None or cycle < bank.pre_ready:
            return (False, bank.pre_ready if bank.pre_ready > cycle else cycle + 1)
        rank.accrue_background(cycle)
        bank.precharge(cycle)
        bank.pending_autopre = False
        self.stats.precharges += 1
        if self.protocol_checker is not None:
            if rank_idx is None:
                rank_idx = self.channel.ranks.index(rank)
                bank_idx = rank.banks.index(bank)
            self._observe(CommandRecord(
                cycle=cycle, cmd=Cmd.PRE, rank=rank_idx, bank=bank_idx))
        self.channel.cmd_bus_free = cycle + 1
        return (True, cycle + 1)

    def _try_column(
        self, cycle: int, req: Request, rank_idx: int, bank_idx: int
    ) -> Tuple[bool, int]:
        channel = self.channel
        rank = channel.ranks[rank_idx]
        bank = rank.banks[bank_idx]
        is_read = req.is_read
        if is_read:
            earliest = rank.earliest_read(cycle, bank_idx)
            data_delay = self._tcas
        else:
            earliest = rank.earliest_write(cycle, bank_idx)
            data_delay = self._tcwl
        if earliest > cycle or rank.powered_down:
            return (False, earliest if earliest > cycle else cycle + 1)
        burst_start = cycle + data_delay
        bus_start = channel.earliest_burst_start(burst_start, rank_idx)
        if bus_start > burst_start:
            back_off = bus_start - data_delay
            return (False, back_off if back_off > cycle else cycle + 1)
        if is_read:
            bank.read(cycle)
        else:
            bank.write(cycle)
        burst_end = channel.occupy_data_bus(burst_start, rank_idx)
        if self.protocol_checker is not None:
            self._observe(CommandRecord(
                cycle=cycle, cmd=Cmd.RD if is_read else Cmd.WR,
                rank=rank_idx, bank=bank_idx,
                burst_start=burst_start, burst_end=burst_end,
                needed_mask=req._needed))
        # Recompute recovery with the channel's (possibly FGA-doubled)
        # burst length: the device cannot precharge before data is in.
        if is_read:
            rank.record_read(cycle)
        else:
            pre = burst_end + self._twr
            if pre > bank.pre_ready:
                bank.pre_ready = pre
            rank.record_write(cycle, burst_end)
        if self._auto_pre:
            bank.pending_autopre = True

        was_hit = not req._missed
        was_false = req._false
        if is_read:
            req.complete_cycle = burst_end
            latency = burst_end - req.arrive_cycle
            self.stats.reads.record_service(was_hit, was_false, latency)
            self.read_q.remove(req)
            self.completed_reads.append((burst_end, req))
            self.accountant.on_read_burst(other_ranks=self._other_ranks)
        else:
            req.complete_cycle = cycle
            latency = cycle - req.arrive_cycle
            self.stats.writes.record_service(was_hit, was_false, latency)
            self.write_q.remove(req)
            if self.scheme.scale_write_io:
                driven = mask_ops.popcount(req.dirty_mask) / WORDS_PER_LINE
            else:
                driven = 1.0
            self.accountant.on_write_burst(
                driven_fraction=driven, other_ranks=self._other_ranks
            )
        channel.cmd_bus_free = cycle + 1
        return (True, cycle + 1)

    # ------------------------------------------------------------------
    def flush_background(self, cycle: int) -> None:
        """Accrue background residency up to ``cycle`` (end of run)."""
        for rank in self.channel.ranks:
            rank.accrue_background(cycle)
            self.accountant.add_background(rank.bg_residency)
            rank.bg_residency = {"act_stby": 0, "pre_stby": 0, "pre_pdn": 0}
